//! Motion estimation on the 2-D systolic array (Figs. 10–11): finds motion
//! vectors on a synthetic sequence, cycle-accurately, and compares the
//! architecture variants' area/cycles/bandwidth trade-offs.
//!
//! ```sh
//! cargo run --release --example motion_search
//! ```

use dsra::core::CoreError;
use dsra::me::{full_search, MeEngine, SearchParams, Sequential, Systolic1d, Systolic2d};
use dsra::video::{SequenceConfig, SyntheticSequence};

fn main() -> Result<(), CoreError> {
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 64,
        height: 64,
        frames: 2,
        pan: (2.0, -1.0),
        objects: 0,
        noise: 1,
        ..Default::default()
    });
    let params = SearchParams { block: 8, range: 4 };
    let (bx, by) = (24, 24);

    let sw = full_search(seq.frame(1), seq.frame(0), bx, by, &params);
    println!(
        "software full search: mv {:?}, SAD {}, {} candidates",
        sw.mv, sw.sad, sw.candidates
    );

    let engines: Vec<Box<dyn MeEngine>> = vec![
        Box::new(Systolic2d::new(8)?),
        Box::new(Systolic1d::new(8)?),
        Box::new(Sequential::new(8)?),
    ];
    println!(
        "\n{:<22} {:>9} {:>9} {:>11} {:>10}",
        "architecture", "clusters", "cycles", "ref fetch", "bw gain"
    );
    for eng in &engines {
        let r = eng.search(seq.frame(1), seq.frame(0), bx, by, &params)?;
        assert_eq!(r.best.mv, sw.mv, "hardware must match software");
        println!(
            "{:<22} {:>9} {:>9} {:>11} {:>9.2}x",
            eng.name(),
            eng.report().total_clusters(),
            r.cycles,
            r.ref_fetches,
            r.bandwidth_reduction()
        );
    }
    println!(
        "\nSame motion vector from all three mappings; the 2-D array trades\n\
         clusters for cycles and cuts memory bandwidth by broadcasting the\n\
         search area while current pixels ride the register pipeline (§4)."
    );
    Ok(())
}
