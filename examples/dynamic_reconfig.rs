//! Dynamic reconfiguration under run-time constraints (§5 / experiment E7):
//! encodes a synthetic sequence, switching DCT implementations when the
//! operating condition changes, and reports the measured partial-
//! reconfiguration costs.
//!
//! ```sh
//! cargo run --release --example dynamic_reconfig
//! ```

use dsra::core::CoreError;
use dsra::dct::DaParams;
use dsra::me::SearchParams;
use dsra::platform::{
    dynamic_encode, profile_all_impls, standard_da_fabric, Condition, ReconfigManager, SocConfig,
};
use dsra::tech::TechModel;
use dsra::video::{EncodeConfig, SequenceConfig, SyntheticSequence};

fn main() -> Result<(), CoreError> {
    // Build, place, route and profile all six DCT mappings on one DA array.
    let fabric = standard_da_fabric();
    let mut manager = ReconfigManager::new(SocConfig::default());
    let impls = profile_all_impls(
        DaParams::precise(),
        &fabric,
        &TechModel::default(),
        &mut manager,
    )?;
    println!("profiled {} implementations:", impls.len());
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>14}",
        "impl", "clusters", "cyc/blk", "cfg bits", "energy/blk"
    );
    for p in &impls {
        println!(
            "{:<10} {:>9} {:>10} {:>12} {:>14.1}",
            p.profile.name,
            p.profile.clusters,
            p.profile.cycles_per_block,
            p.profile.config_bits,
            p.profile.energy_per_block
        );
    }

    // Encode a short sequence; the battery alarm fires before frame 3.
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 48,
        height: 48,
        frames: 5,
        ..Default::default()
    });
    let conditions = [
        Condition::HighQuality,
        Condition::HighQuality,
        Condition::LowBattery { charge_pct: 18 },
        Condition::LowBattery { charge_pct: 14 },
    ];
    let cfg = EncodeConfig {
        search: SearchParams {
            block: 16,
            range: 3,
        },
        ..Default::default()
    };
    let frames = dynamic_encode(seq.frames(), &conditions, &impls, &mut manager, &cfg)?;

    println!("\nframe  condition      impl        PSNR(dB)  reconfig");
    for f in &frames {
        let rc = match f.reconfig {
            Some(r) => format!("{} bits / {} cycles", r.bits_written, r.cycles),
            None => "-".to_owned(),
        };
        println!(
            "{:>5}  {:<13} {:<11} {:>7.2}  {}",
            f.frame_index,
            format!("{:?}", f.condition),
            f.impl_name,
            f.stats.psnr_db,
            rc
        );
    }
    println!(
        "\nThe low-battery switch rewrites only the differing configuration\n\
         frames — the run-time flexibility the paper's conclusion claims."
    );
    Ok(())
}
