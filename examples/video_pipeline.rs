//! A miniature MPEG-4-style encode loop on the reconfigurable arrays:
//! motion search + hardware residual DCT + quantisation, with the
//! scaled-DCT factors folded into the quantiser exactly as §3.4 prescribes.
//!
//! ```sh
//! cargo run --release --example video_pipeline
//! ```

use dsra::core::CoreError;
use dsra::dct::{BasicDa, Cordic2, DaParams, DctImpl};
use dsra::me::SearchParams;
use dsra::video::{encode_frame, EncodeConfig, Quantizer, SequenceConfig, SyntheticSequence};

fn main() -> Result<(), CoreError> {
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 64,
        height: 64,
        frames: 4,
        pan: (1.0, 0.5),
        objects: 2,
        noise: 2,
        ..Default::default()
    });

    for (name, dct) in [
        (
            "BASIC DA",
            Box::new(BasicDa::new(DaParams::precise())?) as Box<dyn DctImpl>,
        ),
        ("CORDIC 2", Box::new(Cordic2::new(DaParams::precise())?)),
    ] {
        println!("== residual DCT on {name} ==");
        let cfg = EncodeConfig {
            search: SearchParams {
                block: 16,
                range: 4,
            },
            quantizer: Quantizer::uniform(10.0),
        };
        let mut reference = seq.frame(0).clone();
        for i in 1..seq.frames().len() {
            let (recon, stats) = encode_frame(seq.frame(i), &reference, dct.as_ref(), &cfg)?;
            println!(
                "frame {i}: {} MBs, total SAD {}, {} nonzero levels, PSNR {:.2} dB, {} DCT cycles",
                stats.macroblocks,
                stats.total_sad,
                stats.nonzero_levels,
                stats.psnr_db,
                stats.dct_cycles
            );
            reference = recon;
        }
        println!();
    }
    println!(
        "Both mappings drive the same encoder; CORDIC 2's scale factors are\n\
         absorbed by the quantiser, so it needs no extra hardware (§3.4)."
    );
    Ok(())
}
