//! Quickstart: build a DCT mapping, run a block, place & route it, and
//! print the paper-style resource report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dsra::core::{
    place, route, Bitstream, CoreError, Fabric, MeshSpec, PlacerOptions, RouterOptions,
};
use dsra::dct::{reference, BasicDa, DaParams, DctImpl};

fn main() -> Result<(), CoreError> {
    // 1. Build the Fig.-4 basic distributed-arithmetic DCT.
    let dct = BasicDa::new(DaParams::precise())?;
    println!(
        "built `{}`: {} cycles per 8-point block",
        dct.name(),
        dct.cycles_per_block()
    );

    // 2. Transform a block, cycle-accurately, and compare to the reference.
    let x = [100i64, 50, -25, 0, 10, -60, 30, 5];
    let hw = dct.transform(&x)?;
    let sw = reference::dct_1d_int(&x);
    println!("\n  u  hardware   reference");
    for u in 0..8 {
        println!("  {u}  {:>9.3}  {:>9.3}", hw[u], sw[u]);
    }

    // 3. Resource usage — one column of the paper's Table 1.
    println!("\n{}", dct.report());

    // 4. Map onto the DA array: place, route, generate the bitstream.
    let fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    let placement = place(dct.netlist(), &fabric, PlacerOptions::default())?;
    let routing = route(dct.netlist(), &fabric, &placement, RouterOptions::default())?;
    let bits = Bitstream::generate(dct.netlist(), &fabric, &placement, &routing);
    println!(
        "placed on {}x{} array: {} routed nets, {} track segments, {} switch points",
        fabric.width(),
        fabric.height(),
        routing.routes.len(),
        routing.stats.track_segments,
        routing.stats.switch_points,
    );
    println!(
        "configuration: {} cluster bits + {} routing bits = {} total",
        bits.cluster_bits(),
        bits.routing_bits(),
        bits.total_bits()
    );
    Ok(())
}
