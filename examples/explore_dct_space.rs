//! Design-space exploration across the six DCT implementations of §3:
//! regenerates Table 1 and extends it with measured cycles, accuracy and
//! configuration bits — the area/precision/time trade-offs the paper argues
//! the reconfigurable array exists to serve.
//!
//! ```sh
//! cargo run --release --example explore_dct_space
//! ```

use dsra::core::{table1, CoreError};
use dsra::dct::{all_impls, measure_accuracy, DaParams};

fn main() -> Result<(), CoreError> {
    let impls = all_impls(DaParams::precise())?;

    // Table 1: area usage in clusters.
    let reports: Vec<_> = impls.iter().map(|i| i.report()).collect();
    let refs: Vec<_> = reports.iter().collect();
    println!("Table 1 — Area usage of the DCT implementations (clusters):\n");
    println!("{}", table1(&refs));

    // Extended exploration: cycles, precision, configuration size.
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12}",
        "impl", "cycles", "ROM words", "max |err|", "rms err"
    );
    for imp in &impls {
        let acc = measure_accuracy(imp.as_ref(), 8, 2047, 42)?;
        println!(
            "{:<10} {:>8} {:>10} {:>12.3} {:>12.4}",
            imp.name(),
            imp.cycles_per_block(),
            imp.report().memory_words(),
            acc.max_abs_err,
            acc.rms_err
        );
    }
    println!(
        "\nAll six compute the same 8-point DCT on the same fabric — the\n\
         flexibility §5 claims: pick small (SCC, 24 clusters), precise\n\
         (MIX ROM), or rotation-structured (CORDIC) per run-time needs."
    );
    Ok(())
}
