//! # dsra — Domain-Specific Reconfigurable Arrays for mobile video
//!
//! A full reproduction of *"Efficient Implementations of Mobile Video
//! Computations on Domain-Specific Reconfigurable Arrays"* (Khawam et al.,
//! DATE 2004) as a Rust workspace:
//!
//! * [`core`] — fabric model: clusters, netlists, placement, routing over
//!   the mixed 8-bit/1-bit mesh, bitstreams, Table-1 resource accounting;
//! * [`sim`] — cycle-accurate simulator with bit-serial DA semantics;
//! * [`dct`] — the six DCT mappings of §3 (basic DA, Mixed-ROM, two
//!   CORDIC-rotator variants, two skew-circular-convolution variants);
//! * [`me`] — the 2-D systolic motion-estimation array of §4 and its 1-D /
//!   sequential / fast-search alternatives;
//! * [`tech`] — technology model and generic-FPGA baseline (the −75 %/−38 %
//!   power comparisons);
//! * [`video`] — synthetic sequences, quantisation, PSNR, encode pipeline;
//! * [`platform`] — the reconfigurable SoC: bitstream manager, run-time
//!   policies, dynamic switching;
//! * [`power`] — battery model, DVFS operating points, per-array energy
//!   accounting and power gating;
//! * [`backend`] — execution backends behind one contract: the cycle-level
//!   array simulator, a pure-software golden reference, and the
//!   differential check mode that diffs them per job;
//! * [`trace`] — deterministic virtual-time tracing: job-lifecycle events,
//!   array state intervals, metrics registry, Chrome-trace exporter;
//! * [`monitor`] — online windowed SLO monitoring over the trace stream:
//!   sliding-window percentiles, burn-rate alerting with hysteresis,
//!   health snapshots driving admission control;
//! * [`runtime`] — the multi-array SoC runtime: content-addressed bitstream
//!   cache, diff-aware scheduling, energy-aware serving, worker-thread job
//!   service;
//! * [`service`] — the open-loop multi-tenant streaming frontend: seeded
//!   traces, admission control and load shedding, elastic array pools,
//!   SLO tracking;
//! * [`profile`] — cycle-exact attribution profiling over the trace
//!   stream: per-op/per-kernel cycle and energy accounting, utilization
//!   timelines, collapsed-stack flamegraph export;
//! * [`chaos`] — deterministic fault injection (stuck-at, transients,
//!   corrupted reconfiguration, array death, battery brownout) with
//!   golden-spot-check detection, retry/quarantine recovery, and the
//!   recovery-on vs fault-oblivious chaos-serving experiment.
//!
//! ## Quickstart
//!
//! ```
//! use dsra::dct::{BasicDa, DaParams, DctImpl};
//!
//! # fn main() -> Result<(), dsra::core::CoreError> {
//! let dct = BasicDa::new(DaParams::precise())?;
//! let coeffs = dct.transform(&[100, 50, -25, 0, 10, -60, 30, 5])?;
//! let reference = dsra::dct::reference::dct_1d_int(&[100, 50, -25, 0, 10, -60, 30, 5]);
//! assert!((coeffs[0] - reference[0]).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use dsra_backend as backend;
pub use dsra_chaos as chaos;
pub use dsra_core as core;
pub use dsra_dct as dct;
pub use dsra_me as me;
pub use dsra_monitor as monitor;
pub use dsra_platform as platform;
pub use dsra_power as power;
pub use dsra_profile as profile;
pub use dsra_runtime as runtime;
pub use dsra_service as service;
pub use dsra_sim as sim;
pub use dsra_tech as tech;
pub use dsra_trace as trace;
pub use dsra_video as video;
