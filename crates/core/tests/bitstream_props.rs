//! Property tests for the bitstream diff and fingerprint algebra — the two
//! primitives the runtime's content-addressed cache and diff-aware
//! scheduler lean on:
//!
//! * `diff_bits(a, a) == 0` (a no-op switch is free),
//! * `diff_bits(a, b) == diff_bits(b, a)` (symmetry),
//! * fingerprint equality is consistent with zero diff: equal netlist
//!   fingerprints compile to bitstreams with equal fingerprints and zero
//!   diff; distinct kernels differ in both.

use std::collections::BTreeMap;

use dsra_core::bitstream::FrameAddr;
use dsra_core::prelude::*;
use dsra_core::rng::SplitMix64;
use proptest::prelude::*;

/// A small parameterised DA-style kernel: an add/sub datapath plus a ROM
/// whose contents are part of the parameter space — the two configuration
/// planes (function bits and memory bits) that dominate real kernels.
fn build(width: u8, mode_sel: u8, rom_word: u64) -> Netlist {
    let cfg = if mode_sel.is_multiple_of(2) {
        AddShiftCfg::Add {
            width,
            serial: false,
        }
    } else {
        AddShiftCfg::Sub {
            width,
            serial: false,
        }
    };
    let mut nl = Netlist::new("prop");
    let a = nl.input("a", width).unwrap();
    let b = nl.input("b", width).unwrap();
    let addr = nl.input("addr", 4).unwrap();
    let add = nl.cluster("add", ClusterCfg::AddShift(cfg)).unwrap();
    let rom = nl
        .cluster(
            "rom",
            ClusterCfg::Memory {
                words: 16,
                width,
                contents: vec![rom_word & ((1u64 << width) - 1); 16],
            },
        )
        .unwrap();
    let y = nl.output("y", width).unwrap();
    let z = nl.output("z", width).unwrap();
    nl.connect((a, "out"), (add, "a")).unwrap();
    nl.connect((b, "out"), (add, "b")).unwrap();
    nl.connect((add, "y"), (y, "in")).unwrap();
    nl.connect((addr, "out"), (rom, "addr")).unwrap();
    nl.connect((rom, "dout"), (z, "in")).unwrap();
    nl
}

fn compile(nl: &Netlist) -> Bitstream {
    let fabric = Fabric::da_array(10, 10, MeshSpec::mixed());
    let p = place(nl, &fabric, PlacerOptions::default()).unwrap();
    let r = route(nl, &fabric, &p, RouterOptions::default()).unwrap();
    Bitstream::generate(nl, &fabric, &p, &r)
}

/// Random frame map over a deliberately small address space, so two
/// independently drawn maps share some keys, miss others (asymmetric key
/// sets) and disagree on word counts (length mismatches) — every branch of
/// the diff.
fn random_frames(seed: u64, frames: u64, max_words: u64) -> BTreeMap<FrameAddr, Vec<u64>> {
    let mut rng = SplitMix64::new(seed);
    let mut map = BTreeMap::new();
    for _ in 0..frames {
        let addr = if rng.next_below(2) == 0 {
            FrameAddr::Site {
                x: rng.next_below(4) as u16,
                y: rng.next_below(4) as u16,
            }
        } else {
            FrameAddr::Edge {
                id: rng.next_below(12) as u32,
                bus: rng.next_below(2) == 1,
            }
        };
        let len = 1 + rng.next_below(max_words) as usize;
        map.insert(addr, (0..len).map(|_| rng.next_u64()).collect());
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed merge sweep is exactly the map-based diff, on arbitrary
    /// frame maps — asymmetric keys and mismatched frame lengths included.
    #[test]
    fn prop_packed_diff_agrees_with_map_diff(
        seed_a in 0u64..1 << 48,
        seed_b in 0u64..1 << 48,
        frames_a in 0u64..24,
        frames_b in 0u64..24,
        max_words in 1u64..6,
    ) {
        let a = Bitstream::from_frames(random_frames(seed_a, frames_a, max_words));
        let b = Bitstream::from_frames(random_frames(seed_b, frames_b, max_words));
        prop_assert_eq!(a.diff_bits_packed(&b), a.diff_bits_map(&b));
        prop_assert_eq!(b.diff_bits_packed(&a), a.diff_bits_packed(&b), "symmetry");
        prop_assert_eq!(a.diff_bits_packed(&a), 0);
        prop_assert_eq!(b.diff_bits_packed(&b), 0);
    }

    /// Packing a frame map and reading frames back through the packed index
    /// round-trips every frame (and only those frames).
    #[test]
    fn prop_packing_round_trips(
        seed in 0u64..1 << 48,
        frames in 0u64..24,
        max_words in 1u64..6,
    ) {
        let map = random_frames(seed, frames, max_words);
        let bs = Bitstream::from_frames(map.clone());
        for (addr, words) in &map {
            prop_assert_eq!(bs.packed_frame(*addr), Some(words.as_slice()));
        }
        let absent = FrameAddr::Site { x: u16::MAX, y: u16::MAX };
        prop_assert_eq!(bs.packed_frame(absent), None);
        prop_assert_eq!(bs.frame_count(), map.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_self_diff_is_zero(width in 4u8..=12, mode in 0u8..3, word in 0u64..256) {
        let nl = build(width, mode, word);
        let bs = compile(&nl);
        prop_assert_eq!(bs.diff_bits(&bs), 0);
        // An independently recompiled identical netlist also diffs to zero:
        // the whole pipeline is deterministic.
        let again = compile(&build(width, mode, word));
        prop_assert_eq!(bs.diff_bits(&again), 0);
        prop_assert_eq!(bs.fingerprint(), again.fingerprint());
    }

    #[test]
    fn prop_diff_is_symmetric(
        width in 4u8..=12,
        mode_a in 0u8..3,
        mode_b in 0u8..3,
        word_a in 0u64..256,
        word_b in 0u64..256,
    ) {
        let a = compile(&build(width, mode_a, word_a));
        let b = compile(&build(width, mode_b, word_b));
        prop_assert_eq!(a.diff_bits(&b), b.diff_bits(&a));
    }

    #[test]
    fn prop_fingerprint_equality_matches_zero_diff(
        width in 4u8..=12,
        mode_a in 0u8..3,
        mode_b in 0u8..3,
        word_a in 0u64..64,
        word_b in 0u64..64,
    ) {
        let nl_a = build(width, mode_a, word_a);
        let nl_b = build(width, mode_b, word_b);
        let bs_a = compile(&nl_a);
        let bs_b = compile(&nl_b);
        if nl_a.fingerprint() == nl_b.fingerprint() {
            // Same content address → identical compiled configuration.
            prop_assert_eq!(bs_a.fingerprint(), bs_b.fingerprint());
            prop_assert_eq!(bs_a.diff_bits(&bs_b), 0);
        } else {
            // Distinct kernels differ somewhere in the configuration planes
            // (mode or ROM contents), so a switch writes real bits.
            prop_assert!(bs_a.diff_bits(&bs_b) > 0);
            prop_assert_ne!(bs_a.fingerprint(), bs_b.fingerprint());
        }
    }
}
