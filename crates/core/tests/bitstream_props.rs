//! Property tests for the bitstream diff and fingerprint algebra — the two
//! primitives the runtime's content-addressed cache and diff-aware
//! scheduler lean on:
//!
//! * `diff_bits(a, a) == 0` (a no-op switch is free),
//! * `diff_bits(a, b) == diff_bits(b, a)` (symmetry),
//! * fingerprint equality is consistent with zero diff: equal netlist
//!   fingerprints compile to bitstreams with equal fingerprints and zero
//!   diff; distinct kernels differ in both.

use dsra_core::prelude::*;
use proptest::prelude::*;

/// A small parameterised DA-style kernel: an add/sub datapath plus a ROM
/// whose contents are part of the parameter space — the two configuration
/// planes (function bits and memory bits) that dominate real kernels.
fn build(width: u8, mode_sel: u8, rom_word: u64) -> Netlist {
    let cfg = if mode_sel.is_multiple_of(2) {
        AddShiftCfg::Add {
            width,
            serial: false,
        }
    } else {
        AddShiftCfg::Sub {
            width,
            serial: false,
        }
    };
    let mut nl = Netlist::new("prop");
    let a = nl.input("a", width).unwrap();
    let b = nl.input("b", width).unwrap();
    let addr = nl.input("addr", 4).unwrap();
    let add = nl.cluster("add", ClusterCfg::AddShift(cfg)).unwrap();
    let rom = nl
        .cluster(
            "rom",
            ClusterCfg::Memory {
                words: 16,
                width,
                contents: vec![rom_word & ((1u64 << width) - 1); 16],
            },
        )
        .unwrap();
    let y = nl.output("y", width).unwrap();
    let z = nl.output("z", width).unwrap();
    nl.connect((a, "out"), (add, "a")).unwrap();
    nl.connect((b, "out"), (add, "b")).unwrap();
    nl.connect((add, "y"), (y, "in")).unwrap();
    nl.connect((addr, "out"), (rom, "addr")).unwrap();
    nl.connect((rom, "dout"), (z, "in")).unwrap();
    nl
}

fn compile(nl: &Netlist) -> Bitstream {
    let fabric = Fabric::da_array(10, 10, MeshSpec::mixed());
    let p = place(nl, &fabric, PlacerOptions::default()).unwrap();
    let r = route(nl, &fabric, &p, RouterOptions::default()).unwrap();
    Bitstream::generate(nl, &fabric, &p, &r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_self_diff_is_zero(width in 4u8..=12, mode in 0u8..3, word in 0u64..256) {
        let nl = build(width, mode, word);
        let bs = compile(&nl);
        prop_assert_eq!(bs.diff_bits(&bs), 0);
        // An independently recompiled identical netlist also diffs to zero:
        // the whole pipeline is deterministic.
        let again = compile(&build(width, mode, word));
        prop_assert_eq!(bs.diff_bits(&again), 0);
        prop_assert_eq!(bs.fingerprint(), again.fingerprint());
    }

    #[test]
    fn prop_diff_is_symmetric(
        width in 4u8..=12,
        mode_a in 0u8..3,
        mode_b in 0u8..3,
        word_a in 0u64..256,
        word_b in 0u64..256,
    ) {
        let a = compile(&build(width, mode_a, word_a));
        let b = compile(&build(width, mode_b, word_b));
        prop_assert_eq!(a.diff_bits(&b), b.diff_bits(&a));
    }

    #[test]
    fn prop_fingerprint_equality_matches_zero_diff(
        width in 4u8..=12,
        mode_a in 0u8..3,
        mode_b in 0u8..3,
        word_a in 0u64..64,
        word_b in 0u64..64,
    ) {
        let nl_a = build(width, mode_a, word_a);
        let nl_b = build(width, mode_b, word_b);
        let bs_a = compile(&nl_a);
        let bs_b = compile(&nl_b);
        if nl_a.fingerprint() == nl_b.fingerprint() {
            // Same content address → identical compiled configuration.
            prop_assert_eq!(bs_a.fingerprint(), bs_b.fingerprint());
            prop_assert_eq!(bs_a.diff_bits(&bs_b), 0);
        } else {
            // Distinct kernels differ somewhere in the configuration planes
            // (mode or ROM contents), so a switch writes real bits.
            prop_assert!(bs_a.diff_bits(&bs_b) > 0);
            prop_assert_ne!(bs_a.fingerprint(), bs_b.fingerprint());
        }
    }
}
