//! Error types for fabric construction, netlist building, placement and
//! routing.

use std::fmt;

/// Errors produced by the `dsra-core` crate.
///
/// Every fallible public function in this crate returns `Result<_, CoreError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CoreError {
    /// A node name was used twice within one netlist.
    DuplicateNode(String),
    /// Referenced a node that does not exist.
    UnknownNode(String),
    /// Referenced a port that does not exist on the given node.
    UnknownPort { node: String, port: String },
    /// Tried to connect two ports with different bit widths.
    WidthMismatch {
        node: String,
        port: String,
        expected: u8,
        found: u8,
    },
    /// Tried to drive a net from an input port or feed an output port as a
    /// source.
    DirectionMismatch { node: String, port: String },
    /// An input port was connected twice.
    MultipleDrivers { node: String, port: String },
    /// A required input port was left unconnected.
    Unconnected { node: String, port: String },
    /// The combinational part of the netlist contains a cycle.
    CombinationalLoop { involving: String },
    /// A cluster width is outside the supported range (1..=32).
    InvalidWidth { node: String, width: u8 },
    /// Memory geometry is unsupported (zero words, too many address bits...).
    InvalidGeometry { node: String, detail: String },
    /// The fabric has no free site compatible with a node.
    PlacementFull { kind: String },
    /// The router could not find a legal route within its iteration budget.
    Unroutable { net: String },
    /// Mismatch between a netlist and the fabric or placement it is used with.
    Mismatch(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateNode(n) => write!(f, "duplicate node name `{n}`"),
            CoreError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            CoreError::UnknownPort { node, port } => {
                write!(f, "node `{node}` has no port `{port}`")
            }
            CoreError::WidthMismatch {
                node,
                port,
                expected,
                found,
            } => write!(
                f,
                "width mismatch on `{node}.{port}`: port is {expected} bits, net is {found} bits"
            ),
            CoreError::DirectionMismatch { node, port } => {
                write!(f, "port `{node}.{port}` used against its direction")
            }
            CoreError::MultipleDrivers { node, port } => {
                write!(f, "input port `{node}.{port}` has multiple drivers")
            }
            CoreError::Unconnected { node, port } => {
                write!(f, "required input `{node}.{port}` is unconnected")
            }
            CoreError::CombinationalLoop { involving } => {
                write!(f, "combinational loop through node `{involving}`")
            }
            CoreError::InvalidWidth { node, width } => {
                write!(
                    f,
                    "node `{node}` has unsupported width {width} (must be 1..=32)"
                )
            }
            CoreError::InvalidGeometry { node, detail } => {
                write!(f, "node `{node}` has invalid memory geometry: {detail}")
            }
            CoreError::PlacementFull { kind } => {
                write!(f, "fabric has no free site for cluster kind {kind}")
            }
            CoreError::Unroutable { net } => write!(f, "net `{net}` could not be routed"),
            CoreError::Mismatch(d) => write!(f, "netlist/fabric mismatch: {d}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
