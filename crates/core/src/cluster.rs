//! Cluster and node definitions for the domain-specific arrays.
//!
//! The paper's fabrics are built from six *cluster* types — four for the
//! motion-estimation array (Fig. 2) and two for the distributed-arithmetic /
//! DCT array (Fig. 3):
//!
//! | Kind | Array | Function |
//! |------|-------|----------|
//! | [`ClusterKind::RegMux`] | ME | 2:1 multiplexer with optional output register |
//! | [`ClusterKind::AbsDiff`] | ME | add / subtract / absolute difference |
//! | [`ClusterKind::AddAcc`] | ME | combinational add/sub or sequential accumulate |
//! | [`ClusterKind::Comparator`] | ME | two-value min/max or streaming arg-min/max |
//! | [`ClusterKind::AddShift`] | DA | add, sub, parallel↔serial shift, shift-accumulate |
//! | [`ClusterKind::Memory`] | DA | LUT/ROM with configurable geometry |
//!
//! Each cluster is internally composed of cascaded **4-bit elements**
//! ([`ELEMENT_BITS`]); a 12-bit datapath therefore occupies three elements
//! chained over fast intra-cluster interconnect, exactly as described in §2
//! of the paper.
//!
//! Besides clusters, netlists contain *wiring pseudo-nodes* (inputs, outputs,
//! constants, concatenation and bit-slicing). These model plain wires and pad
//! connections: they occupy no cluster site and contribute no area.

use crate::error::{CoreError, Result};

/// Datapath bits provided by a single intra-cluster element (§2: "the 4-bits
/// provided by one element").
pub const ELEMENT_BITS: u8 = 4;

/// Maximum datapath width supported by one cluster (8 cascaded elements).
pub const MAX_WIDTH: u8 = 32;

/// The six physical cluster types of the two domain-specific arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterKind {
    /// 2:1 register-multiplexer (ME array).
    RegMux,
    /// Absolute-difference calculator (ME array).
    AbsDiff,
    /// Adder/subtracter with accumulator (ME array).
    AddAcc,
    /// Min/max comparator (ME array).
    Comparator,
    /// Add-shift cluster (DA array).
    AddShift,
    /// Memory element: LUT/ROM with configurable geometry (DA array).
    Memory,
}

impl ClusterKind {
    /// All kinds, in display order.
    pub const ALL: [ClusterKind; 6] = [
        ClusterKind::RegMux,
        ClusterKind::AbsDiff,
        ClusterKind::AddAcc,
        ClusterKind::Comparator,
        ClusterKind::AddShift,
        ClusterKind::Memory,
    ];

    /// Short human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterKind::RegMux => "MUX",
            ClusterKind::AbsDiff => "AD",
            ClusterKind::AddAcc => "ADD/ACC",
            ClusterKind::Comparator => "COMP",
            ClusterKind::AddShift => "ADD-SHIFT",
            ClusterKind::Memory => "MEM",
        }
    }
}

impl std::fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Add or subtract, for clusters that support both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
}

/// Operating mode of an [`ClusterKind::AbsDiff`] cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsDiffMode {
    /// Plain addition.
    Add,
    /// Plain subtraction.
    Sub,
    /// Absolute difference `|a - b|` (the SAD primitive).
    AbsDiff,
}

/// Operating mode of a [`ClusterKind::Comparator`] cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompMode {
    /// Combinational two-input minimum (`y = min(a, b)`, `which = a > b`).
    Min,
    /// Combinational two-input maximum (`y = max(a, b)`, `which = a < b`).
    Max,
    /// Streaming arg-minimum over a vector: registers the best value and its
    /// index (used to extract motion vectors).
    StreamMin,
    /// Streaming arg-maximum over a vector.
    StreamMax,
}

/// Sub-function selected inside an [`ClusterKind::AddShift`] cluster.
///
/// Table 1 of the paper accounts add-shift clusters in exactly these four
/// roles: *adders*, *subtracters*, *shift registers* and *accumulators*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AddShiftCfg {
    /// Combinational or bit-serial adder.
    ///
    /// With `serial = false`, `y = a + b` on `width`-bit buses.
    /// With `serial = true`, `a`/`b`/`y` are 1-bit LSB-first streams and the
    /// cluster keeps a carry flip-flop (classic bit-serial adder).
    Add {
        /// Datapath width (ignored for the serial form, which is 1-bit).
        width: u8,
        /// Bit-serial operation.
        serial: bool,
    },
    /// Combinational or bit-serial subtracter (`a - b`).
    Sub {
        /// Datapath width (ignored for the serial form).
        width: u8,
        /// Bit-serial operation.
        serial: bool,
    },
    /// Parallel-to-serial shift register: loads a `width`-bit word and emits
    /// it LSB first, sign-extending once the MSB has been sent.
    SerialReg {
        /// Width of the loaded word.
        width: u8,
    },
    /// Shift-accumulator for distributed arithmetic.
    ///
    /// Implements the right-shift-accumulate recurrence
    /// `acc ← (acc ±  d · 2^(cycles-1)) >> 1` so that after `cycles` steps the
    /// accumulator holds `Σ ±d_t · 2^t` truncated to `acc_width` bits, exactly
    /// like a hardware shift-accumulator of that width. The `sub` control
    /// input selects subtraction for the sign-bit cycle of two's-complement
    /// DA. After accumulation the register can shift out serially (`sh`/`qs`),
    /// which is what lets DA stages cascade without extra shift registers.
    ShiftAcc {
        /// Accumulator register width.
        acc_width: u8,
        /// Width of the data input (ROM word width).
        data_width: u8,
    },
}

impl AddShiftCfg {
    /// Table-1 role of this configuration.
    pub fn role(&self) -> AddShiftRole {
        match self {
            AddShiftCfg::Add { .. } => AddShiftRole::Adder,
            AddShiftCfg::Sub { .. } => AddShiftRole::Subtracter,
            AddShiftCfg::SerialReg { .. } => AddShiftRole::ShiftReg,
            AddShiftCfg::ShiftAcc { .. } => AddShiftRole::Accumulator,
        }
    }
}

/// The four roles an add-shift cluster can play (rows a–d of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddShiftRole {
    /// Row (a): adders.
    Adder,
    /// Row (b): subtracters.
    Subtracter,
    /// Row (c): shift registers.
    ShiftReg,
    /// Row (d): accumulators.
    Accumulator,
}

impl AddShiftRole {
    /// All roles in Table 1 row order.
    pub const ALL: [AddShiftRole; 4] = [
        AddShiftRole::Adder,
        AddShiftRole::Subtracter,
        AddShiftRole::ShiftReg,
        AddShiftRole::Accumulator,
    ];

    /// Row label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            AddShiftRole::Adder => "Adders",
            AddShiftRole::Subtracter => "Subtracters",
            AddShiftRole::ShiftReg => "Shift Reg",
            AddShiftRole::Accumulator => "Acc",
        }
    }
}

/// Full configuration of one cluster instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClusterCfg {
    /// Register-multiplexer: `y = sel ? b : a`, optionally registered.
    RegMux {
        /// Datapath width.
        width: u8,
        /// When `true` the output is registered (one-cycle delay).
        registered: bool,
    },
    /// Absolute-difference cluster.
    AbsDiff {
        /// Datapath width.
        width: u8,
        /// Selected function.
        mode: AbsDiffMode,
    },
    /// Adder/subtracter with optional accumulation.
    AddAcc {
        /// Datapath width.
        width: u8,
        /// Add or subtract before accumulation.
        op: AddOp,
        /// When `true`, `y` is the registered running sum of `a op b`;
        /// when `false`, `y = a op b` combinationally.
        accumulate: bool,
    },
    /// Min/max comparator.
    Comparator {
        /// Datapath width.
        width: u8,
        /// Width of the streamed index (for the streaming modes).
        index_width: u8,
        /// Selected function.
        mode: CompMode,
    },
    /// Add-shift cluster (DA array).
    AddShift(AddShiftCfg),
    /// Memory cluster configured as a `words × width` ROM/LUT.
    Memory {
        /// Number of words (must be a power of two, 2..=1024).
        words: u16,
        /// Word width in bits.
        width: u8,
        /// ROM contents, one raw word per address (LSB-justified).
        contents: Vec<u64>,
    },
}

impl ClusterCfg {
    /// The physical cluster kind this configuration programs.
    pub fn kind(&self) -> ClusterKind {
        match self {
            ClusterCfg::RegMux { .. } => ClusterKind::RegMux,
            ClusterCfg::AbsDiff { .. } => ClusterKind::AbsDiff,
            ClusterCfg::AddAcc { .. } => ClusterKind::AddAcc,
            ClusterCfg::Comparator { .. } => ClusterKind::Comparator,
            ClusterCfg::AddShift(_) => ClusterKind::AddShift,
            ClusterCfg::Memory { .. } => ClusterKind::Memory,
        }
    }

    /// Main datapath width of the cluster.
    pub fn width(&self) -> u8 {
        match self {
            ClusterCfg::RegMux { width, .. }
            | ClusterCfg::AbsDiff { width, .. }
            | ClusterCfg::AddAcc { width, .. }
            | ClusterCfg::Comparator { width, .. } => *width,
            ClusterCfg::AddShift(cfg) => match cfg {
                AddShiftCfg::Add { width, serial } | AddShiftCfg::Sub { width, serial } => {
                    if *serial {
                        1
                    } else {
                        *width
                    }
                }
                AddShiftCfg::SerialReg { width } => *width,
                AddShiftCfg::ShiftAcc { acc_width, .. } => *acc_width,
            },
            ClusterCfg::Memory { width, .. } => *width,
        }
    }

    /// Number of cascaded 4-bit elements this configuration occupies.
    ///
    /// Memory clusters are counted as one element per 256 stored bits (their
    /// storage macro replaces the datapath elements).
    pub fn element_count(&self) -> u32 {
        match self {
            ClusterCfg::Memory { words, width, .. } => {
                let bits = u32::from(*words) * u32::from(*width);
                bits.div_ceil(256).max(1)
            }
            _ => u32::from(self.width().div_ceil(ELEMENT_BITS)).max(1),
        }
    }

    /// Number of configuration bits needed to program this cluster.
    ///
    /// Function-select bits plus per-element mode bits, plus the full
    /// contents for memory clusters (LUT initialisation is part of the
    /// bitstream, as in any FPGA-style fabric).
    pub fn config_bits(&self) -> u32 {
        const FUNC_SEL: u32 = 4; // function-select field per cluster
        const PER_ELEMENT: u32 = 2; // cascade / mode bits per element
        match self {
            ClusterCfg::Memory { words, width, .. } => {
                FUNC_SEL + u32::from(*words) * u32::from(*width) + 4 // + geometry field
            }
            _ => FUNC_SEL + PER_ELEMENT * self.element_count(),
        }
    }

    /// Validates widths and geometry, returning a descriptive error.
    pub fn validate(&self, node_name: &str) -> Result<()> {
        let check_width = |w: u8| -> Result<()> {
            if w == 0 || w > MAX_WIDTH {
                Err(CoreError::InvalidWidth {
                    node: node_name.to_owned(),
                    width: w,
                })
            } else {
                Ok(())
            }
        };
        match self {
            ClusterCfg::RegMux { width, .. }
            | ClusterCfg::AbsDiff { width, .. }
            | ClusterCfg::AddAcc { width, .. } => check_width(*width),
            ClusterCfg::Comparator {
                width, index_width, ..
            } => {
                check_width(*width)?;
                check_width(*index_width)
            }
            ClusterCfg::AddShift(cfg) => match cfg {
                AddShiftCfg::Add { width, .. } | AddShiftCfg::Sub { width, .. } => {
                    check_width(*width)
                }
                AddShiftCfg::SerialReg { width } => check_width(*width),
                AddShiftCfg::ShiftAcc {
                    acc_width,
                    data_width,
                } => {
                    check_width(*acc_width)?;
                    check_width(*data_width)
                }
            },
            ClusterCfg::Memory {
                words,
                width,
                contents,
            } => {
                check_width(*width)?;
                if !words.is_power_of_two() || *words < 2 || *words > 1024 {
                    return Err(CoreError::InvalidGeometry {
                        node: node_name.to_owned(),
                        detail: format!("words = {words}, must be a power of two in 2..=1024"),
                    });
                }
                if contents.len() != usize::from(*words) {
                    return Err(CoreError::InvalidGeometry {
                        node: node_name.to_owned(),
                        detail: format!(
                            "contents has {} words, geometry says {}",
                            contents.len(),
                            words
                        ),
                    });
                }
                Ok(())
            }
        }
    }
}

/// Address width implied by a memory geometry.
pub fn addr_width(words: u16) -> u8 {
    debug_assert!(words.is_power_of_two());
    words.trailing_zeros() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_cascades_four_bit_elements() {
        let c = ClusterCfg::AbsDiff {
            width: 12,
            mode: AbsDiffMode::AbsDiff,
        };
        assert_eq!(c.element_count(), 3);
        let c1 = ClusterCfg::RegMux {
            width: 1,
            registered: false,
        };
        assert_eq!(c1.element_count(), 1);
        let c16 = ClusterCfg::AddAcc {
            width: 16,
            op: AddOp::Add,
            accumulate: true,
        };
        assert_eq!(c16.element_count(), 4);
    }

    #[test]
    fn memory_config_bits_include_contents() {
        let rom = ClusterCfg::Memory {
            words: 256,
            width: 8,
            contents: vec![0; 256],
        };
        assert_eq!(rom.config_bits(), 4 + 256 * 8 + 4);
        // 16-word ROM is 16x cheaper to configure, the Mixed-ROM motivation.
        let small = ClusterCfg::Memory {
            words: 16,
            width: 8,
            contents: vec![0; 16],
        };
        assert!(rom.config_bits() > 15 * small.config_bits());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let bad = ClusterCfg::Memory {
            words: 12,
            width: 8,
            contents: vec![0; 12],
        };
        assert!(matches!(
            bad.validate("m"),
            Err(CoreError::InvalidGeometry { .. })
        ));
        let bad_contents = ClusterCfg::Memory {
            words: 16,
            width: 8,
            contents: vec![0; 4],
        };
        assert!(bad_contents.validate("m").is_err());
        let wide = ClusterCfg::RegMux {
            width: 40,
            registered: false,
        };
        assert!(matches!(
            wide.validate("w"),
            Err(CoreError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn addr_width_matches_log2() {
        assert_eq!(addr_width(2), 1);
        assert_eq!(addr_width(4), 2);
        assert_eq!(addr_width(16), 4);
        assert_eq!(addr_width(256), 8);
        assert_eq!(addr_width(1024), 10);
    }

    #[test]
    fn roles_cover_table1_rows() {
        assert_eq!(
            AddShiftCfg::Add {
                width: 12,
                serial: false
            }
            .role(),
            AddShiftRole::Adder
        );
        assert_eq!(
            AddShiftCfg::Sub {
                width: 12,
                serial: true
            }
            .role(),
            AddShiftRole::Subtracter
        );
        assert_eq!(
            AddShiftCfg::SerialReg { width: 12 }.role(),
            AddShiftRole::ShiftReg
        );
        assert_eq!(
            AddShiftCfg::ShiftAcc {
                acc_width: 16,
                data_width: 8
            }
            .role(),
            AddShiftRole::Accumulator
        );
    }
}
