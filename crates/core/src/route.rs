//! Mesh routing with negotiated congestion (PathFinder-style).
//!
//! The inter-cluster mesh of §2 provides, per channel, a number of 8-bit bus
//! tracks and a number of 1-bit tracks. Multi-bit nets ride bus tracks when
//! available (one switch + one configuration bit steers eight wires at once);
//! on a fine-grain mesh the same net needs one switch and one configuration
//! bit *per wire* — the paper's argument for the mixed mesh, quantified here
//! and exercised by the E6 ablation.
//!
//! The router grows a Steiner-ish tree per physical net over the switchbox
//! grid using multi-source Dijkstra, then iterates rip-up/re-route with
//! history costs until no channel is over capacity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{CoreError, Result};
use crate::fabric::Fabric;
use crate::netlist::{Netlist, PhysNet};
use crate::place::Placement;

/// Which track class a net occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackClass {
    /// 8-bit (or `bus_width`-bit) bus tracks.
    Bus,
    /// Single-bit tracks.
    Bit,
}

/// Routing parameters.
#[derive(Debug, Clone, Copy)]
pub struct RouterOptions {
    /// Maximum negotiation iterations before giving up.
    pub max_iterations: u32,
    /// History cost increment per over-used edge per iteration.
    pub history_increment: f64,
    /// Present-congestion multiplier.
    pub present_factor: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            max_iterations: 40,
            history_increment: 0.5,
            present_factor: 2.0,
        }
    }
}

/// The realised route of one physical net.
#[derive(Debug, Clone)]
pub struct NetRoute {
    /// Index into `Netlist::physical_nets()`.
    pub net_index: usize,
    /// Track class used.
    pub class: TrackClass,
    /// Parallel lanes occupied (e.g. a 12-bit net on 8-bit buses uses 2).
    pub lanes: u32,
    /// Switchbox-to-switchbox edges of the routed tree.
    pub edges: Vec<EdgeId>,
    /// Longest source→sink path length in hops.
    pub max_hops: u32,
}

/// Identifies one channel segment between two adjacent switchboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Aggregate routing statistics — the quantities behind C-MESH and the
/// technology model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoutingStats {
    /// Total occupied track segments (edges × lanes).
    pub track_segments: u64,
    /// Programmable switch points configured (one per lane per edge, plus
    /// connection boxes at each terminal).
    pub switch_points: u64,
    /// Pass-transistor equivalents (a bus switch gangs `bus_width`
    /// transistors behind one configuration bit).
    pub transistor_equiv: u64,
    /// Routing configuration bits.
    pub config_bits: u64,
    /// Longest net length in hops (routing part of the critical path).
    pub max_net_hops: u32,
    /// Sum over nets of hop counts (average wirelength proxy).
    pub total_hops: u64,
    /// Number of physical nets routed.
    pub nets: u64,
    /// Negotiation iterations used.
    pub iterations: u32,
}

/// Result of routing a placed netlist.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Per-net routes.
    pub routes: Vec<NetRoute>,
    /// Aggregate statistics.
    pub stats: RoutingStats,
}

struct Grid {
    width: u16,
    /// adjacency: cell -> (neighbor cell, edge id)
    adj: Vec<Vec<(u32, u32)>>,
    edge_count: u32,
}

impl Grid {
    fn new(width: u16, height: u16) -> Self {
        let w = u32::from(width);
        let h = u32::from(height);
        let cells = (w * h) as usize;
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::with_capacity(4); cells];
        let mut edge = 0u32;
        for y in 0..h {
            for x in 0..w {
                let c = y * w + x;
                if x + 1 < w {
                    let r = c + 1;
                    adj[c as usize].push((r, edge));
                    adj[r as usize].push((c, edge));
                    edge += 1;
                }
                if y + 1 < h {
                    let d = c + w;
                    adj[c as usize].push((d, edge));
                    adj[d as usize].push((c, edge));
                    edge += 1;
                }
            }
        }
        Grid {
            width,
            adj,
            edge_count: edge,
        }
    }

    fn cell(&self, x: u16, y: u16) -> u32 {
        u32::from(y) * u32::from(self.width) + u32::from(x)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    cell: u32,
}

impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.cell.cmp(&other.cell))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Routes all physical nets of a placed netlist.
///
/// # Errors
/// [`CoreError::Unroutable`] if congestion cannot be resolved within the
/// iteration budget, [`CoreError::Mismatch`] if a net endpoint was never
/// placed.
pub fn route(
    netlist: &Netlist,
    fabric: &Fabric,
    placement: &Placement,
    opts: RouterOptions,
) -> Result<Routing> {
    let mesh = fabric.mesh();
    let grid = Grid::new(fabric.width(), fabric.height());
    let phys = netlist.physical_nets();

    // Net terminals in grid cells.
    let mut terminals: Vec<(u32, Vec<u32>, TrackClass, u32)> = Vec::with_capacity(phys.len());
    for net in &phys {
        let src = place_cell(&grid, placement, net, net.source, netlist)?;
        let mut sinks = Vec::with_capacity(net.sinks.len());
        for &s in &net.sinks {
            sinks.push(place_cell(&grid, placement, net, s, netlist)?);
        }
        let (class, lanes) = class_for_width(net.width, mesh.bus_tracks, mesh.bus_width);
        terminals.push((src, sinks, class, lanes));
    }

    let cap = |class: TrackClass| -> f64 {
        match class {
            TrackClass::Bus => f64::from(mesh.bus_tracks),
            TrackClass::Bit => f64::from(mesh.bit_tracks),
        }
    };

    let ec = grid.edge_count as usize;
    let mut hist_bus = vec![0.0f64; ec];
    let mut hist_bit = vec![0.0f64; ec];
    let mut routes: Vec<NetRoute> = Vec::new();

    for iteration in 0..opts.max_iterations {
        let mut use_bus = vec![0.0f64; ec];
        let mut use_bit = vec![0.0f64; ec];
        routes.clear();

        for (i, (src, sinks, class, lanes)) in terminals.iter().enumerate() {
            let (usage, hist) = match class {
                TrackClass::Bus => (&mut use_bus, &hist_bus),
                TrackClass::Bit => (&mut use_bit, &hist_bit),
            };
            let capacity = cap(*class);
            let lanes_f = f64::from(*lanes);
            let route = route_net(&grid, *src, sinks, lanes_f, capacity, usage, hist, &opts);
            let mut edges: Vec<EdgeId> = route.edges.iter().map(|&e| EdgeId(e)).collect();
            edges.sort_unstable();
            edges.dedup();
            for e in &edges {
                usage[e.0 as usize] += lanes_f;
            }
            routes.push(NetRoute {
                net_index: i,
                class: *class,
                lanes: *lanes,
                edges,
                max_hops: route.max_hops,
            });
        }

        // Check congestion.
        let mut over = false;
        for e in 0..ec {
            if use_bus[e] > cap(TrackClass::Bus) + 1e-9 {
                hist_bus[e] += opts.history_increment * (use_bus[e] - cap(TrackClass::Bus));
                over = true;
            }
            if use_bit[e] > cap(TrackClass::Bit) + 1e-9 {
                hist_bit[e] += opts.history_increment * (use_bit[e] - cap(TrackClass::Bit));
                over = true;
            }
        }
        if !over {
            let stats = collect_stats(&routes, &phys, mesh.bus_width, iteration + 1);
            return Ok(Routing { routes, stats });
        }
    }

    Err(CoreError::Unroutable {
        net: netlist.name().to_owned(),
    })
}

fn place_cell(
    grid: &Grid,
    placement: &Placement,
    _net: &PhysNet,
    node: crate::netlist::NodeId,
    netlist: &Netlist,
) -> Result<u32> {
    let (x, y) = placement.loc(node).ok_or_else(|| {
        CoreError::Mismatch(format!(
            "node `{}` has no placement",
            netlist.node(node).name
        ))
    })?;
    Ok(grid.cell(x, y))
}

/// Picks the track class and lane count for a net width.
pub fn class_for_width(width: u8, bus_tracks: u8, bus_width: u8) -> (TrackClass, u32) {
    if width == 1 || bus_tracks == 0 {
        (TrackClass::Bit, u32::from(width))
    } else {
        (TrackClass::Bus, u32::from(width.div_ceil(bus_width)))
    }
}

struct TreeRoute {
    edges: Vec<u32>,
    max_hops: u32,
}

#[allow(clippy::too_many_arguments)]
fn route_net(
    grid: &Grid,
    src: u32,
    sinks: &[u32],
    lanes: f64,
    capacity: f64,
    usage: &[f64],
    hist: &[f64],
    opts: &RouterOptions,
) -> TreeRoute {
    let cells = grid.adj.len();
    let mut in_tree = vec![false; cells];
    let mut tree_depth = vec![0u32; cells];
    in_tree[src as usize] = true;
    let mut tree_edges: Vec<u32> = Vec::new();
    let mut max_hops = 0u32;

    // Route sinks nearest-first (by later Dijkstra results this is greedy,
    // here simply in given order — terminals lists are small).
    for &sink in sinks {
        if in_tree[sink as usize] {
            continue;
        }
        // Multi-source Dijkstra from the current tree to this sink.
        let mut dist = vec![f64::INFINITY; cells];
        let mut prev_edge: Vec<Option<(u32, u32)>> = vec![None; cells]; // (from cell, edge)
        let mut heap = BinaryHeap::new();
        for (c, &t) in in_tree.iter().enumerate() {
            if t {
                dist[c] = 0.0;
                heap.push(HeapEntry {
                    cost: 0.0,
                    cell: c as u32,
                });
            }
        }
        while let Some(HeapEntry { cost, cell }) = heap.pop() {
            if cost > dist[cell as usize] + 1e-12 {
                continue;
            }
            if cell == sink {
                break;
            }
            for &(next, edge) in &grid.adj[cell as usize] {
                let e = edge as usize;
                let congestion = if usage[e] + lanes > capacity {
                    opts.present_factor * (usage[e] + lanes - capacity + 1.0)
                } else {
                    0.0
                };
                let edge_cost = 1.0 + hist[e] + congestion;
                let nd = cost + edge_cost;
                if nd < dist[next as usize] {
                    dist[next as usize] = nd;
                    prev_edge[next as usize] = Some((cell, edge));
                    heap.push(HeapEntry {
                        cost: nd,
                        cell: next,
                    });
                }
            }
        }
        // Trace back from sink to the tree.
        let mut cur = sink;
        let mut path: Vec<(u32, u32)> = Vec::new();
        while !in_tree[cur as usize] {
            let Some((from, edge)) = prev_edge[cur as usize] else {
                break; // unreachable sink: same-cell terminals, nothing to do
            };
            path.push((cur, edge));
            cur = from;
        }
        let join_depth = tree_depth[cur as usize];
        max_hops = max_hops.max(join_depth + path.len() as u32);
        for (cell, edge) in path.into_iter().rev() {
            in_tree[cell as usize] = true;
            tree_edges.push(edge);
        }
        // Refresh per-cell depths now that the tree grew.
        recompute_depth(grid, src, &in_tree, &tree_edges, &mut tree_depth);
    }
    TreeRoute {
        edges: tree_edges,
        max_hops,
    }
}

fn recompute_depth(grid: &Grid, src: u32, in_tree: &[bool], tree_edges: &[u32], depth: &mut [u32]) {
    use std::collections::HashSet;
    let edge_set: HashSet<u32> = tree_edges.iter().copied().collect();
    let mut visited = vec![false; grid.adj.len()];
    let mut stack = vec![(src, 0u32)];
    visited[src as usize] = true;
    while let Some((cell, d)) = stack.pop() {
        depth[cell as usize] = d;
        for &(next, edge) in &grid.adj[cell as usize] {
            if !visited[next as usize] && in_tree[next as usize] && edge_set.contains(&edge) {
                visited[next as usize] = true;
                stack.push((next, d + 1));
            }
        }
    }
}

fn collect_stats(
    routes: &[NetRoute],
    phys: &[PhysNet],
    bus_width: u8,
    iterations: u32,
) -> RoutingStats {
    let mut s = RoutingStats {
        iterations,
        nets: routes.len() as u64,
        ..Default::default()
    };
    for r in routes {
        let lanes = u64::from(r.lanes);
        let hops = r.edges.len() as u64;
        s.track_segments += hops * lanes;
        // Connection boxes: one at the source, one per sink, per lane.
        let terminals = 1 + phys[r.net_index].sinks.len() as u64;
        s.switch_points += hops * lanes + terminals * lanes;
        s.config_bits += hops * lanes + terminals * lanes;
        s.transistor_equiv += match r.class {
            TrackClass::Bus => (hops + terminals) * lanes * u64::from(bus_width),
            TrackClass::Bit => (hops + terminals) * lanes,
        };
        s.max_net_hops = s.max_net_hops.max(r.max_hops);
        s.total_hops += hops;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AbsDiffMode, ClusterCfg};
    use crate::fabric::MeshSpec;
    use crate::place::{place, PlacerOptions};

    fn small_design() -> Netlist {
        let mut nl = Netlist::new("r");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let ad = nl
            .cluster(
                "ad",
                ClusterCfg::AbsDiff {
                    width: 8,
                    mode: AbsDiffMode::AbsDiff,
                },
            )
            .unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        nl
    }

    #[test]
    fn routes_simple_design() {
        let nl = small_design();
        let f = Fabric::me_array(8, 8, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        let r = route(&nl, &f, &p, RouterOptions::default()).unwrap();
        assert_eq!(r.routes.len(), 3);
        assert!(r.stats.config_bits > 0);
        assert!(r.stats.switch_points > 0);
    }

    #[test]
    fn bus_nets_use_fewer_config_bits_than_fine_grain() {
        let nl = small_design();
        let mixed = Fabric::me_array(8, 8, MeshSpec::mixed());
        let fine = mixed.with_mesh(MeshSpec::fine_grain());
        let pm = place(&nl, &mixed, PlacerOptions::default()).unwrap();
        let rm = route(&nl, &mixed, &pm, RouterOptions::default()).unwrap();
        let pf = place(&nl, &fine, PlacerOptions::default()).unwrap();
        let rf = route(&nl, &fine, &pf, RouterOptions::default()).unwrap();
        assert!(
            rf.stats.config_bits > rm.stats.config_bits,
            "fine {} should exceed mixed {}",
            rf.stats.config_bits,
            rm.stats.config_bits
        );
        assert!(rf.stats.switch_points > rm.stats.switch_points);
    }

    #[test]
    fn class_selection() {
        assert_eq!(class_for_width(1, 8, 8), (TrackClass::Bit, 1));
        assert_eq!(class_for_width(8, 8, 8), (TrackClass::Bus, 1));
        assert_eq!(class_for_width(12, 8, 8), (TrackClass::Bus, 2));
        assert_eq!(class_for_width(12, 0, 8), (TrackClass::Bit, 12));
    }

    #[test]
    fn fanout_net_builds_tree() {
        let mut nl = Netlist::new("fan");
        let a = nl.input("a", 8).unwrap();
        let mut sinks = Vec::new();
        let b = nl.input("b", 8).unwrap();
        for i in 0..4 {
            let ad = nl
                .cluster(
                    format!("ad{i}"),
                    ClusterCfg::AbsDiff {
                        width: 8,
                        mode: AbsDiffMode::AbsDiff,
                    },
                )
                .unwrap();
            nl.connect((a, "out"), (ad, "a")).unwrap();
            nl.connect((b, "out"), (ad, "b")).unwrap();
            let y = nl.output(format!("y{i}"), 8).unwrap();
            nl.connect((ad, "y"), (y, "in")).unwrap();
            sinks.push(ad);
        }
        let f = Fabric::me_array(10, 10, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        let r = route(&nl, &f, &p, RouterOptions::default()).unwrap();
        // Net from `a` must reach all four sinks.
        let a_route = &r.routes[0];
        assert!(!a_route.edges.is_empty());
    }
}
