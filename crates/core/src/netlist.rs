//! Netlist graph: cluster instances connected by typed buses.
//!
//! A [`Netlist`] is the structural description an implementation builder
//! (e.g. one of the six DCT mappings) produces, and what the placer, router,
//! bitstream generator and simulator consume.
//!
//! Nodes are either *clusters* (physical resources, see
//! [`crate::cluster::ClusterCfg`]) or *wiring pseudo-nodes*: top-level
//! inputs/outputs, constants, bit concatenation and bit slicing. Wiring nodes
//! model plain wires/pads: they occupy no cluster site and no area.
//!
//! Nets are driven by exactly one output port and fan out to any number of
//! input ports; every net carries a bus of a fixed bit width.

use std::collections::HashMap;
use std::fmt;

use crate::cluster::{addr_width, AddShiftCfg, ClusterCfg, ClusterKind, CompMode};
use crate::error::{CoreError, Result};
use crate::report::ResourceReport;

/// Stable content hash of a netlist or bitstream (FNV-1a, 128-bit).
///
/// Two netlists built by the same deterministic builder with the same
/// parameters hash equal; any structural difference — a node kind, a port
/// width, a ROM content word, a connection — changes the value. This is the
/// content address the runtime's bitstream cache keys compiled
/// `(placement, routing, bitstream)` artifacts by, so place-and-route is
/// paid once per distinct kernel rather than once per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The canonical 32-digit lower-case hex spelling of the address — the
    /// single formatting everything renders fingerprints with (kernel
    /// registration keys, cache diagnostics, reports). `Display` delegates
    /// here, so `to_string()` and `to_hex()` agree byte for byte.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental FNV-1a/128 hasher behind [`Fingerprint`]. Kept crate-local so
/// bitstreams and netlists hash through the identical primitive.
pub(crate) struct FnvHasher {
    state: u128,
}

impl FnvHasher {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    pub(crate) fn new() -> Self {
        FnvHasher {
            state: Self::OFFSET,
        }
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Identifies a node inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a net inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// A (node, port-index) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The node.
    pub node: NodeId,
    /// Index into the node's port list.
    pub port: u16,
}

/// Direction of a port, from the node's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// The node reads this port.
    In,
    /// The node drives this port.
    Out,
}

/// Static description of one port of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Port name, unique within the node.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bus width in bits.
    pub width: u8,
    /// For input ports: value assumed when the port is left unconnected
    /// (`None` makes the port mandatory).
    pub default: Option<u64>,
}

impl PortSpec {
    fn input(name: &str, width: u8) -> Self {
        PortSpec {
            name: name.to_owned(),
            dir: PortDir::In,
            width,
            default: None,
        }
    }
    fn input_opt(name: &str, width: u8, default: u64) -> Self {
        PortSpec {
            name: name.to_owned(),
            dir: PortDir::In,
            width,
            default: Some(default),
        }
    }
    fn output(name: &str, width: u8) -> Self {
        PortSpec {
            name: name.to_owned(),
            dir: PortDir::Out,
            width,
            default: None,
        }
    }
}

/// What a node *is*.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Top-level input pad (driven by the testbench / SoC controller).
    Input {
        /// Bus width.
        width: u8,
    },
    /// Top-level output pad.
    Output {
        /// Bus width.
        width: u8,
    },
    /// Constant driver (tied-off wire).
    Const {
        /// Raw value (masked to `width`).
        value: u64,
        /// Bus width.
        width: u8,
    },
    /// Wiring node concatenating `parts` input buses into one output bus.
    /// `in0` occupies the least-significant bits.
    Concat {
        /// Widths of the input buses, LSB-first.
        parts: Vec<u8>,
    },
    /// Wiring node extracting `width` bits starting at `offset` from an
    /// `in_width`-bit bus.
    Slice {
        /// Width of the input bus.
        in_width: u8,
        /// LSB offset of the extracted field.
        offset: u8,
        /// Width of the extracted field.
        width: u8,
    },
    /// Wiring node sign-extending an `in_width`-bit bus to `width` bits
    /// (replicated MSB wiring; no logic).
    SignExtend {
        /// Width of the input bus.
        in_width: u8,
        /// Output width (must be >= `in_width`).
        width: u8,
    },
    /// A configured cluster instance.
    Cluster(ClusterCfg),
}

impl NodeKind {
    /// `true` if the node's outputs are a combinational function of its
    /// inputs in the *same* cycle.
    pub fn comb_output(&self) -> bool {
        match self {
            NodeKind::Input { .. } | NodeKind::Const { .. } => false, // sources
            NodeKind::Output { .. } => false,                         // sink only
            NodeKind::Concat { .. } | NodeKind::Slice { .. } | NodeKind::SignExtend { .. } => true,
            NodeKind::Cluster(cfg) => match cfg {
                ClusterCfg::RegMux { registered, .. } => !registered,
                ClusterCfg::AbsDiff { .. } => true,
                ClusterCfg::AddAcc { accumulate, .. } => !accumulate,
                ClusterCfg::Comparator { mode, .. } => {
                    matches!(mode, CompMode::Min | CompMode::Max)
                }
                ClusterCfg::AddShift(cfg) => {
                    matches!(cfg, AddShiftCfg::Add { .. } | AddShiftCfg::Sub { .. })
                }
                ClusterCfg::Memory { .. } => true, // asynchronous read
            },
        }
    }

    /// `true` if the node holds sequential state and must be clocked.
    pub fn sequential(&self) -> bool {
        match self {
            NodeKind::Cluster(cfg) => match cfg {
                ClusterCfg::RegMux { registered, .. } => *registered,
                ClusterCfg::AddAcc { accumulate, .. } => *accumulate,
                ClusterCfg::Comparator { mode, .. } => {
                    matches!(mode, CompMode::StreamMin | CompMode::StreamMax)
                }
                ClusterCfg::AddShift(cfg) => match cfg {
                    // serial adders keep a carry flip-flop
                    AddShiftCfg::Add { serial, .. } | AddShiftCfg::Sub { serial, .. } => *serial,
                    AddShiftCfg::SerialReg { .. } | AddShiftCfg::ShiftAcc { .. } => true,
                },
                ClusterCfg::AbsDiff { .. } | ClusterCfg::Memory { .. } => false,
            },
            _ => false,
        }
    }

    /// Computes the port list of this node kind.
    pub fn ports(&self) -> Vec<PortSpec> {
        match self {
            NodeKind::Input { width } => vec![PortSpec::output("out", *width)],
            NodeKind::Output { width } => vec![PortSpec::input("in", *width)],
            NodeKind::Const { width, .. } => vec![PortSpec::output("out", *width)],
            NodeKind::Concat { parts } => {
                let mut ports: Vec<PortSpec> = parts
                    .iter()
                    .enumerate()
                    .map(|(i, w)| PortSpec::input(&format!("in{i}"), *w))
                    .collect();
                let total: u8 = parts.iter().sum();
                ports.push(PortSpec::output("out", total));
                ports
            }
            NodeKind::Slice {
                in_width, width, ..
            }
            | NodeKind::SignExtend { in_width, width } => vec![
                PortSpec::input("in", *in_width),
                PortSpec::output("out", *width),
            ],
            NodeKind::Cluster(cfg) => cluster_ports(cfg),
        }
    }
}

fn cluster_ports(cfg: &ClusterCfg) -> Vec<PortSpec> {
    match cfg {
        ClusterCfg::RegMux { width, .. } => vec![
            PortSpec::input("a", *width),
            PortSpec::input_opt("b", *width, 0),
            PortSpec::input_opt("sel", 1, 0),
            PortSpec::input_opt("en", 1, 1),
            PortSpec::output("y", *width),
        ],
        ClusterCfg::AbsDiff { width, .. } => vec![
            PortSpec::input("a", *width),
            PortSpec::input("b", *width),
            PortSpec::output("y", *width),
        ],
        ClusterCfg::AddAcc {
            width, accumulate, ..
        } => {
            let mut p = vec![
                PortSpec::input("a", *width),
                PortSpec::input_opt("b", *width, 0),
            ];
            if *accumulate {
                p.push(PortSpec::input_opt("en", 1, 1));
                p.push(PortSpec::input_opt("clr", 1, 0));
            }
            p.push(PortSpec::output("y", *width));
            p
        }
        ClusterCfg::Comparator {
            width,
            index_width,
            mode,
        } => match mode {
            CompMode::Min | CompMode::Max => vec![
                PortSpec::input("a", *width),
                PortSpec::input("b", *width),
                PortSpec::output("y", *width),
                PortSpec::output("which", 1),
            ],
            CompMode::StreamMin | CompMode::StreamMax => vec![
                PortSpec::input("x", *width),
                PortSpec::input_opt("idx", *index_width, 0),
                PortSpec::input_opt("en", 1, 1),
                PortSpec::input_opt("clr", 1, 0),
                PortSpec::output("best", *width),
                PortSpec::output("best_idx", *index_width),
            ],
        },
        ClusterCfg::AddShift(cfg) => match cfg {
            AddShiftCfg::Add { width, serial } | AddShiftCfg::Sub { width, serial } => {
                let w = if *serial { 1 } else { *width };
                let mut p = vec![PortSpec::input("a", w), PortSpec::input("b", w)];
                if *serial {
                    p.push(PortSpec::input_opt("clr", 1, 0));
                }
                p.push(PortSpec::output("y", w));
                p
            }
            AddShiftCfg::SerialReg { width } => vec![
                PortSpec::input("d", *width),
                PortSpec::input_opt("load", 1, 0),
                PortSpec::input_opt("en", 1, 1),
                PortSpec::output("q", 1),
            ],
            AddShiftCfg::ShiftAcc {
                acc_width,
                data_width,
            } => vec![
                PortSpec::input("d", *data_width),
                PortSpec::input_opt("en", 1, 1),
                PortSpec::input_opt("clr", 1, 0),
                PortSpec::input_opt("sub", 1, 0),
                PortSpec::input_opt("sh", 1, 0),
                PortSpec::output("y", *acc_width),
                PortSpec::output("qs", 1),
            ],
        },
        ClusterCfg::Memory { words, width, .. } => vec![
            PortSpec::input("addr", addr_width(*words)),
            PortSpec::output("dout", *width),
        ],
    }
}

/// One node instance in a netlist.
#[derive(Debug, Clone)]
pub struct Node {
    /// Unique name.
    pub name: String,
    /// Node kind and configuration.
    pub kind: NodeKind,
    /// Cached port list.
    pub ports: Vec<PortSpec>,
}

impl Node {
    /// Finds a port index by name.
    pub fn port_index(&self, port: &str) -> Option<u16> {
        self.ports
            .iter()
            .position(|p| p.name == port)
            .map(|i| i as u16)
    }
}

/// One net (bus) in a netlist.
#[derive(Debug, Clone)]
pub struct Net {
    /// Name (derived from the driver).
    pub name: String,
    /// Driving output port.
    pub driver: PortRef,
    /// Reading input ports.
    pub sinks: Vec<PortRef>,
    /// Bus width in bits.
    pub width: u8,
}

/// A complete structural netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    nets: Vec<Net>,
    by_name: HashMap<String, NodeId>,
    net_of_driver: HashMap<PortRef, NetId>,
    net_of_sink: HashMap<PortRef, NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The node behind an id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The net behind an id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Net driven by the given output port, if any.
    pub fn net_of(&self, port: PortRef) -> Option<NetId> {
        self.net_of_driver
            .get(&port)
            .or_else(|| self.net_of_sink.get(&port))
            .copied()
    }

    /// Ids of all [`NodeKind::Input`] nodes, in creation order.
    pub fn input_nodes(&self) -> Vec<NodeId> {
        self.filter_kind(|k| matches!(k, NodeKind::Input { .. }))
    }

    /// Ids of all [`NodeKind::Output`] nodes, in creation order.
    pub fn output_nodes(&self) -> Vec<NodeId> {
        self.filter_kind(|k| matches!(k, NodeKind::Output { .. }))
    }

    /// Ids of all cluster nodes, in creation order.
    pub fn cluster_nodes(&self) -> Vec<NodeId> {
        self.filter_kind(|k| matches!(k, NodeKind::Cluster(_)))
    }

    fn filter_kind(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    // ---- builder API -----------------------------------------------------

    fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> Result<NodeId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CoreError::DuplicateNode(name));
        }
        let ports = kind.ports();
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind, ports });
        Ok(id)
    }

    /// Adds a top-level input of the given width.
    pub fn input(&mut self, name: impl Into<String>, width: u8) -> Result<NodeId> {
        self.add_node(name, NodeKind::Input { width })
    }

    /// Adds a top-level output of the given width.
    pub fn output(&mut self, name: impl Into<String>, width: u8) -> Result<NodeId> {
        self.add_node(name, NodeKind::Output { width })
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, name: impl Into<String>, value: u64, width: u8) -> Result<NodeId> {
        self.add_node(name, NodeKind::Const { value, width })
    }

    /// Adds a cluster instance after validating its configuration.
    pub fn cluster(&mut self, name: impl Into<String>, cfg: ClusterCfg) -> Result<NodeId> {
        let name = name.into();
        cfg.validate(&name)?;
        self.add_node(name, NodeKind::Cluster(cfg))
    }

    /// Adds a concat wiring node and connects `sources` to it (LSB first).
    /// Returns the concat node; its output port is `out`.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        sources: &[(NodeId, &str)],
    ) -> Result<NodeId> {
        let mut parts = Vec::with_capacity(sources.len());
        for (node, port) in sources {
            let n = self.node_checked(*node)?;
            let pi = n.port_index(port).ok_or_else(|| CoreError::UnknownPort {
                node: n.name.clone(),
                port: (*port).to_owned(),
            })?;
            parts.push(n.ports[pi as usize].width);
        }
        let cat = self.add_node(name, NodeKind::Concat { parts })?;
        for (i, (node, port)) in sources.iter().enumerate() {
            self.connect((*node, port), (cat, &format!("in{i}")))?;
        }
        Ok(cat)
    }

    /// Adds a slice wiring node extracting `width` bits at `offset` from the
    /// output port `src` and returns it; its output port is `out`.
    pub fn slice(
        &mut self,
        name: impl Into<String>,
        src: (NodeId, &str),
        offset: u8,
        width: u8,
    ) -> Result<NodeId> {
        let n = self.node_checked(src.0)?;
        let pi = n.port_index(src.1).ok_or_else(|| CoreError::UnknownPort {
            node: n.name.clone(),
            port: src.1.to_owned(),
        })?;
        let in_width = n.ports[pi as usize].width;
        let sl = self.add_node(
            name,
            NodeKind::Slice {
                in_width,
                offset,
                width,
            },
        )?;
        self.connect(src, (sl, "in"))?;
        Ok(sl)
    }

    /// Adds a sign-extension wiring node widening the output port `src` to
    /// `width` bits and returns it; its output port is `out`.
    pub fn sign_extend(
        &mut self,
        name: impl Into<String>,
        src: (NodeId, &str),
        width: u8,
    ) -> Result<NodeId> {
        let n = self.node_checked(src.0)?;
        let pi = n.port_index(src.1).ok_or_else(|| CoreError::UnknownPort {
            node: n.name.clone(),
            port: src.1.to_owned(),
        })?;
        let in_width = n.ports[pi as usize].width;
        if width < in_width {
            return Err(CoreError::InvalidWidth {
                node: n.name.clone(),
                width,
            });
        }
        let se = self.add_node(name, NodeKind::SignExtend { in_width, width })?;
        self.connect(src, (se, "in"))?;
        Ok(se)
    }

    fn node_checked(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.0 as usize)
            .ok_or_else(|| CoreError::UnknownNode(format!("#{}", id.0)))
    }

    fn resolve(&self, node: NodeId, port: &str) -> Result<(PortRef, PortSpec)> {
        let n = self.node_checked(node)?;
        let pi = n.port_index(port).ok_or_else(|| CoreError::UnknownPort {
            node: n.name.clone(),
            port: port.to_owned(),
        })?;
        Ok((PortRef { node, port: pi }, n.ports[pi as usize].clone()))
    }

    /// Connects output port `from` to input port `to`, creating or extending
    /// the net driven by `from`.
    ///
    /// # Errors
    /// Fails on unknown nodes/ports, direction misuse, width mismatch, or if
    /// the sink already has a driver.
    pub fn connect(&mut self, from: (NodeId, &str), to: (NodeId, &str)) -> Result<NetId> {
        let (fref, fspec) = self.resolve(from.0, from.1)?;
        let (tref, tspec) = self.resolve(to.0, to.1)?;
        if fspec.dir != PortDir::Out {
            return Err(CoreError::DirectionMismatch {
                node: self.node(from.0).name.clone(),
                port: from.1.to_owned(),
            });
        }
        if tspec.dir != PortDir::In {
            return Err(CoreError::DirectionMismatch {
                node: self.node(to.0).name.clone(),
                port: to.1.to_owned(),
            });
        }
        if fspec.width != tspec.width {
            return Err(CoreError::WidthMismatch {
                node: self.node(to.0).name.clone(),
                port: to.1.to_owned(),
                expected: tspec.width,
                found: fspec.width,
            });
        }
        if self.net_of_sink.contains_key(&tref) {
            return Err(CoreError::MultipleDrivers {
                node: self.node(to.0).name.clone(),
                port: to.1.to_owned(),
            });
        }
        let net_id = match self.net_of_driver.get(&fref) {
            Some(id) => *id,
            None => {
                let id = NetId(self.nets.len() as u32);
                self.nets.push(Net {
                    name: format!("{}.{}", self.node(from.0).name, from.1),
                    driver: fref,
                    sinks: Vec::new(),
                    width: fspec.width,
                });
                self.net_of_driver.insert(fref, id);
                id
            }
        };
        self.nets[net_id.0 as usize].sinks.push(tref);
        self.net_of_sink.insert(tref, net_id);
        Ok(net_id)
    }

    // ---- analysis --------------------------------------------------------

    /// Checks that every mandatory input is connected and that the
    /// combinational part of the design is acyclic; returns the nodes in a
    /// valid combinational evaluation order.
    ///
    /// # Errors
    /// [`CoreError::Unconnected`] for a dangling mandatory input,
    /// [`CoreError::CombinationalLoop`] if a comb cycle exists.
    pub fn check(&self) -> Result<Vec<NodeId>> {
        for (ni, node) in self.nodes.iter().enumerate() {
            for (pi, port) in node.ports.iter().enumerate() {
                if port.dir == PortDir::In && port.default.is_none() {
                    let pref = PortRef {
                        node: NodeId(ni as u32),
                        port: pi as u16,
                    };
                    if !self.net_of_sink.contains_key(&pref) {
                        return Err(CoreError::Unconnected {
                            node: node.name.clone(),
                            port: port.name.clone(),
                        });
                    }
                }
            }
        }
        self.levelize()
    }

    /// Topologically sorts nodes along combinational edges.
    pub fn levelize(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0u32; n];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for net in &self.nets {
            let drv = net.driver.node.0 as usize;
            // Order sinks after any driver that produces its value during the
            // combinational phase: comb clusters, wiring nodes, and external
            // sources (inputs / constants). Sequential outputs come from
            // state and impose no ordering (this is what breaks register
            // feedback loops).
            let orders_sinks = self.nodes[drv].kind.comb_output()
                || matches!(
                    self.nodes[drv].kind,
                    NodeKind::Input { .. } | NodeKind::Const { .. }
                );
            if orders_sinks {
                for sink in &net.sinks {
                    adj[drv].push(sink.node.0);
                    indeg[sink.node.0 as usize] += 1;
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        // Stable order: process lowest ids first for determinism.
        queue.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(NodeId(u));
            for &v in &adj[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap();
            return Err(CoreError::CombinationalLoop {
                involving: self.nodes[stuck].name.clone(),
            });
        }
        Ok(order)
    }

    /// Longest combinational path length in cluster nodes (logic depth).
    /// Wiring nodes count as zero delay; each cluster counts as one level.
    pub fn logic_depth(&self) -> Result<u32> {
        let order = self.levelize()?;
        let mut depth = vec![0u32; self.nodes.len()];
        let mut max = 0;
        for id in order {
            let u = id.0 as usize;
            let node = &self.nodes[u];
            let cost = match &node.kind {
                NodeKind::Cluster(_) if node.kind.comb_output() => 1,
                _ => 0,
            };
            depth[u] += cost;
            max = max.max(depth[u]);
            if node.kind.comb_output() {
                for (pref, _) in self.driver_ports(id) {
                    if let Some(net) = self.net_of_driver.get(&pref) {
                        for sink in &self.nets[net.0 as usize].sinks {
                            let v = sink.node.0 as usize;
                            depth[v] = depth[v].max(depth[u]);
                        }
                    }
                }
            }
        }
        Ok(max)
    }

    fn driver_ports(&self, id: NodeId) -> Vec<(PortRef, &PortSpec)> {
        self.nodes[id.0 as usize]
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PortDir::Out)
            .map(|(i, p)| {
                (
                    PortRef {
                        node: id,
                        port: i as u16,
                    },
                    p,
                )
            })
            .collect()
    }

    /// Stable structural content hash of this netlist.
    ///
    /// Covers the netlist name, every node (name, kind, full cluster
    /// configuration including memory contents) and every net (driver,
    /// sinks, width), all in deterministic creation order. Equal
    /// fingerprints therefore mean structurally identical netlists, which —
    /// because placement, routing and bitstream generation are themselves
    /// deterministic — compile to identical bitstreams on the same fabric.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FnvHasher::new();
        h.write_str(&self.name);
        h.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            h.write_str(&node.name);
            hash_node_kind(&mut h, &node.kind);
        }
        h.write_u64(self.nets.len() as u64);
        for net in &self.nets {
            h.write_u64(u64::from(net.driver.node.0));
            h.write_u64(u64::from(net.driver.port));
            h.write_u64(u64::from(net.width));
            h.write_u64(net.sinks.len() as u64);
            for sink in &net.sinks {
                h.write_u64(u64::from(sink.node.0));
                h.write_u64(u64::from(sink.port));
            }
        }
        h.finish()
    }

    /// Builds the Table-1 style resource report for this netlist.
    pub fn resource_report(&self) -> ResourceReport {
        let mut report = ResourceReport::new(&self.name);
        for node in &self.nodes {
            if let NodeKind::Cluster(cfg) = &node.kind {
                report.record(cfg);
            }
        }
        report
    }

    /// Total cluster configuration bits (routing excluded — the router adds
    /// its own switch bits).
    pub fn cluster_config_bits(&self) -> u32 {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Cluster(cfg) => Some(cfg.config_bits()),
                _ => None,
            })
            .sum()
    }

    /// Number of cluster instances of a given kind.
    pub fn count_kind(&self, kind: ClusterKind) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(&n.kind, NodeKind::Cluster(c) if c.kind() == kind))
            .count()
    }

    /// Collapses wiring pseudo-nodes (concat / slice / const) and returns the
    /// *physical* nets that the placer and router work with: cluster-or-pad
    /// sources fanning out to cluster-or-pad sinks.
    ///
    /// Constants produce no physical nets (they are tied off inside the
    /// cluster's connection box).
    pub fn physical_nets(&self) -> Vec<PhysNet> {
        let mut result = Vec::new();
        for net in &self.nets {
            let driver = &self.nodes[net.driver.node.0 as usize];
            let physical_driver =
                matches!(driver.kind, NodeKind::Input { .. } | NodeKind::Cluster(_));
            if !physical_driver {
                continue;
            }
            let mut sinks = Vec::new();
            self.collect_terminal_sinks(net, &mut sinks);
            if !sinks.is_empty() {
                sinks.sort_unstable();
                sinks.dedup();
                result.push(PhysNet {
                    source: net.driver.node,
                    sinks,
                    width: net.width,
                });
            }
        }
        result
    }

    fn collect_terminal_sinks(&self, net: &Net, out: &mut Vec<NodeId>) {
        for sink in &net.sinks {
            let node = &self.nodes[sink.node.0 as usize];
            match &node.kind {
                NodeKind::Output { .. } | NodeKind::Cluster(_) => out.push(sink.node),
                NodeKind::Concat { .. } | NodeKind::Slice { .. } | NodeKind::SignExtend { .. } => {
                    // Follow through the wiring node's output net, if driven.
                    for (pref, _) in self.driver_ports(sink.node) {
                        if let Some(next) = self.net_of_driver.get(&pref) {
                            self.collect_terminal_sinks(&self.nets[next.0 as usize], out);
                        }
                    }
                }
                NodeKind::Input { .. } | NodeKind::Const { .. } => {}
            }
        }
    }
}

fn hash_node_kind(h: &mut FnvHasher, kind: &NodeKind) {
    match kind {
        NodeKind::Input { width } => {
            h.write_u64(0x10);
            h.write_u64(u64::from(*width));
        }
        NodeKind::Output { width } => {
            h.write_u64(0x11);
            h.write_u64(u64::from(*width));
        }
        NodeKind::Const { value, width } => {
            h.write_u64(0x12);
            h.write_u64(*value);
            h.write_u64(u64::from(*width));
        }
        NodeKind::Concat { parts } => {
            h.write_u64(0x13);
            h.write_u64(parts.len() as u64);
            for p in parts {
                h.write_u64(u64::from(*p));
            }
        }
        NodeKind::Slice {
            in_width,
            offset,
            width,
        } => {
            h.write_u64(0x14);
            h.write_u64(u64::from(*in_width));
            h.write_u64(u64::from(*offset));
            h.write_u64(u64::from(*width));
        }
        NodeKind::SignExtend { in_width, width } => {
            h.write_u64(0x15);
            h.write_u64(u64::from(*in_width));
            h.write_u64(u64::from(*width));
        }
        NodeKind::Cluster(cfg) => {
            h.write_u64(0x16);
            // The bitstream's structural cluster encoding already covers
            // every configuration field (including memory contents), so the
            // fingerprint and the configuration planes cannot drift apart.
            let words = crate::bitstream::encode_cluster(cfg);
            h.write_u64(words.len() as u64);
            for w in words {
                h.write_u64(w);
            }
        }
    }
}

/// A physical net after wiring-node collapsing: what actually needs mesh
/// tracks between sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysNet {
    /// Driving cluster or input pad.
    pub source: NodeId,
    /// Terminal cluster or output-pad sinks (deduplicated, sorted).
    pub sinks: Vec<NodeId>,
    /// Bus width in bits.
    pub width: u8,
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist `{}`: {} nodes ({} clusters), {} nets",
            self.name,
            self.nodes.len(),
            self.cluster_nodes().len(),
            self.nets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AbsDiffMode;

    fn abs_diff(width: u8) -> ClusterCfg {
        ClusterCfg::AbsDiff {
            width,
            mode: AbsDiffMode::AbsDiff,
        }
    }

    #[test]
    fn build_and_check_simple_pipeline() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let ad = nl.cluster("ad", abs_diff(8)).unwrap();
        let y = nl.output("y", 8).unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        let order = nl.check().unwrap();
        assert_eq!(order.len(), 4);
        // ad must come after both inputs.
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(ad) > pos(a) && pos(ad) > pos(b));
        assert!(pos(y) > pos(ad));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let ad = nl.cluster("ad", abs_diff(12)).unwrap();
        assert!(matches!(
            nl.connect((a, "out"), (ad, "a")),
            Err(CoreError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn direction_and_double_drive_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let ad = nl.cluster("ad", abs_diff(8)).unwrap();
        // output port used as sink
        assert!(matches!(
            nl.connect((a, "out"), (b, "out")),
            Err(CoreError::DirectionMismatch { .. })
        ));
        nl.connect((a, "out"), (ad, "a")).unwrap();
        assert!(matches!(
            nl.connect((b, "out"), (ad, "a")),
            Err(CoreError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn unconnected_mandatory_input_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let ad = nl.cluster("ad", abs_diff(8)).unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        assert!(matches!(nl.check(), Err(CoreError::Unconnected { .. })));
    }

    #[test]
    fn optional_inputs_may_dangle() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let mux = nl
            .cluster(
                "m",
                ClusterCfg::RegMux {
                    width: 8,
                    registered: false,
                },
            )
            .unwrap();
        let y = nl.output("y", 8).unwrap();
        nl.connect((a, "out"), (mux, "a")).unwrap();
        nl.connect((mux, "y"), (y, "in")).unwrap();
        // b, sel, en are optional.
        nl.check().unwrap();
    }

    #[test]
    fn comb_loop_detected() {
        let mut nl = Netlist::new("t");
        let ad1 = nl.cluster("ad1", abs_diff(8)).unwrap();
        let ad2 = nl.cluster("ad2", abs_diff(8)).unwrap();
        nl.connect((ad1, "y"), (ad2, "a")).unwrap();
        nl.connect((ad2, "y"), (ad1, "a")).unwrap();
        assert!(matches!(
            nl.levelize(),
            Err(CoreError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn registered_feedback_is_legal() {
        // acc -> adder -> acc through a registered accumulator is fine.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let acc = nl
            .cluster(
                "acc",
                ClusterCfg::AddAcc {
                    width: 8,
                    op: AddOp::Add,
                    accumulate: true,
                },
            )
            .unwrap();
        nl.connect((a, "out"), (acc, "a")).unwrap();
        nl.connect((acc, "y"), (acc, "b")).unwrap();
        nl.check().unwrap();
    }

    use crate::cluster::AddOp;

    #[test]
    fn concat_and_slice_widths() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1).unwrap();
        let b = nl.input("b", 3).unwrap();
        let cat = nl.concat("cat", &[(a, "out"), (b, "out")]).unwrap();
        assert_eq!(nl.node(cat).ports.last().unwrap().width, 4);
        let sl = nl.slice("sl", (cat, "out"), 1, 3).unwrap();
        assert_eq!(nl.node(sl).ports.last().unwrap().width, 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("t");
        nl.input("a", 8).unwrap();
        assert!(matches!(nl.input("a", 8), Err(CoreError::DuplicateNode(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let build = |mode: AbsDiffMode, width: u8| {
            let mut nl = Netlist::new("fp");
            let a = nl.input("a", width).unwrap();
            let b = nl.input("b", width).unwrap();
            let ad = nl
                .cluster("ad", ClusterCfg::AbsDiff { width, mode })
                .unwrap();
            let y = nl.output("y", width).unwrap();
            nl.connect((a, "out"), (ad, "a")).unwrap();
            nl.connect((b, "out"), (ad, "b")).unwrap();
            nl.connect((ad, "y"), (y, "in")).unwrap();
            nl
        };
        let base = build(AbsDiffMode::AbsDiff, 8);
        // Rebuilding the identical structure reproduces the hash.
        assert_eq!(
            base.fingerprint(),
            build(AbsDiffMode::AbsDiff, 8).fingerprint()
        );
        // A mode or width change is a different content address.
        assert_ne!(base.fingerprint(), build(AbsDiffMode::Sub, 8).fingerprint());
        assert_ne!(
            base.fingerprint(),
            build(AbsDiffMode::AbsDiff, 12).fingerprint()
        );
    }

    #[test]
    fn fingerprint_hex_is_canonical_and_shared_with_display() {
        let fp = Fingerprint(0x00AB_u128);
        let hex = fp.to_hex();
        // Fixed-width, lower-case, zero-padded — and Display is the same
        // bytes, so every consumer formats fingerprints identically.
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, "000000000000000000000000000000ab");
        assert_eq!(hex, fp.to_string());
        assert_eq!(Fingerprint(u128::MAX).to_hex(), "f".repeat(32));
    }

    #[test]
    fn fingerprint_sees_memory_contents_and_connectivity() {
        let build = |val: u64, cross: bool| {
            let mut nl = Netlist::new("fp");
            let a = nl.input("a", 4).unwrap();
            let rom = nl
                .cluster(
                    "rom",
                    ClusterCfg::Memory {
                        words: 16,
                        width: 8,
                        contents: vec![val; 16],
                    },
                )
                .unwrap();
            let y = nl.output("y", 8).unwrap();
            nl.connect((a, "out"), (rom, "addr")).unwrap();
            if cross {
                nl.connect((rom, "dout"), (y, "in")).unwrap();
            }
            nl
        };
        assert_ne!(build(1, true).fingerprint(), build(2, true).fingerprint());
        assert_ne!(build(1, true).fingerprint(), build(1, false).fingerprint());
        assert_eq!(build(3, true).fingerprint(), build(3, true).fingerprint());
    }

    #[test]
    fn memory_ports_follow_geometry() {
        let mut nl = Netlist::new("t");
        let m = nl
            .cluster(
                "rom",
                ClusterCfg::Memory {
                    words: 256,
                    width: 8,
                    contents: vec![0; 256],
                },
            )
            .unwrap();
        let node = nl.node(m);
        assert_eq!(node.port_index("addr").unwrap(), 0);
        assert_eq!(node.ports[0].width, 8); // 256 words -> 8 address bits
        assert_eq!(node.ports[1].width, 8);
    }
}
