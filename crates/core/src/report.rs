//! Resource accounting in the units the paper reports: cluster counts.
//!
//! §3.6: *"Since all the clusters have a similar area on the chip, the total
//! number of clusters used defines the total area usage."* A
//! [`ResourceReport`] therefore counts clusters, splitting add-shift clusters
//! into the four roles of Table 1 (adders, subtracters, shift registers,
//! accumulators) and keeping memory clusters separate.

use std::collections::BTreeMap;
use std::fmt;

use crate::cluster::{AddShiftRole, ClusterCfg, ClusterKind};

/// The deterministic result of executing one job payload on an execution
/// backend (the cycle-accurate array simulator, the software golden
/// reference, or any future engine behind the `Backend` trait).
///
/// Two backends agree on a job exactly when their outcomes are equal —
/// the differential contract harness compares nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOutcome {
    /// Sim-cycles the payload occupied the array (the golden backend
    /// reports the cycles the array *would* spend).
    pub exec_cycles: u64,
    /// Deterministic digest of the payload's outputs.
    pub checksum: u64,
}

/// Cluster usage of one mapped implementation (one column of Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceReport {
    name: String,
    add_shift: BTreeMap<AddShiftRole, u32>,
    memory: u32,
    memory_words: u64,
    me_kind: BTreeMap<ClusterKind, u32>,
    config_bits: u64,
    elements: u64,
}

impl ResourceReport {
    /// Creates an empty report labelled with the implementation name.
    pub fn new(name: impl Into<String>) -> Self {
        ResourceReport {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Implementation name this report belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the same report under a different display name.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Records one cluster instance.
    pub fn record(&mut self, cfg: &ClusterCfg) {
        self.config_bits += u64::from(cfg.config_bits());
        self.elements += u64::from(cfg.element_count());
        match cfg {
            ClusterCfg::AddShift(as_cfg) => {
                *self.add_shift.entry(as_cfg.role()).or_insert(0) += 1;
            }
            ClusterCfg::Memory { words, .. } => {
                self.memory += 1;
                self.memory_words += u64::from(*words);
            }
            other => {
                *self.me_kind.entry(other.kind()).or_insert(0) += 1;
            }
        }
    }

    /// Count of add-shift clusters playing the given Table-1 role.
    pub fn add_shift(&self, role: AddShiftRole) -> u32 {
        self.add_shift.get(&role).copied().unwrap_or(0)
    }

    /// Total add-shift clusters (the "Total" row of the Add-Shift block).
    pub fn add_shift_total(&self) -> u32 {
        self.add_shift.values().sum()
    }

    /// Count of memory clusters (the "Mem-Cluster" row).
    pub fn memory_clusters(&self) -> u32 {
        self.memory
    }

    /// Total ROM/LUT words across all memory clusters.
    pub fn memory_words(&self) -> u64 {
        self.memory_words
    }

    /// Count of ME-array clusters of the given kind.
    pub fn me_clusters(&self, kind: ClusterKind) -> u32 {
        self.me_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Grand total cluster count (the "Total clusters" row of Table 1).
    pub fn total_clusters(&self) -> u32 {
        self.add_shift_total() + self.memory + self.me_kind.values().sum::<u32>()
    }

    /// Total cluster configuration bits.
    pub fn config_bits(&self) -> u64 {
        self.config_bits
    }

    /// Total cascaded 4-bit elements.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// The five Table-1 numbers for this implementation:
    /// `[adders, subtracters, shift_regs, accumulators, mem_clusters]`.
    pub fn table1_row(&self) -> [u32; 5] {
        [
            self.add_shift(AddShiftRole::Adder),
            self.add_shift(AddShiftRole::Subtracter),
            self.add_shift(AddShiftRole::ShiftReg),
            self.add_shift(AddShiftRole::Accumulator),
            self.memory_clusters(),
        ]
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.name)?;
        if self.add_shift_total() > 0 || self.memory > 0 {
            writeln!(f, "  Add-Shift clusters")?;
            for role in AddShiftRole::ALL {
                writeln!(f, "    {:<12} {:>3}", role.label(), self.add_shift(role))?;
            }
            writeln!(f, "    {:<12} {:>3}", "Total", self.add_shift_total())?;
            writeln!(f, "  {:<14} {:>3}", "Mem-Cluster", self.memory)?;
        }
        for (kind, n) in &self.me_kind {
            writeln!(f, "  {:<14} {:>3}", kind.name(), n)?;
        }
        writeln!(f, "  {:<14} {:>3}", "Total clusters", self.total_clusters())?;
        Ok(())
    }
}

/// Renders several reports side by side, reproducing the layout of Table 1.
pub fn table1(reports: &[&ResourceReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<22}", "");
    for r in reports {
        let _ = write!(out, "{:>14}", r.name());
    }
    out.push('\n');
    type RowGetter = fn(&ResourceReport) -> u32;
    let rows: [(&str, RowGetter); 7] = [
        ("  a) Adders", |r| r.add_shift(AddShiftRole::Adder)),
        ("  b) Subtracters", |r| {
            r.add_shift(AddShiftRole::Subtracter)
        }),
        ("  c) Shift Reg", |r| r.add_shift(AddShiftRole::ShiftReg)),
        ("  d) Acc", |r| r.add_shift(AddShiftRole::Accumulator)),
        ("Add-Shift Total", |r| r.add_shift_total()),
        ("Mem-Cluster", |r| r.memory_clusters()),
        ("Total clusters", |r| r.total_clusters()),
    ];
    for (label, getter) in rows {
        let _ = write!(out, "{label:<22}");
        for r in reports {
            let _ = write!(out, "{:>14}", getter(r));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AbsDiffMode, AddShiftCfg};

    #[test]
    fn counts_roles_and_memories() {
        let mut r = ResourceReport::new("x");
        r.record(&ClusterCfg::AddShift(AddShiftCfg::Add {
            width: 12,
            serial: false,
        }));
        r.record(&ClusterCfg::AddShift(AddShiftCfg::Sub {
            width: 12,
            serial: false,
        }));
        r.record(&ClusterCfg::AddShift(AddShiftCfg::SerialReg { width: 12 }));
        r.record(&ClusterCfg::AddShift(AddShiftCfg::ShiftAcc {
            acc_width: 16,
            data_width: 8,
        }));
        r.record(&ClusterCfg::Memory {
            words: 16,
            width: 8,
            contents: vec![0; 16],
        });
        assert_eq!(r.table1_row(), [1, 1, 1, 1, 1]);
        assert_eq!(r.add_shift_total(), 4);
        assert_eq!(r.total_clusters(), 5);
        assert_eq!(r.memory_words(), 16);
    }

    #[test]
    fn me_clusters_counted_separately() {
        let mut r = ResourceReport::new("me");
        r.record(&ClusterCfg::AbsDiff {
            width: 8,
            mode: AbsDiffMode::AbsDiff,
        });
        assert_eq!(r.me_clusters(ClusterKind::AbsDiff), 1);
        assert_eq!(r.total_clusters(), 1);
        assert_eq!(r.add_shift_total(), 0);
    }

    #[test]
    fn table1_renders_all_rows() {
        let r = ResourceReport::new("A");
        let s = table1(&[&r]);
        assert!(s.contains("a) Adders"));
        assert!(s.contains("Total clusters"));
        assert!(s.contains("Mem-Cluster"));
    }
}
