//! Tiny deterministic PRNG (SplitMix64) used by the placer's simulated
//! annealing. Kept in-crate so `dsra-core` has no runtime dependencies and
//! placement is reproducible across platforms.

/// One FNV-1a fold step over a 64-bit word: the shared primitive behind
/// every deterministic digest in the workspace (runtime job checksums,
/// report digests). Start from any seed and fold words in order; the result
/// depends on every word and its position.
pub fn fnv1a_fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Spreads `(seed, index)` into an independent derived seed — the
/// SplitMix64 finaliser over `seed + index · γ`. The one recipe every
/// stream-splitting consumer shares: `JobMixConfig::chunk` derives its
/// chunk seeds with it and the E13 trace generator derives per-tenant
/// seeds, so the mixing constants live here exactly once.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 pseudo-random generator.
///
/// Deterministic for a given seed; passes BigCrush-level statistics for the
/// modest needs of annealing move selection.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded rejection-free mapping; the tiny bias is
        // irrelevant for annealing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
