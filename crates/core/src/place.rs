//! Placement: assigning netlist nodes to fabric sites.
//!
//! A greedy constructive pass (each node goes to the free compatible site
//! nearest the centroid of its already-placed neighbours) is refined by
//! simulated annealing over swap/move proposals, minimising width-weighted
//! half-perimeter wirelength (HPWL). Deterministic for a given seed.

use std::collections::HashMap;

use crate::cluster::ClusterKind;
use crate::error::{CoreError, Result};
use crate::fabric::{Fabric, SiteKind};
use crate::netlist::{Netlist, NodeId, NodeKind, PhysNet};
use crate::rng::SplitMix64;

/// Placement parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlacerOptions {
    /// RNG seed (placement is deterministic per seed).
    pub seed: u64,
    /// Annealing move budget.
    pub sa_moves: u32,
    /// Initial temperature, in HPWL units.
    pub initial_temperature: f64,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions {
            seed: 0xD5EA_2004,
            sa_moves: 20_000,
            initial_temperature: 8.0,
        }
    }
}

/// A completed placement of one netlist on one fabric.
#[derive(Debug, Clone)]
pub struct Placement {
    loc: HashMap<NodeId, (u16, u16)>,
    hpwl: f64,
}

impl Placement {
    /// Site of a placed node, if it is a placeable node.
    pub fn loc(&self, node: NodeId) -> Option<(u16, u16)> {
        self.loc.get(&node).copied()
    }

    /// Width-weighted half-perimeter wirelength of the final placement.
    pub fn hpwl(&self) -> f64 {
        self.hpwl
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.loc.len()
    }

    /// `true` when nothing was placed (empty netlist).
    pub fn is_empty(&self) -> bool {
        self.loc.is_empty()
    }
}

fn manhattan(a: (u16, u16), b: (u16, u16)) -> u32 {
    a.0.abs_diff(b.0) as u32 + a.1.abs_diff(b.1) as u32
}

fn net_hpwl(net: &PhysNet, loc: &HashMap<NodeId, (u16, u16)>) -> f64 {
    let mut xs: (u16, u16) = (u16::MAX, 0);
    let mut ys: (u16, u16) = (u16::MAX, 0);
    let mut seen = false;
    for node in std::iter::once(net.source).chain(net.sinks.iter().copied()) {
        if let Some(&(x, y)) = loc.get(&node) {
            xs = (xs.0.min(x), xs.1.max(x));
            ys = (ys.0.min(y), ys.1.max(y));
            seen = true;
        }
    }
    if !seen {
        return 0.0;
    }
    let hp = (xs.1 - xs.0) as f64 + (ys.1 - ys.0) as f64;
    hp * f64::from(net.width).sqrt()
}

/// Places `netlist` on `fabric`.
///
/// # Errors
/// [`CoreError::PlacementFull`] when the fabric lacks sites of a needed kind
/// (including I/O pads).
pub fn place(netlist: &Netlist, fabric: &Fabric, opts: PlacerOptions) -> Result<Placement> {
    fabric.check_capacity(&netlist.resource_report())?;

    let mut free: HashMap<SiteKey, Vec<(u16, u16)>> = HashMap::new();
    for (x, y, site) in fabric.iter_sites() {
        match site {
            SiteKind::Io => free.entry(SiteKey::Io).or_default().push((x, y)),
            SiteKind::Cluster(kind) => free.entry(SiteKey::Cluster(kind)).or_default().push((x, y)),
            SiteKind::Empty => {}
        }
    }

    let phys = netlist.physical_nets();
    // Adjacency: node -> other endpoints of shared nets.
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for net in &phys {
        for &sink in &net.sinks {
            adj.entry(net.source).or_default().push(sink);
            adj.entry(sink).or_default().push(net.source);
        }
    }

    let io_count = netlist.input_nodes().len() + netlist.output_nodes().len();
    if io_count > free.get(&SiteKey::Io).map_or(0, Vec::len) {
        return Err(CoreError::PlacementFull {
            kind: "IO".to_owned(),
        });
    }

    // Greedy constructive placement in node order.
    let mut loc: HashMap<NodeId, (u16, u16)> = HashMap::new();
    for (idx, node) in netlist.nodes().iter().enumerate() {
        let id = NodeId(idx as u32);
        let key = match &node.kind {
            NodeKind::Input { .. } | NodeKind::Output { .. } => SiteKey::Io,
            NodeKind::Cluster(cfg) => SiteKey::Cluster(cfg.kind()),
            _ => continue, // wiring nodes are not placed
        };
        let candidates = free.get_mut(&key).ok_or_else(|| CoreError::PlacementFull {
            kind: format!("{key:?}"),
        })?;
        if candidates.is_empty() {
            return Err(CoreError::PlacementFull {
                kind: format!("{key:?}"),
            });
        }
        // Centroid of placed neighbours.
        let target = adj.get(&id).and_then(|ns| {
            let placed: Vec<(u16, u16)> = ns.iter().filter_map(|n| loc.get(n).copied()).collect();
            if placed.is_empty() {
                None
            } else {
                let sx: u32 = placed.iter().map(|p| u32::from(p.0)).sum();
                let sy: u32 = placed.iter().map(|p| u32::from(p.1)).sum();
                Some((
                    (sx / placed.len() as u32) as u16,
                    (sy / placed.len() as u32) as u16,
                ))
            }
        });
        let pick = match target {
            Some(t) => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| manhattan(c, t))
                .map(|(i, _)| i)
                .unwrap(),
            None => 0,
        };
        let site = candidates.swap_remove(pick);
        loc.insert(id, site);
    }

    // Simulated-annealing refinement over cluster nodes.
    anneal(netlist, &phys, &mut loc, &mut free, opts);

    let hpwl = phys.iter().map(|n| net_hpwl(n, &loc)).sum();
    Ok(Placement { loc, hpwl })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SiteKey {
    Io,
    Cluster(ClusterKind),
}

fn anneal(
    netlist: &Netlist,
    phys: &[PhysNet],
    loc: &mut HashMap<NodeId, (u16, u16)>,
    free: &mut HashMap<SiteKey, Vec<(u16, u16)>>,
    opts: PlacerOptions,
) {
    // Nets touching each node, for incremental cost evaluation.
    let mut nets_of: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, net) in phys.iter().enumerate() {
        nets_of.entry(net.source).or_default().push(i);
        for &s in &net.sinks {
            nets_of.entry(s).or_default().push(i);
        }
    }
    let movable: Vec<(NodeId, SiteKey)> = netlist
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match &n.kind {
            NodeKind::Cluster(cfg) => Some((NodeId(i as u32), SiteKey::Cluster(cfg.kind()))),
            _ => None,
        })
        .collect();
    if movable.is_empty() {
        return;
    }
    // Occupancy by site, for swaps.
    let mut at: HashMap<(u16, u16), NodeId> = loc.iter().map(|(n, s)| (*s, *n)).collect();
    let mut rng = SplitMix64::new(opts.seed);
    let mut temp = opts.initial_temperature;
    let decay = (0.01f64 / opts.initial_temperature).powf(1.0 / f64::from(opts.sa_moves.max(1)));

    let cost_of = |ids: &[usize], loc: &HashMap<NodeId, (u16, u16)>| -> f64 {
        ids.iter().map(|&i| net_hpwl(&phys[i], loc)).sum()
    };

    for _ in 0..opts.sa_moves {
        let (node, key) = movable[rng.next_below(movable.len() as u64) as usize];
        let cur = loc[&node];
        // Choose a destination: a free same-kind site or another node's site.
        let free_sites = free.get(&key).map_or(&[][..], Vec::as_slice);
        let total = free_sites.len() + movable.iter().filter(|(_, k)| *k == key).count();
        if total <= 1 {
            continue;
        }
        let choice = rng.next_below(total as u64) as usize;
        let (dest, swap_with) = if choice < free_sites.len() {
            (free_sites[choice], None)
        } else {
            let peers: Vec<NodeId> = movable
                .iter()
                .filter(|(n, k)| *k == key && *n != node)
                .map(|(n, _)| *n)
                .collect();
            if peers.is_empty() {
                continue;
            }
            let other = peers[rng.next_below(peers.len() as u64) as usize];
            (loc[&other], Some(other))
        };
        if dest == cur {
            continue;
        }
        let mut touched: Vec<usize> = nets_of.get(&node).cloned().unwrap_or_default();
        if let Some(other) = swap_with {
            touched.extend(nets_of.get(&other).cloned().unwrap_or_default());
        }
        touched.sort_unstable();
        touched.dedup();
        let before = cost_of(&touched, loc);
        // Apply move.
        loc.insert(node, dest);
        if let Some(other) = swap_with {
            loc.insert(other, cur);
        }
        let after = cost_of(&touched, loc);
        let delta = after - before;
        let accept = delta < 0.0 || rng.next_f64() < (-delta / temp.max(1e-9)).exp();
        if accept {
            at.remove(&cur);
            if let Some(other) = swap_with {
                at.insert(cur, other);
            } else {
                // dest was free: remove it from the free list, add cur back.
                let list = free.get_mut(&key).unwrap();
                let pos = list.iter().position(|&s| s == dest).unwrap();
                list.swap_remove(pos);
                list.push(cur);
            }
            at.insert(dest, node);
        } else {
            // Revert.
            loc.insert(node, cur);
            if let Some(other) = swap_with {
                loc.insert(other, dest);
            }
        }
        temp *= decay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AbsDiffMode, ClusterCfg};
    use crate::fabric::MeshSpec;

    fn chain_netlist(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let mut prev = a;
        for i in 0..n {
            let ad = nl
                .cluster(
                    format!("ad{i}"),
                    ClusterCfg::AbsDiff {
                        width: 8,
                        mode: AbsDiffMode::AbsDiff,
                    },
                )
                .unwrap();
            nl.connect((prev, if i == 0 { "out" } else { "y" }), (ad, "a"))
                .unwrap();
            nl.connect((b, "out"), (ad, "b")).unwrap();
            prev = ad;
        }
        let y = nl.output("y", 8).unwrap();
        nl.connect((prev, "y"), (y, "in")).unwrap();
        nl
    }

    #[test]
    fn places_all_placeable_nodes() {
        let nl = chain_netlist(6);
        let f = Fabric::me_array(12, 12, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        // 6 clusters + 2 inputs + 1 output
        assert_eq!(p.len(), 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn placement_is_deterministic() {
        let nl = chain_netlist(5);
        let f = Fabric::me_array(10, 10, MeshSpec::mixed());
        let p1 = place(&nl, &f, PlacerOptions::default()).unwrap();
        let p2 = place(&nl, &f, PlacerOptions::default()).unwrap();
        for id in nl.cluster_nodes() {
            assert_eq!(p1.loc(id), p2.loc(id));
        }
    }

    #[test]
    fn no_two_nodes_share_a_site() {
        let nl = chain_netlist(8);
        let f = Fabric::me_array(14, 14, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..nl.nodes().len() {
            if let Some(site) = p.loc(NodeId(idx as u32)) {
                assert!(seen.insert(site), "site {site:?} used twice");
            }
        }
    }

    #[test]
    fn annealing_does_not_worsen_tiny_designs_catastrophically() {
        let nl = chain_netlist(4);
        let f = Fabric::me_array(20, 20, MeshSpec::mixed());
        let quick = place(
            &nl,
            &f,
            PlacerOptions {
                sa_moves: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let refined = place(&nl, &f, PlacerOptions::default()).unwrap();
        assert!(refined.hpwl() <= quick.hpwl() * 1.5 + 8.0);
    }

    #[test]
    fn rejects_fabric_without_needed_kind() {
        let nl = chain_netlist(2); // uses AbsDiff
        let f = Fabric::da_array(10, 10, MeshSpec::mixed()); // no AbsDiff sites
        assert!(matches!(
            place(&nl, &f, PlacerOptions::default()),
            Err(CoreError::PlacementFull { .. })
        ));
    }
}
