//! Bitstream assembly and partial-reconfiguration accounting.
//!
//! A [`Bitstream`] gathers every configuration bit a mapped design needs:
//! cluster function/mode bits (including LUT/ROM contents) and routing switch
//! bits. Two bitstreams for the *same fabric* can be diffed to obtain the
//! number of bits that must actually be rewritten when dynamically switching
//! between implementations — the quantity behind the paper's run-time
//! reconfiguration claim (§5) and experiment E7.

use std::collections::BTreeMap;

use crate::fabric::Fabric;
use crate::netlist::{Netlist, NodeKind};
use crate::place::Placement;
use crate::route::{Routing, TrackClass};

/// Configuration frame address: where on the fabric a group of bits lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FrameAddr {
    /// Cluster site frame.
    Site {
        /// Site x coordinate.
        x: u16,
        /// Site y coordinate.
        y: u16,
    },
    /// Routing frame for one mesh edge and track class.
    Edge {
        /// Edge id from the router's grid.
        id: u32,
        /// `true` for the bus-track plane, `false` for bit tracks.
        bus: bool,
    },
}

/// A fully assembled configuration for one fabric.
///
/// Besides the per-frame map, a bitstream carries a canonical **packed**
/// representation built once at generation time: a sorted frame index over
/// one contiguous word plane. Diffing two packed bitstreams is a single
/// merge sweep of XOR + popcount over word slices — no `BTreeSet` of keys,
/// no per-frame map lookups, no allocation (see [`Bitstream::diff_bits_packed`]).
#[derive(Debug, Clone, Default)]
pub struct Bitstream {
    frames: BTreeMap<FrameAddr, Vec<u64>>,
    cluster_bits: u64,
    routing_bits: u64,
    /// Sorted `(frame, start, len)` index into `words` (frame-address order,
    /// mirroring the `BTreeMap` iteration order).
    index: Vec<(FrameAddr, u32, u32)>,
    /// All frame words, contiguous, in index order.
    words: Vec<u64>,
}

impl Bitstream {
    /// Assembles the bitstream of a placed-and-routed design.
    ///
    /// The per-frame words are a deterministic encoding of the cluster
    /// configuration (function select, element modes, memory contents) and of
    /// the occupied routing lanes, so that diffing two bitstreams counts real
    /// configuration differences.
    pub fn generate(
        netlist: &Netlist,
        _fabric: &Fabric,
        placement: &Placement,
        routing: &Routing,
    ) -> Self {
        let mut bs = Bitstream::default();
        for (idx, node) in netlist.nodes().iter().enumerate() {
            let id = crate::netlist::NodeId(idx as u32);
            if let NodeKind::Cluster(cfg) = &node.kind {
                if let Some((x, y)) = placement.loc(id) {
                    let words = encode_cluster(cfg);
                    bs.cluster_bits += u64::from(cfg.config_bits());
                    bs.frames.insert(FrameAddr::Site { x, y }, words);
                }
            }
        }
        for route in &routing.routes {
            for edge in &route.edges {
                let addr = FrameAddr::Edge {
                    id: edge.0,
                    bus: route.class == TrackClass::Bus,
                };
                let word = bs.frames.entry(addr).or_insert_with(|| vec![0]);
                // Each lane sets one bit in the edge frame.
                word[0] |= (1u64 << route.lanes.min(63)) - 1;
            }
            let lane_bits = u64::from(route.lanes);
            bs.routing_bits += (route.edges.len() as u64 + 2) * lane_bits;
        }
        bs.pack();
        bs
    }

    /// Builds a bitstream directly from a frame map — for diff algebra
    /// tests and synthetic workloads. Only the frames (and therefore
    /// [`Bitstream::diff_bits`] / [`Bitstream::fingerprint`]) are
    /// meaningful; the cluster/routing bit totals of a synthetic stream are
    /// zero.
    pub fn from_frames(frames: BTreeMap<FrameAddr, Vec<u64>>) -> Self {
        let mut bs = Bitstream {
            frames,
            ..Bitstream::default()
        };
        bs.pack();
        bs
    }

    /// Rebuilds the packed index/word plane from the frame map.
    fn pack(&mut self) {
        self.index.clear();
        self.words.clear();
        self.index.reserve(self.frames.len());
        for (addr, words) in &self.frames {
            let start = self.words.len() as u32;
            self.words.extend_from_slice(words);
            self.index.push((*addr, start, words.len() as u32));
        }
    }

    /// The packed words of one frame, if present (binary search over the
    /// sorted index).
    pub fn packed_frame(&self, addr: FrameAddr) -> Option<&[u64]> {
        let i = self
            .index
            .binary_search_by(|&(a, _, _)| a.cmp(&addr))
            .ok()?;
        let (_, start, len) = self.index[i];
        Some(&self.words[start as usize..(start + len) as usize])
    }

    /// Total configuration bits (clusters + routing).
    pub fn total_bits(&self) -> u64 {
        self.cluster_bits + self.routing_bits
    }

    /// Cluster-only configuration bits.
    pub fn cluster_bits(&self) -> u64 {
        self.cluster_bits
    }

    /// Routing-only configuration bits.
    pub fn routing_bits(&self) -> u64 {
        self.routing_bits
    }

    /// Number of frames carrying configuration.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Stable content hash over every configuration frame.
    ///
    /// Two bitstreams with equal fingerprints are frame-for-frame identical,
    /// so their [`Bitstream::diff_bits`] is zero and a cache may share one
    /// copy for both. Netlists with equal [`Netlist::fingerprint`]s compile
    /// to bitstreams with equal fingerprints on the same fabric (the whole
    /// pipeline is deterministic).
    pub fn fingerprint(&self) -> crate::netlist::Fingerprint {
        let mut h = crate::netlist::FnvHasher::new();
        h.write_u64(self.cluster_bits);
        h.write_u64(self.routing_bits);
        h.write_u64(self.frames.len() as u64);
        for (addr, words) in &self.frames {
            match addr {
                FrameAddr::Site { x, y } => {
                    h.write_u64(0x51);
                    h.write_u64(u64::from(*x));
                    h.write_u64(u64::from(*y));
                }
                FrameAddr::Edge { id, bus } => {
                    h.write_u64(0x52);
                    h.write_u64(u64::from(*id));
                    h.write_u64(u64::from(*bus));
                }
            }
            h.write_u64(words.len() as u64);
            for w in words {
                h.write_u64(*w);
            }
        }
        h.finish()
    }

    /// Bits that differ between two configurations of the same fabric — the
    /// cost of a partial reconfiguration from `self` to `other`.
    ///
    /// Frames present on only one side count in full (they must be written
    /// or cleared). Delegates to the packed sweep
    /// ([`Bitstream::diff_bits_packed`]); the original map walk survives as
    /// [`Bitstream::diff_bits_map`], the reference the property tests hold
    /// the fast path against.
    pub fn diff_bits(&self, other: &Bitstream) -> u64 {
        self.diff_bits_packed(other)
    }

    /// Allocation-free diff over the packed representation: one merge walk
    /// of the two sorted frame indexes, XOR + popcount over the word planes.
    pub fn diff_bits_packed(&self, other: &Bitstream) -> u64 {
        let mut bits = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.index.len() && j < other.index.len() {
            let (ka, sa, la) = self.index[i];
            let (kb, sb, lb) = other.index[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    bits += ones(&self.words[sa as usize..(sa + la) as usize]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    bits += ones(&other.words[sb as usize..(sb + lb) as usize]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let a = &self.words[sa as usize..(sa + la) as usize];
                    let b = &other.words[sb as usize..(sb + lb) as usize];
                    let common = a.len().min(b.len());
                    for (wa, wb) in a[..common].iter().zip(&b[..common]) {
                        bits += u64::from((wa ^ wb).count_ones());
                    }
                    bits += ones(&a[common..]);
                    bits += ones(&b[common..]);
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(_, s, l) in &self.index[i..] {
            bits += ones(&self.words[s as usize..(s + l) as usize]);
        }
        for &(_, s, l) in &other.index[j..] {
            bits += ones(&other.words[s as usize..(s + l) as usize]);
        }
        bits
    }

    /// The original map-based diff (BTreeSet key union + per-frame
    /// lookups), kept as the executable specification of
    /// [`Bitstream::diff_bits_packed`].
    pub fn diff_bits_map(&self, other: &Bitstream) -> u64 {
        let mut bits = 0u64;
        let keys: std::collections::BTreeSet<_> = self
            .frames
            .keys()
            .chain(other.frames.keys())
            .copied()
            .collect();
        for key in keys {
            match (self.frames.get(&key), other.frames.get(&key)) {
                (Some(a), Some(b)) => {
                    let len = a.len().max(b.len());
                    for i in 0..len {
                        let wa = a.get(i).copied().unwrap_or(0);
                        let wb = b.get(i).copied().unwrap_or(0);
                        bits += u64::from((wa ^ wb).count_ones());
                    }
                }
                (Some(a), None) | (None, Some(a)) => {
                    bits += a.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
                }
                (None, None) => unreachable!(),
            }
        }
        bits
    }
}

/// Total set bits in a word slice.
fn ones(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

pub(crate) fn encode_cluster(cfg: &crate::cluster::ClusterCfg) -> Vec<u64> {
    use crate::cluster::{AbsDiffMode, AddOp, AddShiftCfg, ClusterCfg, CompMode};
    // Deterministic structural encoding; field layout is arbitrary but
    // stable, which is all diffing requires.
    let mut words = Vec::new();
    let tag = |t: u64, payload: u64| (t << 56) | (payload & 0x00FF_FFFF_FFFF_FFFF);
    match cfg {
        ClusterCfg::RegMux { width, registered } => {
            words.push(tag(1, (u64::from(*width) << 1) | u64::from(*registered)));
        }
        ClusterCfg::AbsDiff { width, mode } => {
            let m = match mode {
                AbsDiffMode::Add => 0u64,
                AbsDiffMode::Sub => 1,
                AbsDiffMode::AbsDiff => 2,
            };
            words.push(tag(2, (u64::from(*width) << 2) | m));
        }
        ClusterCfg::AddAcc {
            width,
            op,
            accumulate,
        } => {
            let m = (matches!(op, AddOp::Sub) as u64) | ((*accumulate as u64) << 1);
            words.push(tag(3, (u64::from(*width) << 2) | m));
        }
        ClusterCfg::Comparator {
            width,
            index_width,
            mode,
        } => {
            let m = match mode {
                CompMode::Min => 0u64,
                CompMode::Max => 1,
                CompMode::StreamMin => 2,
                CompMode::StreamMax => 3,
            };
            words.push(tag(
                4,
                (u64::from(*width) << 10) | (u64::from(*index_width) << 2) | m,
            ));
        }
        ClusterCfg::AddShift(as_cfg) => {
            let payload = match as_cfg {
                AddShiftCfg::Add { width, serial } => {
                    (u64::from(*width) << 3) | (u64::from(*serial) << 2)
                }
                AddShiftCfg::Sub { width, serial } => {
                    (u64::from(*width) << 3) | (u64::from(*serial) << 2) | 1
                }
                AddShiftCfg::SerialReg { width } => (u64::from(*width) << 3) | 2,
                AddShiftCfg::ShiftAcc {
                    acc_width,
                    data_width,
                } => (u64::from(*acc_width) << 11) | (u64::from(*data_width) << 3) | 3,
            };
            words.push(tag(5, payload));
        }
        ClusterCfg::Memory {
            words: nwords,
            width,
            contents,
        } => {
            words.push(tag(6, (u64::from(*nwords) << 8) | u64::from(*width)));
            // Pack contents, `width` bits per word, into 64-bit frames.
            let mut acc = 0u64;
            let mut used = 0u8;
            for &w in contents {
                let mut remaining = *width;
                let mut value = w;
                while remaining > 0 {
                    // `take` is at most 32 because cluster widths are <= 32.
                    let take = remaining.min(64 - used);
                    acc |= (value & ((1u64 << take) - 1)) << used;
                    value = value.checked_shr(u32::from(take)).unwrap_or(0);
                    used += take;
                    remaining -= take;
                    if used == 64 {
                        words.push(acc);
                        acc = 0;
                        used = 0;
                    }
                }
            }
            if used > 0 {
                words.push(acc);
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AbsDiffMode, ClusterCfg};
    use crate::fabric::MeshSpec;
    use crate::place::{place, PlacerOptions};
    use crate::route::{route, RouterOptions};

    fn build(mode: AbsDiffMode) -> (Netlist, Fabric, Placement, Routing) {
        let mut nl = Netlist::new("b");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let ad = nl
            .cluster("ad", ClusterCfg::AbsDiff { width: 8, mode })
            .unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        let f = Fabric::me_array(8, 8, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        let r = route(&nl, &f, &p, RouterOptions::default()).unwrap();
        (nl, f, p, r)
    }

    #[test]
    fn identical_configs_diff_zero() {
        let (nl, f, p, r) = build(AbsDiffMode::AbsDiff);
        let b1 = Bitstream::generate(&nl, &f, &p, &r);
        let b2 = Bitstream::generate(&nl, &f, &p, &r);
        assert_eq!(b1.diff_bits(&b2), 0);
        assert!(b1.total_bits() > 0);
    }

    #[test]
    fn mode_change_diffs_few_bits() {
        let (nl1, f, p1, r1) = build(AbsDiffMode::AbsDiff);
        let (nl2, _, p2, r2) = build(AbsDiffMode::Sub);
        let b1 = Bitstream::generate(&nl1, &f, &p1, &r1);
        let b2 = Bitstream::generate(&nl2, &f, &p2, &r2);
        let d = b1.diff_bits(&b2);
        assert!(d > 0, "different modes must differ");
        assert!(
            d < b1.total_bits(),
            "partial reconfig must beat full rewrite"
        );
    }

    #[test]
    fn memory_contents_affect_bits() {
        let mk = |val: u64| {
            let mut nl = Netlist::new("m");
            let a = nl.input("a", 4).unwrap();
            let rom = nl
                .cluster(
                    "rom",
                    ClusterCfg::Memory {
                        words: 16,
                        width: 8,
                        contents: vec![val; 16],
                    },
                )
                .unwrap();
            let y = nl.output("y", 8).unwrap();
            nl.connect((a, "out"), (rom, "addr")).unwrap();
            nl.connect((rom, "dout"), (y, "in")).unwrap();
            let f = Fabric::da_array(8, 8, MeshSpec::mixed());
            let p = place(&nl, &f, PlacerOptions::default()).unwrap();
            let r = route(&nl, &f, &p, RouterOptions::default()).unwrap();
            Bitstream::generate(&nl, &f, &p, &r)
        };
        let b0 = mk(0x00);
        let b1 = mk(0xFF);
        // 16 words x 8 flipped bits = 128 differing content bits.
        assert!(b0.diff_bits(&b1) >= 128);
    }

    #[test]
    fn packed_diff_matches_map_diff_on_compiled_streams() {
        let (nl1, f, p1, r1) = build(AbsDiffMode::AbsDiff);
        let (nl2, _, p2, r2) = build(AbsDiffMode::Sub);
        let a = Bitstream::generate(&nl1, &f, &p1, &r1);
        let b = Bitstream::generate(&nl2, &f, &p2, &r2);
        assert_eq!(a.diff_bits_packed(&b), a.diff_bits_map(&b));
        assert_eq!(a.diff_bits_packed(&a), 0);
    }

    #[test]
    fn packing_round_trips_every_frame() {
        let (nl, f, p, r) = build(AbsDiffMode::AbsDiff);
        let bs = Bitstream::generate(&nl, &f, &p, &r);
        assert!(bs.frame_count() > 0);
        for (addr, words) in &bs.frames {
            assert_eq!(bs.packed_frame(*addr), Some(words.as_slice()));
        }
        assert_eq!(
            bs.packed_frame(FrameAddr::Site {
                x: u16::MAX,
                y: u16::MAX
            }),
            None
        );
    }
}
