//! Fabric description: a rectangular grid of cluster sites plus the
//! reconfigurable interconnect parameters.
//!
//! Two standard fabrics mirror the paper's arrays:
//!
//! * [`Fabric::me_array`] — the motion-estimation array of Fig. 2, tiling
//!   register-multiplexer, absolute-difference, adder/accumulator and
//!   comparator clusters;
//! * [`Fabric::da_array`] — the distributed-arithmetic array of Fig. 3,
//!   tiling add-shift clusters with memory-element columns.
//!
//! The inter-cluster mesh is "composed of a combination of 8-bit and 1-bit
//! tracks" (§2); [`MeshSpec`] captures the per-channel track counts so the
//! router can also model a fine-grain 1-bit-only mesh for the ablation
//! experiment (E6).

use crate::cluster::ClusterKind;
use crate::error::{CoreError, Result};
use crate::report::ResourceReport;

/// What occupies one grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Unusable / empty position.
    Empty,
    /// I/O pad (perimeter).
    Io,
    /// A cluster site of the given kind.
    Cluster(ClusterKind),
}

/// Interconnect mesh parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshSpec {
    /// Number of bus tracks per channel.
    pub bus_tracks: u8,
    /// Bits carried by one bus track (8 in the paper).
    pub bus_width: u8,
    /// Number of single-bit tracks per channel.
    pub bit_tracks: u8,
}

impl MeshSpec {
    /// The paper's mixed mesh: 8-bit buses plus 1-bit control tracks.
    pub fn mixed() -> Self {
        MeshSpec {
            bus_tracks: 8,
            bus_width: 8,
            bit_tracks: 8,
        }
    }

    /// A generic fine-grain FPGA-style mesh: 1-bit tracks only.
    ///
    /// Capacity is matched to [`MeshSpec::mixed`] (same total wire bits per
    /// channel) so the ablation compares switch/config cost, not raw
    /// bandwidth.
    pub fn fine_grain() -> Self {
        MeshSpec {
            bus_tracks: 0,
            bus_width: 8,
            bit_tracks: 72, // 8 buses x 8 bits + 8 bit tracks
        }
    }

    /// Total wire bits crossing one channel.
    pub fn channel_bits(&self) -> u32 {
        u32::from(self.bus_tracks) * u32::from(self.bus_width) + u32::from(self.bit_tracks)
    }
}

/// A reconfigurable array: grid of sites plus mesh parameters.
#[derive(Debug, Clone)]
pub struct Fabric {
    name: String,
    width: u16,
    height: u16,
    sites: Vec<SiteKind>,
    mesh: MeshSpec,
}

impl Fabric {
    /// Builds a fabric from an explicit site map (row-major, `width*height`
    /// entries).
    ///
    /// # Errors
    /// Returns [`CoreError::Mismatch`] if the site vector length is wrong.
    pub fn from_sites(
        name: impl Into<String>,
        width: u16,
        height: u16,
        sites: Vec<SiteKind>,
        mesh: MeshSpec,
    ) -> Result<Self> {
        if sites.len() != usize::from(width) * usize::from(height) {
            return Err(CoreError::Mismatch(format!(
                "site map has {} entries for a {}x{} grid",
                sites.len(),
                width,
                height
            )));
        }
        Ok(Fabric {
            name: name.into(),
            width,
            height,
            sites,
            mesh,
        })
    }

    /// Standard motion-estimation array (Fig. 2): interior tiled with the
    /// repeating cluster pattern MUX / AD / ADD-ACC and a comparator column
    /// every fourth column; I/O pads on the perimeter.
    pub fn me_array(width: u16, height: u16, mesh: MeshSpec) -> Self {
        Self::tiled("me-array", width, height, mesh, |x, y| {
            if x % 4 == 3 {
                ClusterKind::Comparator
            } else {
                match (x + y) % 3 {
                    0 => ClusterKind::RegMux,
                    1 => ClusterKind::AbsDiff,
                    _ => ClusterKind::AddAcc,
                }
            }
        })
    }

    /// Standard distributed-arithmetic array (Fig. 3): add-shift clusters
    /// with a memory-element column every fourth column; I/O pads on the
    /// perimeter.
    pub fn da_array(width: u16, height: u16, mesh: MeshSpec) -> Self {
        Self::tiled("da-array", width, height, mesh, |x, _y| {
            if x % 4 == 2 {
                ClusterKind::Memory
            } else {
                ClusterKind::AddShift
            }
        })
    }

    fn tiled(
        name: &str,
        width: u16,
        height: u16,
        mesh: MeshSpec,
        pattern: impl Fn(u16, u16) -> ClusterKind,
    ) -> Self {
        assert!(width >= 3 && height >= 3, "fabric must be at least 3x3");
        let mut sites = Vec::with_capacity(usize::from(width) * usize::from(height));
        for y in 0..height {
            for x in 0..width {
                let edge = x == 0 || y == 0 || x == width - 1 || y == height - 1;
                sites.push(if edge {
                    SiteKind::Io
                } else {
                    SiteKind::Cluster(pattern(x, y))
                });
            }
        }
        Fabric {
            name: name.to_owned(),
            width,
            height,
            sites,
            mesh,
        }
    }

    /// Fabric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Mesh parameters.
    pub fn mesh(&self) -> MeshSpec {
        self.mesh
    }

    /// Returns the same fabric with a different mesh (for ablations).
    pub fn with_mesh(&self, mesh: MeshSpec) -> Self {
        let mut f = self.clone();
        f.mesh = mesh;
        f
    }

    /// Site at `(x, y)`.
    ///
    /// # Panics
    /// Panics when the coordinate is outside the grid.
    pub fn site(&self, x: u16, y: u16) -> SiteKind {
        assert!(x < self.width && y < self.height, "site out of range");
        self.sites[usize::from(y) * usize::from(self.width) + usize::from(x)]
    }

    /// Iterates over all `(x, y, site)` triples.
    pub fn iter_sites(&self) -> impl Iterator<Item = (u16, u16, SiteKind)> + '_ {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| (x, y, self.site(x, y))))
    }

    /// All coordinates holding sites of a given cluster kind.
    pub fn sites_of(&self, kind: ClusterKind) -> Vec<(u16, u16)> {
        self.iter_sites()
            .filter(|&(_, _, s)| s == SiteKind::Cluster(kind))
            .map(|(x, y, _)| (x, y))
            .collect()
    }

    /// All I/O pad coordinates, clockwise from the origin.
    pub fn io_sites(&self) -> Vec<(u16, u16)> {
        self.iter_sites()
            .filter(|&(_, _, s)| s == SiteKind::Io)
            .map(|(x, y, _)| (x, y))
            .collect()
    }

    /// Number of cluster sites of each kind.
    pub fn capacity(&self, kind: ClusterKind) -> usize {
        self.iter_sites()
            .filter(|&(_, _, s)| s == SiteKind::Cluster(kind))
            .count()
    }

    /// Checks that the fabric offers enough sites for a resource report.
    ///
    /// # Errors
    /// [`CoreError::PlacementFull`] naming the first kind that does not fit.
    pub fn check_capacity(&self, report: &ResourceReport) -> Result<()> {
        let needs: [(ClusterKind, u32); 6] = [
            (ClusterKind::AddShift, report.add_shift_total()),
            (ClusterKind::Memory, report.memory_clusters()),
            (ClusterKind::RegMux, report.me_clusters(ClusterKind::RegMux)),
            (
                ClusterKind::AbsDiff,
                report.me_clusters(ClusterKind::AbsDiff),
            ),
            (ClusterKind::AddAcc, report.me_clusters(ClusterKind::AddAcc)),
            (
                ClusterKind::Comparator,
                report.me_clusters(ClusterKind::Comparator),
            ),
        ];
        for (kind, need) in needs {
            if need as usize > self.capacity(kind) {
                return Err(CoreError::PlacementFull {
                    kind: kind.name().to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Total switch points in the mesh (static fabric property):
    /// one switch per track per switchbox edge.
    pub fn total_switches(&self) -> u64 {
        let w = u64::from(self.width);
        let h = u64::from(self.height);
        let edges = (w - 1) * h + w * (h - 1);
        edges * u64::from(self.mesh.bus_tracks + self.mesh.bit_tracks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn me_array_has_all_four_kinds() {
        let f = Fabric::me_array(12, 8, MeshSpec::mixed());
        for kind in [
            ClusterKind::RegMux,
            ClusterKind::AbsDiff,
            ClusterKind::AddAcc,
            ClusterKind::Comparator,
        ] {
            assert!(f.capacity(kind) > 0, "missing {kind}");
        }
        assert_eq!(f.capacity(ClusterKind::AddShift), 0);
        assert!(!f.io_sites().is_empty());
    }

    #[test]
    fn da_array_has_addshift_and_memory() {
        let f = Fabric::da_array(12, 8, MeshSpec::mixed());
        assert!(f.capacity(ClusterKind::AddShift) > 0);
        assert!(f.capacity(ClusterKind::Memory) > 0);
        assert_eq!(f.capacity(ClusterKind::AbsDiff), 0);
    }

    #[test]
    fn perimeter_is_io() {
        let f = Fabric::da_array(6, 5, MeshSpec::mixed());
        for x in 0..6 {
            assert_eq!(f.site(x, 0), SiteKind::Io);
            assert_eq!(f.site(x, 4), SiteKind::Io);
        }
        for y in 0..5 {
            assert_eq!(f.site(0, y), SiteKind::Io);
            assert_eq!(f.site(5, y), SiteKind::Io);
        }
    }

    #[test]
    fn capacity_check_reports_missing_kind() {
        let f = Fabric::da_array(6, 6, MeshSpec::mixed());
        let mut report = ResourceReport::new("too-big");
        for _ in 0..200 {
            report.record(&crate::cluster::ClusterCfg::AddShift(
                crate::cluster::AddShiftCfg::Add {
                    width: 8,
                    serial: false,
                },
            ));
        }
        assert!(matches!(
            f.check_capacity(&report),
            Err(CoreError::PlacementFull { .. })
        ));
    }

    #[test]
    fn mesh_specs_have_equal_channel_bits() {
        assert_eq!(
            MeshSpec::mixed().channel_bits(),
            MeshSpec::fine_grain().channel_bits()
        );
    }

    #[test]
    fn explicit_site_map_validated() {
        let r = Fabric::from_sites("x", 2, 2, vec![SiteKind::Io; 3], MeshSpec::mixed());
        assert!(r.is_err());
    }
}
