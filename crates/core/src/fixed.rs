//! Two's-complement fixed-point helpers shared by the whole workspace.
//!
//! Bus values travel through the simulator as `u64` words holding the raw
//! bits of a `width`-bit two's-complement number. These helpers convert
//! between raw bus words and signed integers, and between signed fixed-point
//! (`Qm.f`) values and `f64`.
//!
//! Widths of 1..=63 bits are supported; the fabric limits cluster datapaths
//! to 32 bits (cascaded 4-bit elements), but intermediate arithmetic inside
//! the simulator uses the full range.

/// Masks `value` to the low `width` bits.
///
/// # Panics
/// Panics if `width` is 0 or greater than 63.
#[inline]
pub fn mask(value: u64, width: u8) -> u64 {
    assert!((1..=63).contains(&width), "width out of range: {width}");
    value & ((1u64 << width) - 1)
}

/// Interprets the low `width` bits of `raw` as a two's-complement signed
/// integer.
///
/// # Panics
/// Panics if `width` is 0 or greater than 63.
#[inline]
pub fn to_signed(raw: u64, width: u8) -> i64 {
    let m = mask(raw, width);
    let sign = 1u64 << (width - 1);
    if m & sign != 0 {
        // Bitwise sign extension avoids i64 overflow at width 63.
        (m | !((1u64 << width) - 1)) as i64
    } else {
        m as i64
    }
}

/// Encodes a signed integer into the low `width` bits (two's complement,
/// wrapping — exactly what a hardware register does on overflow).
///
/// # Panics
/// Panics if `width` is 0 or greater than 63.
#[inline]
pub fn from_signed(value: i64, width: u8) -> u64 {
    mask(value as u64, width)
}

/// Saturates `value` into the representable range of a signed `width`-bit
/// number: `[-2^(width-1), 2^(width-1) - 1]`.
#[inline]
pub fn saturate(value: i64, width: u8) -> i64 {
    let max = (1i64 << (width - 1)) - 1;
    let min = -(1i64 << (width - 1));
    value.clamp(min, max)
}

/// Returns `true` when `value` fits a signed `width`-bit number without
/// wrapping.
#[inline]
pub fn fits(value: i64, width: u8) -> bool {
    saturate(value, width) == value
}

/// A signed fixed-point format with `frac` fractional bits inside a `width`
/// bit word (so `width - frac` integer bits including sign).
///
/// ```
/// use dsra_core::fixed::Q;
/// let q = Q::new(16, 14);
/// let raw = q.encode(0.5);
/// assert!((q.decode(raw) - 0.5).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q {
    width: u8,
    frac: u8,
}

impl Q {
    /// Creates a new format descriptor.
    ///
    /// # Panics
    /// Panics if `width` is not in 1..=63 or `frac >= width`.
    pub fn new(width: u8, frac: u8) -> Self {
        assert!((1..=63).contains(&width), "width out of range: {width}");
        assert!(frac < width, "frac bits must leave room for the sign");
        Q { width, frac }
    }

    /// Total word width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of fractional bits.
    pub fn frac(&self) -> u8 {
        self.frac
    }

    /// Scale factor `2^frac`.
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac) as f64
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        (((1i64 << (self.width - 1)) - 1) as f64) / self.scale()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f64 {
        (-(1i64 << (self.width - 1)) as f64) / self.scale()
    }

    /// Encodes an `f64` to the nearest representable raw word, saturating at
    /// the format bounds.
    pub fn encode(&self, value: f64) -> u64 {
        let scaled = (value * self.scale()).round() as i64;
        from_signed(saturate(scaled, self.width), self.width)
    }

    /// Decodes a raw word back to `f64`.
    pub fn decode(&self, raw: u64) -> f64 {
        to_signed(raw, self.width) as f64 / self.scale()
    }

    /// Quantization step (value of one LSB).
    pub fn epsilon(&self) -> f64 {
        1.0 / self.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn signed_round_trip_small() {
        for w in 1..=16u8 {
            let lo = -(1i64 << (w - 1));
            let hi = (1i64 << (w - 1)) - 1;
            for v in lo..=hi {
                assert_eq!(to_signed(from_signed(v, w), w), v, "w={w} v={v}");
            }
        }
    }

    #[test]
    fn wrapping_matches_hardware() {
        // 4-bit register: 7 + 1 wraps to -8.
        let sum = to_signed(from_signed(7 + 1, 4), 4);
        assert_eq!(sum, -8);
    }

    #[test]
    fn saturate_bounds() {
        assert_eq!(saturate(1000, 8), 127);
        assert_eq!(saturate(-1000, 8), -128);
        assert_eq!(saturate(5, 8), 5);
        assert!(fits(127, 8));
        assert!(!fits(128, 8));
    }

    #[test]
    fn q_format_encodes_known_constants() {
        let q = Q::new(16, 14);
        // cos(pi/4) in Q2.14.
        let c = q.encode(std::f64::consts::FRAC_1_SQRT_2);
        assert!((q.decode(c) - std::f64::consts::FRAC_1_SQRT_2).abs() < q.epsilon());
    }

    #[test]
    fn q_format_saturates() {
        let q = Q::new(8, 6);
        assert_eq!(q.decode(q.encode(100.0)), q.max_value());
        assert_eq!(q.decode(q.encode(-100.0)), q.min_value());
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_rejected() {
        mask(1, 0);
    }

    proptest! {
        #[test]
        fn prop_round_trip(v in -(1i64<<31)..(1i64<<31), w in 33u8..=63) {
            prop_assert_eq!(to_signed(from_signed(v, w), w), v);
        }

        #[test]
        fn prop_mask_idempotent(v: u64, w in 1u8..=63) {
            prop_assert_eq!(mask(mask(v, w), w), mask(v, w));
        }

        #[test]
        fn prop_wrap_is_mod_2w(v: i64, w in 1u8..=32) {
            // Encoding then decoding equals v modulo 2^w, in the signed window.
            let decoded = to_signed(from_signed(v, w), w);
            let modulus = 1i128 << w;
            let diff = (v as i128 - decoded as i128).rem_euclid(modulus);
            prop_assert_eq!(diff, 0);
        }

        #[test]
        fn prop_q_decode_within_eps(x in -1.9f64..1.9, f in 1u8..=14) {
            let q = Q::new(16, f);
            let x = x.clamp(q.min_value(), q.max_value());
            let err = (q.decode(q.encode(x)) - x).abs();
            prop_assert!(err <= q.epsilon() / 2.0 + 1e-12);
        }
    }
}
