//! # dsra-core — domain-specific reconfigurable array fabric model
//!
//! Structural model of the reconfigurable arrays from *"Efficient
//! Implementations of Mobile Video Computations on Domain-Specific
//! Reconfigurable Arrays"* (Khawam et al., DATE 2004): heterogeneous
//! cluster fabrics for motion estimation and distributed arithmetic, a
//! netlist representation for kernel mappings, placement, routing over the
//! mixed 8-bit/1-bit mesh, bitstream generation and Table-1-style resource
//! accounting.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_core::prelude::*;
//!
//! # fn main() -> std::result::Result<(), CoreError> {
//! // Describe a tiny design: |a - b| on an 8-bit datapath.
//! let mut nl = Netlist::new("sad-cell");
//! let a = nl.input("a", 8)?;
//! let b = nl.input("b", 8)?;
//! let ad = nl.cluster("ad", ClusterCfg::AbsDiff {
//!     width: 8,
//!     mode: AbsDiffMode::AbsDiff,
//! })?;
//! let y = nl.output("y", 8)?;
//! nl.connect((a, "out"), (ad, "a"))?;
//! nl.connect((b, "out"), (ad, "b"))?;
//! nl.connect((ad, "y"), (y, "in"))?;
//! nl.check()?;
//!
//! // Map it onto the motion-estimation array and count everything.
//! let fabric = Fabric::me_array(8, 8, MeshSpec::mixed());
//! let placement = place(&nl, &fabric, PlacerOptions::default())?;
//! let routing = route(&nl, &fabric, &placement, RouterOptions::default())?;
//! let bits = Bitstream::generate(&nl, &fabric, &placement, &routing);
//! assert!(bits.total_bits() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The cycle-accurate execution of configured netlists lives in `dsra-sim`;
//! kernel builders (DCT, motion estimation) live in `dsra-dct` / `dsra-me`.

#![warn(missing_docs)]

pub mod bitstream;
pub mod cluster;
pub mod error;
pub mod fabric;
pub mod fixed;
pub mod netlist;
pub mod place;
pub mod report;
pub mod rng;
pub mod route;

/// Convenience re-exports of the most used items.
pub mod prelude {
    pub use crate::bitstream::Bitstream;
    pub use crate::cluster::{
        AbsDiffMode, AddOp, AddShiftCfg, AddShiftRole, ClusterCfg, ClusterKind, CompMode,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::fabric::{Fabric, MeshSpec, SiteKind};
    pub use crate::netlist::{
        Fingerprint, Net, NetId, Netlist, Node, NodeId, NodeKind, PhysNet, PortRef,
    };
    pub use crate::place::{place, Placement, PlacerOptions};
    pub use crate::report::{table1, ExecOutcome, ResourceReport};
    pub use crate::route::{route, RouterOptions, Routing, RoutingStats, TrackClass};
}

pub use prelude::*;
