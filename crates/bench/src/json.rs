//! A minimal JSON reader for the benchmark contract tests.
//!
//! Every experiment binary writes a `BENCH_<name>.json` with `--json`;
//! nothing in the workspace could *read* one back (no serde — DESIGN.md
//! §5 keeps the workspace offline/std-only), so the JSON contract was
//! untestable and the bench trajectory effectively write-only. This is a
//! strict recursive-descent parser over exactly the JSON the writers
//! emit: objects, arrays, strings with `\"`/`\\`/`\/`/`\u` escapes,
//! numbers, booleans and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are doubles here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are a parse error).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
///
/// # Errors
/// A human-readable description with the byte offset of the problem.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // The writers only emit UTF-8; pass bytes through.
                let s = &b[*pos..];
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = s.get(..ch_len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\": 1} x",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "{\"a\": nul}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
