//! Key-by-key comparison of two `BENCH_*.json` summaries — the library
//! behind the `bench_diff` binary and the CI baseline-diff step.
//!
//! The bench files mix three kinds of keys and a useful diff must treat
//! them differently:
//!
//! * **timing** keys (`*_ms` — wall-clock phase timings) vary run to run
//!   on any machine; they are *reported* but never fail the diff;
//! * **exact** keys — digests, strings, and integer-valued counts — pin
//!   deterministic virtual-time behaviour; *any* change is a regression;
//! * **float** keys (energy, percentages, ratios) are deterministic too,
//!   but are compared with a relative threshold so a legitimate
//!   last-decimal formatting change does not read as a regression.
//!
//! Missing or extra keys are always regressions: the JSON schema is part
//! of the contract (`json_contract.rs` pins it per file; this pins it
//! *across* revisions).

use crate::json::Json;

/// How a key is compared (derived from its name and value shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Wall-clock timing (`*_ms`): reported, never fails.
    Timing,
    /// Digest/string/integer count: any change fails.
    Exact,
    /// Fractional number: fails beyond the relative threshold.
    Float,
}

/// One compared key.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Dotted path of the key (`energy.total_j`, `metrics.fifo_digest`).
    pub key: String,
    /// Comparison class applied.
    pub class: KeyClass,
    /// Baseline value, rendered.
    pub old: String,
    /// Candidate value, rendered.
    pub new: String,
    /// Relative change for numeric keys (`|new−old| / max(|old|, ε)`).
    pub rel_change: Option<f64>,
    /// Whether this key regressed under its class's rule.
    pub failed: bool,
}

/// The full comparison of two summaries.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every key present in both documents, in baseline order.
    pub entries: Vec<DiffEntry>,
    /// Keys in the baseline but not the candidate (always a regression).
    pub missing: Vec<String>,
    /// Keys in the candidate but not the baseline (always a regression).
    pub extra: Vec<String>,
    /// Relative threshold applied to [`KeyClass::Float`] keys.
    pub threshold: f64,
}

impl DiffReport {
    /// `true` when any key regressed (class rule violated, or schema
    /// drift via missing/extra keys).
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || !self.extra.is_empty() || self.entries.iter().any(|e| e.failed)
    }

    /// Keys that changed at all (including tolerated timing/float drift).
    pub fn changed(&self) -> usize {
        self.entries.iter().filter(|e| e.old != e.new).count()
    }

    /// Deterministic human-readable rendering: one line per changed or
    /// failed key, then schema drift, then a verdict line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            if e.old == e.new {
                continue;
            }
            let verdict = if e.failed {
                "FAIL"
            } else {
                match e.class {
                    KeyClass::Timing => "ok (timing)",
                    KeyClass::Float => "ok (within threshold)",
                    KeyClass::Exact => "ok",
                }
            };
            let rel = e
                .rel_change
                .map(|r| format!(" rel={:.6}", r))
                .unwrap_or_default();
            s.push_str(&format!(
                "{verdict:>21}  {}: {} -> {}{rel}\n",
                e.key, e.old, e.new
            ));
        }
        for k in &self.missing {
            s.push_str(&format!("{:>21}  {k}: missing in candidate\n", "FAIL"));
        }
        for k in &self.extra {
            s.push_str(&format!("{:>21}  {k}: not in baseline\n", "FAIL"));
        }
        let failed = self.entries.iter().filter(|e| e.failed).count()
            + self.missing.len()
            + self.extra.len();
        s.push_str(&format!(
            "{} keys compared, {} changed, {} failed (threshold {:.6})\n",
            self.entries.len(),
            self.changed(),
            failed,
            self.threshold
        ));
        s.push_str(if self.regressed() {
            "verdict: REGRESSED\n"
        } else {
            "verdict: OK\n"
        });
        s
    }
}

/// Flattens a parsed document to `(dotted.path, leaf)` pairs in source
/// order; array elements use their index as a path segment.
pub fn flatten(doc: &Json) -> Vec<(String, Json)> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(v: &Json, path: String, out: &mut Vec<(String, Json)>) {
    let join = |p: &str, seg: &str| {
        if p.is_empty() {
            seg.to_owned()
        } else {
            format!("{p}.{seg}")
        }
    };
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                walk(child, join(&path, k), out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, join(&path, &i.to_string()), out);
            }
        }
        leaf => out.push((path, leaf.clone())),
    }
}

fn classify(key: &str, old: &Json, new: &Json) -> KeyClass {
    let last = key.rsplit('.').next().unwrap_or(key);
    if last.ends_with("_ms") {
        return KeyClass::Timing;
    }
    match (old, new) {
        (Json::Num(a), Json::Num(b)) if a.fract() == 0.0 && b.fract() == 0.0 => KeyClass::Exact,
        (Json::Num(_), Json::Num(_)) => KeyClass::Float,
        _ => KeyClass::Exact,
    }
}

fn render_leaf(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
        Json::Num(n) => format!("{n:.6}"),
        Json::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

/// Compares two parsed summaries key by key.
///
/// `threshold` is the relative change tolerated on [`KeyClass::Float`]
/// keys (e.g. `0.01` = 1 %).
pub fn diff_documents(old: &Json, new: &Json, threshold: f64) -> DiffReport {
    let old_flat = flatten(old);
    let new_flat = flatten(new);
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for (key, old_v) in &old_flat {
        let Some((_, new_v)) = new_flat.iter().find(|(k, _)| k == key) else {
            missing.push(key.clone());
            continue;
        };
        let class = classify(key, old_v, new_v);
        let rel_change = match (old_v, new_v) {
            (Json::Num(a), Json::Num(b)) => Some((b - a).abs() / a.abs().max(1e-12)),
            _ => None,
        };
        let failed = match class {
            KeyClass::Timing => false,
            KeyClass::Exact => old_v != new_v,
            KeyClass::Float => rel_change.map(|r| r > threshold).unwrap_or(true),
        };
        entries.push(DiffEntry {
            key: key.clone(),
            class,
            old: render_leaf(old_v),
            new: render_leaf(new_v),
            rel_change,
            failed,
        });
    }
    let extra = new_flat
        .iter()
        .filter(|(k, _)| !old_flat.iter().any(|(ok, _)| ok == k))
        .map(|(k, _)| k.clone())
        .collect();
    DiffReport {
        entries,
        missing,
        extra,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn diff(old: &str, new: &str, threshold: f64) -> DiffReport {
        diff_documents(
            &parse_json(old).unwrap(),
            &parse_json(new).unwrap(),
            threshold,
        )
    }

    #[test]
    fn identical_documents_pass() {
        let doc = r#"{"metrics": {"served": 10, "digest": "0xabc", "energy_j": 1.5}}"#;
        let r = diff(doc, doc, 0.01);
        assert!(!r.regressed());
        assert_eq!(r.changed(), 0);
        assert!(r.render().contains("verdict: OK"));
    }

    #[test]
    fn digest_and_count_changes_hard_fail() {
        let old = r#"{"served": 10, "digest": "0xabc"}"#;
        for new in [
            r#"{"served": 11, "digest": "0xabc"}"#,
            r#"{"served": 10, "digest": "0xdef"}"#,
        ] {
            let r = diff(old, new, 0.5);
            assert!(r.regressed(), "must fail: {new}");
            assert!(r.render().contains("FAIL"));
        }
    }

    #[test]
    fn floats_respect_the_relative_threshold() {
        let old = r#"{"energy_j": 100.5}"#;
        let within = diff(old, r#"{"energy_j": 100.6}"#, 0.01);
        assert!(!within.regressed());
        assert_eq!(within.changed(), 1);
        assert!(within.render().contains("within threshold"));
        let beyond = diff(old, r#"{"energy_j": 150.5}"#, 0.01);
        assert!(beyond.regressed());
    }

    #[test]
    fn timing_keys_never_fail() {
        let old = r#"{"phases": {"planning_ms": 20.4, "exec_ms": 500.1}}"#;
        let new = r#"{"phases": {"planning_ms": 99.9, "exec_ms": 0.25}}"#;
        let r = diff(old, new, 0.001);
        assert!(!r.regressed());
        assert_eq!(r.changed(), 2);
        assert!(r.render().contains("ok (timing)"));
    }

    #[test]
    fn schema_drift_is_a_regression_both_ways() {
        let old = r#"{"a": 1, "b": 2}"#;
        let r = diff(old, r#"{"a": 1}"#, 0.01);
        assert!(r.regressed());
        assert_eq!(r.missing, vec!["b".to_owned()]);
        let r = diff(old, r#"{"a": 1, "b": 2, "c": 3}"#, 0.01);
        assert!(r.regressed());
        assert_eq!(r.extra, vec!["c".to_owned()]);
    }

    #[test]
    fn arrays_flatten_with_indices() {
        let doc = r#"{"trajectory": [{"job": 0, "charge_j": 9.5}, {"job": 1, "charge_j": 8.25}]}"#;
        let flat = flatten(&parse_json(doc).unwrap());
        assert_eq!(flat[0].0, "trajectory.0.job");
        assert_eq!(flat[3].0, "trajectory.1.charge_j");
        // An element-count change shows up as missing keys, not a panic.
        let r = diff(
            doc,
            r#"{"trajectory": [{"job": 0, "charge_j": 9.5}]}"#,
            0.01,
        );
        assert!(r.regressed());
        assert!(r.missing.iter().any(|k| k == "trajectory.1.job"));
    }
}
