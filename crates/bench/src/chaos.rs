//! E15 metric assembly: one definition of the `BENCH_chaos.json`
//! payload, shared by the `chaos_serve` binary, the JSON-contract test
//! and the tier-1 integration gate (`tests/chaos_serve.rs`) — so the
//! artifact, its schema test and the acceptance gate cannot drift apart.

use dsra_chaos::ChaosReport;

use crate::stream::latency_histogram;
use crate::JsonValue;

/// The per-arm metric block of `BENCH_chaos.json`, keys prefixed with
/// the arm tag (`recovery_…` / `oblivious_…`): the dispatch totals, the
/// tail, the injection/recovery tallies, the corruption ground truth and
/// the corruption-aware goodput the E15 gate compares on.
pub fn chaos_metrics(report: &ChaosReport, tag: &str) -> Vec<(String, JsonValue)> {
    let s = &report.service;
    let h = latency_histogram(s);
    vec![
        (format!("{tag}_requests"), JsonValue::Int(s.requests as u64)),
        (format!("{tag}_served"), JsonValue::Int(s.served as u64)),
        (format!("{tag}_shed"), JsonValue::Int(s.shed as u64)),
        (format!("{tag}_failed"), JsonValue::Int(s.failed as u64)),
        (
            format!("{tag}_violations"),
            JsonValue::Int(s.violations as u64),
        ),
        (format!("{tag}_p50_latency_us"), JsonValue::Int(h.p50())),
        (format!("{tag}_p99_latency_us"), JsonValue::Int(h.p99())),
        (
            format!("{tag}_goodput_pct"),
            JsonValue::Num(s.goodput_pct()),
        ),
        (
            format!("{tag}_useful_goodput_pct"),
            JsonValue::Num(report.useful_goodput_pct()),
        ),
        (
            format!("{tag}_corrupt_served"),
            JsonValue::Int(report.corrupt_served as u64),
        ),
        (
            format!("{tag}_corrupt_execs"),
            JsonValue::Int(report.corrupt_execs),
        ),
        (
            format!("{tag}_total_execs"),
            JsonValue::Int(report.total_execs),
        ),
        (
            format!("{tag}_faults_injected"),
            JsonValue::Int(report.counts.faults_injected),
        ),
        (
            format!("{tag}_divergences"),
            JsonValue::Int(report.counts.divergences),
        ),
        (
            format!("{tag}_retries"),
            JsonValue::Int(report.counts.retries),
        ),
        (
            format!("{tag}_quarantines"),
            JsonValue::Int(report.counts.quarantines),
        ),
        (
            format!("{tag}_restores"),
            JsonValue::Int(report.counts.restores),
        ),
        (
            format!("{tag}_digest"),
            JsonValue::Str(format!("{:#018x}", report.digest())),
        ),
    ]
}
