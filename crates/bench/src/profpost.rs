//! The uniform `--profile-out <path>` flag: every experiment binary that
//! serves through a `SocRuntime` installs a [`ProfileSink`] tee over
//! whatever sink is already in place (so it composes with `--trace`
//! recording and `--monitor` health queries) and dumps the session as a
//! collapsed-stack flamegraph afterwards.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin soc_serve -- --profile-out soc.folded
//! ```
//!
//! The folded text is byte-deterministic per seed — CI runs the same
//! session twice and `cmp`s the files.

use dsra_profile::{flamegraph, Flame, ProfileReport, ProfileSink, ProfilerHandle};
use dsra_runtime::SocRuntime;

/// Installs a [`ProfileSink`] tee on the runtime, wrapping whatever sink
/// is currently installed (call *after* `--trace`/`--monitor` wiring so
/// those still record). Returns the shared handle.
pub fn install_profiler(runtime: &mut SocRuntime) -> ProfilerHandle {
    let handle = ProfilerHandle::default();
    let inner = runtime.take_trace_sink();
    runtime.set_trace_sink(Box::new(ProfileSink::new(handle.clone(), inner)));
    handle
}

/// Installs the profiler when `--profile-out <file>` was passed on the
/// command line; returns the target path and the handle so the caller
/// can [`write_profile_arg`] after serving.
pub fn install_profile_arg(runtime: &mut SocRuntime) -> Option<(String, ProfilerHandle)> {
    let path = crate::arg_value("--profile-out")?;
    Some((path, install_profiler(runtime)))
}

/// The session's flamegraph: the profiler's accounts joined with the
/// runtime's kernel op mixes.
pub fn runtime_flame(runtime: &SocRuntime, handle: &ProfilerHandle) -> Flame {
    let mixes = runtime.kernel_op_mixes();
    handle.with(|p| flamegraph(p, &mixes))
}

/// The session's attribution report, built the same way.
pub fn runtime_profile_report(runtime: &SocRuntime, handle: &ProfilerHandle) -> ProfileReport {
    let mixes = runtime.kernel_op_mixes();
    handle.with(|p| ProfileReport::build(p, &mixes))
}

/// Writes a flamegraph's folded text at `path`.
///
/// # Panics
/// Panics when the file can't be written — profile capture fails loudly
/// rather than silently dropping the artifact.
pub fn write_flame(flame: &Flame, path: &str) {
    std::fs::write(path, flame.render()).expect("write flamegraph file");
    println!("wrote {path}");
}

/// Writes the flamegraph for an [`install_profile_arg`] capture, if one
/// was requested. Call after the serve, while the runtime still holds
/// the session's kernel cache.
pub fn write_profile_arg(runtime: &SocRuntime, target: &Option<(String, ProfilerHandle)>) {
    if let Some((path, handle)) = target {
        write_flame(&runtime_flame(runtime, handle), path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_runtime::RuntimeConfig;
    use dsra_trace::{EventLog, TraceEvent};
    use dsra_video::{generate_job_mix, JobMixConfig};

    fn small_runtime() -> SocRuntime {
        SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 1,
            ..Default::default()
        })
        .expect("runtime construction")
    }

    #[test]
    fn profiler_tee_preserves_inner_recording_and_covers_the_serve() {
        let mix = generate_job_mix(JobMixConfig {
            jobs: 12,
            seed: 7,
            ..Default::default()
        });
        let mut runtime = small_runtime();
        runtime.set_trace_sink(Box::new(EventLog::new()));
        let handle = install_profiler(&mut runtime);
        runtime.serve(&mix).expect("serve");
        let flame = runtime_flame(&runtime, &handle);
        assert!(!flame.is_empty());
        let report = runtime_profile_report(&runtime, &handle);
        assert!(report.busy_cycles > 0);
        assert_eq!(
            report.attributed_cycles, report.busy_cycles,
            "every busy cycle lands on a kernel with a mix"
        );
        assert_eq!(report.unrouted_cycles, 0);
        // The inner EventLog kept recording through the tee.
        let log = runtime
            .take_trace_sink()
            .into_log()
            .expect("inner event log survives the profiler tee");
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::JobComplete { .. })));
    }

    #[test]
    fn profiled_and_bare_serves_agree_on_outcomes() {
        let mix = generate_job_mix(JobMixConfig {
            jobs: 10,
            seed: 41,
            ..Default::default()
        });
        let mut bare = small_runtime();
        let bare_report = bare.serve(&mix).expect("serve");
        let mut profiled = small_runtime();
        let _handle = install_profiler(&mut profiled);
        let prof_report = profiled.serve(&mix).expect("serve");
        assert_eq!(bare_report.digest(), prof_report.digest());
    }
}
