//! E2 — functional/accuracy characterisation of the six DCT mappings
//! (Figs. 4–9): cycles per block, coefficient error vs the double-precision
//! reference, for both the precise and the paper-faithful (Fig. 4) widths.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin dct_accuracy
//! ```

use dsra_bench::{banner, json_flag, write_json_summary, JsonValue};
use dsra_dct::{all_impls, measure_accuracy, DaParams};

fn main() {
    banner("E2", "Figs. 4-9: functional behaviour of the DCT mappings");
    let mut metrics: Vec<(String, JsonValue)> = Vec::new();
    for (label, tag, params, amplitude) in [
        (
            "precise widths (16-bit ROM / 32-bit acc), 12-bit input",
            "precise",
            DaParams::precise(),
            2047i64,
        ),
        (
            "paper widths (8-bit ROM / 16-bit acc, Fig. 4), 8-bit input",
            "paper",
            DaParams::paper(),
            255,
        ),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:<10} {:>8} {:>12} {:>12}",
            "impl", "cycles", "max |err|", "rms err"
        );
        let impls = all_impls(params).expect("builders are infallible");
        for imp in &impls {
            let acc = measure_accuracy(imp.as_ref(), 16, amplitude, 0xE2).expect("driver ok");
            println!(
                "{:<10} {:>8} {:>12.3} {:>12.4}",
                imp.name(),
                imp.cycles_per_block(),
                acc.max_abs_err,
                acc.rms_err
            );
            let key = imp.name().to_lowercase().replace([' ', '/'], "_");
            metrics.push((
                format!("{tag}_{key}_max_abs_err"),
                JsonValue::Num(acc.max_abs_err),
            ));
            metrics.push((
                format!("{tag}_{key}_cycles_per_block"),
                JsonValue::Int(imp.cycles_per_block()),
            ));
        }
    }
    if json_flag() {
        write_json_summary("dct_accuracy", "E2", &metrics);
    }
    println!(
        "\nShape check: pure-DA paths (BASIC DA, MIX ROM, SCC*) are exact up\n\
         to ROM rounding; the CORDIC paths add re-serialisation truncation;\n\
         Fig.-4 widths degrade everything uniformly (quality/area trade, §5)."
    );
}
