//! E4/E5 — the generic-FPGA comparison claims of §1 (from refs \[1\], \[2\]):
//! ME array −75 % power / −45 % area / +23 % timing; DA array −38 % / −14 %
//! / −54 %.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin fpga_compare
//! ```

use dsra_bench::{banner, da_activity, json_flag, me_activity, write_json_summary, JsonValue};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_dct::{BasicDa, DaParams, DctImpl};
use dsra_me::{MeEngine, Systolic2d};
use dsra_tech::{evaluate_against_fpga, TechModel};

fn main() {
    banner(
        "E4/E5",
        "FPGA comparison claims (refs [1], [2] of the paper)",
    );
    let model = TechModel::default();

    let eng = Systolic2d::new(8).unwrap();
    let act = me_activity(eng.netlist(), 256);
    let fabric = Fabric::me_array(26, 20, MeshSpec::mixed());
    let me = evaluate_against_fpga(eng.netlist(), &fabric, &act, &model).unwrap();

    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let act = da_activity(imp.netlist(), 256);
    let fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    let da = evaluate_against_fpga(imp.netlist(), &fabric, &act, &model).unwrap();

    println!(
        "\n{:<28} {:>10} {:>10} {:>10}",
        "", "power", "area", "timing"
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "ME array vs FPGA (measured)",
        me.comparison.power_reduction_pct,
        me.comparison.area_reduction_pct,
        me.comparison.timing_improvement_pct
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "ME array vs FPGA (paper)", "75%", "45%", "23%"
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}% {:>9.1}%",
        "DA array vs FPGA (measured)",
        da.comparison.power_reduction_pct,
        da.comparison.area_reduction_pct,
        da.comparison.timing_improvement_pct
    );
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "DA array vs FPGA (paper)", "38%", "14%", "54%"
    );

    println!("\nunderlying costs (arbitrary calibrated units):");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "", "area", "delay", "dyn E/cyc", "cfg bits"
    );
    for (name, c) in [
        ("ME on DSRA", &me.dsra),
        ("ME on FPGA", &me.fpga),
        ("DA on DSRA", &da.dsra),
        ("DA on FPGA", &da.fpga),
    ] {
        println!(
            "{:<14} {:>12.1} {:>12.2} {:>12.1} {:>12}",
            name, c.area, c.delay, c.dyn_energy_per_cycle, c.config_bits
        );
    }
    println!(
        "\nCalibration note: one constant set (dsra-tech) fits both cases;\n\
         the ME/DA asymmetry emerges structurally — the DA array's\n\
         configurable memories cost nearly as much as FPGA LUT-ROMs, while\n\
         ME datapath clusters crush LUT+bit-routing implementations."
    );
    if json_flag() {
        write_json_summary(
            "fpga_compare",
            "E4/E5",
            &[
                (
                    "me_power_reduction_pct",
                    JsonValue::Num(me.comparison.power_reduction_pct),
                ),
                (
                    "me_area_reduction_pct",
                    JsonValue::Num(me.comparison.area_reduction_pct),
                ),
                (
                    "me_timing_improvement_pct",
                    JsonValue::Num(me.comparison.timing_improvement_pct),
                ),
                (
                    "da_power_reduction_pct",
                    JsonValue::Num(da.comparison.power_reduction_pct),
                ),
                (
                    "da_area_reduction_pct",
                    JsonValue::Num(da.comparison.area_reduction_pct),
                ),
                (
                    "da_timing_improvement_pct",
                    JsonValue::Num(da.comparison.timing_improvement_pct),
                ),
            ],
        );
    }
}
