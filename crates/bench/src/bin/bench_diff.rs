//! Compares two `BENCH_*.json` summaries key by key and exits non-zero
//! on regression — the CI step that diffs fresh runs against the
//! committed baselines, and a local tool for eyeballing a change's
//! metric impact.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin bench_diff -- \
//!     BENCH_stream.json fresh/BENCH_stream.json --threshold 0.01
//! ```
//!
//! Key classes (see `dsra_bench::diff`): `*_ms` wall-clock timings are
//! report-only; digests, strings and integer counts hard-fail on any
//! change; fractional numbers fail beyond the relative `--threshold`
//! (default 1 %); missing or extra keys always fail.

use dsra_bench::{diff_documents, parse_f64, parse_json};

fn load(path: &str) -> dsra_bench::Json {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_json(&src).unwrap_or_else(|e| {
        eprintln!("{path} is not strict JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (old, new) = match (args.get(1), args.get(2)) {
        (Some(a), Some(b)) if !a.starts_with("--") && !b.starts_with("--") => (a, b),
        _ => {
            eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--threshold f]");
            std::process::exit(2);
        }
    };
    let threshold = parse_f64("--threshold", 0.01);
    let report = diff_documents(&load(old), &load(new), threshold);
    print!("{}", report.render());
    if report.regressed() {
        std::process::exit(1);
    }
}
