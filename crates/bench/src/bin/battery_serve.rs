//! E12 — energy-aware serving per battery charge: the E11 job mix is
//! served in chunks until a full battery discharges, once per scheduling
//! policy (naive / diff-aware / energy-aware), comparing jobs served per
//! charge (DESIGN.md §7).
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin battery_serve
//! cargo run -p dsra-bench --release --bin battery_serve -- \
//!     --capacity 2e9 --chunk 120 --da 2 --me 2 --seed 0x50C5EED --json
//! ```
//!
//! Output is byte-identical across runs with the same arguments: the
//! battery drains by the deterministic per-serve energy totals, and every
//! policy decision is a pure function of (jobs, config, battery reading).
//! The discharge loop itself is `dsra_bench::discharge_battery` — the
//! same definition `tests/battery_serve.rs` gates in tier-1.

use dsra_bench::{
    banner, discharge_runtime, install_profile_arg, install_trace_arg, json_flag, parse_f64,
    parse_u64, write_chrome_trace, write_json_summary, write_metrics_arg, write_profile_arg,
    DischargeOutcome, JsonValue,
};
use dsra_runtime::{
    DefaultPolicy, EnergyAwarePolicy, NaivePolicy, PowerConfig, RuntimeConfig, SchedulePolicy,
    SocRuntime,
};
use dsra_video::JobMixConfig;

fn parse_u32(name: &str, default: u32) -> u32 {
    u32::try_from(parse_u64(name, u64::from(default)))
        .unwrap_or_else(|_| panic!("value for {name} exceeds u32"))
}

fn parse_u8(name: &str, default: u8) -> u8 {
    u8::try_from(parse_u64(name, u64::from(default)))
        .unwrap_or_else(|_| panic!("value for {name} exceeds u8"))
}

fn main() {
    let capacity = parse_f64("--capacity", 2.0e9);
    let chunk = parse_u32("--chunk", 120);
    let da = parse_u64("--da", 2) as usize;
    let me = parse_u64("--me", 2) as usize;
    let seed = parse_u64("--seed", 0x50C_5EED);
    let low_pct = parse_u8("--low-pct", 20);
    let max_serves = parse_u64("--max-serves", 64);
    banner("E12", "energy-aware serving: jobs per full battery charge");
    println!(
        "battery {capacity:.3e} J, {chunk}-job chunks of the E11 mix (seed {seed:#x}), \
         pool {da} DA + {me} ME, low-battery threshold {low_pct}%\n"
    );

    let config = || RuntimeConfig {
        da_arrays: da,
        me_arrays: me,
        power: PowerConfig {
            battery_capacity_j: capacity,
            low_battery_pct: low_pct,
            ..Default::default()
        },
        ..Default::default()
    };
    let base = JobMixConfig {
        jobs: chunk,
        seed,
        ..Default::default()
    };
    let policies: Vec<Box<dyn SchedulePolicy>> = vec![
        Box::new(NaivePolicy),
        Box::new(DefaultPolicy),
        Box::new(EnergyAwarePolicy::default()),
    ];
    let mut runs: Vec<DischargeOutcome> = Vec::new();
    let count = policies.len();
    for (i, policy) in policies.into_iter().enumerate() {
        let mut runtime = SocRuntime::with_policy(config(), policy).expect("runtime construction");
        // `--trace <file>` records the last policy's discharge (the
        // energy-aware run the E12 gate celebrates).
        let trace_path = if i + 1 == count {
            install_trace_arg(&mut runtime)
        } else {
            None
        };
        // `--profile-out <file>` captures the same (last) policy's
        // discharge as an attribution flamegraph.
        let profile = if i + 1 == count {
            install_profile_arg(&mut runtime)
        } else {
            None
        };
        runs.push(discharge_runtime(&mut runtime, base, max_serves).expect("discharge run"));
        write_profile_arg(&runtime, &profile);
        if let Some(path) = &trace_path {
            write_chrome_trace(&mut runtime, path);
        }
    }

    println!("policy        jobs/charge  serves  low-batt  J/job       frames/J");
    for r in &runs {
        println!(
            "{:<12}  {:>11}  {:>6}  {:>8}  {:>10.3e}  {:.6e}",
            r.policy,
            r.jobs_served,
            r.reports.len(),
            r.low_battery_serves,
            r.joules_per_job(),
            r.frames_per_joule()
        );
    }

    let by_name = |n: &str| runs.iter().find(|r| r.policy == n).unwrap();
    let naive = by_name("naive");
    let energy = by_name("energy-aware");
    println!(
        "\nenergy-aware served {} jobs per charge vs. {} naive ({:+.1} %) — \
         the paper's low-battery argument, measured.",
        energy.jobs_served,
        naive.jobs_served,
        (energy.jobs_served as f64 / naive.jobs_served.max(1) as f64 - 1.0) * 100.0
    );
    assert!(
        energy.jobs_served > naive.jobs_served,
        "E12 gate: energy-aware must serve strictly more jobs per charge"
    );

    let mut metrics: Vec<(String, JsonValue)> = vec![
        ("battery_capacity_j".into(), JsonValue::Num(capacity)),
        ("chunk_jobs".into(), JsonValue::Int(u64::from(chunk))),
        ("low_battery_pct".into(), JsonValue::Int(u64::from(low_pct))),
    ];
    for r in &runs {
        let key = r.policy.replace('-', "_");
        metrics.push((
            format!("{key}_jobs_per_charge"),
            JsonValue::Int(r.jobs_served as u64),
        ));
        metrics.push((
            format!("{key}_serves"),
            JsonValue::Int(r.reports.len() as u64),
        ));
        metrics.push((format!("{key}_total_j"), JsonValue::Num(r.total_j)));
    }
    metrics.push((
        "energy_aware_gain_pct".into(),
        JsonValue::Num((energy.jobs_served as f64 / naive.jobs_served.max(1) as f64 - 1.0) * 100.0),
    ));
    if json_flag() {
        write_json_summary("battery_serve", "E12", &metrics);
    }
    write_metrics_arg(&metrics);
}
