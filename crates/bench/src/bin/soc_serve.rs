//! E11 — the multi-array SoC runtime under heavy mixed traffic: a seeded
//! queue of DCT / motion-search / encode jobs served across a pool of DA
//! and ME arrays with content-addressed bitstream caching and diff-aware
//! scheduling (DESIGN.md §6).
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin soc_serve
//! cargo run -p dsra-bench --release --bin soc_serve -- \
//!     --jobs 1000 --da 2 --me 2 --seed 0x50C5EED --json
//! ```
//!
//! Output is byte-identical across runs with the same arguments — the
//! scheduler plans deterministically and the worker threads only execute
//! plans — which is exactly what the `outcome digest` line pins.

use dsra_bench::{
    arg_value, banner, install_profile_arg, install_trace_arg, json_flag, parse_u64,
    write_chrome_trace, write_metrics_arg, write_profile_arg, JsonValue,
};
use dsra_runtime::{BackendKind, RuntimeConfig, SocRuntime};
use dsra_video::{generate_job_mix, JobMixConfig};

fn main() {
    let jobs = parse_u64("--jobs", 1000) as u32;
    let da = parse_u64("--da", 2) as usize;
    let me = parse_u64("--me", 2) as usize;
    let seed = parse_u64("--seed", 0x50C_5EED);
    // `--backend check` runs every job through the array simulator *and*
    // the software golden reference, failing on the first divergence; the
    // report (and its digest) is byte-identical across all three because
    // outcomes are pinned by the backend contract.
    let backend = match arg_value("--backend") {
        None => BackendKind::default(),
        Some(name) => BackendKind::from_name(&name)
            .unwrap_or_else(|| panic!("--backend must be one of array|golden|check, got `{name}`")),
    };
    banner(
        "E11",
        "multi-array SoC runtime: cache + diff-aware scheduling",
    );
    println!(
        "pool: {da} DA + {me} ME arrays, {jobs} jobs, seed {seed:#x}, {} backend\n",
        backend.name()
    );

    let mix = generate_job_mix(JobMixConfig {
        jobs,
        seed,
        ..Default::default()
    });
    let mut runtime = SocRuntime::new(RuntimeConfig {
        da_arrays: da,
        me_arrays: me,
        backend,
        ..Default::default()
    })
    .expect("runtime construction");
    let trace_path = install_trace_arg(&mut runtime);
    // `--profile-out <file>` tees the same event stream into the
    // attribution profiler and dumps the serve as a flamegraph.
    let profile = install_profile_arg(&mut runtime);
    let report = runtime.serve(&mix).expect("serve");
    print!("{}", report.render());
    write_profile_arg(&runtime, &profile);
    if let Some(path) = &trace_path {
        write_chrome_trace(&mut runtime, path);
    }

    let hit_rate = report.cache.hit_rate();
    println!(
        "\nplace-and-route paid {} time(s) for {} job-kernel lookups",
        runtime.cache_stats().misses,
        runtime.cache_stats().lookups()
    );
    assert!(
        jobs < 200 || hit_rate > 0.9,
        "cache hit rate {hit_rate:.3} below the E11 gate"
    );

    if json_flag() {
        // The phases object carries this run's wall-clock planning/exec
        // split; everything else in the document is byte-identical per
        // seed.
        std::fs::write(
            "BENCH_runtime.json",
            report.to_json_with_phases("E11", runtime.phase_timings()),
        )
        .expect("write BENCH_runtime.json");
        println!("wrote BENCH_runtime.json");
    }
    // `--metrics <file>`: the scalar view of the same report in
    // Prometheus text exposition (counters for counts, gauges for rates).
    let metrics: Vec<(String, JsonValue)> = vec![
        ("jobs".into(), JsonValue::Int(report.jobs as u64)),
        ("dct_jobs".into(), JsonValue::Int(report.dct_jobs as u64)),
        ("me_jobs".into(), JsonValue::Int(report.me_jobs as u64)),
        (
            "encode_jobs".into(),
            JsonValue::Int(report.encode_jobs as u64),
        ),
        (
            "makespan_cycles".into(),
            JsonValue::Int(report.makespan_cycles),
        ),
        (
            "jobs_per_megacycle".into(),
            JsonValue::Num(report.jobs_per_megacycle),
        ),
        (
            "cache_lookups".into(),
            JsonValue::Int(report.cache.lookups()),
        ),
        ("cache_hits".into(), JsonValue::Int(report.cache.hits)),
        ("cache_misses".into(), JsonValue::Int(report.cache.misses)),
        ("cache_hit_rate".into(), JsonValue::Num(hit_rate)),
        (
            "total_reconfig_bits".into(),
            JsonValue::Int(report.total_reconfig_bits),
        ),
        (
            "reconfig_events".into(),
            JsonValue::Int(report.reconfig_events as u64),
        ),
        (
            "energy_total_j".into(),
            JsonValue::Num(report.energy.total_j()),
        ),
    ];
    write_metrics_arg(&metrics);
}
