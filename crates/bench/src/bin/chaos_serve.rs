//! E15 — chaos serving (DESIGN.md §13): the E13 multi-tenant stream
//! under a seeded fault plan — stuck-at lanes, transient upsets,
//! corrupted configuration writes, array death, battery brownouts — once
//! with the full recovery stack (golden spot checks, retry-elsewhere,
//! quarantine + probes) and once fault-*oblivious*, comparing corrupt
//! results served, corruption-aware goodput and tail latency.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin chaos_serve
//! cargo run -p dsra-bench --release --bin chaos_serve -- \
//!     --tenants 3 --duration 6000 --rate 450 --da 2 --me 2 \
//!     --seed 7 --json --trace chaos.trace.json
//! ```
//!
//! Output is byte-identical across runs with the same arguments: the
//! request trace and the fault plan are pure functions of their seeds,
//! and injection, detection, retries and probes all run in the
//! dispatcher's virtual time. `--trace <file>` records the recovery
//! arm's session — fault/divergence/retry/quarantine/restore instants
//! land on the array tracks next to the intervals they perturb.

use dsra_bench::{
    arg_value, banner, chaos_metrics, install_profile_arg, json_flag, latency_histogram, parse_u64,
    write_chrome_trace, write_json_summary, write_metrics_arg, write_profile_arg, JsonValue,
};
use dsra_chaos::{serve_with_chaos, ChaosConfig, ChaosReport, FaultPlan, RecoveryConfig};
use dsra_runtime::{RuntimeConfig, SocRuntime};
use dsra_service::{standard_tenants, ServiceConfig, TraceConfig};
use dsra_trace::EventLog;

fn main() {
    let tenants = parse_u64("--tenants", 3) as u16;
    let duration_us = parse_u64("--duration", 6_000);
    let rate_per_ms = parse_u64("--rate", 450).max(1);
    let da = parse_u64("--da", 2) as usize;
    let me = parse_u64("--me", 2) as usize;
    // Fault-plan seed; the request trace keeps E13's default seed so the
    // offered load is the familiar one.
    let seed = parse_u64("--seed", 7);
    banner(
        "E15",
        "chaos serving: fault injection + detection/retry/quarantine vs. oblivious",
    );
    println!(
        "{tenants} tenants, {duration_us} µs trace, ~{rate_per_ms} req/ms offered, \
         pool {da} DA + {me} ME, fault seed {seed:#x}\n"
    );

    let mean_gap_us = (u64::from(tenants).max(1) * 1000 / rate_per_ms).max(1);
    let trace = TraceConfig {
        tenants: standard_tenants(tenants, mean_gap_us),
        duration_us,
        ..Default::default()
    };
    let plan = FaultPlan::generate(&ChaosConfig {
        seed,
        duration_us,
        arrays: da + me,
        ..Default::default()
    });
    println!("fault plan         : {} events", plan.len());
    for e in plan.events() {
        println!("  t={:>6} µs  array {}  {}", e.at_us, e.array, e.kind.tag());
    }
    println!();

    let arms = [
        ("recovery", RecoveryConfig::default()),
        ("oblivious", RecoveryConfig::oblivious()),
    ];
    let mut reports: Vec<ChaosReport> = Vec::new();
    for (i, (tag, recovery)) in arms.iter().enumerate() {
        let mut runtime = SocRuntime::new(RuntimeConfig {
            da_arrays: da,
            me_arrays: me,
            ..Default::default()
        })
        .expect("runtime construction");
        // `--trace <file>` records the recovery arm (the one with chaos
        // events worth looking at).
        let trace_path = if i == 0 { arg_value("--trace") } else { None };
        if trace_path.is_some() {
            runtime.set_trace_sink(Box::new(EventLog::new()));
        }
        // `--profile-out <file>` captures the same (recovery) arm as an
        // attribution flamegraph, composing with `--trace`.
        let profile = if i == 0 {
            install_profile_arg(&mut runtime)
        } else {
            None
        };
        let report = serve_with_chaos(
            &mut runtime,
            &trace,
            &ServiceConfig::default(),
            &plan,
            *recovery,
        )
        .expect("chaos session");
        println!("--- {tag} ---");
        print!("{}", report.service.render());
        let c = report.counts;
        println!(
            "chaos              : {} faults, {} divergences, {} retries, \
             {} quarantines, {} restores, {} failed jobs",
            c.faults_injected, c.divergences, c.retries, c.quarantines, c.restores, c.failed_jobs
        );
        println!(
            "corruption         : {} of {} executions corrupted, {} corrupt results served",
            report.corrupt_execs, report.total_execs, report.corrupt_served
        );
        println!(
            "useful goodput     : {:.2} % (served, on time, and correct)",
            report.useful_goodput_pct()
        );
        let h = latency_histogram(&report.service);
        println!(
            "serve latency      : p50 {} µs, p99 {} µs",
            h.p50(),
            h.p99()
        );
        println!("chaos digest       : {:#018x}\n", report.digest());
        write_profile_arg(&runtime, &profile);
        if let Some(path) = &trace_path {
            write_chrome_trace(&mut runtime, path);
        }
        reports.push(report);
    }

    let (recovered, oblivious) = (&reports[0], &reports[1]);
    println!(
        "recovery vs oblivious: corrupt served {} vs {}, useful goodput {:.2} % vs {:.2} % — \
         detection plus retry-elsewhere turns silent corruption into served-correct results.",
        recovered.corrupt_served,
        oblivious.corrupt_served,
        recovered.useful_goodput_pct(),
        oblivious.useful_goodput_pct()
    );
    // The E15 gate only means something once the plan actually corrupted
    // results the oblivious arm went on to serve.
    if oblivious.corrupt_served > 0 {
        assert_eq!(
            recovered.corrupt_served, 0,
            "E15 gate: per-job spot checks must withhold every corrupt result"
        );
        assert!(
            recovered.useful_goodput_pct() > oblivious.useful_goodput_pct(),
            "E15 gate: recovery must beat oblivious on corruption-aware goodput"
        );
    }

    let mut metrics: Vec<(String, JsonValue)> = vec![
        ("tenants".into(), JsonValue::Int(u64::from(tenants))),
        ("duration_us".into(), JsonValue::Int(duration_us)),
        ("rate_per_ms".into(), JsonValue::Int(rate_per_ms)),
        ("da_arrays".into(), JsonValue::Int(da as u64)),
        ("me_arrays".into(), JsonValue::Int(me as u64)),
        ("fault_seed".into(), JsonValue::Int(seed)),
        ("faults_planned".into(), JsonValue::Int(plan.len() as u64)),
    ];
    for (report, (tag, _)) in reports.iter().zip(&arms) {
        metrics.extend(chaos_metrics(report, tag));
    }
    if json_flag() {
        write_json_summary("chaos", "E15", &metrics);
    }
    write_metrics_arg(&metrics);
}
