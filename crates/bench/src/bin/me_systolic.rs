//! E3/E8 — Figs. 10–11: the 2-D systolic array vs the 1-D and sequential
//! alternatives: cycles, memory bandwidth, first-SAD latency, search-range
//! sweep.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin me_systolic
//! ```

use dsra_bench::{banner, json_flag, shifted_planes, write_json_summary, JsonValue};
use dsra_me::{full_search, MeEngine, SearchParams, Sequential, Systolic1d, Systolic2d};

fn main() {
    banner("E3/E8", "Figs. 10-11: 2-D systolic ME array");
    let (cur, refp) = shifted_planes(96, 96, (2, -1));
    let n = 8usize;

    println!("architecture comparison (block 8x8, range +-4):");
    println!(
        "{:<22} {:>9} {:>9} {:>11} {:>9} {:>8}",
        "architecture", "clusters", "cycles", "ref fetch", "bw gain", "MV ok"
    );
    let params = SearchParams { block: n, range: 4 };
    let sw = full_search(&cur, &refp, 40, 40, &params);
    let engines: Vec<Box<dyn MeEngine>> = vec![
        Box::new(Systolic2d::new(n).unwrap()),
        Box::new(Systolic1d::new(n).unwrap()),
        Box::new(Sequential::new(n).unwrap()),
    ];
    let mut metrics: Vec<(String, JsonValue)> = Vec::new();
    for eng in &engines {
        let r = eng.search(&cur, &refp, 40, 40, &params).unwrap();
        println!(
            "{:<22} {:>9} {:>9} {:>11} {:>8.2}x {:>8}",
            eng.name(),
            eng.report().total_clusters(),
            r.cycles,
            r.ref_fetches,
            r.bandwidth_reduction(),
            r.best.mv == sw.mv && r.best.sad == sw.sad,
        );
        let key = eng.name().to_lowercase().replace([' ', '-'], "_");
        metrics.push((format!("{key}_cycles"), JsonValue::Int(r.cycles)));
        metrics.push((
            format!("{key}_bw_gain"),
            JsonValue::Num(r.bandwidth_reduction()),
        ));
    }

    println!("\nsearch-range sweep on the 2-D array:");
    println!(
        "{:<8} {:>11} {:>9} {:>13} {:>9}",
        "range", "candidates", "cycles", "cycles/cand", "bw gain"
    );
    let eng = Systolic2d::new(n).unwrap();
    for range in [2, 4, 8] {
        let params = SearchParams { block: n, range };
        let r = eng.search(&cur, &refp, 40, 40, &params).unwrap();
        println!(
            "+-{:<6} {:>11} {:>9} {:>13.2} {:>8.2}x",
            range,
            r.best.candidates,
            r.cycles,
            r.cycles as f64 / r.best.candidates as f64,
            r.bandwidth_reduction()
        );
    }

    let eng16 = Systolic2d::new(16).unwrap();
    println!(
        "\nfirst SAD latency at 16x16 blocks: {} cycles (paper: \"the first\n\
         round of SAD calculations would take 16 clock cycles\")",
        eng16.first_sad_latency()
    );
    println!("\n16x16 array resources:\n{}", eng16.report());

    if json_flag() {
        metrics.push((
            "first_sad_latency_16".to_owned(),
            JsonValue::Int(eng16.first_sad_latency()),
        ));
        write_json_summary("me_systolic", "E3/E8", &metrics);
    }
}
