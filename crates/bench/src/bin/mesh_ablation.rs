//! E6 — interconnect ablation (§2): the mixed 8-bit/1-bit mesh vs an
//! equal-capacity fine-grain 1-bit mesh, across all DCT mappings and the ME
//! array: switches and configuration bits.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin mesh_ablation
//! ```

use dsra_bench::{banner, json_flag, write_json_summary, JsonValue};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_dct::{all_impls, DaParams};
use dsra_me::{MeEngine, Systolic2d};
use dsra_tech::mesh_ablation;

fn main() {
    banner(
        "E6",
        "§2 claim: mixed 8b/1b mesh needs fewer switches + config bits",
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "design", "sw mixed", "sw fine", "ratio", "cfg mixed", "cfg fine", "ratio"
    );
    let da_fabric = Fabric::da_array(20, 14, MeshSpec::mixed());
    let mut metrics: Vec<(String, JsonValue)> = Vec::new();
    for imp in all_impls(DaParams::precise()).unwrap() {
        let (m, f) = mesh_ablation(imp.netlist(), &da_fabric).unwrap();
        println!(
            "{:<12} {:>10} {:>10} {:>7.2}x {:>10} {:>10} {:>7.2}x",
            imp.name(),
            m.switch_points,
            f.switch_points,
            f.switch_points as f64 / m.switch_points as f64,
            m.config_bits,
            f.config_bits,
            f.config_bits as f64 / m.config_bits as f64
        );
        let key = imp.name().to_lowercase().replace([' ', '/'], "_");
        metrics.push((
            format!("{key}_switch_ratio"),
            JsonValue::Num(f.switch_points as f64 / m.switch_points as f64),
        ));
        metrics.push((
            format!("{key}_cfg_bit_ratio"),
            JsonValue::Num(f.config_bits as f64 / m.config_bits as f64),
        ));
    }
    let eng = Systolic2d::new(8).unwrap();
    let me_fabric = Fabric::me_array(26, 20, MeshSpec::mixed());
    let (m, f) = mesh_ablation(eng.netlist(), &me_fabric).unwrap();
    println!(
        "{:<12} {:>10} {:>10} {:>7.2}x {:>10} {:>10} {:>7.2}x",
        "ME 4x8",
        m.switch_points,
        f.switch_points,
        f.switch_points as f64 / m.switch_points as f64,
        m.config_bits,
        f.config_bits,
        f.config_bits as f64 / m.config_bits as f64
    );
    println!(
        "\nEvery multi-bit net on the mixed mesh rides a bus track: one\n\
         switch + one configuration bit steer eight wires at once."
    );
    if json_flag() {
        metrics.push((
            "me_switch_ratio".to_owned(),
            JsonValue::Num(f.switch_points as f64 / m.switch_points as f64),
        ));
        metrics.push((
            "me_cfg_bit_ratio".to_owned(),
            JsonValue::Num(f.config_bits as f64 / m.config_bits as f64),
        ));
        write_json_summary("mesh_ablation", "E6", &metrics);
    }
}
