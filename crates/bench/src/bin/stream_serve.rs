//! E13 — open-loop multi-tenant streaming (DESIGN.md §9): a seeded
//! per-tenant request trace served through the `dsra-service` frontend —
//! admission control, deadline shedding, elastic array pools — once per
//! admission policy, comparing tail latency and SLO violations at equal
//! offered load.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin stream_serve
//! cargo run -p dsra-bench --release --bin stream_serve -- \
//!     --tenants 4 --duration 20000 --rate 900 --da 2 --me 2 \
//!     --policy both --seed 0x57EA4AED --json
//! cargo run -p dsra-bench --release --bin stream_serve -- --monitor --json
//! ```
//!
//! `--monitor` installs the online SLO monitor on every session, prints
//! its dashboard after each, appends the `monitor-shed` closed-loop
//! policy to the run list, and adds the `monitor_*` alert keys to the
//! `--json` summary. `--metrics <file>` dumps the summary metrics in
//! Prometheus text exposition.
//!
//! Output is byte-identical across runs with the same arguments: the
//! trace is a pure function of its config, the dispatcher advances a
//! virtual clock, and every payload is a pure function of its spec —
//! which is exactly what each policy's `outcome digest` line pins.

use dsra_bench::{
    arg_value, banner, install_profile_arg, json_flag, latency_histogram, monitor_metrics,
    parse_u64, shed_wait_histogram, stream_metrics, write_chrome_trace, write_json_summary,
    write_metrics_arg, write_profile_arg, JsonValue,
};
use dsra_monitor::{render_dashboard, MonitorHandle};
use dsra_runtime::{RuntimeConfig, SocRuntime};
use dsra_service::{
    install_monitor, serve_trace, standard_tenants, AdmitPolicy, ServiceConfig, ServiceReport,
    TraceConfig,
};
use dsra_trace::{EventLog, NoopSink, TraceSink};

fn main() {
    let tenants = parse_u64("--tenants", 4) as u16;
    let duration_us = parse_u64("--duration", 20_000);
    // Aggregate offered load in requests per virtual millisecond; the
    // per-tenant mean gap follows from it (background tenants halve
    // their own rate).
    let rate_per_ms = parse_u64("--rate", 900).max(1);
    let da = parse_u64("--da", 2) as usize;
    let me = parse_u64("--me", 2) as usize;
    let seed = parse_u64("--seed", 0x57EA_4AED);
    let policy_arg = arg_value("--policy").unwrap_or_else(|| "both".into());
    banner(
        "E13",
        "open-loop streaming: admission control + elastic pools vs. SLOs",
    );
    println!(
        "{tenants} tenants, {duration_us} µs trace, ~{rate_per_ms} req/ms offered, \
         pool {da} DA + {me} ME, seed {seed:#x}\n"
    );

    let mean_gap_us = (u64::from(tenants).max(1) * 1000 / rate_per_ms).max(1);
    let trace = TraceConfig {
        tenants: standard_tenants(tenants, mean_gap_us),
        duration_us,
        seed,
    };
    let monitored = std::env::args().any(|a| a == "--monitor");
    let mut policies: Vec<AdmitPolicy> = match policy_arg.as_str() {
        "both" => vec![AdmitPolicy::FifoUnbounded, AdmitPolicy::EdfShed],
        name => vec![AdmitPolicy::from_name(name)
            .unwrap_or_else(|| panic!("unknown --policy {name} (fifo | edf | monitor | both)"))],
    };
    if monitored && !policies.contains(&AdmitPolicy::MonitorShed) {
        policies.push(AdmitPolicy::MonitorShed);
    }

    let mut runs: Vec<ServiceReport> = Vec::new();
    let mut last_monitor: Option<MonitorHandle> = None;
    for (i, policy) in policies.iter().enumerate() {
        let mut runtime = SocRuntime::new(RuntimeConfig {
            da_arrays: da,
            me_arrays: me,
            ..Default::default()
        })
        .expect("runtime construction");
        // `--trace <file>` records the last policy's session (the one the
        // E13 gate cares about) as a Chrome trace-event document.
        let trace_path = if i + 1 == policies.len() {
            arg_value("--trace")
        } else {
            None
        };
        // The monitor (and `monitor-shed`) needs the online monitor
        // installed as a tee over whatever the session records into.
        let use_monitor = monitored || *policy == AdmitPolicy::MonitorShed;
        let monitor = if use_monitor {
            let inner: Box<dyn TraceSink> = if trace_path.is_some() {
                Box::new(EventLog::new())
            } else {
                Box::new(NoopSink)
            };
            Some(install_monitor(&mut runtime, &trace.tenants, inner))
        } else {
            if trace_path.is_some() {
                runtime.set_trace_sink(Box::new(EventLog::new()));
            }
            None
        };
        // `--profile-out <file>` captures the last policy's session as
        // an attribution flamegraph; the tee wraps whatever the monitor
        // and `--trace` wiring installed, so all three compose.
        let profile = if i + 1 == policies.len() {
            install_profile_arg(&mut runtime)
        } else {
            None
        };
        let report = serve_trace(
            &mut runtime,
            &trace,
            &ServiceConfig {
                policy: *policy,
                monitor: monitor.clone(),
                ..Default::default()
            },
        )
        .expect("streaming session");
        print!("{}", report.render());
        if let Some(handle) = &monitor {
            print!(
                "{}",
                render_dashboard(&handle.final_snapshot(), &handle.alert_log())
            );
            last_monitor = Some(handle.clone());
        }
        let h = latency_histogram(&report);
        println!(
            "serve latency      : p50 {} µs, p90 {} µs, p99 {} µs, max {} µs",
            h.p50(),
            h.p90(),
            h.p99(),
            h.max()
        );
        println!(
            "shed waits         : p99 {} µs over {} shed\n",
            shed_wait_histogram(&report).p99(),
            report.shed
        );
        write_profile_arg(&runtime, &profile);
        if let Some(path) = &trace_path {
            write_chrome_trace(&mut runtime, path);
        }
        runs.push(report);
    }

    if runs.len() == 2 {
        let fifo = &runs[0];
        let edf = &runs[1];
        let (hf, he) = (latency_histogram(fifo), latency_histogram(edf));
        println!(
            "edf-shed vs fifo   : p99 {} vs {} µs, violations {} vs {}, shed {} vs {} — \
             saying \"no\" to blown budgets keeps the tail inside the SLO.",
            he.p99(),
            hf.p99(),
            edf.violations,
            fifo.violations,
            edf.shed,
            fifo.shed
        );
        // The gate only means something once overload made EDF actually
        // shed (tier-1's tests/stream_serve.rs pins it against a
        // guaranteed-overloaded trace). Light or marginal load — where
        // EDF meets every deadline by reordering alone and may trade a
        // slightly longer tail for zero violations — is a valid
        // configuration, not a failure.
        if fifo.violations > 0 && edf.shed > 0 {
            assert!(
                he.p99() < hf.p99() && edf.violation_pct() < fifo.violation_pct(),
                "E13 gate: EDF+shedding must beat FIFO on p99 latency and violation rate"
            );
        }
    }

    let mut metrics: Vec<(String, JsonValue)> = vec![
        ("tenants".into(), JsonValue::Int(u64::from(tenants))),
        ("duration_us".into(), JsonValue::Int(duration_us)),
        ("rate_per_ms".into(), JsonValue::Int(rate_per_ms)),
        ("da_arrays".into(), JsonValue::Int(da as u64)),
        ("me_arrays".into(), JsonValue::Int(me as u64)),
    ];
    for report in &runs {
        metrics.extend(stream_metrics(report));
    }
    if let Some(handle) = &last_monitor {
        metrics.extend(monitor_metrics(
            &handle.final_snapshot(),
            &handle.alert_log(),
        ));
    }
    if json_flag() {
        write_json_summary("stream", "E13", &metrics);
    }
    write_metrics_arg(&metrics);
}
