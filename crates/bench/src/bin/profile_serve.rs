//! E16 — attribution profiling of the streaming SoC (DESIGN.md §14): the
//! E13 multi-tenant stream replayed with the cycle-exact profiler teed
//! into the trace seam, emitting the per-kernel / per-op / per-array
//! attribution table, `BENCH_profile.json`, and (on request) the
//! collapsed-stack flamegraph and occupancy timeline.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin profile_serve
//! cargo run -p dsra-bench --release --bin profile_serve -- \
//!     --tenants 4 --duration 20000 --rate 900 --da 2 --me 2 \
//!     --seed 0x57EA4AED --json --profile-out profile.folded \
//!     --timeline occupancy.trace.json
//! ```
//!
//! Two gates run on every invocation: the op rollup must account for at
//! least 99 % of pool busy cycles (the largest-remainder split makes it
//! exactly 100 % when every kernel has a mix), and the profiler's
//! per-kernel joules must reconcile with the service report's per-request
//! energy attribution to within 1 nJ. Output is byte-identical across
//! runs with the same arguments — the profiler observes the same
//! virtual-time event stream that makes the serve itself deterministic.

use dsra_bench::{
    arg_value, banner, install_profiler, json_flag, latency_histogram, parse_u64,
    runtime_profile_report, write_chrome_trace, write_flame, write_json_summary, write_metrics_arg,
    JsonValue,
};
use dsra_profile::{flamegraph, utilization_tracks};
use dsra_runtime::{RuntimeConfig, SocRuntime};
use dsra_service::{serve_trace, standard_tenants, AdmitPolicy, ServiceConfig, TraceConfig};
use dsra_trace::{counter_tracks_doc, EventLog};

fn main() {
    let tenants = parse_u64("--tenants", 4) as u16;
    let duration_us = parse_u64("--duration", 20_000);
    let rate_per_ms = parse_u64("--rate", 900).max(1);
    let da = parse_u64("--da", 2) as usize;
    let me = parse_u64("--me", 2) as usize;
    let seed = parse_u64("--seed", 0x57EA_4AED);
    let top_k = parse_u64("--top", 8) as usize;
    banner(
        "E16",
        "cycle-exact attribution: where the stream's cycles and joules went",
    );
    println!(
        "{tenants} tenants, {duration_us} µs trace, ~{rate_per_ms} req/ms offered, \
         pool {da} DA + {me} ME, seed {seed:#x}\n"
    );

    let mean_gap_us = (u64::from(tenants).max(1) * 1000 / rate_per_ms).max(1);
    let trace = TraceConfig {
        tenants: standard_tenants(tenants, mean_gap_us),
        duration_us,
        seed,
    };
    let mut runtime = SocRuntime::new(RuntimeConfig {
        da_arrays: da,
        me_arrays: me,
        ..Default::default()
    })
    .expect("runtime construction");
    // `--trace <file>` still records the raw event stream: the profiler
    // tee wraps the recorder, so both artifacts come from one session.
    let trace_path = arg_value("--trace");
    if trace_path.is_some() {
        runtime.set_trace_sink(Box::new(EventLog::new()));
    }
    let handle = install_profiler(&mut runtime);

    let report = serve_trace(
        &mut runtime,
        &trace,
        &ServiceConfig {
            policy: AdmitPolicy::EdfShed,
            ..Default::default()
        },
    )
    .expect("streaming session");
    print!("{}", report.render());
    let h = latency_histogram(&report);
    println!(
        "serve latency      : p50 {} µs, p90 {} µs, p99 {} µs, max {} µs\n",
        h.p50(),
        h.p90(),
        h.p99(),
        h.max()
    );

    let prof = runtime_profile_report(&runtime, &handle);
    print!("{}", prof.render(top_k));
    println!("profile digest     : {:#018x}", prof.digest());

    // Gate 1 — the op rollup accounts for (essentially) every busy cycle.
    assert!(
        prof.attribution_pct() >= 99.0,
        "E16 gate: op attribution covers {:.3} % of busy cycles (< 99 %)",
        prof.attribution_pct()
    );
    // Gate 2 — per-kernel joules reconcile with the service report's
    // per-request energy attribution to the joule. Both sides sum the
    // same per-job breakdowns, just in different orders, so the only
    // slack is f64 summation order (observed ~1e-4 J at 1e10 J scale).
    let served_energy_j: f64 = report.outcomes.iter().map(|o| o.energy_j).sum();
    let energy_err_j = (prof.total_energy_j - served_energy_j).abs();
    println!(
        "energy reconciliation: profiler {:.9} J vs outcomes {:.9} J (|err| {:.3e} J)\n",
        prof.total_energy_j, served_energy_j, energy_err_j
    );
    assert!(
        energy_err_j < 1.0,
        "E16 gate: kernel energy accounts diverge from request outcomes by {energy_err_j:.3e} J"
    );

    // `--profile-out <file>`: the collapsed-stack flamegraph.
    if let Some(path) = arg_value("--profile-out") {
        let mixes = runtime.kernel_op_mixes();
        let flame = handle.with(|p| flamegraph(p, &mixes));
        write_flame(&flame, &path);
    }
    // `--timeline <file>`: per-array occupancy as Chrome counter tracks.
    if let Some(path) = arg_value("--timeline") {
        let window = parse_u64("--timeline-window", 2_500).max(1);
        let tracks = handle.with(|p| utilization_tracks(p, window));
        std::fs::write(&path, counter_tracks_doc(&tracks)).expect("write timeline file");
        println!("wrote {path}");
    }
    if let Some(path) = &trace_path {
        write_chrome_trace(&mut runtime, path);
    }

    let mut metrics: Vec<(String, JsonValue)> = vec![
        ("tenants".into(), JsonValue::Int(u64::from(tenants))),
        ("duration_us".into(), JsonValue::Int(duration_us)),
        ("rate_per_ms".into(), JsonValue::Int(rate_per_ms)),
        ("served".into(), JsonValue::Int(report.served as u64)),
        ("shed".into(), JsonValue::Int(report.shed as u64)),
        ("busy_cycles".into(), JsonValue::Int(prof.busy_cycles)),
        (
            "attributed_cycles".into(),
            JsonValue::Int(prof.attributed_cycles),
        ),
        (
            "attribution_pct".into(),
            JsonValue::Num(prof.attribution_pct()),
        ),
        (
            "unrouted_cycles".into(),
            JsonValue::Int(prof.unrouted_cycles),
        ),
        (
            "profiled_energy_j".into(),
            JsonValue::Num(prof.total_energy_j),
        ),
        ("served_energy_j".into(), JsonValue::Num(served_energy_j)),
        (
            "mean_utilization_pct".into(),
            JsonValue::Num(prof.mean_utilization_pct()),
        ),
        (
            "profile_digest".into(),
            JsonValue::Str(format!("{:#018x}", prof.digest())),
        ),
    ];
    for a in &prof.arrays {
        metrics.push((
            format!("array{}_utilization_pct", a.array),
            JsonValue::Num(a.utilization_pct),
        ));
    }
    for (i, k) in prof.kernels.iter().take(top_k).enumerate() {
        metrics.push((format!("kernel{i}_name"), JsonValue::Str(k.kernel.clone())));
        metrics.push((
            format!("kernel{i}_exec_cycles"),
            JsonValue::Int(k.exec_cycles),
        ));
        metrics.push((format!("kernel{i}_energy_j"), JsonValue::Num(k.energy_j())));
    }
    for op in prof.hot_ops.iter().take(top_k) {
        metrics.push((
            format!("op_{}_cycles", op.class.tag()),
            JsonValue::Int(op.cycles),
        ));
    }
    if json_flag() {
        write_json_summary("profile", "E16", &metrics);
    }
    write_metrics_arg(&metrics);
}
