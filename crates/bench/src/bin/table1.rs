//! E1 — regenerates **Table 1** of the paper: area usage (clusters) of the
//! DCT implementations, plus the untabulated Fig.-4 basic DA.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin table1
//! ```

use dsra_bench::{banner, json_flag, write_json_summary, JsonValue};
use dsra_core::report::table1;
use dsra_dct::{all_impls, DaParams};

fn main() {
    banner("E1", "Table 1: Area usage of the DCT implementations");
    let impls = all_impls(DaParams::precise()).expect("builders are infallible");
    // Paper column order: MIX ROM, CORDIC 1, CORDIC 2, SCC EVEN/ODD, SCC.
    let order = [
        "MIX ROM", "CORDIC 1", "CORDIC 2", "SCC E/O", "SCC", "BASIC DA",
    ];
    let reports: Vec<_> = order
        .iter()
        .map(|n| {
            impls
                .iter()
                .find(|i| i.name() == *n)
                .expect("all impls present")
                .report()
        })
        .collect();
    let refs: Vec<_> = reports.iter().collect();
    println!("{}", table1(&refs));
    println!("Paper totals:        32      48      38      32      24      (n/a)");
    println!("\nROM geometry per implementation:");
    for r in &reports {
        println!(
            "  {:<10} {:>6} ROM words total, {:>6} cluster config bits",
            r.name(),
            r.memory_words(),
            r.config_bits()
        );
    }

    if json_flag() {
        let mut metrics: Vec<(String, JsonValue)> = Vec::new();
        for r in &reports {
            let key = r.name().to_lowercase().replace([' ', '/'], "_");
            metrics.push((
                format!("{key}_clusters"),
                JsonValue::Int(u64::from(r.total_clusters())),
            ));
            metrics.push((
                format!("{key}_config_bits"),
                JsonValue::Int(r.config_bits()),
            ));
        }
        write_json_summary("table1", "E1", &metrics);
    }
}
