//! Post-processes a `--trace` Chrome trace-event document into operator
//! breakdowns: queue-delay per tenant, per-array utilization/gating
//! timelines, reconfig-stall attribution by kernel, and the top-k hot
//! kernel configurations by fingerprint (DESIGN.md §11).
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin stream_serve -- --trace trace.json
//! cargo run -p dsra-bench --release --bin trace_report -- trace.json --top 8
//! ```
//!
//! The report is a pure function of the trace document, which is itself
//! byte-identical per seed — so the breakdown is too.

use dsra_bench::{analyze_chrome_trace, banner, parse_json, parse_u64};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_report <trace.json> [--top N]");
        std::process::exit(2);
    });
    let top_k = parse_u64("--top", 8) as usize;
    banner("trace_report", "job-lifecycle trace breakdowns");
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = parse_json(&src).unwrap_or_else(|e| panic!("{path} is not strict JSON: {e}"));
    let analysis =
        analyze_chrome_trace(&doc).unwrap_or_else(|e| panic!("{path} is not a trace: {e}"));
    print!("{}", analysis.render(top_k));
}
