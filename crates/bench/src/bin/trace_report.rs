//! Post-processes a `--trace` Chrome trace-event document into operator
//! breakdowns: queue-delay per tenant, per-array utilization/gating
//! timelines, reconfig-stall attribution by kernel, and the top-k hot
//! kernel configurations by fingerprint (DESIGN.md §11).
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin stream_serve -- --trace trace.json
//! cargo run -p dsra-bench --release --bin trace_report -- trace.json --top 8
//! cargo run -p dsra-bench --release --bin trace_report -- trace.json --slo
//! ```
//!
//! `--slo` replays the recorded event stream through the offline
//! `dsra-monitor` (geometry restored from the document's `monitor_*`
//! metadata) and prints the per-tenant error-budget timeline plus the
//! final dashboard — the post-hoc view of exactly the windows the online
//! monitor sealed (DESIGN.md §12).
//!
//! The report is a pure function of the trace document, which is itself
//! byte-identical per seed — so the breakdown is too.

use dsra_bench::{
    analyze_chrome_trace, banner, events_from_chrome, parse_json, parse_u64, slo_config_from_meta,
};
use dsra_monitor::{render_dashboard, render_timeline, Monitor};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_report <trace.json> [--top N] [--slo]");
        std::process::exit(2);
    });
    let top_k = parse_u64("--top", 8) as usize;
    banner("trace_report", "job-lifecycle trace breakdowns");
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = parse_json(&src).unwrap_or_else(|e| panic!("{path} is not strict JSON: {e}"));
    let analysis =
        analyze_chrome_trace(&doc).unwrap_or_else(|e| panic!("{path} is not a trace: {e}"));
    print!("{}", analysis.render(top_k));
    if std::env::args().any(|a| a == "--slo") {
        let events =
            events_from_chrome(&doc).unwrap_or_else(|e| panic!("{path} is not a trace: {e}"));
        let cfg = slo_config_from_meta(&analysis.meta);
        let monitor = Monitor::replay(cfg, events.iter());
        println!("== error-budget timeline ==");
        print!("{}", render_timeline(monitor.timeline()));
        print!(
            "{}",
            render_dashboard(&monitor.final_snapshot(), monitor.alert_log())
        );
    }
}
