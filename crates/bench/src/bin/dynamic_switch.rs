//! E7 — dynamic reconfiguration (§5): switching costs between all pairs of
//! DCT configurations on the shared DA array, plus the battery-drop encode
//! scenario.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin dynamic_switch
//! ```

use dsra_bench::{arg_value, banner, json_flag, write_flame, write_json_summary, JsonValue};
use dsra_dct::DaParams;
use dsra_me::SearchParams;
use dsra_platform::{
    dynamic_encode, profile_all_impls, standard_da_fabric, Condition, ReconfigManager, SocConfig,
};
use dsra_profile::{frame_label, Flame};
use dsra_sim::ExecPlan;
use dsra_tech::TechModel;
use dsra_video::{EncodeConfig, SequenceConfig, SyntheticSequence};

fn main() {
    banner(
        "E7",
        "§5 claim: dynamic reconfiguration under run-time constraints",
    );
    let fabric = standard_da_fabric();
    let mut mgr = ReconfigManager::new(SocConfig::default());
    let impls = profile_all_impls(
        DaParams::precise(),
        &fabric,
        &TechModel::default(),
        &mut mgr,
    )
    .unwrap();

    // Pairwise switching costs.
    println!("\npartial-reconfiguration cost matrix (bits to rewrite):");
    let names: Vec<String> = impls.iter().map(|p| p.profile.name.clone()).collect();
    print!("{:<10}", "");
    for n in &names {
        print!("{n:>10}");
    }
    println!();
    for from in &names {
        mgr.switch_to(from).unwrap();
        print!("{from:<10}");
        for to in &names {
            let rep = mgr.switch_to(to).unwrap();
            print!("{:>10}", rep.bits_written);
            mgr.switch_to(from).unwrap();
        }
        println!();
    }

    // Battery-drop scenario.
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 48,
        height: 48,
        frames: 5,
        ..Default::default()
    });
    let conditions = [
        Condition::HighQuality,
        Condition::HighQuality,
        Condition::LowBattery { charge_pct: 18 },
        Condition::LowBattery { charge_pct: 14 },
    ];
    let cfg = EncodeConfig {
        search: SearchParams {
            block: 16,
            range: 3,
        },
        ..Default::default()
    };
    let mut mgr = ReconfigManager::new(SocConfig::default());
    let impls = profile_all_impls(
        DaParams::precise(),
        &fabric,
        &TechModel::default(),
        &mut mgr,
    )
    .unwrap();
    let frames = dynamic_encode(seq.frames(), &conditions, &impls, &mut mgr, &cfg).unwrap();
    println!("\nbattery-drop scenario:");
    println!("frame  condition      impl        PSNR(dB)  reconfig cost");
    for f in &frames {
        let rc = match f.reconfig {
            Some(r) => format!(
                "{} bits, {} cycles ({:.2} us)",
                r.bits_written, r.cycles, r.micros
            ),
            None => "-".to_owned(),
        };
        println!(
            "{:>5}  {:<13} {:<11} {:>7.2}  {}",
            f.frame_index,
            format!("{:?}", f.condition),
            f.impl_name,
            f.stats.psnr_db,
            rc
        );
    }

    // `--profile-out <file>`: E7 has no SocRuntime, so the flamegraph is
    // built straight from the frame schedule — each frame's DCT cycles
    // split over its implementation's op mix, switch costs under a
    // reconfig leaf. Same folded format as the runtime experiments.
    if let Some(path) = arg_value("--profile-out") {
        let mut flame = Flame::new();
        for f in &frames {
            let imp = impls
                .iter()
                .find(|p| p.profile.name == f.impl_name)
                .expect("scenario frame names a profiled impl");
            let mix = ExecPlan::compile(imp.implementation.netlist())
                .expect("scenario netlists compile")
                .op_mix();
            let name = frame_label(&f.impl_name);
            for (class, share) in mix.attribute(f.stats.dct_cycles) {
                flame.add(
                    &format!("soc;array0;kernel:{name};op:{}", class.tag()),
                    share,
                );
            }
            if let Some(r) = f.reconfig {
                flame.add(&format!("soc;array0;kernel:{name};reconfig"), r.cycles);
            }
        }
        write_flame(&flame, &path);
    }

    if json_flag() {
        let total_bits: u64 = frames
            .iter()
            .filter_map(|f| f.reconfig.map(|r| r.bits_written))
            .sum();
        let switches = frames.iter().filter(|f| f.reconfig.is_some()).count() as u64;
        let min_psnr = frames
            .iter()
            .map(|f| f.stats.psnr_db)
            .fold(f64::INFINITY, f64::min);
        write_json_summary(
            "dynamic_switch",
            "E7",
            &[
                ("frames", JsonValue::Int(frames.len() as u64)),
                ("switches", JsonValue::Int(switches)),
                ("total_reconfig_bits", JsonValue::Int(total_bits)),
                ("min_psnr_db", JsonValue::Num(min_psnr)),
            ],
        );
    }
}
