//! E9 — extends §3.6's remark ("the implementations can have different
//! power consumption due to the different area usage and different signal
//! activities"): per-implementation energy from measured toggle counts
//! under the technology model, forming the area/energy/precision Pareto.
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin dct_energy
//! ```

use dsra_bench::{banner, json_flag, write_json_summary, JsonValue};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::place::{place, PlacerOptions};
use dsra_core::route::{route, RouterOptions};
use dsra_dct::{all_impls, measure_accuracy, DaParams};
use dsra_platform::profiling_activity;
use dsra_power::{energy_per_block, OperatingPoint};
use dsra_tech::{dsra_cost, TechModel};

fn main() {
    banner(
        "E9",
        "§3.6: area/activity/power differences across the mappings",
    );
    let fabric = Fabric::da_array(20, 14, MeshSpec::mixed());
    let model = TechModel::default();
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>10} {:>13} {:>11}",
        "impl", "clusters", "area", "E-dyn/cyc", "P-leak", "E/block", "max |err|"
    );
    let mut rows = Vec::new();
    for imp in all_impls(DaParams::precise()).unwrap() {
        let nl = imp.netlist();
        let placement = place(nl, &fabric, PlacerOptions::default()).unwrap();
        let routing = route(nl, &fabric, &placement, RouterOptions::default()).unwrap();
        // Static + dynamic through the power subsystem's single
        // energy-per-block producer, fed the same profiling stimulus
        // `profile_impl` measures under — formula *and* activity input
        // are shared, so this table and the numbers the run-time
        // policies (and E12's energy accounts) select on cannot drift.
        let act = profiling_activity(nl).unwrap();
        let cost = dsra_cost(nl, &routing.stats, &act, &model);
        let acc = measure_accuracy(imp.as_ref(), 8, 2047, 0xE9).unwrap();
        let split = cost.energy_split();
        let e_block = energy_per_block(&split, imp.cycles_per_block(), &OperatingPoint::NOMINAL);
        println!(
            "{:<10} {:>9} {:>10.1} {:>12.1} {:>10.1} {:>13.1} {:>11.3}",
            imp.name(),
            nl.resource_report().total_clusters(),
            cost.area,
            split.dyn_energy_per_cycle,
            split.leak_power,
            e_block,
            acc.max_abs_err
        );
        rows.push((imp.name().to_owned(), cost.area, e_block, acc.max_abs_err));
    }
    // Pareto front over (area, energy/block, error).
    println!("\nPareto-optimal mappings (no other beats them on area, energy and error at once):");
    for (i, a) in rows.iter().enumerate() {
        let dominated = rows.iter().enumerate().any(|(j, b)| {
            j != i
                && b.1 <= a.1
                && b.2 <= a.2
                && b.3 <= a.3
                && (b.1 < a.1 || b.2 < a.2 || b.3 < a.3)
        });
        if !dominated {
            println!("  {}", a.0);
        }
    }
    println!(
        "\nThis is the table the run-time policies (dsra-platform) select\n\
         from when conditions change — §5's low-battery argument."
    );
    if json_flag() {
        let mut metrics: Vec<(String, JsonValue)> = Vec::new();
        for (name, area, e_block, max_err) in &rows {
            let key = name.to_lowercase().replace([' ', '/'], "_");
            metrics.push((format!("{key}_area"), JsonValue::Num(*area)));
            metrics.push((format!("{key}_energy_per_block"), JsonValue::Num(*e_block)));
            metrics.push((format!("{key}_max_abs_err"), JsonValue::Num(*max_err)));
        }
        write_json_summary("dct_energy", "E9", &metrics);
    }
}
