//! E10 — the end-to-end mobile-video workload: motion-compensated residual
//! coding with hardware DCT, PSNR/rate across quantiser settings and DCT
//! mappings (the paper's §5 flexibility claim made measurable).
//!
//! ```sh
//! cargo run -p dsra-bench --release --bin pipeline
//! ```

use dsra_bench::{banner, json_flag, write_json_summary, JsonValue};
use dsra_dct::{BasicDa, Cordic2, DaParams, DctImpl, SccFull};
use dsra_me::SearchParams;
use dsra_video::{encode_frame, EncodeConfig, Quantizer, SequenceConfig, SyntheticSequence};

fn main() {
    banner("E10", "mini MPEG-4-style encode loop on the arrays");
    let seq = SyntheticSequence::generate(SequenceConfig {
        width: 64,
        height: 64,
        frames: 3,
        pan: (1.0, 0.5),
        objects: 2,
        noise: 2,
        ..Default::default()
    });
    let impls: Vec<Box<dyn DctImpl>> = vec![
        Box::new(BasicDa::new(DaParams::precise()).unwrap()),
        Box::new(SccFull::new(DaParams::precise()).unwrap()),
        Box::new(Cordic2::new(DaParams::precise()).unwrap()),
    ];
    println!(
        "{:<10} {:>6} {:>12} {:>10} {:>12}",
        "impl", "QP", "nz levels", "PSNR dB", "DCT cycles"
    );
    let mut metrics: Vec<(String, JsonValue)> = Vec::new();
    for imp in &impls {
        for qp in [4.0, 10.0, 24.0] {
            let cfg = EncodeConfig {
                search: SearchParams {
                    block: 16,
                    range: 3,
                },
                quantizer: Quantizer::uniform(qp),
            };
            let (_, stats) = encode_frame(seq.frame(1), seq.frame(0), imp.as_ref(), &cfg).unwrap();
            println!(
                "{:<10} {:>6.0} {:>12} {:>10.2} {:>12}",
                imp.name(),
                qp,
                stats.nonzero_levels,
                stats.psnr_db,
                stats.dct_cycles
            );
            let key = imp.name().to_lowercase().replace([' ', '/'], "_");
            metrics.push((
                format!("{key}_qp{qp:.0}_psnr_db"),
                JsonValue::Num(stats.psnr_db),
            ));
            metrics.push((
                format!("{key}_qp{qp:.0}_nonzero_levels"),
                JsonValue::Int(stats.nonzero_levels as u64),
            ));
        }
    }
    println!(
        "\nShape: rate (nonzero levels) falls and PSNR drops as QP grows;\n\
         all mappings sit on the same rate-distortion curve — they are\n\
         interchangeable implementations of one transform."
    );
    if json_flag() {
        write_json_summary("pipeline", "E10", &metrics);
    }
}
