//! # dsra-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §4 for the experiment
//! index) plus Criterion micro-benchmarks. Shared workload builders live
//! here so binaries and benches measure the same things.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_bench::shifted_planes;
//! use dsra_me::{full_search, SearchParams};
//!
//! // The standard ME workload: hash-noise planes with a known shift…
//! let (cur, refp) = shifted_planes(48, 48, (2, -1));
//! // …which full search must recover exactly (SAD 0 at the true offset).
//! let m = full_search(&cur, &refp, 16, 16, &SearchParams { block: 8, range: 3 });
//! assert_eq!(m.mv, (2, -1));
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod discharge;
pub mod json;
pub mod profpost;
pub mod stream;
pub mod tracepost;

/// Fixed-bucket latency histogram — lives in `dsra-trace` now (the
/// metrics registry embeds it) but keeps its historical
/// `dsra_bench::hist` path for every existing caller.
pub use dsra_trace::hist;

use dsra_core::netlist::Netlist;
use dsra_me::Plane;
use dsra_sim::{Activity, Simulator};

pub use chaos::chaos_metrics;
pub use diff::{diff_documents, DiffReport, KeyClass};
pub use discharge::{discharge_battery, discharge_runtime, DischargeOutcome};
pub use hist::Histogram;
pub use json::{parse_json, Json};
pub use profpost::{
    install_profile_arg, install_profiler, runtime_flame, runtime_profile_report, write_flame,
    write_profile_arg,
};
pub use stream::{latency_histogram, monitor_metrics, shed_wait_histogram, stream_metrics};
pub use tracepost::{
    analyze_chrome_trace, events_from_chrome, install_trace_arg, slo_config_from_meta,
    write_chrome_trace, TraceAnalysis,
};

/// Deterministic hash-noise planes with a known shift (no displacement
/// aliasing) — the standard ME workload.
pub fn shifted_planes(w: usize, h: usize, shift: (i32, i32)) -> (Plane, Plane) {
    let pat = |x: i64, y: i64| -> u8 {
        let h = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64;
        ((h ^ (h >> 13)) & 0xFF) as u8
    };
    let mut refd = Vec::with_capacity(w * h);
    let mut curd = Vec::with_capacity(w * h);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            refd.push(pat(x, y));
            curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
        }
    }
    (Plane::new(w, h, curd), Plane::new(w, h, refd))
}

/// Representative switching activity for the 2-D systolic ME array.
pub fn me_activity(nl: &Netlist, cycles: u64) -> Activity {
    let mut sim = Simulator::new(nl).expect("valid ME netlist");
    let cols = nl
        .input_nodes()
        .into_iter()
        .filter(|id| nl.node(*id).name.starts_with("cur"))
        .count() as u64;
    for c in 0..cycles {
        for j in 0..cols {
            let _ = sim.set(&format!("cur{j}"), (c * 31 + j * 7) % 256);
            let _ = sim.set(&format!("ref{j}"), (c * 17 + j * 13) % 256);
        }
        for m in 0..4 {
            let _ = sim.set(&format!("men{m}"), 1);
        }
        sim.step();
    }
    sim.activity().clone()
}

/// Representative switching activity for a DA/DCT netlist (generic control
/// duty cycle; 12-bit random-ish samples).
pub fn da_activity(nl: &Netlist, cycles: u64) -> Activity {
    let mut sim = Simulator::new(nl).expect("valid DA netlist");
    let inputs: Vec<String> = nl
        .input_nodes()
        .into_iter()
        .map(|id| nl.node(id).name.clone())
        .collect();
    for c in 0..cycles {
        for (i, name) in inputs.iter().enumerate() {
            let v = if name.starts_with("ctl_") {
                u64::from((c + i as u64).is_multiple_of(14))
            } else {
                (c * 97 + i as u64 * 55) % 4096
            };
            let _ = sim.set(name, v);
        }
        sim.step();
    }
    sim.activity().clone()
}

/// Prints a header line for experiment binaries.
pub fn banner(experiment: &str, artifact: &str) {
    println!("==============================================================");
    println!("{experiment} — reproduces {artifact}");
    println!("==============================================================");
}

/// A metric value in a machine-readable benchmark summary.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Integer metric.
    Int(u64),
    /// Floating-point metric (serialised with 6 decimals, deterministic).
    Num(f64),
    /// String metric.
    Str(String),
}

impl JsonValue {
    fn render(&self) -> String {
        match self {
            JsonValue::Int(v) => v.to_string(),
            // JSON has no inf/NaN literals (e.g. PSNR of a lossless frame
            // is +inf); null keeps the file parseable.
            JsonValue::Num(v) if !v.is_finite() => "null".to_owned(),
            JsonValue::Num(v) => format!("{v:.6}"),
            JsonValue::Str(v) => format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

/// Renders a flat `{"experiment": .., "metrics": {..}}` JSON summary —
/// the `BENCH_<experiment>.json` payload every experiment binary can emit
/// with `--json`, so the perf trajectory is machine-readable. Keys may be
/// `&str` or `String`.
pub fn json_summary<K: AsRef<str>>(experiment: &str, metrics: &[(K, JsonValue)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    s.push_str("  \"metrics\": {\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {}{}\n",
            key.as_ref(),
            value.render(),
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// `true` when the binary was invoked with `--json`.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// The value following `name` on the command line, if present — the one
/// flag parser every experiment binary shares.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--name <u64>` (decimal or `0x…` hex), falling back to
/// `default` when the flag is absent.
///
/// # Panics
/// Panics on an unparseable value — experiment binaries fail loudly on
/// bad arguments rather than silently measuring something else.
pub fn parse_u64(name: &str, default: u64) -> u64 {
    arg_value(name)
        .map(|v| {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

/// Parses `--name <f64>`, falling back to `default` when absent.
///
/// # Panics
/// Panics on an unparseable value (see [`parse_u64`]).
pub fn parse_f64(name: &str, default: f64) -> f64 {
    arg_value(name)
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

/// Writes a [`json_summary`] to `BENCH_<tag>.json` in the working directory
/// and prints where it went.
pub fn write_json_summary<K: AsRef<str>>(tag: &str, experiment: &str, metrics: &[(K, JsonValue)]) {
    let path = format!("BENCH_{tag}.json");
    std::fs::write(&path, json_summary(experiment, metrics)).expect("write benchmark summary");
    println!("wrote {path}");
}

/// Folds a flat metric vec (the same one [`json_summary`] renders) into a
/// [`dsra_trace::MetricsRegistry`]: integers become counters, floats
/// become gauges, strings (digests, logs) are skipped. The registry's
/// `render_prometheus` then gives every experiment binary a
/// text-exposition dump (`--metrics <file>`) without a second metric
/// definition to drift.
pub fn registry_from_metrics<K: AsRef<str>>(
    metrics: &[(K, JsonValue)],
) -> dsra_trace::MetricsRegistry {
    let mut reg = dsra_trace::MetricsRegistry::new();
    for (key, value) in metrics {
        match value {
            JsonValue::Int(v) => reg.count(key.as_ref(), *v),
            JsonValue::Num(v) => reg.set_gauge(key.as_ref(), *v),
            JsonValue::Str(_) => {}
        }
    }
    reg
}

/// Writes `render_prometheus("dsra")` of the metric vec to the path given
/// by `--metrics <file>`, when the flag is present.
pub fn write_metrics_arg<K: AsRef<str>>(metrics: &[(K, JsonValue)]) {
    if let Some(path) = arg_value("--metrics") {
        let reg = registry_from_metrics(metrics);
        std::fs::write(&path, reg.render_prometheus("dsra")).expect("write metrics file");
        println!("wrote {path}");
    }
}
