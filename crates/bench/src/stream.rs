//! E13 metric assembly: one definition of the `BENCH_stream.json`
//! payload, shared by the `stream_serve` binary, the JSON-contract test
//! and the tier-1 integration gate (`tests/stream_serve.rs`) — so the
//! artifact, its schema test and the acceptance gate cannot drift apart.

use dsra_monitor::AlertLog;
use dsra_service::ServiceReport;
use dsra_trace::HealthSnapshot;

use crate::hist::Histogram;
use crate::JsonValue;

/// Bucket width of the serve-latency histogram (virtual µs).
pub const LATENCY_BUCKET_US: u64 = 25;
/// Bucket count (values beyond ~51 ms land in the overflow bucket).
pub const LATENCY_BUCKETS: usize = 2048;

/// Folds a session's served latencies into the standard E13 histogram.
pub fn latency_histogram(report: &ServiceReport) -> Histogram {
    let mut h = Histogram::new(LATENCY_BUCKET_US, LATENCY_BUCKETS);
    h.record_all(report.sorted_latencies_us());
    h
}

/// Folds the queue residencies of the shed requests into the same
/// fixed-bucket histogram — `shed_wait_p99` says how long requests sat
/// queued before the policy gave up on them.
pub fn shed_wait_histogram(report: &ServiceReport) -> Histogram {
    let mut h = Histogram::new(LATENCY_BUCKET_US, LATENCY_BUCKETS);
    h.record_all(report.sorted_shed_waits_us());
    h
}

/// The per-policy metric block of `BENCH_stream.json`, keys prefixed
/// with the policy tag (`fifo_…` / `edf_shed_…`).
pub fn stream_metrics(report: &ServiceReport) -> Vec<(String, JsonValue)> {
    let tag = report.policy.replace('-', "_");
    let h = latency_histogram(report);
    let sw = shed_wait_histogram(report);
    vec![
        (
            format!("{tag}_requests"),
            JsonValue::Int(report.requests as u64),
        ),
        (
            format!("{tag}_served"),
            JsonValue::Int(report.served as u64),
        ),
        (format!("{tag}_shed"), JsonValue::Int(report.shed as u64)),
        (
            format!("{tag}_violations"),
            JsonValue::Int(report.violations as u64),
        ),
        (format!("{tag}_p50_latency_us"), JsonValue::Int(h.p50())),
        (format!("{tag}_p90_latency_us"), JsonValue::Int(h.p90())),
        (format!("{tag}_p99_latency_us"), JsonValue::Int(h.p99())),
        (format!("{tag}_max_latency_us"), JsonValue::Int(h.max())),
        (format!("{tag}_shed_wait_p99_us"), JsonValue::Int(sw.p99())),
        (
            format!("{tag}_violation_pct"),
            JsonValue::Num(report.violation_pct()),
        ),
        (format!("{tag}_shed_pct"), JsonValue::Num(report.shed_pct())),
        (
            format!("{tag}_goodput_pct"),
            JsonValue::Num(report.goodput_pct()),
        ),
        (
            format!("{tag}_energy_j"),
            JsonValue::Num(report.pool.total_j()),
        ),
        (
            format!("{tag}_joules_per_served"),
            JsonValue::Num(report.joules_per_served()),
        ),
        (
            format!("{tag}_gate_events"),
            JsonValue::Int(report.gate_events() as u64),
        ),
        (
            format!("{tag}_wakes"),
            JsonValue::Int(report.wakes() as u64),
        ),
        (
            format!("{tag}_digest"),
            JsonValue::Str(format!("{:#018x}", report.digest())),
        ),
    ]
}

/// The monitor metric block of `BENCH_stream.json` (present only under
/// `--monitor`): window/alert totals from the final [`HealthSnapshot`]
/// plus the [`AlertLog`] folded to its digest and compact form — enough
/// to pin same-seed byte-identical alerting without growing the file
/// with the full log.
pub fn monitor_metrics(health: &HealthSnapshot, log: &AlertLog) -> Vec<(String, JsonValue)> {
    vec![
        (
            "monitor_windows_sealed".to_owned(),
            JsonValue::Int(health.windows_sealed),
        ),
        (
            "monitor_alerts_active".to_owned(),
            JsonValue::Int(u64::from(health.alerts_active)),
        ),
        (
            "monitor_alert_transitions".to_owned(),
            JsonValue::Int(log.len() as u64),
        ),
        (
            "monitor_alert_digest".to_owned(),
            JsonValue::Str(format!("{:#018x}", log.digest())),
        ),
        (
            "monitor_alert_log".to_owned(),
            JsonValue::Str(log.compact()),
        ),
    ]
}
