//! The E12 discharge loop, shared between the `battery_serve` binary and
//! `tests/battery_serve.rs` so the CI smoke gate and the tier-1 gate
//! measure one definition of "jobs served per battery charge".

use dsra_core::error::Result;
use dsra_runtime::{RuntimeConfig, RuntimeReport, SchedulePolicy, SocRuntime};
use dsra_video::{generate_job_mix, JobMixConfig};

/// What one policy achieved on one full battery charge.
pub struct DischargeOutcome {
    /// The policy's display name.
    pub policy: &'static str,
    /// Jobs that completed with charge still in the battery — the E12
    /// figure of merit.
    pub jobs_served: usize,
    /// Joules drained across all serves (≥ capacity once discharged).
    pub total_j: f64,
    /// Exact frames encoded across all serves.
    pub encoded_frames: u64,
    /// Serves planned while the battery read at or below the low
    /// threshold.
    pub low_battery_serves: usize,
    /// Whether the battery actually ran dry within the serve budget.
    pub discharged: bool,
    /// Every per-serve report, in order.
    pub reports: Vec<RuntimeReport>,
}

impl DischargeOutcome {
    /// Mean joules per served job.
    pub fn joules_per_job(&self) -> f64 {
        if self.jobs_served == 0 {
            0.0
        } else {
            self.total_j / self.jobs_served as f64
        }
    }

    /// Encoded frames per joule.
    pub fn frames_per_joule(&self) -> f64 {
        if self.total_j > 0.0 {
            self.encoded_frames as f64 / self.total_j
        } else {
            0.0
        }
    }
}

/// Serves chunks of the mix described by `base` (via
/// [`JobMixConfig::chunk`]) until the runtime's battery is empty or
/// `max_serves` is hit. A job counts as served iff its battery-trajectory
/// sample shows charge remaining when it completed.
///
/// # Errors
/// Propagates runtime construction and serve failures.
pub fn discharge_battery(
    config: RuntimeConfig,
    policy: Box<dyn SchedulePolicy>,
    base: JobMixConfig,
    max_serves: u64,
) -> Result<DischargeOutcome> {
    let mut runtime = SocRuntime::with_policy(config, policy)?;
    discharge_runtime(&mut runtime, base, max_serves)
}

/// [`discharge_battery`] against a caller-owned runtime — so the caller
/// can install a trace sink first (`battery_serve --trace`) and collect
/// the recorded log afterwards.
///
/// # Errors
/// Propagates serve failures.
pub fn discharge_runtime(
    runtime: &mut SocRuntime,
    base: JobMixConfig,
    max_serves: u64,
) -> Result<DischargeOutcome> {
    let low_pct = runtime.config().power.low_battery_pct;
    let mut out = DischargeOutcome {
        policy: runtime.policy_name(),
        jobs_served: 0,
        total_j: 0.0,
        encoded_frames: 0,
        low_battery_serves: 0,
        discharged: false,
        reports: Vec::new(),
    };
    for index in 0..max_serves {
        if runtime.battery().is_empty() {
            break;
        }
        if runtime.battery().charge_pct() <= low_pct {
            out.low_battery_serves += 1;
        }
        let jobs = generate_job_mix(base.chunk(index));
        let report = runtime.serve(&jobs)?;
        let e = &report.energy;
        out.jobs_served += e
            .battery
            .samples
            .iter()
            .filter(|s| s.charge_j > 0.0)
            .count();
        out.total_j += e.total_j();
        out.encoded_frames += e.encoded_frames;
        out.reports.push(report);
    }
    out.discharged = runtime.battery().is_empty();
    Ok(out)
}
