//! Post-processing for Chrome trace-event documents written by
//! `--trace`: joins the per-array and per-tenant tracks back into the
//! operator-facing breakdowns (`trace_report`).
//!
//! The analyzer consumes exactly what [`dsra_trace::chrome_trace`]
//! emits — `"X"` phase spans on array tracks (pid 0), `"queued"`/`"shed"`
//! spans and `"admit"`/`"complete"` instants on tenant/array tracks,
//! `"C"` counter samples — and is deterministic: same document, same
//! [`TraceAnalysis`], same rendered report.

use std::collections::BTreeMap;

use dsra_monitor::MonitorConfig;
use dsra_runtime::SocRuntime;
use dsra_trace::{
    chrome_trace, ArrayPhase, EnergyBreakdown, EventLog, MetricsRegistry, TraceEvent,
};

use crate::json::Json;

/// Installs a recording [`EventLog`] sink on the runtime when
/// `--trace <file>` was passed on the command line; returns the target
/// path so the caller can [`write_chrome_trace`] after serving.
pub fn install_trace_arg(runtime: &mut SocRuntime) -> Option<String> {
    let path = crate::arg_value("--trace")?;
    runtime.set_trace_sink(Box::new(EventLog::new()));
    Some(path)
}

/// Takes the runtime's recording sink and writes it as a Chrome
/// trace-event document at `path`.
///
/// # Panics
/// Panics when no recording sink was installed or the file can't be
/// written — trace capture fails loudly rather than silently dropping
/// the artifact.
pub fn write_chrome_trace(runtime: &mut SocRuntime, path: &str) {
    let log = runtime
        .take_trace_sink()
        .into_log()
        .expect("a recording sink was installed with --trace");
    std::fs::write(path, chrome_trace(&log)).expect("write trace file");
    println!("wrote {path}");
}

/// Virtual cycles one array spent in each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Powered but idle.
    pub idle: u64,
    /// Power-gated (not leaking, configuration lost).
    pub gated: u64,
    /// Partial (diff) reconfiguration.
    pub reconfig: u64,
    /// Full rewrite after a forced wake.
    pub waking: u64,
    /// Executing a job.
    pub exec: u64,
}

impl PhaseCycles {
    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.idle + self.gated + self.reconfig + self.waking + self.exec
    }

    /// Reconfiguration stall (diff reconfig + wake rewrites).
    pub fn stall(&self) -> u64 {
        self.reconfig + self.waking
    }
}

/// One array's timeline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayTimeline {
    /// Array id (trace track id).
    pub array: u32,
    /// Cycles per phase.
    pub phases: PhaseCycles,
    /// Exec cycles as a fraction of the array's covered span (percent).
    pub utilization_pct: f64,
    /// Gated cycles as a fraction of the covered span (percent).
    pub gated_pct: f64,
}

/// One tenant's queue-delay breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQueue {
    /// Tenant id (trace track id).
    pub tenant: u32,
    /// Requests that reached an array (`queued` spans).
    pub dispatched: u64,
    /// Total cycles those requests waited before their array picked
    /// them up.
    pub queue_cycles: u64,
    /// Worst single queue delay (cycles).
    pub max_queue_cycles: u64,
    /// p99 queue delay (cycles, exact over the sorted delays).
    pub p99_queue_cycles: u64,
    /// Requests shed instead of served.
    pub sheds: u64,
    /// p99 queue residency at the shed instant (cycles).
    pub p99_shed_wait_cycles: u64,
}

/// One kernel configuration's serve statistics (keyed by bitstream
/// fingerprint — two specializations of the same logical kernel count
/// separately).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    /// Bitstream fingerprint (hex).
    pub fingerprint: String,
    /// Kernel display name.
    pub kernel: String,
    /// Jobs completed with this configuration.
    pub completions: u64,
    /// Joules attributed to those jobs (dynamic + static + reconfig).
    pub energy_j: f64,
}

/// Reconfiguration stall attributed to one kernel (by name): cycles the
/// pool spent rewriting configurations to run it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigStall {
    /// Kernel display name.
    pub kernel: String,
    /// Reconfig + wake-rewrite cycles spent switching to this kernel.
    pub stall_cycles: u64,
    /// How many switches that was.
    pub events: u64,
}

/// Everything `trace_report` derives from one trace document.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Session metadata (`otherData`), in document order.
    pub meta: Vec<(String, String)>,
    /// Per-array timelines, array-id order.
    pub arrays: Vec<ArrayTimeline>,
    /// Per-tenant queue breakdowns, tenant-id order.
    pub tenants: Vec<TenantQueue>,
    /// Kernel serve stats, hottest (most completions) first.
    pub kernels: Vec<KernelStat>,
    /// Reconfig stall attribution, largest first.
    pub stalls: Vec<ReconfigStall>,
    /// Jobs with a `complete` instant.
    pub completes: u64,
    /// Completed jobs that also have a `queued` span (full lifecycle).
    pub full_lifecycle: u64,
    /// Shed requests.
    pub sheds: u64,
    /// Final value of every counter track plus the battery trajectory
    /// endpoints, folded into the shared metrics registry.
    pub metrics: MetricsRegistry,
}

fn arg_u64(args: &Json, key: &str) -> Option<u64> {
    args.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

fn exact_p99(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Same nearest-rank convention as `dsra_trace::hist::Histogram`,
    // but exact (no bucketing) since the raw delays are in hand.
    let rank = (sorted.len() as u64 * 99).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Analyzes a parsed `--trace` document.
///
/// # Errors
/// Fails when the document lacks the `traceEvents` array or an event is
/// structurally malformed (missing `name`/`ph`/`pid`/`tid`/`args`).
pub fn analyze_chrome_trace(doc: &Json) -> Result<TraceAnalysis, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("document has no traceEvents array")?;
    let meta: Vec<(String, String)> = match doc.get("otherData") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
            .collect(),
        _ => Vec::new(),
    };

    let mut arrays: BTreeMap<u32, PhaseCycles> = BTreeMap::new();
    let mut array_span: BTreeMap<u32, u64> = BTreeMap::new();
    let mut queues: BTreeMap<u32, (Vec<u64>, Vec<u64>)> = BTreeMap::new(); // delays, shed waits
    let mut kernels: BTreeMap<String, KernelStat> = BTreeMap::new();
    let mut stalls: BTreeMap<String, ReconfigStall> = BTreeMap::new();
    let mut completes = 0u64;
    let mut complete_jobs: Vec<u64> = Vec::new();
    let mut queued_jobs: Vec<u64> = Vec::new();
    let mut metrics = MetricsRegistry::new();

    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let tid = arg_u64(ev, "tid").ok_or_else(|| format!("event {i} has no tid"))? as u32;
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i} has no args"))?;
        match (ph, name) {
            ("X", "idle" | "gated" | "reconfig" | "waking" | "exec") => {
                let dur = arg_u64(ev, "dur").ok_or_else(|| format!("span {i} has no dur"))?;
                let ts = arg_u64(ev, "ts").ok_or_else(|| format!("span {i} has no ts"))?;
                let p = arrays.entry(tid).or_default();
                match name {
                    "idle" => p.idle += dur,
                    "gated" => p.gated += dur,
                    "reconfig" => p.reconfig += dur,
                    "waking" => p.waking += dur,
                    _ => p.exec += dur,
                }
                let end = array_span.entry(tid).or_default();
                *end = (*end).max(ts + dur);
                if matches!(name, "reconfig" | "waking") {
                    let kernel = args
                        .get("kernel")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned();
                    let s = stalls.entry(kernel.clone()).or_insert(ReconfigStall {
                        kernel,
                        stall_cycles: 0,
                        events: 0,
                    });
                    s.stall_cycles += dur;
                    s.events += 1;
                }
            }
            ("X", "queued") => {
                let dur = arg_u64(ev, "dur").unwrap_or(0);
                let q = queues.entry(tid).or_default();
                q.0.push(dur);
                if let Some(job) = arg_u64(args, "job") {
                    queued_jobs.push(job);
                }
            }
            ("X", "shed") => {
                let dur = arg_u64(ev, "dur").unwrap_or(0);
                queues.entry(tid).or_default().1.push(dur);
            }
            ("i", "complete") => {
                completes += 1;
                if let Some(job) = arg_u64(args, "job") {
                    complete_jobs.push(job);
                }
                let fp = args
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let k = kernels.entry(fp.clone()).or_insert(KernelStat {
                    fingerprint: fp,
                    kernel: args
                        .get("kernel")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    completions: 0,
                    energy_j: 0.0,
                });
                k.completions += 1;
                for part in ["dynamic_j", "static_j", "reconfig_j"] {
                    k.energy_j += args.get(part).and_then(Json::as_f64).unwrap_or(0.0);
                }
            }
            ("i", "fault") => metrics.count("chaos_faults", 1),
            ("i", "divergence") => metrics.count("chaos_divergences", 1),
            ("i", "retry") => metrics.count("chaos_retries", 1),
            ("i", "quarantine") => metrics.count("chaos_quarantines", 1),
            ("i", "restore") => metrics.count("chaos_restores", 1),
            ("C", "battery_j") => {
                if let Some(j) = args.get("charge_j").and_then(Json::as_f64) {
                    metrics.set_gauge("battery_final_j", j);
                }
            }
            ("C", _) => {
                // Each session emits one final sample per counter track
                // (its per-session total); summing gives whole-log totals.
                metrics.count(name, arg_u64(args, "value").unwrap_or(0));
            }
            _ => {}
        }
    }

    // Coverage: completed jobs that also carry a queued span.
    queued_jobs.sort_unstable();
    let full_lifecycle = complete_jobs
        .iter()
        .filter(|j| queued_jobs.binary_search(j).is_ok())
        .count() as u64;

    let arrays: Vec<ArrayTimeline> = arrays
        .into_iter()
        .map(|(array, phases)| {
            let span = array_span.get(&array).copied().unwrap_or(0).max(1) as f64;
            ArrayTimeline {
                array,
                phases,
                utilization_pct: phases.exec as f64 * 100.0 / span,
                gated_pct: phases.gated as f64 * 100.0 / span,
            }
        })
        .collect();

    let tenants: Vec<TenantQueue> = queues
        .into_iter()
        .map(|(tenant, (mut delays, mut waits))| {
            delays.sort_unstable();
            waits.sort_unstable();
            TenantQueue {
                tenant,
                dispatched: delays.len() as u64,
                queue_cycles: delays.iter().sum(),
                max_queue_cycles: delays.last().copied().unwrap_or(0),
                p99_queue_cycles: exact_p99(&delays),
                sheds: waits.len() as u64,
                p99_shed_wait_cycles: exact_p99(&waits),
            }
        })
        .collect();
    let sheds = tenants.iter().map(|t| t.sheds).sum();

    let mut kernels: Vec<KernelStat> = kernels.into_values().collect();
    kernels.sort_by(|a, b| {
        b.completions
            .cmp(&a.completions)
            .then_with(|| a.fingerprint.cmp(&b.fingerprint))
    });
    let mut stalls: Vec<ReconfigStall> = stalls.into_values().collect();
    stalls.sort_by(|a, b| {
        b.stall_cycles
            .cmp(&a.stall_cycles)
            .then_with(|| a.kernel.cmp(&b.kernel))
    });

    for t in &tenants {
        metrics
            .hist_mut("queue_delay_cycles", 2_500, 2_048)
            .record(t.queue_cycles.checked_div(t.dispatched).unwrap_or(0));
    }
    metrics.count("trace_completes", completes);
    metrics.count("trace_sheds", sheds);

    Ok(TraceAnalysis {
        meta,
        arrays,
        tenants,
        kernels,
        stalls,
        completes,
        full_lifecycle,
        sheds,
        metrics,
    })
}

impl TraceAnalysis {
    /// Completed jobs with a full lifecycle span chain, as a percentage
    /// of all completed jobs (the ≥95 % coverage gate).
    pub fn coverage_pct(&self) -> f64 {
        if self.completes == 0 {
            return 100.0;
        }
        self.full_lifecycle as f64 * 100.0 / self.completes as f64
    }

    /// Total queue-wait cycles across all tenants.
    pub fn total_queue_cycles(&self) -> u64 {
        self.tenants.iter().map(|t| t.queue_cycles).sum()
    }

    /// Total reconfiguration stall (reconfig + wake rewrites), cycles.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stalls.iter().map(|s| s.stall_cycles).sum()
    }

    /// Total exec cycles across the pool.
    pub fn total_exec_cycles(&self) -> u64 {
        self.arrays.iter().map(|a| a.phases.exec).sum()
    }

    /// The operator report: queue-delay breakdown, per-array timelines,
    /// reconfig-stall attribution, top-`k` hot kernels. Deterministic.
    pub fn render(&self, top_k: usize) -> String {
        let mut s = String::new();
        for (k, v) in &self.meta {
            s.push_str(&format!("{k:<18}: {v}\n"));
        }
        s.push_str(&format!(
            "jobs               : {} completed ({} full-lifecycle, {:.1}% coverage), {} shed\n",
            self.completes,
            self.full_lifecycle,
            self.coverage_pct(),
            self.sheds
        ));
        s.push_str(&format!(
            "cycles             : {} exec, {} queue-wait, {} reconfig-stall\n",
            self.total_exec_cycles(),
            self.total_queue_cycles(),
            self.total_stall_cycles()
        ));
        s.push_str("array  util%  gated%       idle      gated   reconfig     waking       exec\n");
        for a in &self.arrays {
            s.push_str(&format!(
                "{:>5}  {:>5.1}  {:>6.1} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                a.array,
                a.utilization_pct,
                a.gated_pct,
                a.phases.idle,
                a.phases.gated,
                a.phases.reconfig,
                a.phases.waking,
                a.phases.exec
            ));
        }
        s.push_str("tenant  dispatched  queue-cyc  p99-queue  max-queue  sheds  p99-shed-wait\n");
        for t in &self.tenants {
            s.push_str(&format!(
                "{:>6}  {:>10}  {:>9}  {:>9}  {:>9}  {:>5}  {:>13}\n",
                t.tenant,
                t.dispatched,
                t.queue_cycles,
                t.p99_queue_cycles,
                t.max_queue_cycles,
                t.sheds,
                t.p99_shed_wait_cycles
            ));
        }
        s.push_str("reconfig stall by kernel:\n");
        for st in self.stalls.iter().take(top_k) {
            s.push_str(&format!(
                "  {:<28} {:>10} cycles over {} switches\n",
                st.kernel, st.stall_cycles, st.events
            ));
        }
        s.push_str(&format!("top-{top_k} hot kernels by fingerprint:\n"));
        for k in self.kernels.iter().take(top_k) {
            s.push_str(&format!(
                "  {}  {:<24} {:>6} jobs  {:>10.3} J\n",
                k.fingerprint, k.kernel, k.completions, k.energy_j
            ));
        }
        s.push_str(&self.metrics.render());
        s
    }
}

// `TraceEvent` carries `&'static str` class/kind/counter tags; a document
// round-trip has to map the known vocabulary back onto those statics.
fn static_class(s: &str) -> &'static str {
    match s {
        "quality" => "quality",
        "low-power" => "low-power",
        "deadline" => "deadline",
        "background" => "background",
        _ => "?",
    }
}

fn static_kind(s: &str) -> &'static str {
    match s {
        "dct" => "dct",
        "me" => "me",
        "encode" => "encode",
        _ => "?",
    }
}

fn static_counter(s: &str) -> Option<&'static str> {
    match s {
        "cache_hits" => Some("cache_hits"),
        "cache_misses" => Some("cache_misses"),
        "diff_probes" => Some("diff_probes"),
        "diff_memo_misses" => Some("diff_memo_misses"),
        _ => None,
    }
}

fn static_fault_kind(s: &str) -> &'static str {
    match s {
        "stuck_at" => "stuck_at",
        "transient" => "transient",
        "reconfig" => "reconfig",
        "death" => "death",
        "brownout" => "brownout",
        _ => "?",
    }
}

/// Reconstructs the monitor-relevant [`TraceEvent`] stream from a parsed
/// `--trace` document, in virtual-time order (ties broken enqueue-first,
/// so a replaying [`dsra_monitor::Monitor`] joins arrivals before their
/// same-cycle completions and never seals a window early).
///
/// The inverse of [`dsra_trace::chrome_trace`] up to what the exporter
/// keeps: `JobSchedule`/`Meta` events are not rebuilt (the monitor
/// ignores both), shed arrivals lose their deadline (shed jobs never
/// complete, so no violation check reads it), and `battery_j` samples
/// round-trip through the exporter's 6-decimal rendering.
///
/// # Errors
/// Fails when the document lacks `traceEvents` or an event is missing
/// the fields its kind requires.
pub fn events_from_chrome(doc: &Json) -> Result<Vec<TraceEvent>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("document has no traceEvents array")?;
    let mut out: Vec<TraceEvent> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let tid = arg_u64(ev, "tid").ok_or_else(|| format!("event {i} has no tid"))? as u32;
        let ts = arg_u64(ev, "ts").unwrap_or(0);
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i} has no args"))?;
        let job = || {
            arg_u64(args, "job")
                .map(|j| j as u32)
                .ok_or_else(|| format!("event {i} ({name}) has no job"))
        };
        let class = args.get("class").and_then(Json::as_str).unwrap_or("?");
        let kind = args.get("kind").and_then(Json::as_str).unwrap_or("?");
        match (ph, name) {
            ("X", "idle" | "gated" | "reconfig" | "waking" | "exec") => {
                let dur = arg_u64(ev, "dur").ok_or_else(|| format!("span {i} has no dur"))?;
                let phase = match name {
                    "idle" => ArrayPhase::Idle,
                    "gated" => ArrayPhase::Gated,
                    "reconfig" => ArrayPhase::Reconfig,
                    "waking" => ArrayPhase::Waking,
                    _ => ArrayPhase::Exec,
                };
                out.push(TraceEvent::ArrayInterval {
                    array: tid,
                    phase,
                    start: ts,
                    end: ts + dur,
                    job: arg_u64(args, "job").map(|j| j as u32),
                    kernel: args.get("kernel").and_then(Json::as_str).map(str::to_owned),
                });
            }
            ("X", "queued") => {
                out.push(TraceEvent::JobEnqueue {
                    t: ts,
                    job: job()?,
                    tenant: tid,
                    class: static_class(class),
                    kind: static_kind(kind),
                    deadline: arg_u64(args, "deadline").unwrap_or(0),
                });
            }
            ("X", "shed") => {
                let queued = arg_u64(ev, "dur").unwrap_or(0);
                out.push(TraceEvent::JobEnqueue {
                    t: ts,
                    job: job()?,
                    tenant: tid,
                    class: static_class(class),
                    kind: static_kind(kind),
                    deadline: 0,
                });
                out.push(TraceEvent::JobShed {
                    t: ts + queued,
                    job: job()?,
                    tenant: tid,
                    queued,
                });
            }
            ("i", "admit") => out.push(TraceEvent::JobAdmit { t: ts, job: job()? }),
            ("i", "fault") => out.push(TraceEvent::FaultInjected {
                t: ts,
                array: tid,
                kind: static_fault_kind(args.get("kind").and_then(Json::as_str).unwrap_or("?")),
            }),
            ("i", "divergence") => out.push(TraceEvent::DivergenceDetected {
                t: ts,
                job: job()?,
                array: tid,
            }),
            ("i", "retry") => out.push(TraceEvent::JobRetry {
                t: ts,
                job: job()?,
                attempt: arg_u64(args, "attempt").unwrap_or(0) as u32,
            }),
            ("i", "quarantine") => out.push(TraceEvent::ArrayQuarantine {
                t: ts,
                array: tid,
                strikes: arg_u64(args, "strikes").unwrap_or(0) as u32,
            }),
            ("i", "restore") => out.push(TraceEvent::ArrayRestore { t: ts, array: tid }),
            ("i", "complete") => {
                let checksum = args
                    .get("checksum")
                    .and_then(Json::as_str)
                    .and_then(|s| s.strip_prefix("0x"))
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or(0);
                let part = |k: &str| -> f64 { args.get(k).and_then(Json::as_f64).unwrap_or(0.0) };
                out.push(TraceEvent::JobComplete {
                    t: ts,
                    job: job()?,
                    checksum,
                    energy: EnergyBreakdown {
                        dynamic_j: part("dynamic_j"),
                        static_j: part("static_j"),
                        reconfig_j: part("reconfig_j"),
                    },
                });
            }
            ("C", "battery_j") => {
                let charge_j = args
                    .get("charge_j")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("battery sample {i} has no charge_j"))?;
                out.push(TraceEvent::BatteryLevel { t: ts, charge_j });
            }
            ("C", _) => {
                if let Some(counter) = static_counter(name) {
                    out.push(TraceEvent::Counter {
                        t: ts,
                        name: counter,
                        value: arg_u64(args, "value").unwrap_or(0),
                    });
                }
            }
            _ => {}
        }
    }
    let rank = |ev: &TraceEvent| match ev {
        TraceEvent::JobEnqueue { .. } => 0u8,
        _ => 1,
    };
    out.sort_by_key(|ev| (dsra_monitor::event_end_cycle(ev), rank(ev)));
    Ok(out)
}

/// Rebuilds the online monitor's configuration from the geometry
/// metadata a monitored session stamps into `otherData`
/// (`monitor_window_cycles`, `monitor_hist_bucket_cycles`,
/// `monitor_seal_grace_cycles`, `monitor_tenant_budgets` as
/// space-joined `tenant:budget_pct` pairs).
/// Missing keys keep the [`MonitorConfig`] defaults; `keep_timeline` is
/// on, since a post-hoc replay exists to print the budget timeline.
pub fn slo_config_from_meta(meta: &[(String, String)]) -> MonitorConfig {
    let lookup = |key: &str| meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    let mut cfg = MonitorConfig {
        keep_timeline: true,
        ..MonitorConfig::default()
    };
    if let Some(w) = lookup("monitor_window_cycles").and_then(|v| v.parse().ok()) {
        cfg.window_cycles = w;
    }
    if let Some(b) = lookup("monitor_hist_bucket_cycles").and_then(|v| v.parse().ok()) {
        cfg.hist_bucket_cycles = b;
    }
    if let Some(g) = lookup("monitor_seal_grace_cycles").and_then(|v| v.parse().ok()) {
        cfg.seal_grace_cycles = g;
    }
    if let Some(pairs) = lookup("monitor_tenant_budgets") {
        cfg.tenant_budgets = pairs
            .split_whitespace()
            .filter_map(|pair| {
                let (t, b) = pair.split_once(':')?;
                Some((t.parse().ok()?, b.parse().ok()?))
            })
            .collect();
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use dsra_trace::TraceSink;

    fn sample_doc() -> Json {
        let mut log = EventLog::new();
        log.emit(TraceEvent::Meta {
            key: "mode",
            value: "stream".into(),
        });
        for (job, tenant) in [(1u32, 0u32), (2, 1)] {
            log.emit(TraceEvent::JobEnqueue {
                t: 0,
                job,
                tenant,
                class: "deadline",
                kind: "dct",
                deadline: 10_000,
            });
            log.emit(TraceEvent::JobAdmit { t: 0, job });
        }
        log.emit(TraceEvent::JobSchedule {
            t: 100,
            job: 1,
            array: 0,
            kernel: "dct8".into(),
            fingerprint: "aa".repeat(16),
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Idle,
            start: 0,
            end: 100,
            job: None,
            kernel: None,
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Reconfig,
            start: 100,
            end: 400,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Exec,
            start: 400,
            end: 1_000,
            job: Some(1),
            kernel: Some("dct8".into()),
        });
        log.emit(TraceEvent::JobComplete {
            t: 1_000,
            job: 1,
            checksum: 7,
            energy: EnergyBreakdown {
                dynamic_j: 1.0,
                static_j: 0.5,
                reconfig_j: 0.25,
            },
        });
        log.emit(TraceEvent::JobShed {
            t: 900,
            job: 2,
            tenant: 1,
            queued: 900,
        });
        log.emit(TraceEvent::Counter {
            t: 1_000,
            name: "cache_hits",
            value: 4,
        });
        log.emit(TraceEvent::BatteryLevel {
            t: 1_000,
            charge_j: 41.5,
        });
        parse_json(&chrome_trace(&log)).expect("exporter emits strict JSON")
    }

    #[test]
    fn analysis_joins_tracks_back_into_breakdowns() {
        let a = analyze_chrome_trace(&sample_doc()).unwrap();
        assert_eq!(a.completes, 1);
        assert_eq!(a.full_lifecycle, 1);
        assert_eq!(a.sheds, 1);
        assert!((a.coverage_pct() - 100.0).abs() < 1e-12);
        assert_eq!(a.arrays.len(), 1);
        assert_eq!(a.arrays[0].phases.idle, 100);
        assert_eq!(a.arrays[0].phases.reconfig, 300);
        assert_eq!(a.arrays[0].phases.exec, 600);
        assert!((a.arrays[0].utilization_pct - 60.0).abs() < 1e-9);
        assert_eq!(a.total_stall_cycles(), 300);
        assert_eq!(a.stalls[0].kernel, "dct8");
        assert_eq!(a.kernels[0].completions, 1);
        assert!((a.kernels[0].energy_j - 1.75).abs() < 1e-12);
        // tenant 0 queued 100 cycles; tenant 1 shed after 900.
        assert_eq!(a.tenants[0].queue_cycles, 100);
        assert_eq!(a.tenants[1].sheds, 1);
        assert_eq!(a.tenants[1].p99_shed_wait_cycles, 900);
        assert_eq!(a.metrics.counter("cache_hits"), 4);
        let report = a.render(5);
        assert!(report.contains("mode"));
        assert!(report.contains("dct8"));
        assert_eq!(report, a.render(5));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let doc = parse_json("{\"a\": 1}").unwrap();
        assert!(analyze_chrome_trace(&doc).is_err());
        assert!(events_from_chrome(&doc).is_err());
    }

    #[test]
    fn chrome_documents_reconstruct_the_monitor_event_stream() {
        let evs = events_from_chrome(&sample_doc()).unwrap();
        let count = |tag: &str| evs.iter().filter(|e| e.kind_tag() == tag).count();
        // One queued span + one shed span, each rebuilding its arrival.
        assert_eq!(count("enqueue"), 2);
        assert_eq!(count("admit"), 2);
        assert_eq!(count("shed"), 1);
        assert_eq!(count("complete"), 1);
        assert_eq!(count("interval"), 3);
        assert_eq!(count("battery"), 1);
        assert_eq!(count("counter"), 1);
        // Virtual-time order, arrivals first on ties (job 1 enqueues and
        // admits at cycle 0).
        let ends: Vec<u64> = evs.iter().map(dsra_monitor::event_end_cycle).collect();
        assert!(ends.windows(2).all(|w| w[0] <= w[1]), "unsorted: {ends:?}");
        assert_eq!(evs[0].kind_tag(), "enqueue");
        // The completed job keeps its deadline and energy attribution.
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::JobEnqueue {
                job: 1,
                deadline: 10_000,
                class: "deadline",
                kind: "dct",
                ..
            }
        )));
        assert!(evs.iter().any(|e| matches!(
            e,
            TraceEvent::JobComplete { job: 1, checksum: 7, energy, .. }
                if (energy.total_j() - 1.75).abs() < 1e-12
        )));
    }

    #[test]
    fn slo_config_reads_the_monitor_geometry_meta() {
        let meta = vec![
            ("monitor_window_cycles".to_owned(), "12500".to_owned()),
            ("monitor_hist_bucket_cycles".to_owned(), "125".to_owned()),
            ("monitor_seal_grace_cycles".to_owned(), "49".to_owned()),
            (
                "monitor_tenant_budgets".to_owned(),
                "0:2 1:10 2:50".to_owned(),
            ),
        ];
        let cfg = slo_config_from_meta(&meta);
        assert_eq!(cfg.window_cycles, 12_500);
        assert_eq!(cfg.hist_bucket_cycles, 125);
        assert_eq!(cfg.seal_grace_cycles, 49);
        assert_eq!(cfg.tenant_budgets, vec![(0, 2.0), (1, 10.0), (2, 50.0)]);
        assert!(cfg.keep_timeline, "replay keeps the budget timeline");
        // Absent keys keep the defaults.
        let d = slo_config_from_meta(&[]);
        assert_eq!(d.window_cycles, MonitorConfig::default().window_cycles);
        assert!(d.tenant_budgets.is_empty());
    }
}
