//! Hot-path micro-benchmarks gating the zero-allocation serving work
//! (ISSUE 4): the flat-plan cycle engine and the packed bitstream diff.
//! CI runs this file as a smoke pass so regressions in either surface
//! before they reach the `soc_serve` numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use dsra_core::bitstream::Bitstream;
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::place::{place, PlacerOptions};
use dsra_core::route::{route, RouterOptions};
use dsra_dct::{all_impls, BasicDa, DaParams, DctImpl};
use dsra_me::{MeEngine, Systolic2d};
use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra_sim::{ExecPlan, Simulator};
use dsra_trace::{EventLog, NoopSink};
use dsra_video::{generate_job_mix, JobMixConfig};

/// `engine_step`: raw cycles/second of the flat-plan simulator on the two
/// array archetypes — the bit-serial DA datapath and the 2-D systolic ME
/// array. Steady-state stepping performs zero heap allocations.
fn bench_engine_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_step");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let da = BasicDa::new(DaParams::precise()).unwrap();
    let da_plan = ExecPlan::compile(da.netlist()).unwrap();
    let mut da_sim = Simulator::with_plan(da.netlist(), &da_plan);
    g.bench_function("basic_da_1k_cycles", |b| {
        b.iter(|| {
            da_sim.run(1000);
            da_sim.cycle()
        })
    });

    let me = Systolic2d::new(16).unwrap();
    let me_plan = ExecPlan::compile(me.netlist()).unwrap();
    let mut me_sim = Simulator::with_plan(me.netlist(), &me_plan);
    g.bench_function("systolic2d_1k_cycles", |b| {
        b.iter(|| {
            me_sim.run(1000);
            me_sim.cycle()
        })
    });

    // Per-search construction over a shared plan (what the ME worker pays
    // per job): must stay cheap — buffers only, no graph walk.
    g.bench_function("with_plan_construction", |b| {
        b.iter(|| Simulator::with_plan(me.netlist(), &me_plan).cycle())
    });
    g.finish();
}

/// `diff_bits`: the packed XOR+popcount sweep against the map-walk
/// reference it replaced, over all 36 pairs of the six compiled DCT
/// mappings — the exact probe the diff-aware scheduler issues.
fn bench_diff_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_bits");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let fabric = Fabric::da_array(20, 14, MeshSpec::mixed());
    let bitstreams: Vec<Bitstream> = all_impls(DaParams::precise())
        .unwrap()
        .iter()
        .map(|imp| {
            let p = place(imp.netlist(), &fabric, PlacerOptions::default()).unwrap();
            let r = route(imp.netlist(), &fabric, &p, RouterOptions::default()).unwrap();
            Bitstream::generate(imp.netlist(), &fabric, &p, &r)
        })
        .collect();
    g.bench_function("packed_pairwise", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for a in &bitstreams {
                for other in &bitstreams {
                    total += a.diff_bits_packed(other);
                }
            }
            total
        })
    });
    g.bench_function("map_pairwise_reference", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for a in &bitstreams {
                for other in &bitstreams {
                    total += a.diff_bits_map(other);
                }
            }
            total
        })
    });
    g.finish();
}

/// `trace_overhead`: the warm serve with the default (disabled) sink vs
/// an explicitly installed `NoopSink` vs a recording `EventLog` — the
/// zero-cost-when-off claim, measured (ISSUE 7). The first two must be
/// indistinguishable; the third prices full event recording.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let mix = generate_job_mix(JobMixConfig {
        jobs: 40,
        ..Default::default()
    });
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .unwrap();
    rt.serve(&mix).unwrap(); // warm caches and buffers
    let serve = |rt: &mut SocRuntime| {
        rt.recharge_full();
        rt.serve(&mix).unwrap().makespan_cycles
    };
    g.bench_function("serve_default_sink", |b| b.iter(|| serve(&mut rt)));
    rt.set_trace_sink(Box::new(NoopSink));
    g.bench_function("serve_noop_sink", |b| b.iter(|| serve(&mut rt)));
    g.bench_function("serve_event_log", |b| {
        b.iter(|| {
            rt.set_trace_sink(Box::new(EventLog::new()));
            serve(&mut rt)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine_step, bench_diff_bits, bench_trace_overhead
}
criterion_main!(benches);
