//! Criterion benchmarks, one group per paper artifact. These measure the
//! *simulator-side* cost of regenerating each experiment; the experiment
//! outputs themselves come from the `dsra-bench` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use dsra_bench::{da_activity, me_activity, shifted_planes};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::place::{place, PlacerOptions};
use dsra_core::route::{route, RouterOptions};
use dsra_dct::{all_impls, BasicDa, DaParams, DctImpl};
use dsra_me::{MeEngine, SearchParams, Sequential, Systolic1d, Systolic2d};
use dsra_tech::{evaluate_against_fpga, TechModel};

/// Table 1 (E1): building each mapping and extracting its resource column.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_area");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("build_all_and_report", |b| {
        b.iter(|| {
            let impls = all_impls(DaParams::precise()).unwrap();
            let total: u32 = impls.iter().map(|i| i.report().total_clusters()).sum();
            assert_eq!(total, 24 + 32 + 48 + 38 + 32 + 24);
        })
    });
    g.finish();
}

/// Figs. 4–9 (E2): one 8-point block through each mapping, cycle-accurately.
fn bench_dct_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("dct_transform");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let impls = all_impls(DaParams::precise()).unwrap();
    let x = [919i64, -1204, 33, 508, -77, 1800, -900, 263];
    for imp in &impls {
        g.bench_with_input(
            BenchmarkId::from_parameter(imp.name().replace(' ', "_")),
            imp,
            |b, imp| b.iter(|| imp.transform(&x).unwrap()),
        );
    }
    g.finish();
}

/// Figs. 10–11 (E3): one full block search per architecture.
fn bench_me_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("me_search");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let (cur, refp) = shifted_planes(64, 64, (2, -1));
    let params = SearchParams { block: 8, range: 2 };
    let engines: Vec<Box<dyn MeEngine>> = vec![
        Box::new(Systolic2d::new(8).unwrap()),
        Box::new(Systolic1d::new(8).unwrap()),
        Box::new(Sequential::new(8).unwrap()),
    ];
    for eng in &engines {
        g.bench_with_input(
            BenchmarkId::from_parameter(eng.name().replace(' ', "_")),
            eng,
            |b, eng| b.iter(|| eng.search(&cur, &refp, 24, 24, &params).unwrap()),
        );
    }
    g.finish();
}

/// E6: place + route on the mixed vs fine-grain mesh.
fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh_ablation");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    for (name, mesh) in [
        ("mixed", MeshSpec::mixed()),
        ("fine_grain", MeshSpec::fine_grain()),
    ] {
        let fabric = Fabric::da_array(16, 12, mesh);
        g.bench_function(name, |b| {
            b.iter(|| {
                let p = place(imp.netlist(), &fabric, PlacerOptions::default()).unwrap();
                route(imp.netlist(), &fabric, &p, RouterOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

/// E4/E5: the full DSRA-vs-FPGA evaluation pipelines.
fn bench_fpga_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpga_compare");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let model = TechModel::default();
    let eng = Systolic2d::new(8).unwrap();
    let me_act = me_activity(eng.netlist(), 64);
    let me_fabric = Fabric::me_array(26, 20, MeshSpec::mixed());
    g.bench_function("me_array", |b| {
        b.iter(|| evaluate_against_fpga(eng.netlist(), &me_fabric, &me_act, &model).unwrap())
    });
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let da_act = da_activity(imp.netlist(), 64);
    let da_fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
    g.bench_function("da_array", |b| {
        b.iter(|| evaluate_against_fpga(imp.netlist(), &da_fabric, &da_act, &model).unwrap())
    });
    g.finish();
}

/// E7: bitstream generation + diff (the reconfiguration cost kernel).
fn bench_reconfig(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfig");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    use dsra_core::bitstream::Bitstream;
    let fabric = Fabric::da_array(20, 14, MeshSpec::mixed());
    let impls = all_impls(DaParams::precise()).unwrap();
    let bitstreams: Vec<Bitstream> = impls
        .iter()
        .map(|imp| {
            let p = place(imp.netlist(), &fabric, PlacerOptions::default()).unwrap();
            let r = route(imp.netlist(), &fabric, &p, RouterOptions::default()).unwrap();
            Bitstream::generate(imp.netlist(), &fabric, &p, &r)
        })
        .collect();
    g.bench_function("pairwise_diff", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for a in &bitstreams {
                for bstream in &bitstreams {
                    total += a.diff_bits(bstream);
                }
            }
            total
        })
    });
    g.finish();
}

/// E10: one 8×8 block through the 2-D hardware DCT (16 1-D transforms).
fn bench_dct2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let block: [[i64; 8]; 8] =
        std::array::from_fn(|r| std::array::from_fn(|c| ((r * 37 + c * 101) % 255) as i64 - 128));
    g.bench_function("dct_2d_block", |b| {
        b.iter(|| dsra_dct::twod::dct_2d_hw(&imp, &block).unwrap())
    });
    g.finish();
}

/// E11: the multi-array runtime serving a small mixed queue (cache warm
/// after the first iteration — place-and-route is out of the loop).
fn bench_soc_serve(c: &mut Criterion) {
    use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
    use dsra_video::{generate_job_mix, JobMixConfig};
    let mut g = c.benchmark_group("soc_serve");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let mut runtime = SocRuntime::new(RuntimeConfig {
        da_arrays: 2,
        me_arrays: 1,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        ..Default::default()
    })
    .unwrap();
    let jobs = generate_job_mix(JobMixConfig {
        jobs: 24,
        ..Default::default()
    });
    g.bench_function("serve_24_jobs_3_arrays", |b| {
        b.iter(|| {
            let report = runtime.serve(&jobs).unwrap();
            assert_eq!(report.jobs, 24);
            report.makespan_cycles
        })
    });
    g.finish();
}

/// E13: the open-loop streaming frontend dispatching a small overloaded
/// trace — admission, EDF shedding, elastic gating and the virtual-time
/// event loop, end to end (kernels compile once, outside the loop).
fn bench_stream_serve(c: &mut Criterion) {
    use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
    use dsra_service::{serve_trace, standard_tenants, ServiceConfig, TraceConfig};
    let mut g = c.benchmark_group("stream_serve");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let mut runtime = SocRuntime::new(RuntimeConfig {
        da_arrays: 2,
        me_arrays: 1,
        mappings: vec![
            DctMapping::BasicDa,
            DctMapping::MixedRom,
            DctMapping::SccFull,
        ],
        ..Default::default()
    })
    .unwrap();
    let trace = TraceConfig {
        tenants: standard_tenants(3, 40),
        duration_us: 2_000,
        ..Default::default()
    };
    let service = ServiceConfig::default();
    g.bench_function("edf_shed_3_tenants_2ms", |b| {
        b.iter(|| {
            runtime.recharge_full();
            let report = serve_trace(&mut runtime, &trace, &service).unwrap();
            assert!(report.served > 0);
            report.makespan_us
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets =
        bench_table1,
        bench_dct_transform,
        bench_me_search,
        bench_mesh,
        bench_fpga_compare,
        bench_reconfig,
        bench_dct2d,
        bench_soc_serve,
        bench_stream_serve
}
criterion_main!(benches);
