//! Trace semantics (ISSUE 7 satellite): property tests over full
//! streaming sessions pinning the lifecycle invariants the exporter and
//! `trace_report` rely on — per-array state intervals tile the session
//! without overlap or gap, job spans are well-nested, the recorded trace
//! agrees with the SLO report it observed, and two same-seed runs export
//! byte-identical Chrome documents.

use dsra_bench::{analyze_chrome_trace, parse_json};
use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra_service::{serve_trace, standard_tenants, ServiceConfig, ServiceReport, TraceConfig};
use dsra_trace::{chrome_trace, EventLog};
use proptest::prelude::*;

/// One traced streaming session: small enough to run as a property case,
/// big enough to exercise queueing, shedding and elastic gating.
fn traced_session(seed: u64) -> (ServiceReport, EventLog) {
    let trace = TraceConfig {
        tenants: standard_tenants(2, 250),
        duration_us: 3_000,
        seed,
    };
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .expect("runtime");
    rt.set_trace_sink(Box::new(EventLog::new()));
    let report = serve_trace(&mut rt, &trace, &ServiceConfig::default()).expect("session");
    let log = rt.take_trace_sink().into_log().expect("recording sink");
    (report, log)
}

/// Virtual cycles per µs at the default 100 MHz clock.
const CYC: u64 = 100;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The invariants one traced session must satisfy, for any seed.
    #[test]
    fn traced_sessions_satisfy_the_lifecycle_invariants(seed in any::<u64>()) {
        let (report, log) = traced_session(seed);

        // 1 — per-array intervals tile the session: sorted by emission
        // they are contiguous (no overlap, no gap) and every array covers
        // the same [0, session-end) window.
        let intervals = log.array_intervals();
        prop_assert_eq!(intervals.len(), 2, "one timeline per array");
        let mut session_end = None;
        for (array, iv) in &intervals {
            prop_assert!(!iv.is_empty());
            prop_assert_eq!(iv[0].0, 0, "array {} timeline must start at 0", array);
            for w in iv.windows(2) {
                prop_assert_eq!(
                    w[0].1, w[1].0,
                    "array {} intervals must be contiguous", array
                );
            }
            let end = iv.last().unwrap().1;
            prop_assert_eq!(*session_end.get_or_insert(end), end,
                "all arrays must cover the same session window");
        }

        // 2 — span nesting: enqueue ≤ admit ≤ schedule, reconfig starts at
        // the schedule instant, exec follows reconfig seamlessly, and the
        // completion stamp is the exec end.
        let spans = log.job_spans();
        for s in &spans {
            let enq = s.enqueue.expect("every request is enqueued");
            let admit = s.admit.expect("open-loop admission always admits");
            prop_assert!(enq <= admit);
            if let Some((t, queued)) = s.shed {
                prop_assert!(queued <= t);
                prop_assert!(s.schedule.is_none() && s.complete.is_none(),
                    "a shed job must not also be served");
                continue;
            }
            let sched = s.schedule.expect("served jobs are scheduled");
            prop_assert!(admit <= sched);
            let exec = s.exec.expect("served jobs execute");
            if let Some((rs, re)) = s.reconfig {
                prop_assert_eq!(rs, sched, "reconfig starts at the schedule instant");
                prop_assert_eq!(re, exec.0, "exec follows reconfig seamlessly");
            } else {
                prop_assert_eq!(exec.0, sched);
            }
            prop_assert!(exec.0 < exec.1);
            prop_assert_eq!(s.complete.expect("served jobs complete"), exec.1);
        }

        // 3 — the trace agrees with the SLO report it observed: one
        // full-lifecycle span per served request (the ≥95 % coverage gate,
        // met at 100 %), matching checksums and shed waits, energy split
        // summing to the attributed joules.
        let served: Vec<&_> = spans.iter().filter(|s| s.shed.is_none()).collect();
        prop_assert_eq!(served.len(), report.served);
        prop_assert_eq!(spans.len() - served.len(), report.shed);
        prop_assert!(served.iter().all(|s| s.is_full_lifecycle()));
        for s in &spans {
            let o = &report.outcomes[s.job as usize];
            prop_assert_eq!(o.shed, s.shed.is_some());
            if let Some((_, queued)) = s.shed {
                prop_assert_eq!(queued, o.shed_wait_us * CYC);
            } else {
                prop_assert_eq!(s.checksum.unwrap(), o.checksum);
                prop_assert_eq!(s.array.unwrap() as usize, o.array);
                let e = s.energy.unwrap();
                let err = (e.total_j() - o.energy_j).abs();
                prop_assert!(err <= 1e-9 * o.energy_j.max(1.0),
                    "span energy split {} vs attributed {}", e.total_j(), o.energy_j);
                // Queue delay in the trace matches the report's
                // start − arrival to within the µs rounding of start_us.
                let trace_delay = s.schedule.unwrap() - s.enqueue.unwrap();
                let report_delay = (o.start_us - o.arrival_us) * CYC;
                prop_assert!(report_delay >= trace_delay
                    && report_delay - trace_delay < CYC);
            }
        }

        // 4 — the exported document round-trips through the strict parser
        // and the analyzer's sums agree with the report aggregates.
        let doc = parse_json(&chrome_trace(&log)).expect("strict JSON");
        let a = analyze_chrome_trace(&doc).expect("analyzable trace");
        prop_assert_eq!(a.completes as usize, report.served);
        prop_assert_eq!(a.sheds as usize, report.shed);
        prop_assert!(a.coverage_pct() >= 95.0);
        let span_exec: u64 = served.iter().map(|s| {
            let (b, e) = s.exec.unwrap();
            e - b
        }).sum();
        prop_assert_eq!(a.total_exec_cycles(), span_exec);
    }

    /// Determinism: two runs of the same seed export byte-identical
    /// Chrome trace documents.
    #[test]
    fn same_seed_runs_export_identical_bytes(seed in any::<u64>()) {
        let (_, log1) = traced_session(seed);
        let (_, log2) = traced_session(seed);
        prop_assert_eq!(chrome_trace(&log1), chrome_trace(&log2));
    }
}
