//! Replay pinning for the online monitor (ISSUE 8): the health state the
//! monitor builds *while serving* must be reproducible after the fact —
//! first from the in-memory event log, then through the full Chrome
//! round trip (`--trace` export → `events_from_chrome` → replay), which
//! is exactly the `trace_report --slo` path. Alert logs and timelines
//! are bit-exact in both directions; the round-tripped battery charge is
//! only `{:.6}`-lossy, so it is compared approximately.

use dsra_bench::{analyze_chrome_trace, events_from_chrome, parse_json, slo_config_from_meta};
use dsra_monitor::{AlertLog, BudgetPoint, Monitor, MonitorConfig};
use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra_service::{
    install_monitor_with, monitor_config_for, serve_trace, standard_tenants, AdmitPolicy,
    PoolConfig, ServiceConfig, TraceConfig,
};
use dsra_trace::{chrome_trace, EventLog, HealthSnapshot};

use std::sync::OnceLock;

struct OnlineRun {
    log: EventLog,
    cfg: MonitorConfig,
    alerts: AlertLog,
    timeline: Vec<BudgetPoint>,
    snapshot: HealthSnapshot,
}

/// One overloaded monitored session under `monitor-shed`, recorded with
/// a full-lifecycle event log: the alerter latches and acts, and every
/// arrival interleaves monitor queries with the event stream — the
/// hardest case for replay equality.
fn online() -> &'static OnlineRun {
    static RUN: OnceLock<OnlineRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let trace = TraceConfig {
            tenants: standard_tenants(4, 3),
            duration_us: 4_000,
            ..Default::default()
        };
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 1,
            mappings: vec![
                DctMapping::BasicDa,
                DctMapping::MixedRom,
                DctMapping::SccFull,
            ],
            ..Default::default()
        })
        .expect("runtime");
        let mut cfg = monitor_config_for(&trace.tenants, 100);
        cfg.keep_timeline = true;
        let handle = install_monitor_with(&mut rt, cfg.clone(), Box::new(EventLog::new()));
        serve_trace(
            &mut rt,
            &trace,
            &ServiceConfig {
                policy: AdmitPolicy::MonitorShed,
                pool: PoolConfig::default(),
                monitor: Some(handle.clone()),
            },
        )
        .expect("session");
        let log = rt.take_trace_sink().into_log().expect("recording inner");
        // The service-layer seal grace guarantees the online monitor
        // dropped nothing — the precondition for time-ordered replays
        // (the Chrome round trip below) to be exact rather than merely
        // close.
        assert_eq!(
            handle.with(|m| m.drops()),
            (0, 0),
            "online monitor must not late-drop any window contribution"
        );
        OnlineRun {
            log,
            cfg,
            alerts: handle.alert_log(),
            timeline: handle.with(|m| m.timeline().to_vec()),
            snapshot: handle.final_snapshot(),
        }
    })
}

/// Everything except the battery must be bit-exact; the battery charge
/// survives the Chrome round trip only to `{:.6}` precision.
fn assert_snapshots_agree(a: &HealthSnapshot, b: &HealthSnapshot, battery_exact: bool) {
    assert_eq!(a.at_cycle, b.at_cycle);
    assert_eq!(a.window_cycles, b.window_cycles);
    assert_eq!(a.windows_sealed, b.windows_sealed);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.arrays, b.arrays);
    assert_eq!(a.tenants, b.tenants);
    assert_eq!(a.alerts_active, b.alerts_active);
    assert_eq!(a.completes, b.completes);
    assert_eq!(a.sheds, b.sheds);
    match (&a.battery, &b.battery) {
        (None, None) => {}
        (Some(x), Some(y)) if battery_exact => assert_eq!(x, y),
        (Some(x), Some(y)) => {
            assert_eq!(x.at_cycle, y.at_cycle);
            assert!(
                (x.charge_j - y.charge_j).abs() <= 1e-6 * x.charge_j.abs().max(1.0),
                "round-tripped charge {} vs {}",
                y.charge_j,
                x.charge_j
            );
        }
        _ => panic!("battery presence must survive replay"),
    }
}

#[test]
fn replaying_the_event_log_reproduces_the_online_monitor_exactly() {
    let run = online();
    assert!(
        !run.alerts.is_empty(),
        "the overload session must latch alerts"
    );
    let replayed = Monitor::replay(run.cfg.clone(), run.log.events().iter());
    assert_eq!(replayed.alert_log(), &run.alerts);
    assert_eq!(replayed.alert_log().digest(), run.alerts.digest());
    assert_eq!(replayed.timeline(), &run.timeline[..]);
    assert_snapshots_agree(&replayed.final_snapshot(), &run.snapshot, true);
}

#[test]
fn chrome_round_trip_reproduces_the_online_monitor() {
    let run = online();
    let doc = parse_json(&chrome_trace(&run.log)).expect("exporter emits strict JSON");
    let events = events_from_chrome(&doc).expect("round-trip parse");
    let analysis = analyze_chrome_trace(&doc).expect("analysis");
    let cfg = slo_config_from_meta(&analysis.meta);
    assert_eq!(cfg.window_cycles, run.cfg.window_cycles);
    assert_eq!(cfg.hist_bucket_cycles, run.cfg.hist_bucket_cycles);
    assert_eq!(cfg.seal_grace_cycles, run.cfg.seal_grace_cycles);
    assert_eq!(cfg.tenant_budgets, run.cfg.tenant_budgets);

    let replayed = Monitor::replay(cfg, events.iter());
    assert_eq!(
        replayed.alert_log(),
        &run.alerts,
        "alert transitions must survive the Chrome round trip bit-exactly"
    );
    assert_eq!(replayed.timeline(), &run.timeline[..]);
    assert_snapshots_agree(&replayed.final_snapshot(), &run.snapshot, false);
}

#[test]
fn monitor_array_health_matches_the_trace_analyzer() {
    let run = online();
    let doc = parse_json(&chrome_trace(&run.log)).expect("exporter emits strict JSON");
    let analysis = analyze_chrome_trace(&doc).expect("analysis");
    assert_eq!(analysis.arrays.len(), run.snapshot.arrays.len());
    for (post, live) in analysis.arrays.iter().zip(&run.snapshot.arrays) {
        assert_eq!(post.array, live.array);
        assert!(
            (post.utilization_pct - live.utilization_pct).abs() < 1e-9,
            "array {} utilization: post-hoc {} vs online {}",
            post.array,
            post.utilization_pct,
            live.utilization_pct
        );
        assert!(
            (post.gated_pct - live.gated_pct).abs() < 1e-9,
            "array {} gating: post-hoc {} vs online {}",
            post.array,
            post.gated_pct,
            live.gated_pct
        );
    }
}
