//! The `BENCH_<name>.json` contract (ISSUE 3 satellite): everything the
//! experiment binaries can write with `--json` must be parseable JSON
//! carrying the required keys. Before this test the trajectory files were
//! write-only — nothing in the workspace could read one back.

use dsra_bench::{
    chaos_metrics, json_summary, monitor_metrics, parse_json, registry_from_metrics,
    stream_metrics, Json, JsonValue,
};
use dsra_chaos::{serve_with_chaos, ChaosConfig, FaultPlan, RecoveryConfig};
use dsra_runtime::{DctMapping, PhaseTimings, RuntimeConfig, SocRuntime};
use dsra_service::{
    install_monitor, serve_trace, standard_tenants, AdmitPolicy, PoolConfig, ServiceConfig,
    TraceConfig,
};
use dsra_trace::{chrome_trace, EventLog, NoopSink};
use dsra_video::{generate_job_mix, JobMixConfig, JobMixWeights};

/// The flat `json_summary` shape every per-experiment writer uses:
/// `experiment` plus a `metrics` object, surviving the awkward cases
/// (non-finite numbers become null, strings get escaped).
#[test]
fn json_summary_emits_the_contract_shape() {
    let doc = json_summary(
        "E12",
        &[
            ("jobs", JsonValue::Int(42)),
            ("joules_per_job", JsonValue::Num(3.25)),
            ("psnr_db", JsonValue::Num(f64::INFINITY)),
            ("nan_metric", JsonValue::Num(f64::NAN)),
            ("label", JsonValue::Str("quote\" back\\slash".into())),
        ],
    );
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("unparseable summary: {e}\n{doc}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E12"));
    let metrics = v.get("metrics").expect("metrics object");
    assert_eq!(metrics.get("jobs").and_then(Json::as_f64), Some(42.0));
    assert_eq!(
        metrics.get("joules_per_job").and_then(Json::as_f64),
        Some(3.25)
    );
    // JSON has no inf/NaN literals; the writer must null them.
    assert_eq!(metrics.get("psnr_db"), Some(&Json::Null));
    assert_eq!(metrics.get("nan_metric"), Some(&Json::Null));
    assert_eq!(
        metrics.get("label").and_then(Json::as_str),
        Some("quote\" back\\slash")
    );
}

/// The full `RuntimeReport::to_json` payload (`BENCH_runtime.json`):
/// parseable, and every required key present — including the energy and
/// battery-trajectory sections E12 adds.
#[test]
fn runtime_report_json_carries_required_keys() {
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa],
        ..Default::default()
    })
    .expect("runtime");
    let jobs = generate_job_mix(JobMixConfig {
        jobs: 6,
        weights: JobMixWeights {
            dct: 2,
            me: 1,
            encode: 1,
        },
        ..Default::default()
    });
    let report = rt.serve(&jobs).expect("serve");
    let doc = report.to_json("E11");
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("unparseable report: {e}\n{doc}"));

    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E11"));
    // The execution backend is part of the schema (ISSUE 6) but never part
    // of the digest — outcomes are byte-identical across backends.
    assert_eq!(v.get("backend").and_then(Json::as_str), Some("array"));
    for key in [
        "jobs",
        "dct_jobs",
        "me_jobs",
        "encode_jobs",
        "makespan_cycles",
        "jobs_per_megacycle",
        "total_reconfig_bits",
        "reconfig_events",
    ] {
        assert!(
            v.get(key).and_then(Json::as_f64).is_some(),
            "missing numeric key {key}"
        );
    }
    assert!(v.get("outcome_digest").and_then(Json::as_str).is_some());
    // Serve-latency percentiles (ISSUE 5 satellite): arrival → completion,
    // queueing included, pinned as part of the BENCH_runtime.json schema.
    let latency = v.get("latency").expect("latency object");
    for key in ["p50_cycles", "p99_cycles"] {
        assert!(
            latency.get(key).and_then(Json::as_f64).is_some(),
            "missing latency key {key}"
        );
    }
    assert!(
        latency.get("p50_cycles").unwrap().as_f64() <= latency.get("p99_cycles").unwrap().as_f64(),
        "p50 must not exceed p99"
    );
    let cache = v.get("cache").expect("cache object");
    for key in ["lookups", "hits", "misses", "hit_rate"] {
        assert!(cache.get(key).and_then(Json::as_f64).is_some());
    }
    let energy = v.get("energy").expect("energy object");
    for key in [
        "total_j",
        "dynamic_j",
        "static_j",
        "reconfig_j",
        "gated_cycles",
        "joules_per_job",
        "encoded_frames",
        "frames_per_joule",
    ] {
        assert!(
            energy.get(key).and_then(Json::as_f64).is_some(),
            "missing energy key {key}"
        );
    }
    assert!(energy.get("point").and_then(Json::as_str).is_some());
    let battery = v.get("battery").expect("battery object");
    for key in ["capacity_j", "start_j", "end_j", "idle_drain_j"] {
        assert!(battery.get(key).and_then(Json::as_f64).is_some());
    }
    let trajectory = battery
        .get("trajectory")
        .and_then(Json::as_array)
        .expect("trajectory array");
    assert_eq!(trajectory.len(), 6, "one trajectory sample per job");
    for sample in trajectory {
        assert!(sample.get("job").and_then(Json::as_f64).is_some());
        assert!(sample.get("charge_j").and_then(Json::as_f64).is_some());
    }
    // `soc_serve --json` writes the timed variant: same document plus a
    // `phases` object carrying the serve's wall-clock planning/exec split
    // (ISSUE 4). Both keys are part of the BENCH_runtime.json contract.
    let timed = report.to_json_with_phases("E11", rt.phase_timings());
    let tv =
        parse_json(&timed).unwrap_or_else(|e| panic!("unparseable timed report: {e}\n{timed}"));
    let ph = tv.get("phases").expect("phases object");
    for key in ["planning_ms", "exec_ms"] {
        assert!(
            ph.get(key).and_then(Json::as_f64).is_some(),
            "missing phase key {key}"
        );
    }
    // Stripping the phases object back out recovers the deterministic
    // document byte for byte.
    let explicit = report.to_json_with_phases(
        "E11",
        PhaseTimings {
            planning_ms: 1.5,
            exec_ms: 2.5,
        },
    );
    let stripped: String = explicit
        .lines()
        .filter(|l| !l.contains("\"phases\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(stripped, doc, "phases must be a pure addition");

    let arrays = v.get("arrays").and_then(Json::as_array).expect("arrays");
    assert_eq!(arrays.len(), 2);
    for a in arrays {
        for key in [
            "id",
            "jobs",
            "exec_cycles",
            "reconfig_bits",
            "utilization_pct",
            "energy_j",
            "dynamic_j",
            "static_j",
            "reconfig_j",
            "gated_cycles",
        ] {
            assert!(
                a.get(key).and_then(Json::as_f64).is_some(),
                "missing array key {key}"
            );
        }
        assert!(a.get("kind").and_then(Json::as_str).is_some());
    }
}

/// The `BENCH_stream.json` payload (E13): `stream_metrics` must emit a
/// parseable per-policy block with every pinned key, for both admission
/// policies, from one shared definition (`dsra_bench::stream`).
#[test]
fn stream_metrics_carry_the_bench_stream_contract() {
    let trace = TraceConfig {
        tenants: standard_tenants(2, 300),
        duration_us: 4_000,
        ..Default::default()
    };
    let mut all: Vec<(String, JsonValue)> = vec![
        ("tenants".into(), JsonValue::Int(2)),
        ("duration_us".into(), JsonValue::Int(4_000)),
        ("rate_per_ms".into(), JsonValue::Int(7)),
        ("da_arrays".into(), JsonValue::Int(1)),
        ("me_arrays".into(), JsonValue::Int(1)),
    ];
    for policy in [AdmitPolicy::FifoUnbounded, AdmitPolicy::EdfShed] {
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 1,
            mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
            ..Default::default()
        })
        .expect("runtime");
        let report = serve_trace(
            &mut rt,
            &trace,
            &ServiceConfig {
                policy,
                ..Default::default()
            },
        )
        .expect("session");
        all.extend(stream_metrics(&report));
    }
    let doc = json_summary("E13", &all);
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("unparseable stream summary: {e}\n{doc}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E13"));
    let metrics = v.get("metrics").expect("metrics object");
    for key in [
        "tenants",
        "duration_us",
        "rate_per_ms",
        "da_arrays",
        "me_arrays",
    ] {
        assert!(
            metrics.get(key).and_then(Json::as_f64).is_some(),
            "missing run key {key}"
        );
    }
    for tag in ["fifo", "edf_shed"] {
        for key in [
            "requests",
            "served",
            "shed",
            "violations",
            "p50_latency_us",
            "p90_latency_us",
            "p99_latency_us",
            "max_latency_us",
            "shed_wait_p99_us",
            "violation_pct",
            "shed_pct",
            "goodput_pct",
            "energy_j",
            "joules_per_served",
            "gate_events",
            "wakes",
        ] {
            assert!(
                metrics
                    .get(&format!("{tag}_{key}"))
                    .and_then(Json::as_f64)
                    .is_some(),
                "missing numeric key {tag}_{key}"
            );
        }
        assert!(
            metrics
                .get(&format!("{tag}_digest"))
                .and_then(Json::as_str)
                .is_some(),
            "missing {tag}_digest"
        );
    }
}

/// The `--monitor` extension of `BENCH_stream.json` plus the `--metrics`
/// Prometheus text-exposition dump (ISSUE 8): a monitored session adds
/// exactly the pinned `monitor_*` keys; `registry_from_metrics` folds
/// the same vec into a registry whose Prometheus rendering carries the
/// numeric keys (strings like digests are skipped by design); and both
/// documents are byte-identical across same-seed runs.
#[test]
fn monitor_metrics_and_prometheus_dump_extend_the_stream_contract() {
    let session = || {
        let trace = TraceConfig {
            tenants: standard_tenants(4, 3),
            duration_us: 3_000,
            ..Default::default()
        };
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 1,
            mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
            ..Default::default()
        })
        .expect("runtime");
        let handle = install_monitor(&mut rt, &trace.tenants, Box::new(NoopSink));
        let report = serve_trace(
            &mut rt,
            &trace,
            &ServiceConfig {
                policy: AdmitPolicy::MonitorShed,
                pool: PoolConfig::default(),
                monitor: Some(handle.clone()),
            },
        )
        .expect("session");
        let health = report.health.clone().expect("monitored session has health");
        let mut metrics = stream_metrics(&report);
        metrics.extend(monitor_metrics(&health, &handle.alert_log()));
        metrics
    };

    let metrics = session();
    let doc = json_summary("E13", &metrics);
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("unparseable monitor summary: {e}\n{doc}"));
    let m = v.get("metrics").expect("metrics object");
    for key in [
        "monitor_windows_sealed",
        "monitor_alerts_active",
        "monitor_alert_transitions",
    ] {
        assert!(
            m.get(key).and_then(Json::as_f64).is_some(),
            "missing numeric key {key}"
        );
    }
    for key in ["monitor_alert_digest", "monitor_alert_log"] {
        assert!(
            m.get(key).and_then(Json::as_str).is_some(),
            "missing string key {key}"
        );
    }
    assert!(
        m.get("monitor_windows_sealed").unwrap().as_f64() > Some(0.0),
        "the session spans at least one window"
    );

    let prom = registry_from_metrics(&metrics).render_prometheus("dsra");
    assert!(
        prom.contains("# TYPE dsra_monitor_windows_sealed counter\n"),
        "windows-sealed counter missing from the Prometheus dump:\n{prom}"
    );
    assert!(prom.contains("# TYPE dsra_monitor_shed_requests counter\n"));
    assert!(prom.contains("# TYPE dsra_monitor_shed_violation_pct gauge\n"));
    assert!(
        !prom.contains("digest") && !prom.contains("alert_log"),
        "string metrics must not leak into the Prometheus dump"
    );

    // Same seed, same bytes — for the JSON document and the dump alike.
    let again = session();
    assert_eq!(json_summary("E13", &again), doc);
    assert_eq!(
        registry_from_metrics(&again).render_prometheus("dsra"),
        prom
    );
}

/// The `--trace` Chrome trace-event document (ISSUE 7): strict-parseable
/// JSON whose event kinds, categories and per-kind required keys are
/// pinned here. A new event kind or a dropped key is a schema change and
/// must update this test.
#[test]
fn chrome_trace_document_carries_the_pinned_schema() {
    let trace = TraceConfig {
        tenants: standard_tenants(2, 300),
        duration_us: 4_000,
        ..Default::default()
    };
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .expect("runtime");
    rt.set_trace_sink(Box::new(EventLog::new()));
    serve_trace(&mut rt, &trace, &ServiceConfig::default()).expect("session");
    let log = rt.take_trace_sink().into_log().expect("recording sink");
    let doc = chrome_trace(&log);
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("trace is not strict JSON: {e}"));

    // Top-level shape.
    assert!(v.get("displayTimeUnit").and_then(Json::as_str).is_some());
    let other = v.get("otherData").expect("otherData object");
    for key in ["mode", "backend", "policy"] {
        assert!(
            other.get(key).and_then(Json::as_str).is_some(),
            "missing session metadata {key}"
        );
    }
    assert_eq!(other.get("mode").and_then(Json::as_str), Some("stream"));

    let seen = assert_chrome_events(&v);
    // Every pinned event kind actually occurs in a streaming session.
    for ph in ["M", "X", "i", "C"] {
        assert!(
            seen.iter().any(|(p, _, _)| p == ph),
            "no {ph} events in the document"
        );
    }
}

/// Validates every event of a parsed Chrome document against the pinned
/// schema — phase/category/name sets and the keys each kind must carry —
/// returning the `(ph, cat, name)` triples seen. Shared by the plain
/// streaming schema test and the chaos-session one.
fn assert_chrome_events(v: &Json) -> Vec<(String, String, String)> {
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default();
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or_default();
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        for key in ["name", "cat", "ph"] {
            assert!(
                ev.get(key).and_then(Json::as_str).is_some(),
                "event {i}: {key}"
            );
        }
        for key in ["ts", "pid", "tid"] {
            assert!(
                ev.get(key).and_then(Json::as_f64).is_some(),
                "event {i}: {key}"
            );
        }
        let args = ev.get("args").expect("args object");
        match ph {
            "M" => {
                assert_eq!(cat, "__metadata");
                assert!(matches!(name, "process_name" | "thread_name"), "{name}");
                assert!(args.get("name").and_then(Json::as_str).is_some());
            }
            "X" => {
                assert!(
                    ev.get("dur").and_then(Json::as_f64).is_some(),
                    "event {i}: dur"
                );
                match cat {
                    "array" => assert!(
                        matches!(name, "idle" | "gated" | "reconfig" | "waking" | "exec"),
                        "unknown array phase {name}"
                    ),
                    "job" => {
                        assert!(matches!(name, "queued" | "shed"), "unknown job span {name}");
                        assert!(args.get("job").and_then(Json::as_f64).is_some());
                    }
                    other => panic!("unknown X category {other}"),
                }
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
                match cat {
                    "job" => {
                        assert!(
                            matches!(name, "admit" | "complete"),
                            "unknown instant {name}"
                        );
                        assert!(args.get("job").and_then(Json::as_f64).is_some());
                        if name == "complete" {
                            for key in ["checksum", "kernel", "fingerprint"] {
                                assert!(args.get(key).and_then(Json::as_str).is_some(), "{key}");
                            }
                            for key in ["dynamic_j", "static_j", "reconfig_j"] {
                                assert!(args.get(key).is_some(), "{key}");
                            }
                        }
                    }
                    // Chaos/recovery instants (E15): injection, detection
                    // and quarantine land on the array tracks.
                    "chaos" => match name {
                        "fault" => {
                            assert!(args.get("kind").and_then(Json::as_str).is_some())
                        }
                        "divergence" => {
                            assert!(args.get("job").and_then(Json::as_f64).is_some())
                        }
                        "retry" => {
                            assert!(args.get("job").and_then(Json::as_f64).is_some());
                            assert!(args.get("attempt").and_then(Json::as_f64).is_some());
                        }
                        "quarantine" => {
                            assert!(args.get("strikes").and_then(Json::as_f64).is_some())
                        }
                        "restore" => {}
                        other => panic!("unknown chaos instant {other}"),
                    },
                    other => panic!("unknown i category {other}"),
                }
            }
            "C" => {
                assert_eq!(cat, "counter");
                assert!(
                    matches!(
                        name,
                        "battery_j"
                            | "cache_hits"
                            | "cache_misses"
                            | "diff_probes"
                            | "diff_memo_misses"
                    ),
                    "unknown counter track {name}"
                );
            }
            other => panic!("unknown phase {other}"),
        }
        seen.push((ph.to_owned(), cat.to_owned(), name.to_owned()));
    }
    seen
}

/// The `BENCH_chaos.json` payload (E15) and the chaos extension of the
/// Chrome-trace schema: `chaos_metrics` must emit a parseable per-arm
/// block with every pinned key, and a chaos session's trace export must
/// carry the `chaos`-category instants (validated against the same
/// pinned per-event schema as plain streaming sessions).
#[test]
fn chaos_metrics_and_chrome_instants_carry_the_bench_chaos_contract() {
    let trace = TraceConfig {
        tenants: standard_tenants(3, 150),
        duration_us: 6_000,
        ..Default::default()
    };
    let plan = FaultPlan::generate(&ChaosConfig {
        seed: 7,
        duration_us: trace.duration_us,
        arrays: 4,
        ..Default::default()
    });
    let session = |recovery: RecoveryConfig, record: bool| {
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 2,
            me_arrays: 2,
            mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
            ..Default::default()
        })
        .expect("runtime");
        if record {
            rt.set_trace_sink(Box::new(EventLog::new()));
        }
        let report = serve_with_chaos(&mut rt, &trace, &ServiceConfig::default(), &plan, recovery)
            .expect("chaos session");
        let log = record.then(|| rt.take_trace_sink().into_log().expect("recording sink"));
        (report, log)
    };

    let (recovered, log) = session(RecoveryConfig::default(), true);
    let (oblivious, _) = session(RecoveryConfig::oblivious(), false);

    // The chaos instants pass the pinned Chrome schema and actually occur.
    let doc = chrome_trace(&log.expect("recorded"));
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("chaos trace is not strict JSON: {e}"));
    let seen = assert_chrome_events(&v);
    for name in ["fault", "divergence", "retry", "quarantine"] {
        assert!(
            seen.iter().any(|(_, c, n)| c == "chaos" && n == name),
            "no chaos/{name} instant in the chaos-session trace"
        );
    }

    // The per-arm metric blocks carry every pinned key.
    let mut metrics: Vec<(String, JsonValue)> = vec![
        ("duration_us".into(), JsonValue::Int(trace.duration_us)),
        ("fault_seed".into(), JsonValue::Int(7)),
        ("faults_planned".into(), JsonValue::Int(plan.len() as u64)),
    ];
    metrics.extend(chaos_metrics(&recovered, "recovery"));
    metrics.extend(chaos_metrics(&oblivious, "oblivious"));
    let doc = json_summary("E15", &metrics);
    let v = parse_json(&doc).unwrap_or_else(|e| panic!("unparseable chaos summary: {e}\n{doc}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E15"));
    let m = v.get("metrics").expect("metrics object");
    for key in ["duration_us", "fault_seed", "faults_planned"] {
        assert!(
            m.get(key).and_then(Json::as_f64).is_some(),
            "missing run key {key}"
        );
    }
    for tag in ["recovery", "oblivious"] {
        for key in [
            "requests",
            "served",
            "shed",
            "failed",
            "violations",
            "p50_latency_us",
            "p99_latency_us",
            "goodput_pct",
            "useful_goodput_pct",
            "corrupt_served",
            "corrupt_execs",
            "total_execs",
            "faults_injected",
            "divergences",
            "retries",
            "quarantines",
            "restores",
        ] {
            assert!(
                m.get(&format!("{tag}_{key}"))
                    .and_then(Json::as_f64)
                    .is_some(),
                "missing numeric key {tag}_{key}"
            );
        }
        assert!(
            m.get(&format!("{tag}_digest"))
                .and_then(Json::as_str)
                .is_some(),
            "missing {tag}_digest"
        );
    }
}
