//! Profiler neutrality (ISSUE 10 satellite): the attribution profiler is
//! a pure observer on the trace-sink seam, so enabling it must never
//! change what a session computes. For random seeds, the E11 batch
//! serve, the E13 streaming session, and the E15 chaos session each run
//! twice — bare sink vs. [`dsra_profile::ProfileSink`] tee — and their
//! outcome digests must match bit for bit while the profiler proves it
//! actually watched the run (non-zero busy cycles, full attribution).

use dsra_bench::{install_profiler, runtime_profile_report};
use dsra_chaos::{serve_with_chaos, ChaosConfig, FaultPlan, RecoveryConfig};
use dsra_runtime::{RuntimeConfig, SocRuntime};
use dsra_service::{serve_trace, standard_tenants, ServiceConfig, TraceConfig};
use dsra_video::{generate_job_mix, JobMixConfig};
use proptest::prelude::*;

fn small_runtime() -> SocRuntime {
    SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        ..Default::default()
    })
    .expect("runtime construction")
}

fn small_trace(seed: u64) -> TraceConfig {
    TraceConfig {
        tenants: standard_tenants(2, 250),
        duration_us: 3_000,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// E11 batch serving: same job mix, same outcome digest with the
    /// profiler on, and the profiler accounts for every busy cycle.
    #[test]
    fn batch_serves_are_profile_neutral(seed in any::<u64>()) {
        let mix = generate_job_mix(JobMixConfig {
            jobs: 24,
            seed,
            ..Default::default()
        });
        let mut bare = small_runtime();
        let bare_digest = bare.serve(&mix).expect("bare serve").digest();

        let mut profiled = small_runtime();
        let handle = install_profiler(&mut profiled);
        let prof_digest = profiled.serve(&mix).expect("profiled serve").digest();
        prop_assert_eq!(bare_digest, prof_digest);

        let report = runtime_profile_report(&profiled, &handle);
        prop_assert!(report.busy_cycles > 0, "profiler saw the serve");
        prop_assert_eq!(report.attributed_cycles, report.busy_cycles);
        prop_assert_eq!(report.unrouted_cycles, 0);
    }

    /// E13 streaming: same request trace, same service digest with the
    /// profiler teed in.
    #[test]
    fn streaming_sessions_are_profile_neutral(seed in any::<u64>()) {
        let trace = small_trace(seed);
        let mut bare = small_runtime();
        let bare_digest = serve_trace(&mut bare, &trace, &ServiceConfig::default())
            .expect("bare session")
            .digest();

        let mut profiled = small_runtime();
        let handle = install_profiler(&mut profiled);
        let prof_digest = serve_trace(&mut profiled, &trace, &ServiceConfig::default())
            .expect("profiled session")
            .digest();
        prop_assert_eq!(bare_digest, prof_digest);
        prop_assert!(handle.with(|p| p.end_cycle()) > 0, "profiler saw events");
    }

    /// E15 chaos serving: same fault plan, same chaos digest — faults,
    /// detection, retries and quarantines all land identically whether
    /// or not the profiler watches.
    #[test]
    fn chaos_sessions_are_profile_neutral(seed in any::<u64>()) {
        let trace = small_trace(seed ^ 0x5EED);
        let plan = FaultPlan::generate(&ChaosConfig {
            seed,
            duration_us: trace.duration_us,
            arrays: 2,
            ..Default::default()
        });
        let mut bare = small_runtime();
        let bare_digest = serve_with_chaos(
            &mut bare,
            &trace,
            &ServiceConfig::default(),
            &plan,
            RecoveryConfig::default(),
        )
        .expect("bare chaos session")
        .digest();

        let mut profiled = small_runtime();
        let handle = install_profiler(&mut profiled);
        let prof_digest = serve_with_chaos(
            &mut profiled,
            &trace,
            &ServiceConfig::default(),
            &plan,
            RecoveryConfig::default(),
        )
        .expect("profiled chaos session")
        .digest();
        prop_assert_eq!(bare_digest, prof_digest);
        prop_assert!(handle.with(|p| p.end_cycle()) > 0, "profiler saw events");
    }
}
