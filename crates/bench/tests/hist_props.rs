//! Property tests for `dsra_bench::hist::Histogram` (ISSUE 6 satellite):
//! the bucketed nearest-rank percentile agrees with the naive sort-based
//! definition — exactly at unit bucket width, and to within one bucket
//! width otherwise.

use dsra_bench::Histogram;
use dsra_core::rng::SplitMix64;
use proptest::prelude::*;

/// Naive nearest-rank percentile: sort, take the `ceil(p/100 · n)`-th
/// smallest (1-indexed, clamped to the first value like the histogram).
fn naive_percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Deterministic sample vector: `count` values below `limit`, expanded
/// from one seed (the shim has no vec strategies).
fn samples(seed: u64, count: usize, limit: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| rng.next_below(limit)).collect()
}

proptest! {
    /// With unit-width buckets (and no overflow), the histogram *is* the
    /// naive nearest-rank percentile, at every probed p.
    #[test]
    fn unit_width_is_exact(
        seed in any::<u64>(),
        count in 1usize..400,
    ) {
        // 512 unit buckets, values in [0, 512): no overflow bucket hit.
        let vals = samples(seed, count, 512);
        let mut h = Histogram::new(1, 512);
        h.record_all(vals.iter().copied());
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(
                h.percentile(p),
                naive_percentile(&vals, p),
                "p = {} over {} unit-bucketed samples (seed {})",
                p, count, seed
            );
        }
    }

    /// With wide buckets the histogram's answer brackets the naive one
    /// from above by less than one bucket width: the true nearest-rank
    /// value lands somewhere inside the reported bucket.
    #[test]
    fn wide_buckets_agree_within_one_bucket_width(
        seed in any::<u64>(),
        count in 1usize..300,
        width in 1u64..64,
    ) {
        // Keep every value inside the bucketed range so the overflow
        // bucket (whose bound is the exact max, not a bucket bound) stays
        // out of play: values < width * buckets.
        let buckets = 128usize;
        let vals = samples(seed, count, width * buckets as u64);
        let mut h = Histogram::new(width, buckets);
        h.record_all(vals.iter().copied());
        for p in [50.0, 99.0] {
            let naive = naive_percentile(&vals, p);
            let bucketed = h.percentile(p);
            prop_assert!(
                bucketed >= naive && bucketed < naive + width,
                "p = {}: bucketed {} vs naive {} (width {}, seed {})",
                p, bucketed, naive, width, seed
            );
        }
    }
}
