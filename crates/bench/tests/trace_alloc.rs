//! The zero-cost-when-off gate (ISSUE 7 satellite): with tracing
//! disabled, the serve path performs exactly as many heap allocations as
//! it did before the trace hooks existed — the no-op sink adds none.
//! Extended for ISSUE 8: an installed [`MonitorSink`] must leave serve
//! outcomes byte-identical and keep its own allocations bounded by
//! configuration, and uninstalling it restores the allocation-free path.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dsra_monitor::MonitorConfig;
use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra_service::install_monitor_with;
use dsra_trace::{EventLog, NoopSink};
use dsra_video::{generate_job_mix, JobMixConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn noop_tracing_adds_no_serve_allocations() {
    let mix = generate_job_mix(JobMixConfig {
        jobs: 40,
        ..Default::default()
    });
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .expect("runtime");
    // Warm every cache (bitstreams, diff memo, thread-local buffers) so
    // the measured serves are the steady state.
    rt.serve(&mix).expect("warm serve");

    let serve = |rt: &mut SocRuntime| {
        rt.recharge_full();
        rt.serve(&mix).expect("serve").digest()
    };

    // Warm serving is allocation-deterministic: two identical serves with
    // the default (disabled) sink allocate identically.
    let (baseline, d1) = allocs_during(|| serve(&mut rt));
    let (again, d2) = allocs_during(|| serve(&mut rt));
    assert_eq!(d1, d2, "warm serves must be byte-identical");
    assert_eq!(
        baseline, again,
        "warm serves must be allocation-deterministic"
    );

    // An explicitly installed NoopSink is indistinguishable from the
    // default: the disabled trace path allocates nothing per job.
    rt.set_trace_sink(Box::new(NoopSink));
    let (noop, d3) = allocs_during(|| serve(&mut rt));
    assert_eq!(d1, d3);
    assert_eq!(
        noop, baseline,
        "NoopSink must add zero allocations over the default sink"
    );

    // Sanity: a recording sink does allocate (events, strings) — the
    // comparison above is not vacuous.
    rt.set_trace_sink(Box::new(EventLog::new()));
    let (recording, d4) = allocs_during(|| serve(&mut rt));
    assert_eq!(d1, d4, "tracing must not change outcomes");
    assert!(
        recording > baseline,
        "recording sink should allocate ({recording} vs {baseline})"
    );
}

#[test]
fn monitor_sink_preserves_outcomes_and_its_allocations_stay_bounded() {
    let mix = generate_job_mix(JobMixConfig {
        jobs: 40,
        ..Default::default()
    });
    let mut rt = SocRuntime::new(RuntimeConfig {
        da_arrays: 1,
        me_arrays: 1,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .expect("runtime");
    rt.serve(&mix).expect("warm serve");

    let serve = |rt: &mut SocRuntime| {
        rt.recharge_full();
        rt.serve(&mix).expect("serve").digest()
    };
    let (baseline, reference) = allocs_during(|| serve(&mut rt));

    // Monitoring observes every event but must not perturb outcomes.
    let handle = install_monitor_with(&mut rt, MonitorConfig::default(), Box::new(NoopSink));
    let (first, d1) = allocs_during(|| serve(&mut rt));
    assert_eq!(d1, reference, "monitoring must not change serve outcomes");
    let (second, d2) = allocs_during(|| serve(&mut rt));
    assert_eq!(d2, reference);
    assert!(
        first > baseline,
        "the monitor does build state ({first} vs {baseline})"
    );
    // Monitor memory is bounded by configuration, not stream length: once
    // its maps and windows exist, another identical serve allocates no
    // more than the first pass did.
    assert!(
        second <= first,
        "steady-state monitoring must not grow allocations ({second} vs {first})"
    );
    assert_eq!(handle.with(|m| m.drops()), (0, 0), "nothing miscounted");

    // Uninstalling the monitor restores the allocation-free serve path.
    rt.set_trace_sink(Box::new(NoopSink));
    let (off, d3) = allocs_during(|| serve(&mut rt));
    assert_eq!(d3, reference);
    assert_eq!(
        off, baseline,
        "with the monitor gone the serve path allocates exactly as before"
    );
}
