//! The differential contract suite: every job class through the array
//! simulator and the golden software reference, asserting *byte-equal*
//! outcomes — same checksum, same cycle count. Golden-vector fixtures
//! (committed JSON under `fixtures/`) additionally pin both backends to
//! known-good values, so a regression that corrupts both backends the same
//! way still fails.

use dsra_backend::{ArrayBackend, Backend, BackendKind, CheckBackend, DctMapping, GoldenBackend};
use dsra_dct::DaParams;
use dsra_video::{JobPayload, JobSpec, ServiceClass};

/// A DCT-blocks job on the given mapping.
fn dct_job(id: u32, seed: u64, blocks: u16, amplitude: i64) -> JobSpec {
    JobSpec {
        id,
        arrival_cycle: 0,
        class: ServiceClass::Quality,
        payload: JobPayload::DctBlocks { blocks, amplitude },
        seed,
    }
}

fn me_job(id: u32, seed: u64, size: (u16, u16), shift: (i8, i8), block: u8, range: u8) -> JobSpec {
    JobSpec {
        id,
        arrival_cycle: 0,
        class: ServiceClass::Quality,
        payload: JobPayload::MeSearch {
            size,
            shift,
            block,
            range,
        },
        seed,
    }
}

fn encode_job(id: u32, seed: u64, size: (u16, u16), frames: u8, noise: u8) -> JobSpec {
    JobSpec {
        id,
        arrival_cycle: 0,
        class: ServiceClass::Quality,
        payload: JobPayload::EncodeGop {
            size,
            frames,
            noise,
        },
        seed,
    }
}

/// Runs one job through both backends and asserts identical outcomes.
fn assert_agree(job: &JobSpec, kernel: &str) {
    let params = DaParams::precise();
    let array = ArrayBackend::default()
        .execute(params, job, kernel)
        .expect("array backend");
    let golden = GoldenBackend::default()
        .execute(params, job, kernel)
        .expect("golden backend");
    assert_eq!(
        array, golden,
        "job {} on `{kernel}`: array vs golden outcome diverged",
        job.id
    );
}

#[test]
fn dct_contract_all_mappings_randomized() {
    for (i, mapping) in DctMapping::ALL.into_iter().enumerate() {
        for seed in 0..4u64 {
            let job = dct_job(
                1000 + (i as u32) * 10 + seed as u32,
                0x9E37_79B9 ^ (seed * 0x5851_F42D),
                6,
                120,
            );
            assert_agree(&job, mapping.name());
        }
    }
}

#[test]
fn dct_contract_extreme_amplitudes() {
    // Full-scale inputs exercise saturation/wraparound corners of the
    // fixed-point pipeline; tiny amplitudes exercise the sign cycle.
    for mapping in DctMapping::ALL {
        assert_agree(&dct_job(1, 7, 4, 255), mapping.name());
        assert_agree(&dct_job(2, 11, 4, 1), mapping.name());
        assert_agree(&dct_job(3, 13, 1, 0), mapping.name());
    }
}

#[test]
fn me_contract_randomized() {
    for seed in 0..6u64 {
        let job = me_job(
            2000 + seed as u32,
            0xDEAD_BEEF ^ seed.wrapping_mul(0xA24B_AED4),
            (48, 32),
            ((seed as i8 % 3) - 1, (seed as i8 % 2)),
            16,
            2,
        );
        assert_agree(&job, "ME 16");
    }
    // A larger range drives partial batches (range not a multiple of the
    // module count) through the analytic counters.
    assert_agree(&me_job(2100, 99, (64, 48), (2, -1), 16, 4), "ME 16");
    assert_agree(&me_job(2101, 101, (32, 32), (0, 0), 8, 3), "ME 8");
}

#[test]
fn encode_contract_randomized() {
    for (i, mapping) in DctMapping::ALL.into_iter().enumerate() {
        let job = encode_job(3000 + i as u32, 42 + i as u64, (48, 48), 3, 2);
        assert_agree(&job, mapping.name());
    }
}

#[test]
fn check_backend_passes_and_reports_array_outcome() {
    let params = DaParams::precise();
    let job = dct_job(4000, 77, 3, 100);
    let mut check = CheckBackend::default();
    let outcome = check.execute(params, &job, "CORDIC 2").expect("check mode");
    let array = ArrayBackend::default()
        .execute(params, &job, "CORDIC 2")
        .unwrap();
    assert_eq!(outcome, array, "check mode must surface the array outcome");
}

/// A divergence on an *ME* job (not just DCT) must surface as the
/// structured type with the diverging fields intact, and its `Display`
/// must render the exact legacy message `CheckBackend` used to format
/// inline — replay tooling greps for that text.
#[test]
fn me_divergence_is_structured_and_display_is_stable() {
    use dsra_backend::Divergence;
    let params = DaParams::precise();
    let job = me_job(6000, 0x3E_BAD, (48, 32), (1, -1), 16, 2);
    let expected = GoldenBackend::default()
        .execute(params, &job, "ME 16")
        .expect("golden ME outcome");

    // Agreement: no divergence object is produced.
    assert_eq!(Divergence::compare(&job, "ME 16", expected, expected), None);

    // A single flipped checksum bit — the signature of a datapath fault —
    // must produce the structured report.
    let got = dsra_core::report::ExecOutcome {
        checksum: expected.checksum ^ (1 << 17),
        ..expected
    };
    let d = Divergence::compare(&job, "ME 16", expected, got).expect("divergence detected");
    assert_eq!(d.job, job.id);
    assert_eq!(d.kernel, "ME 16");
    assert_eq!(d.expected, expected);
    assert_eq!(d.got, got);
    assert_eq!(
        d.to_string(),
        format!(
            "backend divergence on job {} (ME 16): \
             array (cycles {}, checksum {:#018x}) vs \
             golden (cycles {}, checksum {:#018x})",
            job.id, got.exec_cycles, got.checksum, expected.exec_cycles, expected.checksum
        )
    );
    // And the error-path conversion carries the same text.
    let err: dsra_core::error::CoreError = d.into();
    assert!(err.to_string().contains("backend divergence on job 6000"));
}

#[test]
fn backend_kind_round_trips() {
    for kind in BackendKind::ALL {
        assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        assert_eq!(kind.build().name(), kind.name());
    }
    assert_eq!(BackendKind::from_name("fpga"), None);
    assert_eq!(BackendKind::default(), BackendKind::Array);
}

/// The committed golden-vector jobs (`fixtures/*.json`): pinned seeds and
/// shapes. The fixture files hold the expected outcomes; this table is the
/// single source for *which* jobs are pinned, shared by the regenerator
/// below and the workspace-level loader (`tests/backend_contract.rs`).
pub mod vectors {
    /// One pinned DCT job per mapping: `(kernel, seed, blocks, amplitude)`.
    pub const DCT: [(&str, u64, u16, i64); 6] = [
        ("BASIC DA", 0xD0C_0001, 4, 200),
        ("MIX ROM", 0xD0C_0002, 4, 200),
        ("CORDIC 1", 0xD0C_0003, 4, 200),
        ("CORDIC 2", 0xD0C_0004, 4, 200),
        ("SCC E/O", 0xD0C_0005, 4, 200),
        ("SCC", 0xD0C_0006, 4, 200),
    ];
    /// A pinned ME job: `(seed, (w, h), (sx, sy), block, range)`.
    pub type MeVector = (u64, (u16, u16), (i8, i8), u8, u8);
    /// Pinned ME jobs.
    pub const ME: [MeVector; 3] = [
        (0x3E_0001, (48, 32), (1, -1), 16, 2),
        (0x3E_0002, (64, 48), (-2, 1), 16, 4),
        (0x3E_0003, (32, 32), (0, 2), 8, 3),
    ];
}

/// First block of a DCT job, quantised exactly as the checksum quantises
/// (`(v * 256).round()`): the human-inspectable part of a fixture entry.
fn first_block_coeffs_q(seed: u64, amplitude: i64, kernel: &str) -> [i64; 8] {
    use dsra_core::rng::SplitMix64;
    let mapping = DctMapping::from_name(kernel).expect("pinned kernel");
    let imp = mapping.build(DaParams::precise()).expect("build");
    let mut rng = SplitMix64::new(seed);
    let x: [i64; 8] =
        std::array::from_fn(|_| rng.next_below(2 * amplitude as u64 + 1) as i64 - amplitude);
    let y = imp.transform(&x).expect("transform");
    std::array::from_fn(|i| (y[i] * 256.0).round() as i64)
}

/// Regenerates `fixtures/dct_vectors.json` and `fixtures/me_vectors.json`
/// from the live backends. `#[ignore]`d: run explicitly after an
/// *intentional* contract change —
/// `cargo test -p dsra-backend --test contract -- --ignored regen_fixtures`
/// — then review the diff like any other source change. Checksums are hex
/// strings (the fixture parser reads numbers as f64, which cannot hold a
/// u64 exactly).
#[test]
#[ignore = "writes fixtures; run only to intentionally re-pin golden vectors"]
fn regen_fixtures() {
    let params = DaParams::precise();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    std::fs::create_dir_all(&dir).unwrap();

    let mut s = String::from("{\n  \"vectors\": [\n");
    for (i, &(kernel, seed, blocks, amplitude)) in vectors::DCT.iter().enumerate() {
        let job = dct_job(9000 + i as u32, seed, blocks, amplitude);
        let out = ArrayBackend::default()
            .execute(params, &job, kernel)
            .unwrap();
        assert_eq!(
            out,
            GoldenBackend::default()
                .execute(params, &job, kernel)
                .unwrap(),
            "refusing to pin a diverging vector ({kernel})"
        );
        let coeffs = first_block_coeffs_q(seed, amplitude, kernel);
        let coeffs_json: Vec<String> = coeffs.iter().map(|c| c.to_string()).collect();
        s.push_str(&format!(
            "    {{\"kernel\": \"{kernel}\", \"seed\": {seed}, \"blocks\": {blocks}, \
             \"amplitude\": {amplitude}, \"exec_cycles\": {}, \"checksum\": \"{:#018x}\", \
             \"coeffs0_q8\": [{}]}}{}\n",
            out.exec_cycles,
            out.checksum,
            coeffs_json.join(", "),
            if i + 1 == vectors::DCT.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(dir.join("dct_vectors.json"), s).unwrap();

    let mut s = String::from("{\n  \"vectors\": [\n");
    for (i, &(seed, size, shift, block, range)) in vectors::ME.iter().enumerate() {
        let job = me_job(9100 + i as u32, seed, size, shift, block, range);
        let kernel = format!("ME {block}");
        let out = ArrayBackend::default()
            .execute(params, &job, &kernel)
            .unwrap();
        assert_eq!(
            out,
            GoldenBackend::default()
                .execute(params, &job, &kernel)
                .unwrap(),
            "refusing to pin a diverging vector (ME block {block})"
        );
        // Re-derive the best match so the fixture records the motion
        // vector itself, not just its digest.
        let (cur, refp) = dsra_video::me_search_planes(size, shift, seed);
        let (w, h) = (usize::from(size.0), usize::from(size.1));
        let (b, _rg) = (usize::from(block), usize::from(range));
        let (bx, by) = (w.saturating_sub(b) / 2, h.saturating_sub(b) / 2);
        let sp = dsra_me::SearchParams {
            block: b,
            range: i32::from(range),
        };
        let best = dsra_me::full_search(&cur, &refp, bx, by, &sp);
        s.push_str(&format!(
            "    {{\"seed\": {seed}, \"width\": {}, \"height\": {}, \"shift_x\": {}, \
             \"shift_y\": {}, \"block\": {block}, \"range\": {range}, \
             \"mv\": [{}, {}], \"sad\": {}, \"candidates\": {}, \
             \"exec_cycles\": {}, \"checksum\": \"{:#018x}\"}}{}\n",
            size.0,
            size.1,
            shift.0,
            shift.1,
            best.mv.0,
            best.mv.1,
            best.sad,
            best.candidates,
            out.exec_cycles,
            out.checksum,
            if i + 1 == vectors::ME.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(dir.join("me_vectors.json"), s).unwrap();
}

#[test]
fn unknown_kernel_is_rejected_by_both() {
    let params = DaParams::precise();
    let job = dct_job(5000, 1, 1, 10);
    for kind in BackendKind::ALL {
        let err = kind.build().execute(params, &job, "NOPE").unwrap_err();
        assert!(
            err.to_string().contains("unknown DCT kernel"),
            "{kind:?}: {err}"
        );
    }
}
