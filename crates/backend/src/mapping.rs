//! The catalogue of §3 DCT mappings, as buildable recipes.
//!
//! Lives here (rather than in the runtime) because every backend needs to
//! resolve a kernel display name to a concrete implementation: the array
//! backend builds the netlist-backed [`DctImpl`], the golden backend builds
//! its software model from the same identity.

use dsra_core::error::Result;
use dsra_dct::{BasicDa, Cordic1, Cordic2, DaParams, DctImpl, MixedRom, SccEvenOdd, SccFull};

/// The six §3 DCT mappings, as schedulable kernel recipes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DctMapping {
    /// Fig. 4 basic distributed arithmetic.
    BasicDa,
    /// Mixed-ROM decomposition.
    MixedRom,
    /// CORDIC rotator, variant 1.
    Cordic1,
    /// CORDIC rotator, variant 2.
    Cordic2,
    /// Skew-circular convolution, even/odd split.
    SccEvenOdd,
    /// Skew-circular convolution, full.
    SccFull,
}

impl DctMapping {
    /// All six mappings in Table-1 column order (plus the basic DA first,
    /// matching `dsra_dct::all_impls`).
    pub const ALL: [DctMapping; 6] = [
        DctMapping::BasicDa,
        DctMapping::MixedRom,
        DctMapping::Cordic1,
        DctMapping::Cordic2,
        DctMapping::SccEvenOdd,
        DctMapping::SccFull,
    ];

    /// The mapping's display name (identical to its `DctImpl::name`).
    pub fn name(self) -> &'static str {
        match self {
            DctMapping::BasicDa => "BASIC DA",
            DctMapping::MixedRom => "MIX ROM",
            DctMapping::Cordic1 => "CORDIC 1",
            DctMapping::Cordic2 => "CORDIC 2",
            DctMapping::SccEvenOdd => "SCC E/O",
            DctMapping::SccFull => "SCC",
        }
    }

    /// Resolves a profile name back to the mapping.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Builds the cycle-accurate implementation.
    ///
    /// # Errors
    /// Propagates netlist construction errors.
    pub fn build(self, params: DaParams) -> Result<Box<dyn DctImpl>> {
        Ok(match self {
            DctMapping::BasicDa => Box::new(BasicDa::new(params)?),
            DctMapping::MixedRom => Box::new(MixedRom::new(params)?),
            DctMapping::Cordic1 => Box::new(Cordic1::new(params)?),
            DctMapping::Cordic2 => Box::new(Cordic2::new(params)?),
            DctMapping::SccEvenOdd => Box::new(SccEvenOdd::new(params)?),
            DctMapping::SccFull => Box::new(SccFull::new(params)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_names_round_trip() {
        for m in DctMapping::ALL {
            assert_eq!(DctMapping::from_name(m.name()), Some(m));
            let imp = m.build(DaParams::precise()).unwrap();
            assert_eq!(imp.name(), m.name(), "recipe and impl must agree");
        }
        assert_eq!(DctMapping::from_name("nope"), None);
    }
}
