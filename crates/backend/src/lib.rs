//! # dsra-backend — execution backends behind one contract
//!
//! Every output the stack serves (DCT coefficients, motion vectors, encode
//! statistics) is produced by an *execution backend*: something that takes a
//! [`dsra_video::JobSpec`] and returns a deterministic
//! [`ExecOutcome`] — the cycles the payload
//! occupied an array plus a digest of its outputs. This crate defines the
//! [`Backend`] trait and three implementations:
//!
//! * [`ArrayBackend`] — the cycle-level array simulator (the production
//!   path, extracted from the runtime's worker loop): netlist-backed
//!   [`DctImpl`] mappings and the 2-D systolic ME array.
//! * [`GoldenBackend`] — a pure-software golden reference: direct-form
//!   fixed-point models of all six DCT mappings ([`GoldenDct`]) and a
//!   scalar full-search ME ([`golden_me_search`]), bit-exact by
//!   construction against the array datapaths.
//! * [`CheckBackend`] — the differential harness: runs every job through
//!   both and fails loudly on any divergence.
//!
//! The two real backends share one payload driver (`run_payload`), so the
//! checksum definition cannot drift between them; what the contract suite
//! exercises is the compute kernels underneath.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod array;
mod check;
mod golden;
mod mapping;

use dsra_core::error::{CoreError, Result};
use dsra_core::report::ExecOutcome;
use dsra_core::rng::{fnv1a_fold as mix, SplitMix64};
use dsra_dct::{DaParams, DctImpl};
use dsra_me::{MeSearchResult, Plane, SearchParams};
use dsra_video::{
    encode_frame, me_search_planes, EncodeConfig, JobPayload, JobSpec, SequenceConfig,
    SyntheticSequence,
};

pub use array::ArrayBackend;
pub use check::{CheckBackend, Divergence};
pub use golden::{golden_me_search, GoldenDct};
pub use mapping::DctMapping;

/// An execution backend: given a job, produce its deterministic outcome.
///
/// Implementations are owned per array (the runtime keeps one backend per
/// simulated array and reuses it across serve calls), so they may cache
/// compiled engines internally. `Send` because each worker thread owns one.
pub trait Backend: Send {
    /// Display name (`array`, `golden`, `check`, …).
    fn name(&self) -> &'static str;

    /// Executes one job payload and returns `(exec_cycles, checksum)`.
    ///
    /// `kernel_name` is the display name of the kernel the scheduler
    /// placed the job on (a [`DctMapping`] name for DCT/encode payloads;
    /// ME payloads carry their block size in the spec).
    ///
    /// # Errors
    /// Propagates engine construction and execution failures; the check
    /// backend additionally fails on any divergence between backends.
    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome>;
}

/// The selectable backend kinds (`soc_serve --backend {array,golden,check}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Cycle-level array simulator (the default production path).
    #[default]
    Array,
    /// Pure-software golden reference.
    Golden,
    /// Differential mode: run both, diff per job, fail on divergence.
    Check,
}

impl BackendKind {
    /// All kinds, in CLI documentation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Array, BackendKind::Golden, BackendKind::Check];

    /// CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Array => "array",
            BackendKind::Golden => "golden",
            BackendKind::Check => "check",
        }
    }

    /// Resolves a CLI name back to the kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds a fresh backend of this kind.
    pub fn build(self) -> Box<dyn Backend> {
        match self {
            BackendKind::Array => Box::new(ArrayBackend::default()),
            BackendKind::Golden => Box::new(GoldenBackend::default()),
            BackendKind::Check => Box::new(CheckBackend::default()),
        }
    }
}

/// The golden backend: software reference models only — no netlists, no
/// simulator. Caches one [`GoldenDct`] per mapping.
#[derive(Default)]
pub struct GoldenBackend {
    dct_impls: std::collections::HashMap<&'static str, GoldenDct>,
}

impl PayloadEngines for GoldenBackend {
    fn dct(&mut self, params: DaParams, mapping: DctMapping) -> Result<&dyn DctImpl> {
        Ok(match self.dct_impls.entry(mapping.name()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(GoldenDct::new(mapping, params)?)
            }
        })
    }

    fn me_search(
        &mut self,
        _block: u8,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        sp: &SearchParams,
    ) -> Result<MeSearchResult> {
        golden_me_search(cur, reference, bx, by, sp)
    }
}

impl Backend for GoldenBackend {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome> {
        run_payload(self, params, job, kernel_name)
    }
}

/// What a backend must provide to the shared payload driver: a (cached)
/// DCT implementation per mapping and a motion-search engine.
pub(crate) trait PayloadEngines {
    fn dct(&mut self, params: DaParams, mapping: DctMapping) -> Result<&dyn DctImpl>;

    #[allow(clippy::too_many_arguments)]
    fn me_search(
        &mut self,
        block: u8,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        sp: &SearchParams,
    ) -> Result<MeSearchResult>;
}

/// Executes one job payload against a set of engines and digests the
/// outputs. One definition shared by every backend, so the *contract* —
/// which values are folded, in which order, with which quantisation — is
/// identical by construction; backends differ only in how the values are
/// computed.
pub(crate) fn run_payload<E: PayloadEngines + ?Sized>(
    engines: &mut E,
    params: DaParams,
    job: &JobSpec,
    kernel_name: &str,
) -> Result<ExecOutcome> {
    let dct_mapping = |name: &str| {
        DctMapping::from_name(name)
            .ok_or_else(|| CoreError::Mismatch(format!("unknown DCT kernel `{name}`")))
    };
    let (exec_cycles, checksum) = match job.payload {
        JobPayload::DctBlocks { blocks, amplitude } => {
            let imp = engines.dct(params, dct_mapping(kernel_name)?)?;
            let mut rng = SplitMix64::new(job.seed);
            let mut cycles = 0u64;
            let mut sum = 0xA5A5_A5A5u64;
            for _ in 0..blocks {
                let x: [i64; 8] = std::array::from_fn(|_| {
                    rng.next_below(2 * amplitude as u64 + 1) as i64 - amplitude
                });
                let y = imp.transform(&x)?;
                cycles += imp.cycles_per_block();
                for v in y {
                    // Quantise to kill any last-bit noise before digesting.
                    sum = mix(sum, (v * 256.0).round() as i64 as u64);
                }
            }
            (cycles, sum)
        }
        JobPayload::MeSearch {
            size,
            shift,
            block,
            range,
        } => {
            let (w, h) = (usize::from(size.0), usize::from(size.1));
            let (b, rg) = (usize::from(block), usize::from(range));
            // Search a centred block; the full window (block ± range)
            // must fit inside the plane or the systolic feed would read
            // out of bounds.
            let (bx, by) = (w.saturating_sub(b) / 2, h.saturating_sub(b) / 2);
            if bx < rg || by < rg || bx + b + rg > w || by + b + rg > h {
                return Err(CoreError::Mismatch(format!(
                    "job {}: {w}x{h} plane too small for block {b} ± {rg} search",
                    job.id
                )));
            }
            let (cur, refp) = me_search_planes(size, shift, job.seed);
            let sp = SearchParams {
                block: b,
                range: i32::from(range),
            };
            let r = engines.me_search(block, &cur, &refp, bx, by, &sp)?;
            let mut sum = 0x5A5A_5A5Au64;
            sum = mix(sum, r.best.mv.0 as u64);
            sum = mix(sum, r.best.mv.1 as u64);
            sum = mix(sum, r.best.sad);
            sum = mix(sum, r.best.candidates);
            (r.cycles, sum)
        }
        JobPayload::EncodeGop {
            size,
            frames,
            noise,
        } => {
            let imp = engines.dct(params, dct_mapping(kernel_name)?)?;
            let seq = SyntheticSequence::generate(SequenceConfig {
                width: usize::from(size.0),
                height: usize::from(size.1),
                frames: usize::from(frames),
                noise,
                objects: 1,
                seed: job.seed,
                ..Default::default()
            });
            let cfg = EncodeConfig {
                search: SearchParams {
                    block: 16,
                    range: 2,
                },
                ..Default::default()
            };
            let mut cycles = 0u64;
            let mut sum = 0xC0DEu64;
            for f in 1..seq.frames().len() {
                let (_, stats) = encode_frame(seq.frame(f), seq.frame(f - 1), imp, &cfg)?;
                cycles += stats.dct_cycles;
                sum = mix(sum, stats.total_sad);
                sum = mix(sum, stats.estimated_bits);
                sum = mix(sum, stats.nonzero_levels as u64);
                sum = mix(sum, (stats.psnr_db * 1000.0).round() as i64 as u64);
            }
            (cycles, sum)
        }
    };
    Ok(ExecOutcome {
        exec_cycles,
        checksum,
    })
}
