//! The array backend: cycle-level simulated engines — the production path.

use std::collections::HashMap;

use dsra_core::error::Result;
use dsra_core::report::ExecOutcome;
use dsra_dct::{DaParams, DctImpl};
use dsra_me::{MeEngine, MeSearchResult, Plane, SearchParams, Systolic2d};
use dsra_video::JobSpec;

use crate::{run_payload, Backend, DctMapping, PayloadEngines};

/// One array's cycle-accurate execution engines, reused across serve calls:
/// netlist-backed DCT implementations keyed by mapping name and systolic ME
/// engines keyed by block edge. Rebuilding these per serve call would pay a
/// netlist construction plus an execution-plan compile per kernel per chunk
/// — E12's chunked discharge loop used to pay that hundreds of times over.
#[derive(Default)]
pub struct ArrayBackend {
    dct_impls: HashMap<&'static str, Box<dyn DctImpl>>,
    me_engines: HashMap<u8, Systolic2d>,
}

impl PayloadEngines for ArrayBackend {
    fn dct(&mut self, params: DaParams, mapping: DctMapping) -> Result<&dyn DctImpl> {
        let boxed = match self.dct_impls.entry(mapping.name()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(mapping.build(params)?),
        };
        Ok(&**boxed)
    }

    fn me_search(
        &mut self,
        block: u8,
        cur: &Plane,
        reference: &Plane,
        bx: usize,
        by: usize,
        sp: &SearchParams,
    ) -> Result<MeSearchResult> {
        let eng = match self.me_engines.entry(block) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Systolic2d::new(usize::from(block))?)
            }
        };
        eng.search(cur, reference, bx, by, sp)
    }
}

impl Backend for ArrayBackend {
    fn name(&self) -> &'static str {
        "array"
    }

    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome> {
        run_payload(self, params, job, kernel_name)
    }
}
