//! Pure-software golden reference models: the same fixed-point arithmetic
//! the arrays compute, without a netlist or a cycle-level simulator.
//!
//! Every model reproduces its array datapath *bit-for-bit*: samples are
//! encoded with the same two's-complement widths, ROM words come from the
//! same [`da_rom_contents`] tables, and the shift-accumulator recurrence
//! (add the aligned ROM word, subtract on the sign cycle, arithmetic-shift
//! right) is replayed in plain integer arithmetic. A golden transform is
//! therefore byte-equal to the simulated one — not merely close — which is
//! what lets the differential harness assert checksum equality instead of
//! tolerances.

use dsra_core::error::Result;
use dsra_core::fixed::{from_signed, mask, to_signed};
use dsra_core::netlist::Netlist;
use dsra_dct::da::{da_rom_contents, encode_sample};
use dsra_dct::factor::{
    odd_target, solve_sandwich, solve_scaled_sandwich, Sandwich, ScaledSandwich,
};
use dsra_dct::reference::{alpha, dct_coeff};
use dsra_dct::scc::{exponent_of, scc_odd_coeff};
use dsra_dct::{DaParams, DctImpl};
use dsra_me::reference::candidate_valid;
use dsra_me::systolic2d::MODULES;
use dsra_me::{full_search, MeSearchResult, Plane, SearchParams};

use crate::mapping::DctMapping;

/// Butterfly datapath width of the even/odd and CORDIC structures
/// (sign-extended from the input width; mirrors the arrays' stage width).
const STAGE_WIDTH: u8 = 16;

/// Replays one bit-serial DA lane: `streams[i]` supplies address bit `i`
/// at serial step `t`, the addressed ROM word (programmed from `coeffs`)
/// is aligned and accumulated with a subtracting final cycle, and the
/// accumulator arithmetic-shifts right each step — exactly the
/// shift-accumulator cluster's update rule.
fn da_lane(streams: &[u64], coeffs: &[f64], params: &DaParams, bits: u8) -> u64 {
    let rom = da_rom_contents(coeffs, params.q());
    let align = u32::from(params.align());
    let mut acc = 0u64;
    for t in 0..bits {
        let mut addr = 0usize;
        for (i, s) in streams.iter().enumerate() {
            addr |= (((s >> t) & 1) as usize) << i;
        }
        let word = to_signed(rom[addr], params.rom_width);
        let sgn: i64 = if t + 1 == bits { -1 } else { 1 };
        let a = to_signed(acc, params.acc_width) + sgn * (word << align);
        acc = from_signed(a >> 1, params.acc_width);
    }
    acc
}

/// Encodes the input block exactly as the array input pins see it: each
/// sample masked to `input_bits` and re-signed (out-of-range samples wrap,
/// as they would in hardware).
fn encode_block(x: &[i64; 8], input_bits: u8) -> [i64; 8] {
    std::array::from_fn(|i| to_signed(encode_sample(x[i], input_bits), input_bits))
}

/// Mod-2^16 butterfly node: the 16-bit adder/subtracter clusters wrap.
fn stage(v: i64) -> i64 {
    to_signed(from_signed(v, STAGE_WIDTH), STAGE_WIDTH)
}

/// Direct DA (Fig. 4 / Fig. 9): eight serialised inputs address per-output
/// ROMs. `perm[slot]` is the input index wired to serialiser `slot` — the
/// identity for the basic DA, Li's exponent reordering for the full SCC.
fn direct_transform(x: &[i64; 8], params: &DaParams, perm: &[usize; 8]) -> [f64; 8] {
    let bits = params.input_bits;
    let xe = encode_block(x, bits);
    let streams: Vec<u64> = perm.iter().map(|&i| encode_sample(xe[i], bits)).collect();
    std::array::from_fn(|u| {
        let coeffs: Vec<f64> = perm.iter().map(|&i| dct_coeff(u, i)).collect();
        params.decode_acc(da_lane(&streams, &coeffs, params, bits), bits)
    })
}

/// Even/odd split (Fig. 5 / Fig. 8): 16-bit butterfly sums `a_n` and
/// differences `b_n` feed 4-input DA lanes over `input_bits + 2` serial
/// cycles. `odd_coeff(k, n)` selects the odd-part table (plain DCT rows
/// for the Mixed-ROM, the skew-circular rotation for the SCC).
fn even_odd_transform(
    x: &[i64; 8],
    params: &DaParams,
    odd_coeff: impl Fn(usize, usize) -> f64,
) -> [f64; 8] {
    let bits = params.input_bits + 2;
    let xe = encode_block(x, params.input_bits);
    let sa: Vec<u64> = (0..4)
        .map(|n| from_signed(xe[n] + xe[7 - n], STAGE_WIDTH))
        .collect();
    let sb: Vec<u64> = (0..4)
        .map(|n| from_signed(xe[n] - xe[7 - n], STAGE_WIDTH))
        .collect();
    let mut y = [0.0; 8];
    for k in 0..4 {
        let even: Vec<f64> = (0..4).map(|n| dct_coeff(2 * k, n)).collect();
        y[2 * k] = params.decode_acc(da_lane(&sa, &even, params, bits), bits);
        let odd: Vec<f64> = (0..4).map(|n| odd_coeff(k, n)).collect();
        y[2 * k + 1] = params.decode_acc(da_lane(&sb, &odd, params, bits), bits);
    }
    y
}

/// Phase schedule of the two-phase CORDIC drivers (mirrors the private
/// `Schedule` in `dsra_dct::cordic`, formula for formula).
#[derive(Debug, Clone, Copy)]
struct Sched {
    b1: u8,
    presh: u8,
    b2: u8,
}

impl Sched {
    fn for_params(params: &DaParams, max_row_norm: f64) -> Self {
        let b1 = params.input_bits + 2;
        let b2 = params.acc_width - params.rom_width; // keep phase 2 exact
        let p_bits = (max_row_norm.log2()
            + f64::from(params.input_bits)
            + f64::from(params.rom_frac)
            + f64::from(params.align())
            - f64::from(b1))
        .ceil() as i32
            + 1;
        let presh = (p_bits + 2 - i32::from(b2)).max(1) as u8;
        Sched { b1, presh, b2 }
    }

    fn phase2_exp(&self, params: &DaParams) -> i32 {
        i32::from(self.b2) - i32::from(params.align()) - i32::from(params.rom_frac)
            + i32::from(self.presh)
            - i32::from(params.rom_frac)
            - i32::from(params.align())
            + i32::from(self.b1)
    }

    fn stream_exp(&self, params: &DaParams) -> i32 {
        i32::from(self.presh) - i32::from(params.rom_frac) - i32::from(params.align())
            + i32::from(self.b1)
    }

    fn cycles(&self) -> u64 {
        1 + u64::from(self.b1) + u64::from(self.presh) + u64::from(self.b2) + 1
    }
}

/// Extracts (columns, sign) of a ±1 butterfly row with exactly two nonzeros.
fn row_ops(row: &[f64; 4]) -> (usize, usize, bool) {
    let nz: Vec<usize> = (0..4).filter(|&c| row[c].abs() > 0.5).collect();
    assert_eq!(nz.len(), 2, "butterfly rows have two operands");
    assert!(row[nz[0]] > 0.0, "library rows lead with +1");
    (nz[0], nz[1], row[nz[1]] < 0.0)
}

/// The shared CORDIC front end: 16-bit `a`/`b` butterflies, then the `u`
/// stage over the sums. Returns the raw `b_n` serial streams and the signed
/// `u` values.
fn cordic_front(x: &[i64; 8], params: &DaParams) -> ([u64; 4], [i64; 4]) {
    let xe = encode_block(x, params.input_bits);
    let a: [i64; 4] = std::array::from_fn(|n| stage(xe[n] + xe[7 - n]));
    let b: [u64; 4] = std::array::from_fn(|n| from_signed(xe[n] - xe[7 - n], STAGE_WIDTH));
    let u = [
        stage(a[0] + a[3]),
        stage(a[1] + a[2]),
        stage(a[1] - a[2]),
        stage(a[0] - a[3]),
    ];
    (b, u)
}

/// Phase-1 X rotators + discard + serial butterfly, shared by both CORDIC
/// odd paths: returns `H_r = A'_{c1} ± A'_{c2}` where `A'` is the
/// presh-discarded phase-1 accumulator.
fn cordic_odd_h(
    b: &[u64; 4],
    x_pairs: ((usize, usize), (usize, usize)),
    x_blocks: &[[[f64; 2]; 2]; 2],
    butterfly: &[[f64; 4]; 4],
    params: &DaParams,
    sched: &Sched,
) -> [i64; 4] {
    let mut p = [0u64; 4];
    for (bi, pair) in [x_pairs.0, x_pairs.1].into_iter().enumerate() {
        let streams = [b[pair.0], b[pair.1]];
        p[pair.0] = da_lane(&streams, &x_blocks[bi][0], params, sched.b1);
        p[pair.1] = da_lane(&streams, &x_blocks[bi][1], params, sched.b1);
    }
    let ap: [i64; 4] =
        std::array::from_fn(|r| to_signed(p[r], params.acc_width) >> u32::from(sched.presh));
    std::array::from_fn(|r| {
        let (c1, c2, sign) = row_ops(&butterfly[r]);
        if sign {
            ap[c1] - ap[c2]
        } else {
            ap[c1] + ap[c2]
        }
    })
}

fn cordic1_transform(x: &[i64; 8], params: &DaParams, fact: &Sandwich, sched: &Sched) -> [f64; 8] {
    let (b, u) = cordic_front(x, params);
    let su: [u64; 4] = std::array::from_fn(|i| from_signed(u[i], STAGE_WIDTH));
    let a = alpha(1);
    let a0 = alpha(0);
    let c4 = (std::f64::consts::PI / 4.0).cos();
    let c2 = (std::f64::consts::PI / 8.0).cos();
    let s2 = (std::f64::consts::PI / 8.0).sin();
    let mut y = [0.0; 8];
    let even = |streams: [u64; 2], row: [f64; 2]| {
        params.decode_acc(da_lane(&streams, &row, params, sched.b1), sched.b1)
    };
    y[0] = even([su[0], su[1]], [a0, a0]);
    y[4] = even([su[0], su[1]], [a * c4, -a * c4]);
    y[2] = even([su[2], su[3]], [a * s2, a * c2]);
    y[6] = even([su[2], su[3]], [-a * c2, a * s2]);

    let h = cordic_odd_h(
        &b,
        fact.x_pairs,
        &fact.x_blocks,
        &fact.butterfly,
        params,
        sched,
    );
    let exp = sched.phase2_exp(params);
    for (bi, pair) in [fact.y_pairs.0, fact.y_pairs.1].into_iter().enumerate() {
        // Phase 2: the Y rotators accumulate the serial H streams for b2
        // cycles (sub on the last); H's two's-complement bits are exactly
        // what the serial adders emit.
        let streams = [h[pair.0] as u64, h[pair.1] as u64];
        for (r, out) in [pair.0, pair.1].into_iter().enumerate() {
            let raw = da_lane(&streams, &fact.y_blocks[bi][r], params, sched.b2);
            y[2 * out + 1] = to_signed(raw, params.acc_width) as f64 * 2f64.powi(exp);
        }
    }
    y
}

fn cordic2_transform(
    x: &[i64; 8],
    params: &DaParams,
    fact: &ScaledSandwich,
    sched: &Sched,
) -> [f64; 8] {
    let (b, u) = cordic_front(x, params);
    let a = alpha(1);
    let a0 = alpha(0);
    let c4 = (std::f64::consts::PI / 4.0).cos();
    let c2 = (std::f64::consts::PI / 8.0).cos();
    let s2 = (std::f64::consts::PI / 8.0).sin();
    let mut y = [0.0; 8];
    // X0/X4 leave the array as parallel 16-bit adder outputs; the scale
    // factors are applied driver-side (standing in for the quantiser).
    y[0] = stage(u[0] + u[1]) as f64 * a0;
    y[4] = stage(u[0] - u[1]) as f64 * a * c4;
    let su2 = from_signed(u[2], STAGE_WIDTH);
    let su3 = from_signed(u[3], STAGE_WIDTH);
    y[2] = params.decode_acc(
        da_lane(&[su2, su3], &[a * s2, a * c2], params, sched.b1),
        sched.b1,
    );
    y[6] = params.decode_acc(
        da_lane(&[su2, su3], &[-a * c2, a * s2], params, sched.b1),
        sched.b1,
    );

    let h = cordic_odd_h(
        &b,
        fact.x_pairs,
        &fact.x_blocks,
        &fact.butterfly,
        params,
        sched,
    );
    let (pi, pj) = fact.post_pair;
    let exp = sched.stream_exp(params);
    for r in 0..4 {
        // The serial post network combines the post pair and passes the
        // rest; the driver samples b2 stream bits, so the decoded value is
        // the low-b2 window of the integer combination.
        let comb = if r == pi {
            h[pi] + h[pj]
        } else if r == pj {
            h[pi] - h[pj]
        } else {
            h[r]
        };
        let stream = mask(comb as u64, sched.b2);
        y[2 * r + 1] = to_signed(stream, sched.b2) as f64 * 2f64.powi(exp) * fact.scales[r];
    }
    y
}

/// Which software model a [`GoldenDct`] replays.
enum Model {
    /// Fig. 4 / Fig. 9 direct DA; `perm[slot]` = input index in that slot.
    Direct { perm: [usize; 8] },
    /// Fig. 5 / Fig. 8 even/odd split; `scc` selects the odd-part table.
    EvenOdd { scc: bool },
    /// Fig. 6 two-phase sandwich factorization.
    Cordic1 { fact: Sandwich, sched: Sched },
    /// Fig. 7 scaled factorization with serial output taps.
    Cordic2 { fact: ScaledSandwich, sched: Sched },
}

/// A software golden reference for one DCT mapping, bit-exact against the
/// simulated array and exposing the same [`DctImpl`] interface (including
/// `cycles_per_block`, so encode payloads cost identically). The netlist
/// is an empty placeholder — there is no hardware here.
pub struct GoldenDct {
    mapping: DctMapping,
    params: DaParams,
    netlist: Netlist,
    cycles: u64,
    model: Model,
}

impl GoldenDct {
    /// Builds the golden model for `mapping`.
    ///
    /// # Errors
    /// Never fails today; `Result` mirrors [`DctMapping::build`] so the two
    /// construction paths stay interchangeable.
    pub fn new(mapping: DctMapping, params: DaParams) -> Result<Self> {
        let max_row_norm = |blocks: &[[[f64; 2]; 2]; 2]| {
            blocks
                .iter()
                .flat_map(|b| b.iter())
                .map(|row| row[0].abs() + row[1].abs())
                .fold(0.0f64, f64::max)
        };
        let (model, cycles) = match mapping {
            DctMapping::BasicDa => (
                Model::Direct {
                    perm: std::array::from_fn(|i| i),
                },
                u64::from(params.input_bits) + 2,
            ),
            DctMapping::SccFull => {
                // Input i sits in serialiser slot e where (2i+1) ≡ ±3^e
                // (mod 32); perm maps slots back to inputs.
                let mut perm = [0usize; 8];
                for i in 0..8 {
                    perm[exponent_of(2 * i + 1)] = i;
                }
                (Model::Direct { perm }, u64::from(params.input_bits) + 2)
            }
            DctMapping::MixedRom => (
                Model::EvenOdd { scc: false },
                u64::from(params.input_bits) + 4,
            ),
            DctMapping::SccEvenOdd => (
                Model::EvenOdd { scc: true },
                u64::from(params.input_bits) + 4,
            ),
            DctMapping::Cordic1 => {
                let fact = solve_sandwich(&odd_target());
                let sched = Sched::for_params(&params, max_row_norm(&fact.x_blocks));
                let cycles = sched.cycles();
                (Model::Cordic1 { fact, sched }, cycles)
            }
            DctMapping::Cordic2 => {
                let fact = solve_scaled_sandwich(&odd_target());
                let mut sched = Sched::for_params(&params, max_row_norm(&fact.x_blocks));
                // Streams pass two serial levels: one extra guard bit.
                sched.presh += 1;
                let cycles = sched.cycles();
                (Model::Cordic2 { fact, sched }, cycles)
            }
        };
        Ok(GoldenDct {
            mapping,
            params,
            netlist: Netlist::new("golden"),
            cycles,
            model,
        })
    }

    /// The mapping this model mirrors.
    pub fn mapping(&self) -> DctMapping {
        self.mapping
    }
}

impl DctImpl for GoldenDct {
    fn name(&self) -> &'static str {
        self.mapping.name()
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        Ok(match &self.model {
            Model::Direct { perm } => direct_transform(x, &self.params, perm),
            Model::EvenOdd { scc: false } => {
                even_odd_transform(x, &self.params, |k, n| dct_coeff(2 * k + 1, n))
            }
            Model::EvenOdd { scc: true } => even_odd_transform(x, &self.params, scc_odd_coeff),
            Model::Cordic1 { fact, sched } => cordic1_transform(x, &self.params, fact, sched),
            Model::Cordic2 { fact, sched } => cordic2_transform(x, &self.params, fact, sched),
        })
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

/// Scalar golden motion search: the best match comes from the plain
/// software [`full_search`] (which already walks candidates in the systolic
/// array's column-major, first-wins order), and the cycle/bandwidth
/// counters are computed analytically from the array's batch schedule —
/// `MODULES` candidates per streaming pass, `n + MODULES - 1` staggered
/// row cycles, one drain cycle per candidate, plus the comparator reset
/// and settle cycles.
///
/// # Errors
/// Never fails today; `Result` mirrors the simulated engine's signature.
pub fn golden_me_search(
    cur: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    params: &SearchParams,
) -> Result<MeSearchResult> {
    let n = params.block;
    let p = params.range;
    let mut cycles = 1u64; // comparator reset
    let mut ref_fetches = 0u64;
    let mut ref_fetches_naive = 0u64;
    let mut cur_fetches = 0u64;
    for dx in -p..=p {
        let mut dy_base = -p;
        while dy_base <= p {
            let batch: Vec<(usize, i32)> = (0..MODULES)
                .map(|m| (m, dy_base + m as i32))
                .filter(|&(_, dy)| dy <= p && candidate_valid(reference, bx, by, dx, dy, n))
                .collect();
            dy_base += MODULES as i32;
            if batch.is_empty() {
                continue;
            }
            ref_fetches_naive += (batch.len() * n * n) as u64;
            // mclr + streaming window + one drain cycle per candidate.
            cycles += 1 + (n + MODULES - 1) as u64 + batch.len() as u64;
            cur_fetches += (n * n) as u64;
            let dy0 = i64::from(batch[0].1) - batch[0].0 as i64;
            for t in 0..(n + MODULES - 1) {
                let ry = by as i64 + dy0 + t as i64;
                let row_needed = batch.iter().any(|&(m, _)| t >= m && t < m + n);
                if row_needed && ry >= 0 && (ry as usize) < reference.height() {
                    ref_fetches += n as u64;
                }
            }
        }
    }
    cycles += 1; // registered comparator settle
    Ok(MeSearchResult {
        best: full_search(cur, reference, bx, by, params),
        cycles,
        ref_fetches,
        ref_fetches_naive,
        cur_fetches,
    })
}
