//! The differential backend: every job through both engines, diffed.

use dsra_core::error::{CoreError, Result};
use dsra_core::report::ExecOutcome;
use dsra_dct::DaParams;
use dsra_video::JobSpec;

use crate::{ArrayBackend, Backend, GoldenBackend};

/// Runs every job through the array simulator *and* the golden reference
/// and fails on the first divergence — `soc_serve --backend check`. The
/// array's outcome is returned, so a check-mode serve is byte-identical to
/// an array-mode serve whenever the contract holds.
#[derive(Default)]
pub struct CheckBackend {
    array: ArrayBackend,
    golden: GoldenBackend,
}

impl Backend for CheckBackend {
    fn name(&self) -> &'static str {
        "check"
    }

    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome> {
        let array = self.array.execute(params, job, kernel_name)?;
        let golden = self.golden.execute(params, job, kernel_name)?;
        if array != golden {
            return Err(CoreError::Mismatch(format!(
                "backend divergence on job {} ({kernel_name}): \
                 array (cycles {}, checksum {:#018x}) vs \
                 golden (cycles {}, checksum {:#018x})",
                job.id, array.exec_cycles, array.checksum, golden.exec_cycles, golden.checksum
            )));
        }
        Ok(array)
    }
}
