//! The differential backend: every job through both engines, diffed.

use std::fmt;

use dsra_core::error::{CoreError, Result};
use dsra_core::report::ExecOutcome;
use dsra_dct::DaParams;
use dsra_video::JobSpec;

use crate::{ArrayBackend, Backend, GoldenBackend};

/// A structured divergence between an executed outcome and the golden
/// reference for the same job — what the differential harness and the
/// chaos spot-checker report instead of a pre-formatted string, so
/// recovery code can branch on the fields (which job, which kernel, how
/// far off) while `Display` still renders the exact legacy message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Id of the diverging job.
    pub job: u32,
    /// Kernel the job was placed on.
    pub kernel: String,
    /// The golden-reference outcome.
    pub expected: ExecOutcome,
    /// The outcome actually produced.
    pub got: ExecOutcome,
}

impl Divergence {
    /// Compares an outcome against the golden expectation: `None` when the
    /// contract holds, the structured divergence otherwise.
    pub fn compare(
        job: &JobSpec,
        kernel: &str,
        expected: ExecOutcome,
        got: ExecOutcome,
    ) -> Option<Divergence> {
        (expected != got).then(|| Divergence {
            job: job.id,
            kernel: kernel.to_owned(),
            expected,
            got,
        })
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backend divergence on job {} ({}): \
             array (cycles {}, checksum {:#018x}) vs \
             golden (cycles {}, checksum {:#018x})",
            self.job,
            self.kernel,
            self.got.exec_cycles,
            self.got.checksum,
            self.expected.exec_cycles,
            self.expected.checksum
        )
    }
}

impl std::error::Error for Divergence {}

impl From<Divergence> for CoreError {
    fn from(d: Divergence) -> Self {
        CoreError::Mismatch(d.to_string())
    }
}

/// Runs every job through the array simulator *and* the golden reference
/// and fails on the first divergence — `soc_serve --backend check`. The
/// array's outcome is returned, so a check-mode serve is byte-identical to
/// an array-mode serve whenever the contract holds.
#[derive(Default)]
pub struct CheckBackend {
    array: ArrayBackend,
    golden: GoldenBackend,
}

impl CheckBackend {
    /// Runs one job through both engines, returning the structured
    /// [`Divergence`] when they disagree (the array outcome otherwise).
    ///
    /// # Errors
    /// Propagates engine construction/execution failures from either
    /// backend (not divergences — those come back in the `Ok` branch).
    pub fn execute_diffed(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<std::result::Result<ExecOutcome, Divergence>> {
        let array = self.array.execute(params, job, kernel_name)?;
        let golden = self.golden.execute(params, job, kernel_name)?;
        Ok(match Divergence::compare(job, kernel_name, golden, array) {
            Some(d) => Err(d),
            None => Ok(array),
        })
    }
}

impl Backend for CheckBackend {
    fn name(&self) -> &'static str {
        "check"
    }

    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome> {
        self.execute_diffed(params, job, kernel_name)?
            .map_err(CoreError::from)
    }
}
