//! # dsra-platform — the reconfigurable System-on-Chip model
//!
//! Fig. 1 of the paper: processors, DSPs and the domain-specific arrays on
//! one SoC, with a controller generating addresses and configurations. This
//! crate models the platform-level behaviour the paper claims in §5:
//! dynamic reconfiguration between implementations of the same kernel under
//! run-time constraints, with measured switching costs.

#![warn(missing_docs)]

pub mod policy;
pub mod reconfig;
pub mod scenario;

pub use policy::{select, Condition, ImplProfile};
pub use reconfig::{ReconfigManager, ReconfigReport, SocConfig};
pub use scenario::{
    dynamic_encode, profile_all_impls, standard_da_fabric, ProfiledImpl, ScenarioFrame,
};
