//! # dsra-platform — the reconfigurable System-on-Chip model
//!
//! Fig. 1 of the paper: processors, DSPs and the domain-specific arrays on
//! one SoC, with a controller generating addresses and configurations. This
//! crate models the platform-level behaviour the paper claims in §5:
//! dynamic reconfiguration between implementations of the same kernel under
//! run-time constraints, with measured switching costs.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_platform::{select, Condition, ImplProfile};
//!
//! let profiles = vec![
//!     ImplProfile {
//!         name: "BASIC DA".into(),
//!         clusters: 24,
//!         config_bits: 34_000,
//!         cycles_per_block: 14,
//!         energy_per_block: 9.0,
//!         max_abs_err: 0.8,
//!     },
//!     ImplProfile {
//!         name: "MIX ROM".into(),
//!         clusters: 32,
//!         config_bits: 4_000,
//!         cycles_per_block: 16,
//!         energy_per_block: 6.0,
//!         max_abs_err: 0.9,
//!     },
//! ];
//! // Battery down to 15 % → the controller swaps in the lowest-energy
//! // mapping (the condition carries the measured charge reading).
//! let cond = Condition::LowBattery { charge_pct: 15 };
//! assert_eq!(select(&profiles, cond).unwrap().name, "MIX ROM");
//! ```

#![warn(missing_docs)]

pub mod policy;
pub mod reconfig;
pub mod scenario;

pub use policy::{select, Condition, ImplProfile};
pub use reconfig::{ReconfigManager, ReconfigReport, SocConfig};
pub use scenario::{
    compile_netlist, dynamic_encode, profile_all_impls, profile_impl, profiling_activity,
    standard_da_fabric, CompiledArtifact, ProfiledImpl, ScenarioFrame,
};
