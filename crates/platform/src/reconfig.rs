//! Configuration storage and dynamic reconfiguration timing.
//!
//! §5: the arrays "have the ability to be dynamically reconfigured to
//! support different implementations of the same algorithms for different
//! run-time constraints, such as low-battery conditions and noisy channels
//! in mobile devices." This module prices that switch: configurations are
//! kept as bitstreams for one fabric, and swapping to another implementation
//! costs `differing bits / configuration-bus width` cycles (partial
//! reconfiguration) or a full rewrite.

use std::collections::BTreeMap;

use dsra_core::bitstream::Bitstream;
use dsra_core::error::{CoreError, Result};

/// SoC-level constants for the configuration path.
#[derive(Debug, Clone, Copy)]
pub struct SocConfig {
    /// Configuration bits written per clock cycle (config-bus width).
    pub cfg_bus_bits_per_cycle: u32,
    /// Array clock in MHz (for wall-clock reporting).
    pub clock_mhz: f64,
    /// `true` if the fabric supports partial reconfiguration (only
    /// differing frames are rewritten).
    pub partial_reconfig: bool,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            cfg_bus_bits_per_cycle: 32,
            clock_mhz: 100.0,
            partial_reconfig: true,
        }
    }
}

/// Cost of one reconfiguration event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigReport {
    /// Bits actually written.
    pub bits_written: u64,
    /// Cycles on the configuration bus.
    pub cycles: u64,
    /// Wall-clock microseconds at the configured clock.
    pub micros: f64,
}

impl ReconfigReport {
    /// The free report of a no-op switch (already-loaded configuration).
    pub const NOOP: ReconfigReport = ReconfigReport {
        bits_written: 0,
        cycles: 0,
        micros: 0.0,
    };
}

/// A library of named configurations for one fabric plus the currently
/// loaded one.
#[derive(Debug, Default)]
pub struct ReconfigManager {
    soc: SocConfig,
    store: BTreeMap<String, Bitstream>,
    current: Option<String>,
    history: Vec<(String, ReconfigReport)>,
}

impl ReconfigManager {
    /// Creates a manager with the given SoC constants.
    pub fn new(soc: SocConfig) -> Self {
        ReconfigManager {
            soc,
            ..Default::default()
        }
    }

    /// Registers a configuration under a name.
    pub fn register(&mut self, name: impl Into<String>, bitstream: Bitstream) {
        self.store.insert(name.into(), bitstream);
    }

    /// Names of all registered configurations.
    pub fn available(&self) -> Vec<&str> {
        self.store.keys().map(String::as_str).collect()
    }

    /// The currently loaded configuration, if any.
    pub fn current(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Switch history (name, cost) in order.
    pub fn history(&self) -> &[(String, ReconfigReport)] {
        &self.history
    }

    /// Loads `name`, returning the switching cost.
    ///
    /// Switching to the configuration that is already loaded is an explicit
    /// zero-cost no-op: nothing is written, no history entry is recorded and
    /// [`ReconfigReport::NOOP`] is returned immediately. The diff-aware
    /// scheduler in `dsra-runtime` leans on this — routing a job to the
    /// array that already holds its kernel must cost exactly nothing.
    ///
    /// Otherwise, with partial reconfiguration the cost is the
    /// bit-difference against the currently loaded configuration; without it
    /// (or from a cold start) the full bitstream is written.
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if the name was never registered.
    pub fn switch_to(&mut self, name: &str) -> Result<ReconfigReport> {
        if self.current.as_deref() == Some(name) {
            return Ok(ReconfigReport::NOOP);
        }
        let target = self
            .store
            .get(name)
            .ok_or_else(|| CoreError::UnknownNode(name.to_owned()))?;
        let bits_written = match (&self.current, self.soc.partial_reconfig) {
            (Some(cur), true) => {
                let cur_bs = &self.store[cur];
                cur_bs.diff_bits(target)
            }
            _ => target.total_bits(),
        };
        let cycles = bits_written.div_ceil(u64::from(self.soc.cfg_bus_bits_per_cycle));
        let report = ReconfigReport {
            bits_written,
            cycles,
            micros: cycles as f64 / self.soc.clock_mhz,
        };
        self.current = Some(name.to_owned());
        self.history.push((name.to_owned(), report));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_core::prelude::*;

    fn bitstream_for(mode: AbsDiffMode) -> Bitstream {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let ad = nl
            .cluster("ad", ClusterCfg::AbsDiff { width: 8, mode })
            .unwrap();
        nl.connect((a, "out"), (ad, "a")).unwrap();
        nl.connect((b, "out"), (ad, "b")).unwrap();
        nl.connect((ad, "y"), (y, "in")).unwrap();
        let f = Fabric::me_array(8, 8, MeshSpec::mixed());
        let p = place(&nl, &f, PlacerOptions::default()).unwrap();
        let r = route(&nl, &f, &p, RouterOptions::default()).unwrap();
        Bitstream::generate(&nl, &f, &p, &r)
    }

    #[test]
    fn cold_start_writes_full_bitstream() {
        let mut mgr = ReconfigManager::new(SocConfig::default());
        let bs = bitstream_for(AbsDiffMode::AbsDiff);
        let total = bs.total_bits();
        mgr.register("sad", bs);
        let rep = mgr.switch_to("sad").unwrap();
        assert_eq!(rep.bits_written, total);
        assert_eq!(mgr.current(), Some("sad"));
    }

    #[test]
    fn partial_switch_is_cheaper_than_full() {
        let mut mgr = ReconfigManager::new(SocConfig::default());
        mgr.register("sad", bitstream_for(AbsDiffMode::AbsDiff));
        mgr.register("sub", bitstream_for(AbsDiffMode::Sub));
        mgr.switch_to("sad").unwrap();
        let partial = mgr.switch_to("sub").unwrap();
        let full = mgr.store["sub"].total_bits();
        assert!(partial.bits_written > 0);
        assert!(
            partial.bits_written < full,
            "partial {} should be below full {}",
            partial.bits_written,
            full
        );
    }

    #[test]
    fn switching_to_current_is_free() {
        let mut mgr = ReconfigManager::new(SocConfig::default());
        mgr.register("sad", bitstream_for(AbsDiffMode::AbsDiff));
        mgr.switch_to("sad").unwrap();
        let rep = mgr.switch_to("sad").unwrap();
        assert_eq!(rep.bits_written, 0);
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    fn switch_to_current_is_an_explicit_noop() {
        // The runtime scheduler depends on this exact behaviour: re-loading
        // the already-current configuration writes nothing, costs no cycles,
        // records no history entry, and holds even without partial
        // reconfiguration support.
        for partial in [true, false] {
            let mut mgr = ReconfigManager::new(SocConfig {
                partial_reconfig: partial,
                ..Default::default()
            });
            mgr.register("sad", bitstream_for(AbsDiffMode::AbsDiff));
            mgr.switch_to("sad").unwrap();
            let history_len = mgr.history().len();
            for _ in 0..3 {
                let rep = mgr.switch_to("sad").unwrap();
                assert_eq!(rep, ReconfigReport::NOOP);
            }
            assert_eq!(mgr.history().len(), history_len, "no-ops must not log");
            assert_eq!(mgr.current(), Some("sad"));
        }
    }

    #[test]
    fn unknown_configuration_is_an_error() {
        let mut mgr = ReconfigManager::new(SocConfig::default());
        assert!(mgr.switch_to("nope").is_err());
    }

    #[test]
    fn cycles_respect_bus_width() {
        let mut wide = ReconfigManager::new(SocConfig {
            cfg_bus_bits_per_cycle: 64,
            ..Default::default()
        });
        let mut narrow = ReconfigManager::new(SocConfig {
            cfg_bus_bits_per_cycle: 8,
            ..Default::default()
        });
        let bs = bitstream_for(AbsDiffMode::AbsDiff);
        wide.register("x", bs.clone());
        narrow.register("x", bs);
        let w = wide.switch_to("x").unwrap();
        let n = narrow.switch_to("x").unwrap();
        assert_eq!(w.cycles, w.bits_written.div_ceil(64));
        assert_eq!(n.cycles, n.bits_written.div_ceil(8));
        assert!(n.cycles >= w.cycles);
    }
}
