//! End-to-end dynamic-reconfiguration scenario (experiment E7).
//!
//! All six DCT mappings are placed, routed and turned into bitstreams for
//! *one* DA array; a run-time policy then encodes a synthetic sequence,
//! switching implementations mid-stream when the operating condition
//! changes (e.g. a battery alarm) and paying the measured partial-
//! reconfiguration cost.

use dsra_core::bitstream::Bitstream;
use dsra_core::error::{CoreError, Result};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::place::{place, PlacerOptions};
use dsra_core::route::{route, RouterOptions};
use dsra_dct::{all_impls, measure_accuracy, DaParams, DctImpl};
use dsra_me::Plane;
use dsra_sim::Simulator;
use dsra_tech::{dsra_cost, TechModel};
use dsra_video::{encode_frame, EncodeConfig, EncodeStats};

use crate::policy::{select, Condition, ImplProfile};
use crate::reconfig::{ReconfigManager, ReconfigReport};

/// A DCT implementation with its measured profile and bitstream.
pub struct ProfiledImpl {
    /// The hardware mapping.
    pub implementation: Box<dyn DctImpl>,
    /// Measured profile (drives the policy).
    pub profile: ImplProfile,
}

/// A compiled kernel: the placement, routing and bitstream one netlist
/// produces on one fabric. Cloneable so caches can hand out shared copies
/// (typically behind an `Arc`); `dsra-runtime` keys these by
/// [`dsra_core::netlist::Fingerprint`].
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// Site assignment of every cluster.
    pub placement: dsra_core::place::Placement,
    /// Mesh tracks and routing statistics.
    pub routing: dsra_core::route::Routing,
    /// The assembled configuration.
    pub bitstream: Bitstream,
}

/// Runs the deterministic compile pipeline — place, route, bitstream — for
/// one netlist on one fabric.
///
/// # Errors
/// Propagates placement or routing failures.
pub fn compile_netlist(
    nl: &dsra_core::netlist::Netlist,
    fabric: &Fabric,
) -> Result<CompiledArtifact> {
    let placement = place(nl, fabric, PlacerOptions::default())?;
    let routing = route(nl, fabric, &placement, RouterOptions::default())?;
    let bitstream = Bitstream::generate(nl, fabric, &placement, &routing);
    Ok(CompiledArtifact {
        placement,
        routing,
        bitstream,
    })
}

/// Measures one compiled DCT mapping into the [`ImplProfile`] the run-time
/// selection policy consumes: area, configuration bits, cycle count,
/// activity-based energy and coefficient accuracy.
///
/// # Errors
/// Propagates simulator errors.
pub fn profile_impl(
    imp: &dyn DctImpl,
    artifact: &CompiledArtifact,
    model: &TechModel,
) -> Result<ImplProfile> {
    let nl = imp.netlist();
    let activity = profiling_activity(nl)?;
    let cost = dsra_cost(nl, &artifact.routing.stats, &activity, model);
    let accuracy = measure_accuracy(imp, 4, 2047, 0xACC)?;
    Ok(ImplProfile {
        name: imp.name().to_owned(),
        clusters: nl.resource_report().total_clusters(),
        config_bits: artifact.bitstream.total_bits(),
        cycles_per_block: imp.cycles_per_block(),
        // Battery-relevant energy: static + dynamic through the power
        // subsystem's single energy-per-block producer (the big-ROM
        // mappings pay for their 33k-bit configuration planes here).
        // E9 (`dct_energy`) prints the same call, so the offline table
        // and the run-time selection cannot drift.
        energy_per_block: dsra_power::energy_per_block(
            &cost.energy_split(),
            imp.cycles_per_block(),
            &dsra_power::OperatingPoint::NOMINAL,
        ),
        max_abs_err: accuracy.max_abs_err,
    })
}

/// Builds, places, routes, profiles and registers all six DCT mappings on a
/// shared DA array.
///
/// # Errors
/// Propagates construction, placement or routing failures.
pub fn profile_all_impls(
    params: DaParams,
    fabric: &Fabric,
    model: &TechModel,
    manager: &mut ReconfigManager,
) -> Result<Vec<ProfiledImpl>> {
    let mut out = Vec::new();
    for imp in all_impls(params)? {
        let artifact = compile_netlist(imp.netlist(), fabric)?;
        let profile = profile_impl(imp.as_ref(), &artifact, model)?;
        manager.register(imp.name(), artifact.bitstream);
        out.push(ProfiledImpl {
            implementation: imp,
            profile,
        });
    }
    Ok(out)
}

/// Exercises a netlist with a generic stimulus to collect representative
/// switching activity (the profiling workload of §3.6's activity remark).
/// Public so other layers (the runtime's bitstream cache) price kernels
/// with exactly the stimulus the profiles were measured under.
pub fn profiling_activity(nl: &dsra_core::netlist::Netlist) -> Result<dsra_sim::Activity> {
    let mut sim = Simulator::new(nl)?;
    let inputs: Vec<String> = nl
        .input_nodes()
        .into_iter()
        .map(|id| nl.node(id).name.clone())
        .collect();
    for c in 0..128u64 {
        for (i, name) in inputs.iter().enumerate() {
            let v = if name.starts_with("ctl_") {
                // Exercise controls with a rough duty cycle.
                u64::from((c + i as u64).is_multiple_of(7))
            } else {
                (c * 97 + i as u64 * 55) % 4096
            };
            sim.set(name, v)?;
        }
        sim.step();
    }
    Ok(sim.activity().clone())
}

/// One frame of the dynamic scenario.
#[derive(Debug, Clone)]
pub struct ScenarioFrame {
    /// Frame index in the sequence.
    pub frame_index: usize,
    /// Operating condition in force.
    pub condition: Condition,
    /// Implementation chosen by the policy.
    pub impl_name: String,
    /// Reconfiguration cost paid before this frame (None = no switch).
    pub reconfig: Option<ReconfigReport>,
    /// Encoding statistics.
    pub stats: EncodeStats,
}

/// Encodes `frames[1..]` against their predecessors, selecting the DCT
/// implementation per frame from `conditions` (battery drops, deadlines...)
/// and switching the array configuration when the choice changes.
///
/// # Errors
/// Fails if a condition is unsatisfiable or encoding fails.
pub fn dynamic_encode(
    frames: &[Plane],
    conditions: &[Condition],
    impls: &[ProfiledImpl],
    manager: &mut ReconfigManager,
    encode: &EncodeConfig,
) -> Result<Vec<ScenarioFrame>> {
    assert_eq!(
        conditions.len(),
        frames.len().saturating_sub(1),
        "one condition per encoded frame"
    );
    let profiles: Vec<ImplProfile> = impls.iter().map(|p| p.profile.clone()).collect();
    let mut out = Vec::new();
    for (i, condition) in conditions.iter().enumerate() {
        let chosen = select(&profiles, *condition).ok_or_else(|| {
            CoreError::Mismatch(format!("no implementation satisfies {condition:?}"))
        })?;
        let reconfig = if manager.current() != Some(chosen.name.as_str()) {
            Some(manager.switch_to(&chosen.name)?)
        } else {
            None
        };
        let imp = impls
            .iter()
            .find(|p| p.profile.name == chosen.name)
            .expect("profile names match");
        let (_, stats) = encode_frame(
            &frames[i + 1],
            &frames[i],
            imp.implementation.as_ref(),
            encode,
        )?;
        out.push(ScenarioFrame {
            frame_index: i + 1,
            condition: *condition,
            impl_name: chosen.name.clone(),
            reconfig,
            stats,
        });
    }
    Ok(out)
}

/// The standard shared fabric every scenario uses: a DA array big enough
/// for the largest mapping (CORDIC #1, 48 clusters).
pub fn standard_da_fabric() -> Fabric {
    Fabric::da_array(20, 14, MeshSpec::mixed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconfig::SocConfig;
    use dsra_video::{SequenceConfig, SyntheticSequence};

    #[test]
    fn profiles_cover_all_six_impls() {
        let fabric = standard_da_fabric();
        let mut mgr = ReconfigManager::new(SocConfig::default());
        let impls = profile_all_impls(
            DaParams::precise(),
            &fabric,
            &TechModel::default(),
            &mut mgr,
        )
        .unwrap();
        assert_eq!(impls.len(), 6);
        assert_eq!(mgr.available().len(), 6);
        // Cluster counts are the Table-1 totals.
        let by_name = |n: &str| {
            impls
                .iter()
                .find(|p| p.profile.name == n)
                .unwrap()
                .profile
                .clusters
        };
        assert_eq!(by_name("MIX ROM"), 32);
        assert_eq!(by_name("CORDIC 1"), 48);
        assert_eq!(by_name("CORDIC 2"), 38);
        assert_eq!(by_name("SCC E/O"), 32);
        assert_eq!(by_name("SCC"), 24);
        assert_eq!(by_name("BASIC DA"), 24);
    }

    #[test]
    fn battery_drop_triggers_one_switch() {
        let fabric = standard_da_fabric();
        let mut mgr = ReconfigManager::new(SocConfig::default());
        let impls = profile_all_impls(
            DaParams::precise(),
            &fabric,
            &TechModel::default(),
            &mut mgr,
        )
        .unwrap();
        let seq = SyntheticSequence::generate(SequenceConfig {
            width: 32,
            height: 32,
            frames: 4,
            ..Default::default()
        });
        let conditions = [
            Condition::HighQuality,
            Condition::HighQuality,
            Condition::LowBattery { charge_pct: 12 },
        ];
        let cfg = EncodeConfig {
            search: dsra_me::SearchParams {
                block: 16,
                range: 2,
            },
            ..Default::default()
        };
        let frames = dynamic_encode(seq.frames(), &conditions, &impls, &mut mgr, &cfg).unwrap();
        assert_eq!(frames.len(), 3);
        // First frame pays the cold-start configuration.
        assert!(frames[0].reconfig.is_some());
        // Second frame keeps the configuration.
        assert!(frames[1].reconfig.is_none());
        // The battery alarm switches implementations iff the policy picks a
        // different one — and the switch is partial, not a full rewrite.
        if frames[2].impl_name != frames[1].impl_name {
            let rep = frames[2].reconfig.expect("switch happened");
            assert!(rep.bits_written > 0);
        }
        for f in &frames {
            assert!(
                f.stats.psnr_db > 25.0,
                "frame {} PSNR {}",
                f.frame_index,
                f.stats.psnr_db
            );
        }
    }
}
