//! Run-time implementation selection policies.
//!
//! §5 of the paper motivates dynamic reconfiguration with "different
//! run-time constraints, such as low-battery conditions and noisy channels".
//! The [`select`] policy picks among measured [`ImplProfile`]s — the same trade-off
//! table §3.6 sketches (area vs. activity vs. precision).

/// Measured characteristics of one implementation (one Table-1 column plus
/// the dynamic metrics the harness measures).
#[derive(Debug, Clone, PartialEq)]
pub struct ImplProfile {
    /// Implementation name.
    pub name: String,
    /// Clusters used (area proxy, §3.6).
    pub clusters: u32,
    /// Configuration bits (reconfiguration cost proxy).
    pub config_bits: u64,
    /// Cycles per transformed block.
    pub cycles_per_block: u64,
    /// Energy proxy per block (activity × technology model).
    pub energy_per_block: f64,
    /// Worst-case coefficient error (precision).
    pub max_abs_err: f64,
}

/// Operating condition driving the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Mains powered / high quality: minimise output error.
    HighQuality,
    /// Low battery: minimise energy per block. Carries the measured
    /// battery state (remaining charge in whole percent, e.g. from
    /// `dsra_power::Battery::charge_pct`) that raised the condition —
    /// a real threshold crossing, not a label.
    LowBattery {
        /// Remaining battery charge in percent at selection time.
        charge_pct: u8,
    },
    /// Real-time deadline: cheapest implementation meeting a cycle budget.
    Deadline {
        /// Maximum admissible cycles per block.
        max_cycles_per_block: u64,
    },
    /// Smallest footprint (leave clusters free for other kernels).
    MinArea,
}

/// Selects the best profile for a condition. Returns `None` when no profile
/// satisfies the constraint (e.g. an unreachable deadline).
///
/// Tie behaviour: under [`Condition::LowBattery`], equal energies
/// tie-break towards the smaller cluster footprint (less area to leak
/// through while the battery is the binding constraint); any remaining
/// tie — and ties under every other condition — resolves to the earliest
/// profile in the slice.
pub fn select(profiles: &[ImplProfile], condition: Condition) -> Option<&ImplProfile> {
    let candidates: Vec<&ImplProfile> = match condition {
        Condition::Deadline {
            max_cycles_per_block,
        } => profiles
            .iter()
            .filter(|p| p.cycles_per_block <= max_cycles_per_block)
            .collect(),
        _ => profiles.iter().collect(),
    };
    let key = |p: &&ImplProfile| -> f64 {
        match condition {
            Condition::HighQuality => p.max_abs_err,
            Condition::LowBattery { .. } | Condition::Deadline { .. } => p.energy_per_block,
            Condition::MinArea => f64::from(p.clusters),
        }
    };
    candidates.into_iter().min_by(|a, b| {
        let primary = key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal);
        primary.then_with(|| match condition {
            Condition::LowBattery { .. } => a.clusters.cmp(&b.clusters),
            _ => std::cmp::Ordering::Equal,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<ImplProfile> {
        vec![
            ImplProfile {
                name: "BASIC DA".into(),
                clusters: 24,
                config_bits: 34_000,
                cycles_per_block: 14,
                energy_per_block: 9.0,
                max_abs_err: 0.8,
            },
            ImplProfile {
                name: "MIX ROM".into(),
                clusters: 32,
                config_bits: 4_000,
                cycles_per_block: 16,
                energy_per_block: 6.0,
                max_abs_err: 0.9,
            },
            ImplProfile {
                name: "CORDIC 1".into(),
                clusters: 48,
                config_bits: 3_000,
                cycles_per_block: 47,
                energy_per_block: 11.0,
                max_abs_err: 4.0,
            },
            ImplProfile {
                name: "SCC".into(),
                clusters: 24,
                config_bits: 34_000,
                cycles_per_block: 14,
                energy_per_block: 8.0,
                max_abs_err: 0.8,
            },
        ]
    }

    #[test]
    fn high_quality_picks_lowest_error() {
        let p = profiles();
        let sel = select(&p, Condition::HighQuality).unwrap();
        assert!(sel.max_abs_err <= 0.8);
    }

    #[test]
    fn low_battery_picks_lowest_energy() {
        let p = profiles();
        assert_eq!(
            select(&p, Condition::LowBattery { charge_pct: 15 })
                .unwrap()
                .name,
            "MIX ROM"
        );
    }

    #[test]
    fn low_battery_ties_break_on_area_then_order() {
        // MIX ROM (32 clusters, listed earlier) and SCC (24 clusters,
        // listed later) at identical energy: LowBattery prefers the
        // smaller footprint (less plane to leak through)…
        let mut p = profiles();
        p[1].energy_per_block = 4.0; // MIX ROM, 32 clusters
        p[3].energy_per_block = 4.0; // SCC, 24 clusters
        assert_eq!(
            select(&p, Condition::LowBattery { charge_pct: 9 })
                .unwrap()
                .name,
            "SCC"
        );
        // …while every other energy-driven condition keeps the plain
        // earliest-wins tie behaviour (area is ignored).
        let sel = select(
            &p,
            Condition::Deadline {
                max_cycles_per_block: 100,
            },
        )
        .unwrap();
        assert_eq!(sel.name, "MIX ROM");
        // An exact (energy, clusters) tie under LowBattery also resolves
        // to the earliest profile.
        p[3].clusters = 32;
        assert_eq!(
            select(&p, Condition::LowBattery { charge_pct: 9 })
                .unwrap()
                .name,
            "MIX ROM"
        );
    }

    #[test]
    fn deadline_filters_then_minimises_energy() {
        let p = profiles();
        let sel = select(
            &p,
            Condition::Deadline {
                max_cycles_per_block: 15,
            },
        )
        .unwrap();
        assert!(sel.cycles_per_block <= 15);
        assert_eq!(sel.name, "SCC");
        assert!(select(
            &p,
            Condition::Deadline {
                max_cycles_per_block: 5
            }
        )
        .is_none());
    }

    #[test]
    fn min_area_prefers_smallest_column() {
        let p = profiles();
        let sel = select(&p, Condition::MinArea).unwrap();
        assert_eq!(sel.clusters, 24);
    }
}
