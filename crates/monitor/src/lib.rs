//! # dsra-monitor — online windowed SLO monitoring over the trace stream
//!
//! `dsra-trace` (PR 7) made every serve explainable after the fact; this
//! crate makes the stack observe itself *while serving*. A [`Monitor`]
//! consumes the [`dsra_trace::TraceEvent`] stream online — installed on
//! `SocRuntime` as a [`MonitorSink`] tee — and maintains deterministic,
//! virtual-time-windowed state:
//!
//! * sliding-window latency percentiles (a ring of
//!   [`dsra_trace::Histogram`]s, merged on demand);
//! * per-array utilization / gating / reconfiguration-stall ratios;
//! * battery burn rate with a projected time-to-empty;
//! * per-tenant shed and SLO-violation rates feeding a multi-window
//!   **error-budget burn-rate alerter** (fast/slow window pair, latched
//!   with hysteresis) that emits a structured [`AlertLog`].
//!
//! Everything is stamped in virtual cycles only, so same-seed runs are
//! byte-identical, and window accumulation is order-insensitive, so
//! replaying a recorded [`dsra_trace::EventLog`] ([`Monitor::replay`])
//! reproduces the online run exactly — the contract behind
//! `trace_report --slo`.
//!
//! ```
//! use dsra_monitor::{Monitor, MonitorConfig};
//! use dsra_trace::TraceEvent;
//!
//! let mut m = Monitor::new(MonitorConfig::default());
//! m.observe(&TraceEvent::JobEnqueue {
//!     t: 0,
//!     job: 0,
//!     tenant: 0,
//!     class: "deadline",
//!     kind: "dct",
//!     deadline: 10_000,
//! });
//! m.finalize(50_000);
//! let health = m.final_snapshot();
//! assert_eq!(health.tenant(0).map(|t| t.enqueued), Some(1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alert;
pub mod config;
pub mod dashboard;
pub mod monitor;
pub mod sink;

pub use alert::{AlertEvent, AlertLog, BudgetPoint};
pub use config::{BurnRateConfig, MonitorConfig};
pub use dashboard::{render_dashboard, render_timeline};
pub use monitor::{event_end_cycle, ChaosCounts, Monitor};
pub use sink::{MonitorHandle, MonitorSink};
