//! The structured alert log and the per-window budget timeline.

/// One burn-rate alert transition, stamped at the sealing boundary of
/// the window that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Tenant whose budget fired or recovered.
    pub tenant: u32,
    /// Absolute index of the sealed window that triggered the transition.
    pub window: u64,
    /// Virtual cycle of the transition (the window's end boundary).
    pub at_cycle: u64,
    /// `true` = the alert latched, `false` = it cleared.
    pub latched: bool,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// Append-only log of alert transitions, in sealing order. Same-seed
/// runs produce byte-identical renderings and equal digests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertLog {
    events: Vec<AlertEvent>,
}

impl AlertLog {
    /// An empty log.
    pub fn new() -> Self {
        AlertLog::default()
    }

    pub(crate) fn push(&mut self, ev: AlertEvent) {
        self.events.push(ev);
    }

    /// Transitions in sealing order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no alert ever fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deterministic multi-line rendering, one transition per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{} tenant={} window={} at={} fast={:.4} slow={:.4}\n",
                if e.latched { "latch" } else { "clear" },
                e.tenant,
                e.window,
                e.at_cycle,
                e.fast_burn,
                e.slow_burn
            ));
        }
        out
    }

    /// Compact single-line form for JSON summaries: `latch:0@12` /
    /// `clear:0@19` tokens joined by spaces, `-` when empty.
    pub fn compact(&self) -> String {
        if self.events.is_empty() {
            return "-".to_owned();
        }
        self.events
            .iter()
            .map(|e| {
                format!(
                    "{}:{}@{}",
                    if e.latched { "latch" } else { "clear" },
                    e.tenant,
                    e.window
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// FNV-1a digest over every transition (burn rates by their bit
    /// patterns), for cheap byte-identity assertions in benches and CI.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01B3);
            }
        };
        for e in &self.events {
            fold(e.tenant as u64);
            fold(e.window);
            fold(e.at_cycle);
            fold(e.latched as u64);
            fold(e.fast_burn.to_bits());
            fold(e.slow_burn.to_bits());
        }
        h
    }
}

/// One tenant's budget state at one sealed window — the unit of the
/// post-hoc error-budget timeline (`trace_report --slo`). Recorded only
/// when [`crate::MonitorConfig::keep_timeline`] is on.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// Absolute window index.
    pub window: u64,
    /// Window end boundary, cycles.
    pub end_cycle: u64,
    /// Tenant id.
    pub tenant: u32,
    /// Requests decided (served + shed) in the window.
    pub decided: u64,
    /// Requests that went bad (violations + sheds) in the window.
    pub bad: u64,
    /// Fast-window burn rate after sealing this window.
    pub fast_burn: f64,
    /// Slow-window burn rate after sealing this window.
    pub slow_burn: f64,
    /// Alert state after sealing this window.
    pub latched: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AlertLog {
        let mut log = AlertLog::new();
        log.push(AlertEvent {
            tenant: 0,
            window: 12,
            at_cycle: 325_000,
            latched: true,
            fast_burn: 3.5,
            slow_burn: 2.0,
        });
        log.push(AlertEvent {
            tenant: 0,
            window: 19,
            at_cycle: 500_000,
            latched: false,
            fast_burn: 0.25,
            slow_burn: 0.5,
        });
        log
    }

    #[test]
    fn render_and_compact_are_deterministic_and_readable() {
        let log = sample();
        assert_eq!(log.render(), log.render());
        assert!(log
            .render()
            .starts_with("latch tenant=0 window=12 at=325000 fast=3.5000 slow=2.0000\n"));
        assert_eq!(log.compact(), "latch:0@12 clear:0@19");
        assert_eq!(AlertLog::new().compact(), "-");
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn digest_separates_different_logs() {
        let log = sample();
        assert_eq!(log.digest(), sample().digest());
        assert_ne!(log.digest(), AlertLog::new().digest());
        let mut other = sample();
        other.push(AlertEvent {
            tenant: 1,
            window: 30,
            at_cycle: 775_000,
            latched: true,
            fast_burn: 2.0,
            slow_burn: 1.6,
        });
        assert_ne!(log.digest(), other.digest());
    }
}
