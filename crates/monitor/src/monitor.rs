//! The streaming monitor: windowed state over the trace-event stream.
//!
//! ## Sealing model
//!
//! Time is cut into windows `[w·W, (w+1)·W)` keyed by the absolute index
//! `w`. Not-yet-sealed windows live in a fixed ring; a window **seals**
//! once the watermark (the largest "now"-stamped cycle seen) passes its
//! end by [`MonitorConfig::seal_grace_cycles`], or when an explicit
//! query ([`Monitor::health`], [`Monitor::active_alerts`],
//! [`Monitor::finalize`]) advances virtual time past it. Only
//! `JobEnqueue`/`JobAdmit`/`JobShed` stamps advance the watermark —
//! they are emitted *at* the dispatcher's current instant, while
//! completions, intervals, and battery samples may carry stamps up to
//! one clock quantum behind it (the µs clock rounds cycles up) or far
//! ahead of it, and only fill windows; the seal grace is what keeps the
//! behind-the-watermark stragglers from being dropped.
//!
//! Window accumulation is order-insensitive (commutative counters,
//! histogram records, min/max battery folds), so replaying a recorded
//! [`EventLog`](dsra_trace::EventLog) through the same code yields a
//! byte-identical [`AlertLog`] and final [`HealthSnapshot`] — the
//! property `trace_report --slo` and its pinning test rely on.

use crate::alert::{AlertEvent, AlertLog, BudgetPoint};
use crate::config::MonitorConfig;
use dsra_trace::{
    ArrayHealth, ArrayPhase, BatteryHealth, HealthSnapshot, Histogram, LatencyStats, TenantHealth,
    TraceEvent,
};
use std::collections::{BTreeMap, VecDeque};

/// Per-tenant decision counts inside one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TenantWindow {
    enqueued: u64,
    served: u64,
    shed: u64,
    violations: u64,
}

/// One not-yet-sealed window resident in the ring.
#[derive(Debug, Clone)]
struct WindowState {
    abs: u64,
    hist: Histogram,
    tenants: BTreeMap<u32, TenantWindow>,
}

/// A job between its enqueue and its completion or shed.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    tenant: u32,
    enqueue: u64,
    deadline: u64,
}

/// Cumulative per-tenant state plus the alerter's window deque.
#[derive(Debug, Clone)]
struct TenantState {
    budget_fraction: f64,
    /// `(decided, bad)` per sealed window, most recent at the back,
    /// capped at `alert.slow_windows`.
    windows: VecDeque<(u64, u64)>,
    latched: bool,
    hold: u32,
    fast_burn: f64,
    slow_burn: f64,
    enqueued: u64,
    served: u64,
    shed: u64,
    violations: u64,
}

impl TenantState {
    fn new(budget_fraction: f64) -> Self {
        TenantState {
            budget_fraction,
            windows: VecDeque::new(),
            latched: false,
            hold: 0,
            fast_burn: 0.0,
            slow_burn: 0.0,
            enqueued: 0,
            served: 0,
            shed: 0,
            violations: 0,
        }
    }

    /// Burn rate over the most recent `depth` windows of the deque.
    fn burn(&self, depth: usize) -> f64 {
        let (mut decided, mut bad) = (0u64, 0u64);
        for &(d, b) in self.windows.iter().rev().take(depth) {
            decided += d;
            bad += b;
        }
        if decided == 0 {
            return 0.0;
        }
        (bad as f64 / decided as f64) / self.budget_fraction
    }
}

/// Cumulative per-array phase cycles.
#[derive(Debug, Clone, Copy, Default)]
struct ArrayAgg {
    idle: u64,
    gated: u64,
    reconfig: u64,
    waking: u64,
    exec: u64,
    span_end: u64,
}

/// Cumulative chaos/recovery event counts observed on the stream —
/// commutative increments, so replay folds them order-insensitively like
/// every other windowed aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Fault-plan injections observed.
    pub faults: u64,
    /// Golden spot-check divergences observed.
    pub divergences: u64,
    /// Recovery retries dispatched.
    pub retries: u64,
    /// Array quarantine transitions.
    pub quarantines: u64,
    /// Array restore transitions.
    pub restores: u64,
}

/// Battery trajectory endpoints, folded order-insensitively: the first
/// sample is the one with the smallest cycle (largest charge on ties),
/// the last the one with the largest cycle (smallest charge on ties).
#[derive(Debug, Clone, Copy)]
struct BatteryAgg {
    first_t: u64,
    first_j: f64,
    last_t: u64,
    last_j: f64,
}

/// The streaming monitor. Feed it [`TraceEvent`]s via
/// [`observe`](Monitor::observe) (or wrap it in a
/// [`MonitorSink`](crate::MonitorSink)), query it with
/// [`health`](Monitor::health) / [`active_alerts`](Monitor::active_alerts),
/// and close the stream with [`finalize`](Monitor::finalize).
#[derive(Debug, Clone)]
pub struct Monitor {
    cfg: MonitorConfig,
    slots: Vec<Option<WindowState>>,
    /// Sealed window count == absolute index of the next window to seal.
    sealed: u64,
    watermark: u64,
    finalized_at: Option<u64>,
    inflight: BTreeMap<u32, Inflight>,
    tenants: BTreeMap<u32, TenantState>,
    /// `(abs, histogram)` of the most recent sealed windows, capped at
    /// `alert.slow_windows` — the sliding percentile view.
    lat_recent: VecDeque<(u64, Histogram)>,
    arrays: BTreeMap<u32, ArrayAgg>,
    battery: Option<BatteryAgg>,
    counters: BTreeMap<&'static str, u64>,
    chaos: ChaosCounts,
    /// Arrays currently under quarantine (fault alerts latch while any
    /// are present; restores clear them).
    quarantined: std::collections::BTreeSet<u32>,
    completes: u64,
    sheds: u64,
    late_drops: u64,
    horizon_drops: u64,
    log: AlertLog,
    timeline: Vec<BudgetPoint>,
}

impl Monitor {
    /// A monitor over an empty stream. Tenants listed in
    /// `cfg.tenant_budgets` are registered immediately so their alert
    /// windows cover the run from window 0.
    ///
    /// # Panics
    /// Panics on degenerate geometry (zero window length, empty ring,
    /// zero alert windows, or `fast_windows > slow_windows`).
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(cfg.window_cycles > 0, "window length must be positive");
        assert!(cfg.ring_windows > 0, "need at least one ring slot");
        assert!(
            cfg.alert.fast_windows > 0,
            "fast window depth must be positive"
        );
        assert!(
            cfg.alert.fast_windows <= cfg.alert.slow_windows,
            "fast window depth must not exceed the slow depth"
        );
        let mut tenants = BTreeMap::new();
        for &(id, _) in &cfg.tenant_budgets {
            tenants
                .entry(id)
                .or_insert_with(|| TenantState::new(cfg.budget_fraction(id)));
        }
        Monitor {
            slots: vec![None; cfg.ring_windows],
            sealed: 0,
            watermark: 0,
            finalized_at: None,
            inflight: BTreeMap::new(),
            tenants,
            lat_recent: VecDeque::new(),
            arrays: BTreeMap::new(),
            battery: None,
            counters: BTreeMap::new(),
            chaos: ChaosCounts::default(),
            quarantined: std::collections::BTreeSet::new(),
            completes: 0,
            sheds: 0,
            late_drops: 0,
            horizon_drops: 0,
            log: AlertLog::new(),
            timeline: Vec::new(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Consumes one trace event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::JobEnqueue {
                t,
                job,
                tenant,
                deadline,
                ..
            } => {
                self.advance(*t);
                self.tenant_entry(*tenant).enqueued += 1;
                if let Some(w) = self.window_mut(*t) {
                    w.tenants.entry(*tenant).or_default().enqueued += 1;
                }
                self.inflight.insert(
                    *job,
                    Inflight {
                        tenant: *tenant,
                        enqueue: *t,
                        deadline: *deadline,
                    },
                );
            }
            TraceEvent::JobAdmit { t, .. } => self.advance(*t),
            TraceEvent::JobShed { t, job, tenant, .. } => {
                self.advance(*t);
                self.inflight.remove(job);
                self.sheds += 1;
                self.tenant_entry(*tenant).shed += 1;
                if let Some(w) = self.window_mut(*t) {
                    w.tenants.entry(*tenant).or_default().shed += 1;
                }
            }
            TraceEvent::JobComplete { t, job, .. } => {
                self.completes += 1;
                if let Some(fl) = self.inflight.remove(job) {
                    let latency = t.saturating_sub(fl.enqueue);
                    let violated = fl.deadline > 0 && *t > fl.deadline;
                    let ts = self.tenant_entry(fl.tenant);
                    ts.served += 1;
                    ts.violations += violated as u64;
                    if let Some(w) = self.window_mut(*t) {
                        w.hist.record(latency);
                        let tw = w.tenants.entry(fl.tenant).or_default();
                        tw.served += 1;
                        tw.violations += violated as u64;
                    }
                }
            }
            TraceEvent::ArrayInterval {
                array,
                phase,
                start,
                end,
                ..
            } => {
                // Zero-length intervals are skipped entirely (the Chrome
                // exporter drops them, and replay must agree with online).
                if end > start {
                    let a = self.arrays.entry(*array).or_default();
                    let d = end - start;
                    match phase {
                        ArrayPhase::Idle => a.idle += d,
                        ArrayPhase::Gated => a.gated += d,
                        ArrayPhase::Reconfig => a.reconfig += d,
                        ArrayPhase::Waking => a.waking += d,
                        ArrayPhase::Exec => a.exec += d,
                    }
                    a.span_end = a.span_end.max(*end);
                }
            }
            TraceEvent::BatteryLevel { t, charge_j } => {
                let b = self.battery.get_or_insert(BatteryAgg {
                    first_t: *t,
                    first_j: *charge_j,
                    last_t: *t,
                    last_j: *charge_j,
                });
                if *t < b.first_t || (*t == b.first_t && *charge_j > b.first_j) {
                    b.first_t = *t;
                    b.first_j = *charge_j;
                }
                if *t > b.last_t || (*t == b.last_t && *charge_j < b.last_j) {
                    b.last_t = *t;
                    b.last_j = *charge_j;
                }
            }
            TraceEvent::Counter { name, value, .. } => {
                // Counters carry cumulative values; the last sample wins.
                self.counters.insert(name, *value);
            }
            TraceEvent::FaultInjected { .. } => self.chaos.faults += 1,
            TraceEvent::DivergenceDetected { .. } => self.chaos.divergences += 1,
            TraceEvent::JobRetry { .. } => self.chaos.retries += 1,
            TraceEvent::ArrayQuarantine { array, .. } => {
                self.chaos.quarantines += 1;
                self.quarantined.insert(*array);
            }
            TraceEvent::ArrayRestore { array, .. } => {
                self.chaos.restores += 1;
                self.quarantined.remove(array);
            }
            TraceEvent::JobSchedule { .. } | TraceEvent::Meta { .. } => {}
        }
    }

    /// Seals every window whose end (plus the configured seal grace) is
    /// at or before `now_cycle`.
    pub fn seal_to(&mut self, now_cycle: u64) {
        self.advance(now_cycle);
    }

    /// Seals through the window containing `end_cycle` plus any windows
    /// still resident in the ring (partial tails included), closing the
    /// stream. Queries after this answer for `end_cycle`.
    pub fn finalize(&mut self, end_cycle: u64) {
        let mut target = end_cycle / self.cfg.window_cycles + 1;
        for s in self.slots.iter().flatten() {
            target = target.max(s.abs + 1);
        }
        while self.sealed < target {
            self.seal_one();
        }
        self.watermark = self.watermark.max(end_cycle);
        self.finalized_at = Some(end_cycle);
    }

    /// Alerts latched at `now_cycle` (seals up to it first): burn-rate
    /// alerts per tenant plus one fault alert per quarantined array, so
    /// recovery-driven capacity loss feeds the same admission hook the
    /// SLO alerter does.
    pub fn active_alerts(&mut self, now_cycle: u64) -> u32 {
        self.seal_to(now_cycle);
        self.tenants.values().filter(|t| t.latched).count() as u32 + self.quarantined.len() as u32
    }

    /// Cumulative chaos/recovery event counts observed so far.
    pub fn chaos_counts(&self) -> ChaosCounts {
        self.chaos
    }

    /// Arrays currently under quarantine, ascending.
    pub fn quarantined_arrays(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// Health at `now_cycle` (seals up to it first).
    pub fn health(&mut self, now_cycle: u64) -> HealthSnapshot {
        self.seal_to(now_cycle);
        self.snapshot(now_cycle)
    }

    /// Health at the finalize cycle (or the watermark before finalize),
    /// without advancing time.
    pub fn final_snapshot(&self) -> HealthSnapshot {
        self.snapshot(self.finalized_at.unwrap_or(self.watermark))
    }

    /// Alert transitions so far.
    pub fn alert_log(&self) -> &AlertLog {
        &self.log
    }

    /// Per-window budget timeline (empty unless
    /// [`MonitorConfig::keep_timeline`] is on).
    pub fn timeline(&self) -> &[BudgetPoint] {
        &self.timeline
    }

    /// Windows sealed so far.
    pub fn windows_sealed(&self) -> u64 {
        self.sealed
    }

    /// Windows currently held in memory (unsealed ring occupancy plus
    /// the sliding percentile view) — bounded by configuration, not run
    /// length.
    pub fn resident_windows(&self) -> usize {
        self.slots.iter().flatten().count() + self.lat_recent.len()
    }

    /// Jobs currently between enqueue and completion/shed.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// `(late, beyond-horizon)` events dropped from windowed state.
    /// Both stay 0 for dispatcher-shaped streams; they exist so silent
    /// miscounting is impossible.
    pub fn drops(&self) -> (u64, u64) {
        (self.late_drops, self.horizon_drops)
    }

    /// Replays a recorded event stream through a fresh monitor and
    /// finalizes at the largest cycle any event carries — the post-hoc
    /// view `trace_report --slo` renders, pinned byte-equal to the
    /// online view by `monitor_replay.rs`.
    pub fn replay<'a, I>(cfg: MonitorConfig, events: I) -> Monitor
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let mut m = Monitor::new(cfg);
        let mut end = 0u64;
        for ev in events {
            end = end.max(event_end_cycle(ev));
            m.observe(ev);
        }
        m.finalize(end);
        m
    }

    /// Assembles a snapshot for `at_cycle` from current state, without
    /// sealing anything.
    pub fn snapshot(&self, at_cycle: u64) -> HealthSnapshot {
        let latency = {
            let mut merged = Histogram::new(self.cfg.hist_bucket_cycles, self.cfg.hist_buckets);
            for (_, h) in &self.lat_recent {
                merged.merge(h);
            }
            LatencyStats {
                count: merged.count(),
                p50: merged.p50(),
                p90: merged.p90(),
                p99: merged.p99(),
                max: merged.max(),
            }
        };
        let arrays = self
            .arrays
            .iter()
            .map(|(&array, a)| {
                let span = a.span_end;
                let pct = |c: u64| {
                    if span == 0 {
                        0.0
                    } else {
                        c as f64 * 100.0 / span as f64
                    }
                };
                ArrayHealth {
                    array,
                    span_cycles: span,
                    utilization_pct: pct(a.exec),
                    gated_pct: pct(a.gated),
                    stall_pct: pct(a.reconfig + a.waking),
                }
            })
            .collect();
        let battery = self.battery.map(|b| {
            // The slope math lives with the battery model so dashboards
            // and discharge experiments agree on the projection.
            let (burn, projected) =
                dsra_power::burn_projection((b.first_t, b.first_j), (b.last_t, b.last_j));
            BatteryHealth {
                charge_j: b.last_j,
                at_cycle: b.last_t,
                burn_j_per_mcycle: burn,
                projected_empty_cycle: projected,
            }
        });
        let tenants = self
            .tenants
            .iter()
            .map(|(&tenant, t)| TenantHealth {
                tenant,
                enqueued: t.enqueued,
                served: t.served,
                shed: t.shed,
                violations: t.violations,
                fast_burn: t.fast_burn,
                slow_burn: t.slow_burn,
                alert: t.latched,
            })
            .collect();
        HealthSnapshot {
            at_cycle,
            window_cycles: self.cfg.window_cycles,
            windows_sealed: self.sealed,
            latency,
            arrays,
            battery,
            tenants,
            alerts_active: self.tenants.values().filter(|t| t.latched).count() as u32
                + self.quarantined.len() as u32,
            completes: self.completes,
            sheds: self.sheds,
        }
    }

    /// Cumulative value of a named counter sample (0 when never seen).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn advance(&mut self, now_cycle: u64) {
        self.watermark = self.watermark.max(now_cycle);
        // A window seals only once the watermark clears its end by the
        // configured grace, so events stamped up to one producer clock
        // quantum behind the watermark still find their window resident.
        while (self.sealed + 1) * self.cfg.window_cycles + self.cfg.seal_grace_cycles
            <= self.watermark
        {
            self.seal_one();
        }
    }

    fn tenant_entry(&mut self, tenant: u32) -> &mut TenantState {
        let budget = self.cfg.budget_fraction(tenant);
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(budget))
    }

    fn window_mut(&mut self, t: u64) -> Option<&mut WindowState> {
        let w = t / self.cfg.window_cycles;
        if w < self.sealed {
            self.late_drops += 1;
            return None;
        }
        let slot = (w % self.cfg.ring_windows as u64) as usize;
        match &self.slots[slot] {
            Some(s) if s.abs == w => {}
            Some(_) => {
                // The slot holds a different unsealed window: the stream
                // spans more future windows than the ring covers.
                self.horizon_drops += 1;
                return None;
            }
            None => {
                self.slots[slot] = Some(WindowState {
                    abs: w,
                    hist: Histogram::new(self.cfg.hist_bucket_cycles, self.cfg.hist_buckets),
                    tenants: BTreeMap::new(),
                });
            }
        }
        self.slots[slot].as_mut()
    }

    /// Seals window `self.sealed`: folds its histogram into the sliding
    /// view, feeds every known tenant's alerter (absent tenants
    /// contribute an empty window), and records transitions.
    fn seal_one(&mut self) {
        let w = self.sealed;
        let slot = (w % self.cfg.ring_windows as u64) as usize;
        let state = match &self.slots[slot] {
            Some(s) if s.abs == w => self.slots[slot].take(),
            _ => None,
        };
        let hist = state.as_ref().map_or_else(
            || Histogram::new(self.cfg.hist_bucket_cycles, self.cfg.hist_buckets),
            |s| s.hist.clone(),
        );
        self.lat_recent.push_back((w, hist));
        while self.lat_recent.len() > self.cfg.alert.slow_windows {
            self.lat_recent.pop_front();
        }
        let alert = self.cfg.alert;
        let end_cycle = (w + 1) * self.cfg.window_cycles;
        let mut transitions = Vec::new();
        let mut points = Vec::new();
        for (&id, ts) in self.tenants.iter_mut() {
            let (decided, bad) = state
                .as_ref()
                .and_then(|s| s.tenants.get(&id))
                .map_or((0, 0), |tw| (tw.served + tw.shed, tw.violations + tw.shed));
            ts.windows.push_back((decided, bad));
            while ts.windows.len() > alert.slow_windows {
                ts.windows.pop_front();
            }
            ts.fast_burn = ts.burn(alert.fast_windows);
            ts.slow_burn = ts.burn(alert.slow_windows);
            if ts.hold > 0 {
                ts.hold -= 1;
            } else if !ts.latched
                && ts.fast_burn >= alert.fire_burn
                && ts.slow_burn >= alert.fire_burn
            {
                ts.latched = true;
                ts.hold = alert.hold_windows;
                transitions.push((id, true, ts.fast_burn, ts.slow_burn));
            } else if ts.latched
                && ts.fast_burn <= alert.clear_burn
                && ts.slow_burn <= alert.clear_burn
            {
                ts.latched = false;
                ts.hold = alert.hold_windows;
                transitions.push((id, false, ts.fast_burn, ts.slow_burn));
            }
            if self.cfg.keep_timeline {
                points.push(BudgetPoint {
                    window: w,
                    end_cycle,
                    tenant: id,
                    decided,
                    bad,
                    fast_burn: ts.fast_burn,
                    slow_burn: ts.slow_burn,
                    latched: ts.latched,
                });
            }
        }
        for (tenant, latched, fast_burn, slow_burn) in transitions {
            self.log.push(AlertEvent {
                tenant,
                window: w,
                at_cycle: end_cycle,
                latched,
                fast_burn,
                slow_burn,
            });
        }
        self.timeline.extend(points);
        self.sealed = w + 1;
    }
}

/// The largest virtual cycle an event carries (0 for `Meta`).
pub fn event_end_cycle(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::Meta { .. } => 0,
        TraceEvent::JobEnqueue { t, .. }
        | TraceEvent::JobAdmit { t, .. }
        | TraceEvent::JobShed { t, .. }
        | TraceEvent::JobSchedule { t, .. }
        | TraceEvent::JobComplete { t, .. }
        | TraceEvent::BatteryLevel { t, .. }
        | TraceEvent::Counter { t, .. }
        | TraceEvent::FaultInjected { t, .. }
        | TraceEvent::DivergenceDetected { t, .. }
        | TraceEvent::JobRetry { t, .. }
        | TraceEvent::ArrayQuarantine { t, .. }
        | TraceEvent::ArrayRestore { t, .. } => *t,
        TraceEvent::ArrayInterval { end, .. } => *end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_trace::EnergyBreakdown;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window_cycles: 100,
            ring_windows: 8,
            hist_bucket_cycles: 1,
            hist_buckets: 256,
            tenant_budgets: vec![(0, 10.0)],
            ..MonitorConfig::default()
        }
    }

    fn enqueue(t: u64, job: u32, deadline: u64) -> TraceEvent {
        TraceEvent::JobEnqueue {
            t,
            job,
            tenant: 0,
            class: "deadline",
            kind: "dct",
            deadline,
        }
    }

    fn complete(t: u64, job: u32) -> TraceEvent {
        TraceEvent::JobComplete {
            t,
            job,
            checksum: 1,
            energy: EnergyBreakdown::default(),
        }
    }

    #[test]
    fn windows_seal_on_the_watermark_and_latency_joins_enqueue_to_complete() {
        let mut m = Monitor::new(cfg());
        m.observe(&enqueue(10, 1, 0));
        m.observe(&complete(40, 1));
        assert_eq!(m.windows_sealed(), 0, "window 0 still open");
        m.observe(&enqueue(250, 2, 0));
        assert_eq!(m.windows_sealed(), 2, "watermark 250 seals windows 0-1");
        m.observe(&complete(260, 2));
        m.finalize(300);
        let s = m.final_snapshot();
        assert_eq!(s.latency.count, 2);
        assert_eq!(s.latency.max, 30);
        assert_eq!(s.completes, 2);
        let t = s.tenant(0).expect("tenant 0");
        assert_eq!((t.enqueued, t.served, t.shed, t.violations), (2, 2, 0, 0));
        assert_eq!(m.drops(), (0, 0));
    }

    #[test]
    fn violations_and_sheds_burn_the_budget_and_latch_then_clear() {
        let mut m = Monitor::new(cfg());
        let mut job = 0u32;
        // Four hot windows: every request blows its deadline.
        for w in 0..4u64 {
            for i in 0..10u64 {
                let t = w * 100 + i * 10;
                m.observe(&enqueue(t, job, t + 1));
                m.observe(&complete(t + 5, job));
                job += 1;
            }
        }
        // Then quiet windows: all on time.
        for w in 4..14u64 {
            for i in 0..10u64 {
                let t = w * 100 + i * 10;
                m.observe(&enqueue(t, job, t + 50));
                m.observe(&complete(t + 5, job));
                job += 1;
            }
        }
        m.finalize(1_400);
        let log = m.alert_log();
        assert!(!log.is_empty(), "overload must latch");
        assert!(log.events()[0].latched);
        assert!(
            log.events().last().map(|e| !e.latched).unwrap_or(false),
            "quiet tail must clear: {}",
            log.render()
        );
        assert_eq!(m.active_alerts(1_400), 0);
    }

    #[test]
    fn memory_is_bounded_by_configuration_not_run_length() {
        let mut m = Monitor::new(cfg());
        for j in 0..50_000u32 {
            let t = j as u64 * 7;
            m.observe(&enqueue(t, j, 0));
            m.observe(&complete(t + 3, j));
        }
        let bound = m.config().ring_windows + m.config().alert.slow_windows;
        assert!(
            m.resident_windows() <= bound,
            "{} resident windows exceeds the {bound} bound",
            m.resident_windows()
        );
        assert!(m.inflight_len() <= 1);
        assert_eq!(m.drops(), (0, 0));
    }

    #[test]
    fn replay_of_the_same_events_is_byte_identical() {
        let mut events = Vec::new();
        let mut job = 0u32;
        for w in 0..12u64 {
            for i in 0..6u64 {
                let t = w * 100 + i * 16;
                events.push(enqueue(t, job, t + (i % 2) * 40 + 1));
                events.push(complete(t + 30, job));
                job += 1;
            }
        }
        events.push(TraceEvent::BatteryLevel {
            t: 1_150,
            charge_j: 900.0,
        });
        events.push(TraceEvent::BatteryLevel {
            t: 100,
            charge_j: 1_000.0,
        });
        let mut online = Monitor::new(MonitorConfig {
            keep_timeline: true,
            ..cfg()
        });
        let end = events.iter().map(event_end_cycle).max().expect("events");
        for ev in &events {
            online.observe(ev);
        }
        online.finalize(end);
        let replayed = Monitor::replay(
            MonitorConfig {
                keep_timeline: true,
                ..cfg()
            },
            &events,
        );
        assert_eq!(online.alert_log(), replayed.alert_log());
        assert_eq!(online.timeline(), replayed.timeline());
        assert_eq!(online.final_snapshot(), replayed.final_snapshot());
        let b = online.final_snapshot().battery.expect("battery");
        assert_eq!(b.at_cycle, 1_150);
        assert!(b.burn_j_per_mcycle > 0.0);
        assert!(b.projected_empty_cycle.is_some());
    }

    #[test]
    fn far_future_events_beyond_the_ring_are_counted_not_miscounted() {
        let mut m = Monitor::new(cfg());
        m.observe(&enqueue(10, 1, 0));
        // Completion 8 windows ahead of an 8-slot ring lands on the slot
        // window 0 (still unsealed) occupies.
        m.observe(&complete(810, 1));
        let (late, horizon) = m.drops();
        assert_eq!((late, horizon), (0, 1));
        m.finalize(900);
        assert_eq!(m.final_snapshot().latency.count, 0);
        assert_eq!(m.final_snapshot().completes, 1, "cumulative still counts");
    }
}
