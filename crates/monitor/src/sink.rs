//! [`MonitorHandle`] — shared ownership of a [`Monitor`] — and
//! [`MonitorSink`], the [`TraceSink`] tee that feeds it online.
//!
//! The sink is installed on `SocRuntime` in place of the plain sink and
//! forwards every event to both the monitor and the wrapped inner sink,
//! so `--monitor` and `--trace` compose. The caller keeps a handle clone
//! to query health mid-run (the `MonitorAwareAdmission` control hook)
//! and to extract the [`AlertLog`](crate::AlertLog) afterwards.

use crate::monitor::Monitor;
use dsra_trace::{EventLog, HealthSnapshot, TraceEvent, TraceSink};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cloneable shared handle to a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorHandle(Arc<Mutex<Monitor>>);

impl PartialEq for MonitorHandle {
    /// Handles compare by identity: two handles are equal when they
    /// share the same monitor.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for MonitorHandle {}

impl MonitorHandle {
    /// Wraps a monitor for sharing.
    pub fn new(monitor: Monitor) -> Self {
        MonitorHandle(Arc::new(Mutex::new(monitor)))
    }

    fn lock(&self) -> MutexGuard<'_, Monitor> {
        self.0.lock().expect("monitor lock poisoned")
    }

    /// Runs a closure against the monitor (for tests and renderers that
    /// need more than the query surface).
    pub fn with<R>(&self, f: impl FnOnce(&mut Monitor) -> R) -> R {
        f(&mut self.lock())
    }

    /// Feeds one event.
    pub fn observe(&self, ev: &TraceEvent) {
        self.lock().observe(ev);
    }

    /// Health at `now_cycle`.
    pub fn health(&self, now_cycle: u64) -> HealthSnapshot {
        self.lock().health(now_cycle)
    }

    /// Latched alerts at `now_cycle`.
    pub fn active_alerts(&self, now_cycle: u64) -> u32 {
        self.lock().active_alerts(now_cycle)
    }

    /// Closes the stream at `end_cycle`, sealing all resident windows.
    pub fn finalize(&self, end_cycle: u64) {
        self.lock().finalize(end_cycle);
    }

    /// A clone of the alert log.
    pub fn alert_log(&self) -> crate::AlertLog {
        self.lock().alert_log().clone()
    }

    /// Health at the finalize cycle (or the current watermark).
    pub fn final_snapshot(&self) -> HealthSnapshot {
        self.lock().final_snapshot()
    }

    /// Cumulative chaos/recovery counts observed so far.
    pub fn chaos_counts(&self) -> crate::ChaosCounts {
        self.lock().chaos_counts()
    }

    /// Arrays currently under quarantine, ascending.
    pub fn quarantined_arrays(&self) -> Vec<u32> {
        self.lock().quarantined_arrays()
    }
}

/// A [`TraceSink`] that tees every event into the shared monitor and
/// forwards it to the wrapped inner sink ([`dsra_trace::NoopSink`] when
/// recording is off, an [`EventLog`] when `--trace` is also on).
pub struct MonitorSink {
    handle: MonitorHandle,
    inner: Box<dyn TraceSink>,
}

impl std::fmt::Debug for MonitorSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorSink")
            .field("handle", &self.handle)
            .finish_non_exhaustive()
    }
}

impl MonitorSink {
    /// Tees into `handle`, forwarding to `inner`.
    pub fn new(handle: MonitorHandle, inner: Box<dyn TraceSink>) -> Self {
        MonitorSink { handle, inner }
    }

    /// The shared handle (clone to keep after installing the sink).
    pub fn handle(&self) -> MonitorHandle {
        self.handle.clone()
    }
}

impl TraceSink for MonitorSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: TraceEvent) {
        self.handle.observe(&event);
        if self.inner.enabled() {
            self.inner.emit(event);
        }
    }

    fn into_log(self: Box<Self>) -> Option<EventLog> {
        self.inner.into_log()
    }

    fn health_snapshot(&mut self, now_cycle: u64) -> Option<HealthSnapshot> {
        Some(self.handle.health(now_cycle))
    }

    fn active_alerts(&mut self, now_cycle: u64) -> u32 {
        self.handle.active_alerts(now_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonitorConfig;
    use dsra_trace::NoopSink;

    #[test]
    fn sink_tees_into_the_monitor_and_forwards_to_the_inner_log() {
        let handle = MonitorHandle::new(Monitor::new(MonitorConfig::default()));
        let mut sink = MonitorSink::new(handle.clone(), Box::new(EventLog::new()));
        assert!(sink.enabled());
        sink.emit(TraceEvent::JobEnqueue {
            t: 5,
            job: 1,
            tenant: 0,
            class: "quality",
            kind: "dct",
            deadline: 0,
        });
        assert_eq!(sink.active_alerts(10), 0);
        let snap = sink.health_snapshot(10).expect("monitor answers health");
        assert_eq!(snap.tenant(0).map(|t| t.enqueued), Some(1));
        let log = Box::new(sink).into_log().expect("inner event log");
        assert_eq!(log.len(), 1);
        assert_eq!(handle.health(10).tenant(0).map(|t| t.enqueued), Some(1));
    }

    #[test]
    fn noop_inner_keeps_monitoring_but_records_nothing() {
        let handle = MonitorHandle::new(Monitor::new(MonitorConfig::default()));
        let mut sink = MonitorSink::new(handle.clone(), Box::new(NoopSink));
        sink.emit(TraceEvent::JobAdmit { t: 50_000, job: 0 });
        assert!(Box::new(sink).into_log().is_none());
        assert_eq!(handle.with(|m| m.windows_sealed()), 2);
    }

    #[test]
    fn handles_compare_by_identity() {
        let a = MonitorHandle::new(Monitor::new(MonitorConfig::default()));
        let b = MonitorHandle::new(Monitor::new(MonitorConfig::default()));
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
