//! Monitor configuration: window geometry, histogram shape, per-tenant
//! error budgets, and the burn-rate alerter thresholds.

/// Multi-window burn-rate alerter parameters (the SRE fast/slow window
/// pair with hysteresis).
///
/// An alert **latches** for a tenant when both the fast-window and the
/// slow-window burn rate reach [`fire_burn`](BurnRateConfig::fire_burn),
/// and **clears** when both fall to
/// [`clear_burn`](BurnRateConfig::clear_burn) or below. After any
/// transition the state is held for
/// [`hold_windows`](BurnRateConfig::hold_windows) sealed windows, so the
/// alerter cannot flap faster than the hold interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateConfig {
    /// Sealed windows in the fast (reactive) burn-rate view.
    pub fast_windows: usize,
    /// Sealed windows in the slow (confirming) burn-rate view; also the
    /// sliding-window depth for latency percentiles.
    pub slow_windows: usize,
    /// Burn rate at or above which an alert latches (1.0 = consuming the
    /// budget exactly as provisioned).
    pub fire_burn: f64,
    /// Burn rate at or below which a latched alert clears.
    pub clear_burn: f64,
    /// Sealed windows a transition is held before the next transition
    /// may happen.
    pub hold_windows: u32,
}

impl Default for BurnRateConfig {
    fn default() -> Self {
        BurnRateConfig {
            fast_windows: 2,
            slow_windows: 6,
            fire_burn: 1.5,
            clear_burn: 0.75,
            hold_windows: 2,
        }
    }
}

/// Full monitor configuration. All geometry is in virtual cycles; the
/// monitor never reads a wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Window length in cycles. Windows are `[w·W, (w+1)·W)` for the
    /// absolute index `w`; a window seals once virtual time passes its
    /// end.
    pub window_cycles: u64,
    /// Ring capacity for not-yet-sealed windows (the future horizon).
    /// Memory is bounded by this plus the alerter's window depth,
    /// independent of run length.
    pub ring_windows: usize,
    /// Bucket width of the per-window latency histograms, cycles.
    pub hist_bucket_cycles: u64,
    /// Bucket count of the per-window latency histograms.
    pub hist_buckets: usize,
    /// Burn-rate alerter parameters.
    pub alert: BurnRateConfig,
    /// Error budget (percent of decided requests allowed to go bad) for
    /// tenants not listed in [`tenant_budgets`](MonitorConfig::tenant_budgets).
    pub default_budget_pct: f64,
    /// Per-tenant error budgets `(tenant, budget_pct)`. Listed tenants
    /// are registered up front so their alert windows span the whole run.
    pub tenant_budgets: Vec<(u32, f64)>,
    /// Extra cycles the watermark must pass a window's end before it
    /// seals. Producers whose "now" stamps are coarser than event
    /// stamps (the dispatcher's µs clock rounds cycles *up*) can emit a
    /// completion up to one clock quantum behind the watermark; a grace
    /// of `quantum − 1` guarantees such events still find their window
    /// resident, so [`Monitor::drops`](crate::Monitor::drops) stays
    /// zero and time-ordered replay equals the online view exactly.
    pub seal_grace_cycles: u64,
    /// Record a [`crate::BudgetPoint`] per tenant per sealed window.
    /// Off by default: the timeline grows with run length, which the
    /// serving path must not.
    pub keep_timeline: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_cycles: 25_000,
            ring_windows: 64,
            hist_bucket_cycles: 2_500,
            hist_buckets: 2_048,
            alert: BurnRateConfig::default(),
            default_budget_pct: 5.0,
            tenant_budgets: Vec::new(),
            seal_grace_cycles: 0,
            keep_timeline: false,
        }
    }
}

impl MonitorConfig {
    /// The error budget for one tenant, as a fraction in `(0, 1]`.
    pub fn budget_fraction(&self, tenant: u32) -> f64 {
        let pct = self
            .tenant_budgets
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(self.default_budget_pct, |(_, b)| *b);
        (pct / 100.0).clamp(1e-9, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_fall_back_to_the_default_and_clamp() {
        let cfg = MonitorConfig {
            tenant_budgets: vec![(0, 2.0), (1, 0.0)],
            ..MonitorConfig::default()
        };
        assert!((cfg.budget_fraction(0) - 0.02).abs() < 1e-12);
        assert!(cfg.budget_fraction(1) > 0.0, "zero budget clamps up");
        assert!((cfg.budget_fraction(9) - 0.05).abs() < 1e-12, "default");
    }
}
