//! Deterministic dashboard-style text rendering of a health snapshot
//! plus the alert log — what `stream_serve --monitor` prints.

use crate::alert::{AlertLog, BudgetPoint};
use dsra_trace::HealthSnapshot;

/// Renders a snapshot and alert log as a fixed-layout text dashboard.
/// Same-seed runs produce byte-identical output.
pub fn render_dashboard(snapshot: &HealthSnapshot, log: &AlertLog) -> String {
    let mut out = String::new();
    out.push_str("== monitor dashboard ==\n");
    out.push_str(&format!(
        "at={} window={} sealed={} alerts_active={} completes={} sheds={}\n",
        snapshot.at_cycle,
        snapshot.window_cycles,
        snapshot.windows_sealed,
        snapshot.alerts_active,
        snapshot.completes,
        snapshot.sheds
    ));
    let l = &snapshot.latency;
    out.push_str(&format!(
        "latency(cyc): n={} p50={} p90={} p99={} max={}\n",
        l.count, l.p50, l.p90, l.p99, l.max
    ));
    for a in &snapshot.arrays {
        out.push_str(&format!(
            "array {}: util={:.2}% gated={:.2}% stall={:.2}% span={}\n",
            a.array, a.utilization_pct, a.gated_pct, a.stall_pct, a.span_cycles
        ));
    }
    if let Some(b) = &snapshot.battery {
        out.push_str(&format!(
            "battery: charge={:.3}J at={} burn={:.6}J/Mcyc empty@{}\n",
            b.charge_j,
            b.at_cycle,
            b.burn_j_per_mcycle,
            b.projected_empty_cycle
                .map_or("-".to_owned(), |c| c.to_string())
        ));
    }
    for t in &snapshot.tenants {
        out.push_str(&format!(
            "tenant {}: enq={} served={} shed={} viol={} fast={:.4} slow={:.4}{}\n",
            t.tenant,
            t.enqueued,
            t.served,
            t.shed,
            t.violations,
            t.fast_burn,
            t.slow_burn,
            if t.alert { " ALERT" } else { "" }
        ));
    }
    if log.is_empty() {
        out.push_str("alerts: none\n");
    } else {
        out.push_str("alerts:\n");
        for line in log.render().lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

/// Renders the per-tenant error-budget timeline (`trace_report --slo`):
/// one line per tenant per sealed window, in sealing order.
pub fn render_timeline(points: &[BudgetPoint]) -> String {
    let mut out = String::new();
    out.push_str("window end_cycle tenant decided bad fast slow state\n");
    for p in points {
        out.push_str(&format!(
            "{:>6} {:>9} {:>6} {:>7} {:>3} {:>8.4} {:>8.4} {}\n",
            p.window,
            p.end_cycle,
            p.tenant,
            p.decided,
            p.bad,
            p.fast_burn,
            p.slow_burn,
            if p.latched { "ALERT" } else { "ok" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_trace::{LatencyStats, TenantHealth};

    #[test]
    fn dashboard_lines_cover_every_section_deterministically() {
        let mut s = HealthSnapshot {
            at_cycle: 500,
            window_cycles: 100,
            windows_sealed: 5,
            latency: LatencyStats {
                count: 3,
                p50: 10,
                p90: 20,
                p99: 30,
                max: 31,
            },
            ..HealthSnapshot::default()
        };
        s.tenants.push(TenantHealth {
            tenant: 0,
            enqueued: 4,
            served: 3,
            shed: 1,
            violations: 2,
            fast_burn: 2.5,
            slow_burn: 1.25,
            alert: true,
        });
        let log = AlertLog::new();
        let text = render_dashboard(&s, &log);
        assert_eq!(text, render_dashboard(&s, &log));
        assert!(text.contains("at=500 window=100 sealed=5"));
        assert!(text.contains("latency(cyc): n=3 p50=10 p90=20 p99=30 max=31"));
        assert!(text.contains("tenant 0: enq=4 served=3 shed=1 viol=2"));
        assert!(text.contains(" ALERT\n"));
        assert!(text.contains("alerts: none"));
    }

    #[test]
    fn timeline_renders_one_row_per_point() {
        let points = vec![BudgetPoint {
            window: 3,
            end_cycle: 400,
            tenant: 1,
            decided: 12,
            bad: 2,
            fast_burn: 1.5,
            slow_burn: 0.75,
            latched: false,
        }];
        let text = render_timeline(&points);
        assert!(text.starts_with("window end_cycle tenant"));
        assert!(text.contains(" ok\n"));
        assert_eq!(text.lines().count(), 2);
    }
}
