//! Property tests for the streaming monitor (ISSUE 8 satellite):
//!
//! * at every window boundary the monitor's sliding latency view equals
//!   a from-scratch recomputation over exactly the last `slow_windows`
//!   sealed windows of the raw completion stream;
//! * the burn-rate alerter never flaps on a constant-rate stream (at
//!   most the one initial latch), and on *any* stream consecutive
//!   transitions are separated by the hysteresis hold, alternating
//!   latch/clear.

use dsra_monitor::{BurnRateConfig, Monitor, MonitorConfig};
use dsra_trace::{EnergyBreakdown, Histogram, TraceEvent};
use proptest::prelude::*;

const W: u64 = 100;

fn config(slow_windows: usize, budget_pct: f64, alert: Option<BurnRateConfig>) -> MonitorConfig {
    MonitorConfig {
        window_cycles: W,
        hist_bucket_cycles: 10,
        hist_buckets: 64,
        tenant_budgets: vec![(0, budget_pct)],
        alert: alert.unwrap_or(BurnRateConfig {
            fast_windows: 1,
            slow_windows,
            fire_burn: 1.5,
            clear_burn: 0.75,
            hold_windows: 2,
        }),
        ..MonitorConfig::default()
    }
}

/// A deterministic job stream: `(enqueue, complete)` cycle pairs with
/// nondecreasing enqueue times, expanded from one seed.
fn job_stream(seed: u64, jobs: usize) -> Vec<(u64, u64)> {
    let mut rng = dsra_core::rng::SplitMix64::new(seed);
    let mut t = 0u64;
    (0..jobs)
        .map(|_| {
            t += rng.next_below(40);
            (t, t + rng.next_below(600))
        })
        .collect()
}

proptest! {
    /// Feed a random job stream in time order, sealing at every window
    /// boundary as the stream crosses it; after each seal the merged
    /// sliding histogram must equal one rebuilt from scratch over the
    /// completions of exactly the last `slow_windows` sealed windows.
    #[test]
    fn sliding_percentiles_match_from_scratch_recompute(
        seed in any::<u64>(),
        jobs in 1usize..250,
        slow in 1usize..8,
    ) {
        let pairs = job_stream(seed, jobs);
        // (time, rank, job): enqueues (rank 0) before same-cycle
        // completes (rank 1), like the dispatcher's own emission order.
        let mut events: Vec<(u64, u8, u32)> = Vec::new();
        for (i, &(e, c)) in pairs.iter().enumerate() {
            events.push((e, 0, i as u32));
            events.push((c, 1, i as u32));
        }
        events.sort_unstable();

        let mut m = Monitor::new(config(slow, 5.0, None));
        let mut boundary = 1u64; // next unsealed window's end / W
        let check = |m: &mut Monitor, k: u64| {
            m.seal_to(k * W);
            let got = m.snapshot(k * W).latency;
            let mut fresh = Histogram::new(10, 64);
            let lo = k.saturating_sub(slow as u64) * W;
            for &(e, c) in &pairs {
                if c >= lo && c < k * W {
                    fresh.record(c - e);
                }
            }
            prop_assert_eq!(got.count, fresh.count(), "count at boundary {}", k);
            prop_assert_eq!(got.p50, fresh.p50(), "p50 at boundary {}", k);
            prop_assert_eq!(got.p90, fresh.p90(), "p90 at boundary {}", k);
            prop_assert_eq!(got.p99, fresh.p99(), "p99 at boundary {}", k);
            prop_assert_eq!(got.max, fresh.max(), "max at boundary {}", k);
        };
        for (t, rank, job) in events {
            while boundary * W <= t {
                check(&mut m, boundary);
                boundary += 1;
            }
            if rank == 0 {
                m.observe(&TraceEvent::JobEnqueue {
                    t,
                    job,
                    tenant: 0,
                    class: "deadline",
                    kind: "dct",
                    deadline: 0,
                });
            } else {
                m.observe(&TraceEvent::JobComplete {
                    t,
                    job,
                    checksum: u64::from(job),
                    energy: EnergyBreakdown::default(),
                });
            }
        }
        check(&mut m, boundary);
        let (late, horizon) = m.drops();
        prop_assert_eq!((late, horizon), (0, 0), "no event may be dropped");
    }
}

/// One window's worth of traffic for tenant 0: `bad` sheds plus
/// `decided - bad` served jobs, all inside window `w`, then a seal.
fn feed_window(m: &mut Monitor, w: u64, decided: u64, bad: u64, next_job: &mut u32) {
    let base = w * W;
    for i in 0..decided {
        let t = base + 1 + i % (W - 2);
        let job = *next_job;
        *next_job += 1;
        if i < bad {
            m.observe(&TraceEvent::JobShed {
                t,
                job,
                tenant: 0,
                queued: 1,
            });
        } else {
            m.observe(&TraceEvent::JobEnqueue {
                t,
                job,
                tenant: 0,
                class: "quality",
                kind: "dct",
                deadline: 0,
            });
            m.observe(&TraceEvent::JobComplete {
                t: t + 1,
                job,
                checksum: u64::from(job),
                energy: EnergyBreakdown::default(),
            });
        }
    }
    m.seal_to((w + 1) * W);
}

proptest! {
    /// On a constant-rate stream the burn rate is the same at every
    /// sealed window, so the alerter transitions at most once (the
    /// initial latch when the constant burn exceeds the threshold) — it
    /// never flaps, whatever the rate, budget, or window depths.
    #[test]
    fn alerter_never_flaps_on_constant_rate_streams(
        decided in 1u64..16,
        bad_seed in any::<u64>(),
        budget_tenths in 1u64..300,
    ) {
        let bad = bad_seed % (decided + 1);
        let alert = BurnRateConfig {
            fast_windows: 2,
            slow_windows: 6,
            fire_burn: 1.5,
            clear_burn: 0.75,
            hold_windows: 2,
        };
        let mut m = Monitor::new(config(6, budget_tenths as f64 / 10.0, Some(alert)));
        let mut next_job = 0u32;
        for w in 0..40 {
            feed_window(&mut m, w, decided, bad, &mut next_job);
        }
        prop_assert!(
            m.alert_log().len() <= 1,
            "constant rate must not flap: {} transitions\n{}",
            m.alert_log().len(),
            m.alert_log().render()
        );
    }

    /// On *any* stream — here one with a randomly varying per-window
    /// bad fraction — transitions for a tenant alternate latch/clear
    /// and consecutive transitions are separated by more than
    /// `hold_windows` sealed windows: the hysteresis hold is a hard
    /// floor on flap spacing.
    #[test]
    fn alert_transitions_respect_the_hysteresis_hold(
        seed in any::<u64>(),
        hold in 0u32..5,
        windows in 8u64..60,
    ) {
        let alert = BurnRateConfig {
            fast_windows: 1,
            slow_windows: 3,
            fire_burn: 1.5,
            clear_burn: 0.75,
            hold_windows: hold,
        };
        let mut m = Monitor::new(config(3, 10.0, Some(alert)));
        let mut rng = dsra_core::rng::SplitMix64::new(seed);
        let mut next_job = 0u32;
        for w in 0..windows {
            let decided = 1 + rng.next_below(8);
            let bad = rng.next_below(decided + 1);
            feed_window(&mut m, w, decided, bad, &mut next_job);
        }
        let log = m.alert_log().events();
        for pair in log.windows(2) {
            prop_assert_ne!(
                pair[0].latched,
                pair[1].latched,
                "transitions must alternate"
            );
            prop_assert!(
                pair[1].window > pair[0].window + u64::from(hold),
                "transitions at windows {} and {} violate hold {}",
                pair[0].window,
                pair[1].window,
                hold
            );
        }
    }
}
