//! The sink trait and its two implementations: the zero-cost [`NoopSink`]
//! (the default everywhere) and the recording [`EventLog`].

use crate::event::{ArrayPhase, EnergyBreakdown, TraceEvent};
use crate::health::HealthSnapshot;
use std::collections::BTreeMap;

/// Receives trace events. Producers must guard event *construction* behind
/// [`TraceSink::enabled`] so the disabled path allocates nothing:
///
/// ```
/// # use dsra_trace::{NoopSink, TraceEvent, TraceSink};
/// # let mut sink = NoopSink;
/// # let name = "dct8";
/// if sink.enabled() {
///     sink.emit(TraceEvent::Meta { key: "kernel", value: name.to_string() });
/// }
/// ```
pub trait TraceSink: Send {
    /// `false` for the no-op sink; producers skip event construction
    /// entirely when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event. The default discards it.
    fn emit(&mut self, event: TraceEvent) {
        let _ = event;
    }

    /// Recovers the recorded [`EventLog`] from a boxed sink, if this sink
    /// is one (avoids downcasting through `Any`).
    fn into_log(self: Box<Self>) -> Option<EventLog> {
        None
    }

    /// Answers a [`HealthSnapshot`] for the virtual instant `now_cycle`,
    /// if this sink is a streaming monitor. Plain recorders return `None`.
    fn health_snapshot(&mut self, now_cycle: u64) -> Option<HealthSnapshot> {
        let _ = now_cycle;
        None
    }

    /// Burn-rate alerts latched at `now_cycle`; 0 for non-monitoring
    /// sinks. Control hooks (`MonitorAwareAdmission`) poll this.
    fn active_alerts(&mut self, now_cycle: u64) -> u32 {
        let _ = now_cycle;
        0
    }
}

/// The default sink: tracing off, zero cost, no allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// Everything the trace recorded about one job instance, joined from its
/// lifecycle events. Batch ids restart per serve, so a repeated
/// `JobEnqueue` for the same id opens a fresh span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobSpan {
    /// Job id.
    pub job: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Service-class tag.
    pub class: Option<&'static str>,
    /// Payload kind tag.
    pub kind: Option<&'static str>,
    /// Absolute deadline cycle (0 = none).
    pub deadline: u64,
    /// Arrival cycle.
    pub enqueue: Option<u64>,
    /// Admission cycle.
    pub admit: Option<u64>,
    /// `(shed cycle, queue residency)` when the job was shed.
    pub shed: Option<(u64, u64)>,
    /// Schedule cycle (= reconfig start).
    pub schedule: Option<u64>,
    /// Array the job ran on.
    pub array: Option<u32>,
    /// Kernel name.
    pub kernel: Option<String>,
    /// Kernel fingerprint (32 hex digits).
    pub fingerprint: Option<String>,
    /// Reconfiguration interval `[start, end)`.
    pub reconfig: Option<(u64, u64)>,
    /// Execution interval `[start, end)`.
    pub exec: Option<(u64, u64)>,
    /// Completion cycle.
    pub complete: Option<u64>,
    /// Output checksum.
    pub checksum: Option<u64>,
    /// Per-job energy attribution.
    pub energy: Option<EnergyBreakdown>,
    /// `true` when this job's reconfiguration woke a gated array.
    pub woke: bool,
}

impl JobSpan {
    /// A served job with its whole lifecycle recorded: enqueue through
    /// schedule, reconfig, exec, and completion.
    pub fn is_full_lifecycle(&self) -> bool {
        self.enqueue.is_some()
            && self.schedule.is_some()
            && self.exec.is_some()
            && self.complete.is_some()
    }
}

/// A recording sink: an append-only, in-order list of [`TraceEvent`]s with
/// joined-view helpers for analysis and export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The raw events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// First recorded value for a metadata key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Meta { key: k, value } if *k == key => Some(value.as_str()),
            _ => None,
        })
    }

    /// Joins lifecycle events into per-job-instance spans, in emission
    /// order of their opening event. A repeated `JobEnqueue` for an id
    /// (multi-serve logs) opens a new instance; non-enqueue events attach
    /// to the id's most recent instance.
    pub fn job_spans(&self) -> Vec<JobSpan> {
        let mut spans: Vec<JobSpan> = Vec::new();
        let mut open: BTreeMap<u32, usize> = BTreeMap::new();
        let span_of = |spans: &mut Vec<JobSpan>, open: &mut BTreeMap<u32, usize>, job: u32| {
            let idx = *open.entry(job).or_insert_with(|| {
                spans.push(JobSpan {
                    job,
                    ..JobSpan::default()
                });
                spans.len() - 1
            });
            idx
        };
        for ev in &self.events {
            match ev {
                TraceEvent::JobEnqueue {
                    t,
                    job,
                    tenant,
                    class,
                    kind,
                    deadline,
                } => {
                    // Always a fresh instance: ids restart per serve.
                    open.remove(job);
                    let idx = span_of(&mut spans, &mut open, *job);
                    let s = &mut spans[idx];
                    s.tenant = *tenant;
                    s.class = Some(class);
                    s.kind = Some(kind);
                    s.deadline = *deadline;
                    s.enqueue = Some(*t);
                }
                TraceEvent::JobAdmit { t, job } => {
                    let idx = span_of(&mut spans, &mut open, *job);
                    spans[idx].admit = Some(*t);
                }
                TraceEvent::JobShed {
                    t,
                    job,
                    tenant,
                    queued,
                } => {
                    let idx = span_of(&mut spans, &mut open, *job);
                    let s = &mut spans[idx];
                    s.tenant = *tenant;
                    s.shed = Some((*t, *queued));
                }
                TraceEvent::JobSchedule {
                    t,
                    job,
                    array,
                    kernel,
                    fingerprint,
                } => {
                    let idx = span_of(&mut spans, &mut open, *job);
                    let s = &mut spans[idx];
                    s.schedule = Some(*t);
                    s.array = Some(*array);
                    s.kernel = Some(kernel.clone());
                    s.fingerprint = Some(fingerprint.clone());
                }
                TraceEvent::JobComplete {
                    t,
                    job,
                    checksum,
                    energy,
                } => {
                    let idx = span_of(&mut spans, &mut open, *job);
                    let s = &mut spans[idx];
                    s.complete = Some(*t);
                    s.checksum = Some(*checksum);
                    s.energy = Some(*energy);
                }
                TraceEvent::ArrayInterval {
                    phase,
                    start,
                    end,
                    job: Some(job),
                    ..
                } => {
                    let idx = span_of(&mut spans, &mut open, *job);
                    let s = &mut spans[idx];
                    match phase {
                        ArrayPhase::Reconfig => s.reconfig = Some((*start, *end)),
                        ArrayPhase::Waking => {
                            s.reconfig = Some((*start, *end));
                            s.woke = true;
                        }
                        ArrayPhase::Exec => s.exec = Some((*start, *end)),
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        spans
    }

    /// Per-array state intervals `(start, end, phase)` in emission order.
    pub fn array_intervals(&self) -> BTreeMap<u32, Vec<(u64, u64, ArrayPhase)>> {
        let mut by_array: BTreeMap<u32, Vec<(u64, u64, ArrayPhase)>> = BTreeMap::new();
        for ev in &self.events {
            if let TraceEvent::ArrayInterval {
                array,
                phase,
                start,
                end,
                ..
            } = ev
            {
                by_array
                    .entry(*array)
                    .or_default()
                    .push((*start, *end, *phase));
            }
        }
        by_array
    }
}

impl TraceSink for EventLog {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn into_log(self: Box<Self>) -> Option<EventLog> {
        Some(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_reports_disabled_and_discards() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(TraceEvent::JobAdmit { t: 1, job: 0 });
        assert!(Box::new(sink).into_log().is_none());
    }

    #[test]
    fn event_log_records_in_order_and_round_trips_through_the_box() {
        let mut log = EventLog::new();
        assert!(log.enabled());
        log.emit(TraceEvent::JobAdmit { t: 5, job: 2 });
        log.emit(TraceEvent::Meta {
            key: "mode",
            value: "batch".into(),
        });
        let back = Box::new(log.clone()).into_log().expect("event log");
        assert_eq!(back, log);
        assert_eq!(back.len(), 2);
        assert_eq!(back.meta("mode"), Some("batch"));
        assert_eq!(back.meta("backend"), None);
    }

    #[test]
    fn spans_join_the_lifecycle_and_reopen_on_repeated_ids() {
        let mut log = EventLog::new();
        for serve in 0..2u64 {
            let base = serve * 100;
            log.emit(TraceEvent::JobEnqueue {
                t: base,
                job: 0,
                tenant: 1,
                class: "quality",
                kind: "dct",
                deadline: 0,
            });
            log.emit(TraceEvent::JobSchedule {
                t: base + 10,
                job: 0,
                array: 3,
                kernel: "dct8".into(),
                fingerprint: "f".repeat(32),
            });
            log.emit(TraceEvent::ArrayInterval {
                array: 3,
                phase: ArrayPhase::Reconfig,
                start: base + 10,
                end: base + 14,
                job: Some(0),
                kernel: Some("dct8".into()),
            });
            log.emit(TraceEvent::ArrayInterval {
                array: 3,
                phase: ArrayPhase::Exec,
                start: base + 14,
                end: base + 20,
                job: Some(0),
                kernel: Some("dct8".into()),
            });
            log.emit(TraceEvent::JobComplete {
                t: base + 20,
                job: 0,
                checksum: 9,
                energy: EnergyBreakdown::default(),
            });
        }
        let spans = log.job_spans();
        assert_eq!(spans.len(), 2, "repeated id opens a second instance");
        for (i, s) in spans.iter().enumerate() {
            let base = i as u64 * 100;
            assert!(s.is_full_lifecycle());
            assert_eq!(s.enqueue, Some(base));
            assert_eq!(s.schedule, Some(base + 10));
            assert_eq!(s.reconfig, Some((base + 10, base + 14)));
            assert_eq!(s.exec, Some((base + 14, base + 20)));
            assert_eq!(s.complete, Some(base + 20));
            assert!(!s.woke);
        }
    }

    #[test]
    fn shed_spans_and_waking_reconfigs_are_tagged() {
        let mut log = EventLog::new();
        log.emit(TraceEvent::JobEnqueue {
            t: 0,
            job: 4,
            tenant: 2,
            class: "deadline",
            kind: "me",
            deadline: 500,
        });
        log.emit(TraceEvent::JobShed {
            t: 120,
            job: 4,
            tenant: 2,
            queued: 120,
        });
        log.emit(TraceEvent::JobEnqueue {
            t: 10,
            job: 5,
            tenant: 2,
            class: "quality",
            kind: "dct",
            deadline: 0,
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Waking,
            start: 10,
            end: 40,
            job: Some(5),
            kernel: Some("dct8".into()),
        });
        let spans = log.job_spans();
        assert_eq!(spans[0].shed, Some((120, 120)));
        assert_eq!(spans[0].deadline, 500);
        assert!(!spans[0].is_full_lifecycle());
        assert!(spans[1].woke);
        assert_eq!(spans[1].reconfig, Some((10, 40)));
    }

    #[test]
    fn array_intervals_group_by_array_in_order() {
        let mut log = EventLog::new();
        log.emit(TraceEvent::ArrayInterval {
            array: 1,
            phase: ArrayPhase::Idle,
            start: 0,
            end: 5,
            job: None,
            kernel: None,
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 0,
            phase: ArrayPhase::Exec,
            start: 0,
            end: 9,
            job: Some(1),
            kernel: None,
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 1,
            phase: ArrayPhase::Exec,
            start: 5,
            end: 12,
            job: Some(2),
            kernel: None,
        });
        let by = log.array_intervals();
        assert_eq!(by[&0], vec![(0, 9, ArrayPhase::Exec)]);
        assert_eq!(
            by[&1],
            vec![(0, 5, ArrayPhase::Idle), (5, 12, ArrayPhase::Exec)]
        );
    }
}
