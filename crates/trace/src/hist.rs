//! A small fixed-bucket histogram with nearest-rank percentiles — no
//! dependencies, integer-exact, deterministic.
//!
//! Built for latency distributions: E13 (`stream_serve`) folds served
//! request latencies through it for the p50/p90/p99 lines in
//! `BENCH_stream.json`, `tests/stream_serve.rs` gates the EDF-vs-FIFO
//! comparison on the same definition, and the [`crate::MetricsRegistry`]
//! uses it for its histogram slots. It lives here (re-exported as
//! `dsra_bench::hist`) so trace consumers below the bench layer can
//! summarise distributions without a dependency cycle. Values land in
//! `value / bucket_width` (the last bucket catches everything beyond the
//! range); percentiles report a bucket's inclusive upper bound, clamped
//! to the exact maximum recorded, so `bucket_width == 1` reproduces exact
//! nearest-rank percentiles.

/// Fixed-bucket histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u64,
}

impl Histogram {
    /// `buckets` buckets of `bucket_width` each; values at or beyond
    /// `bucket_width * buckets` land in the last (overflow) bucket.
    ///
    /// # Panics
    /// Panics on a zero width or zero bucket count.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let i = (value / self.bucket_width).min(self.counts.len() as u64 - 1) as usize;
        self.counts[i] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
    }

    /// Records every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = u64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Saturating sum of all recorded values (0 when empty).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts (the last bucket is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram of the identical shape into this one:
    /// per-bucket counts add, totals and sums add (saturating), the
    /// maximum is the max of both. The window ring in `dsra-monitor`
    /// merges per-window histograms into a sliding view with this.
    ///
    /// # Panics
    /// Panics when the shapes (width or bucket count) differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Nearest-rank percentile: the inclusive upper bound of the bucket
    /// holding the `ceil(p/100 · n)`-th smallest value, clamped to the
    /// exact maximum recorded.
    ///
    /// Edge cases are total, not panics:
    /// * an **empty** histogram reads 0 at every quantile;
    /// * `p ≤ 0` is the first recorded value's bucket, `p ≥ 100` (and
    ///   non-finite `p`, which clamps to 100) is the exact maximum —
    ///   including on a single-bucket histogram, whose only bucket is
    ///   the overflow bucket and therefore always reports [`Histogram::max`]
    ///   rather than a bucket bound.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            100.0
        };
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i + 1 == self.counts.len() {
                    // The overflow bucket has no meaningful upper bound;
                    // the exact maximum is the only honest answer.
                    return self.max;
                }
                let upper = (i as u64 + 1) * self.bucket_width - 1;
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_width_reproduces_exact_nearest_rank() {
        let mut h = Histogram::new(1, 128);
        h.record_all([10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(h.count(), 10);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.percentile(0.0), 10, "rank clamps to the first value");
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn wide_buckets_bound_from_above_and_clamp_to_the_max() {
        let mut h = Histogram::new(25, 40);
        h.record_all([3, 7, 110]);
        // p50 falls in bucket [0, 25): upper bound 24.
        assert_eq!(h.p50(), 24);
        // The top value is reported exactly, not as its bucket bound.
        assert_eq!(h.p99(), 110);
        // Percentiles never move when the same data is recorded again
        // (scale invariance of ranks).
        let mut twice = Histogram::new(25, 40);
        twice.record_all([3, 7, 110, 3, 7, 110]);
        assert_eq!(twice.p50(), h.p50());
        assert_eq!(twice.p99(), h.p99());
    }

    #[test]
    fn overflow_lands_in_the_last_bucket() {
        let mut h = Histogram::new(10, 4);
        h.record(1_000_000);
        h.record(5);
        assert_eq!(h.counts(), &[1, 0, 0, 1]);
        assert_eq!(h.p99(), 1_000_000, "overflow reports the exact max");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_histogram_is_zero_at_every_quantile() {
        let h = Histogram::new(25, 8);
        for p in [
            f64::NEG_INFINITY,
            -10.0,
            0.0,
            50.0,
            100.0,
            250.0,
            f64::INFINITY,
            f64::NAN,
        ] {
            assert_eq!(h.percentile(p), 0, "empty quantile p={p}");
        }
    }

    #[test]
    fn single_bucket_p100_is_the_exact_max() {
        // One bucket means *everything* lands in the overflow bucket; the
        // documented answer is the exact maximum, never the (meaningless)
        // bucket upper bound 9.
        let mut h = Histogram::new(10, 1);
        h.record_all([2, 8, 4_321]);
        assert_eq!(h.percentile(100.0), 4_321);
        assert_eq!(h.p50(), 4_321, "the only bucket reports the max");
        let mut small = Histogram::new(10, 1);
        small.record(3);
        assert_eq!(small.percentile(100.0), 3);
    }

    #[test]
    fn out_of_range_and_non_finite_p_clamp() {
        let mut h = Histogram::new(1, 128);
        h.record_all([10, 20, 30]);
        assert_eq!(h.percentile(-50.0), 10, "p below 0 clamps to 0");
        assert_eq!(h.percentile(700.0), 30, "p above 100 clamps to 100");
        assert_eq!(h.percentile(f64::INFINITY), 30);
        assert_eq!(
            h.percentile(f64::NEG_INFINITY),
            30,
            "non-finite p reads as 100"
        );
        assert_eq!(h.percentile(f64::NAN), 30, "NaN p reads as 100");
    }

    #[test]
    fn sum_tracks_recorded_values_and_saturates() {
        let mut h = Histogram::new(10, 4);
        h.record_all([5, 15, 1_000]);
        assert_eq!(h.sum(), 1_020);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = Histogram::new(25, 40);
        let mut b = Histogram::new(25, 40);
        let mut whole = Histogram::new(25, 40);
        a.record_all([3, 7, 110]);
        b.record_all([40, 999, 2_000]);
        whole.record_all([3, 7, 110, 40, 999, 2_000]);
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.p99(), whole.p99());
        assert_eq!(a.sum(), whole.sum());
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(1, 4);
        a.merge(&Histogram::new(2, 4));
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = Histogram::new(7, 64);
        h.record_all((0..500).map(|i| (i * 37) % 401));
        let mut last = 0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
    }
}
