//! Chrome trace-event exporter: renders an [`EventLog`] as a
//! `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! Layout: process 0 hosts one track per array (state intervals as `"X"`
//! complete events named after the [`crate::ArrayPhase`] tag, plus
//! `"complete"` instants and `"C"` counter tracks); process 1 hosts one
//! track per tenant (`"queued"` wait spans, `"admit"` instants, `"shed"`
//! spans). All `ts`/`dur` values are virtual cycles, so the document is
//! byte-identical across runs of the same seed. Keys are unique per
//! object and the writer emits no non-finite literals, so the output
//! round-trips through the strict `dsra_bench::json` parser.

use crate::event::TraceEvent;
use crate::sink::EventLog;
use std::collections::BTreeSet;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

struct Record {
    name: String,
    cat: &'static str,
    ph: &'static str,
    ts: u64,
    dur: Option<u64>,
    pid: u32,
    tid: u32,
    scope: bool,
    args: Vec<(String, String)>,
}

impl Record {
    fn render(&self) -> String {
        let mut s = format!(
            "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
            esc(&self.name),
            self.cat,
            self.ph,
            self.ts
        );
        if let Some(d) = self.dur {
            s.push_str(&format!("\"dur\": {d}, "));
        }
        if self.scope {
            s.push_str("\"s\": \"t\", ");
        }
        s.push_str(&format!("\"pid\": {}, \"tid\": {}, ", self.pid, self.tid));
        s.push_str("\"args\": {");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("}}");
        s
    }
}

fn meta_record(pid: u32, tid: u32, key: &'static str, value: &str) -> Record {
    Record {
        name: key.to_owned(),
        cat: "__metadata",
        ph: "M",
        ts: 0,
        dur: None,
        pid,
        tid,
        scope: false,
        args: vec![("name".into(), format!("\"{}\"", esc(value)))],
    }
}

/// Renders the log as a Chrome trace-event JSON document (see the module
/// docs for the track layout). Deterministic: same log, same bytes.
pub fn chrome_trace(log: &EventLog) -> String {
    let mut records: Vec<Record> = Vec::new();

    // Track metadata first: arrays (pid 0) then tenants (pid 1).
    let mut arrays: BTreeSet<u32> = BTreeSet::new();
    for ev in log.events() {
        match ev {
            TraceEvent::ArrayInterval { array, .. }
            | TraceEvent::JobSchedule { array, .. }
            | TraceEvent::FaultInjected { array, .. }
            | TraceEvent::DivergenceDetected { array, .. }
            | TraceEvent::ArrayQuarantine { array, .. }
            | TraceEvent::ArrayRestore { array, .. } => {
                arrays.insert(*array);
            }
            _ => {}
        }
    }
    let spans = log.job_spans();
    let tenants: BTreeSet<u32> = spans.iter().map(|s| s.tenant).collect();
    records.push(meta_record(0, 0, "process_name", "arrays"));
    records.push(meta_record(1, 0, "process_name", "tenants"));
    for a in &arrays {
        records.push(meta_record(0, *a, "thread_name", &format!("array {a}")));
    }
    for t in &tenants {
        records.push(meta_record(1, *t, "thread_name", &format!("tenant {t}")));
    }

    // Array-process records in raw emission order.
    for ev in log.events() {
        match ev {
            TraceEvent::ArrayInterval {
                array,
                phase,
                start,
                end,
                job,
                kernel,
            } => {
                if end <= start {
                    continue;
                }
                let mut args = Vec::new();
                if let Some(j) = job {
                    args.push(("job".to_owned(), j.to_string()));
                }
                if let Some(k) = kernel {
                    args.push(("kernel".to_owned(), format!("\"{}\"", esc(k))));
                }
                records.push(Record {
                    name: phase.tag().to_owned(),
                    cat: "array",
                    ph: "X",
                    ts: *start,
                    dur: Some(end - start),
                    pid: 0,
                    tid: *array,
                    scope: false,
                    args,
                });
            }
            TraceEvent::BatteryLevel { t, charge_j } => records.push(Record {
                name: "battery_j".to_owned(),
                cat: "counter",
                ph: "C",
                ts: *t,
                dur: None,
                pid: 0,
                tid: 0,
                scope: false,
                args: vec![("charge_j".to_owned(), num(*charge_j))],
            }),
            TraceEvent::Counter { t, name, value } => records.push(Record {
                name: (*name).to_owned(),
                cat: "counter",
                ph: "C",
                ts: *t,
                dur: None,
                pid: 0,
                tid: 0,
                scope: false,
                args: vec![("value".to_owned(), value.to_string())],
            }),
            // Chaos/recovery instants land on the owning array's track
            // (`JobRetry` carries no array and uses track 0) in a
            // dedicated category, so fault storms read directly off the
            // timeline next to the intervals they perturb.
            TraceEvent::FaultInjected { t, array, kind } => records.push(Record {
                name: "fault".to_owned(),
                cat: "chaos",
                ph: "i",
                ts: *t,
                dur: None,
                pid: 0,
                tid: *array,
                scope: true,
                args: vec![("kind".to_owned(), format!("\"{kind}\""))],
            }),
            TraceEvent::DivergenceDetected { t, job, array } => records.push(Record {
                name: "divergence".to_owned(),
                cat: "chaos",
                ph: "i",
                ts: *t,
                dur: None,
                pid: 0,
                tid: *array,
                scope: true,
                args: vec![("job".to_owned(), job.to_string())],
            }),
            TraceEvent::JobRetry { t, job, attempt } => records.push(Record {
                name: "retry".to_owned(),
                cat: "chaos",
                ph: "i",
                ts: *t,
                dur: None,
                pid: 0,
                tid: 0,
                scope: true,
                args: vec![
                    ("job".to_owned(), job.to_string()),
                    ("attempt".to_owned(), attempt.to_string()),
                ],
            }),
            TraceEvent::ArrayQuarantine { t, array, strikes } => records.push(Record {
                name: "quarantine".to_owned(),
                cat: "chaos",
                ph: "i",
                ts: *t,
                dur: None,
                pid: 0,
                tid: *array,
                scope: true,
                args: vec![("strikes".to_owned(), strikes.to_string())],
            }),
            TraceEvent::ArrayRestore { t, array } => records.push(Record {
                name: "restore".to_owned(),
                cat: "chaos",
                ph: "i",
                ts: *t,
                dur: None,
                pid: 0,
                tid: *array,
                scope: true,
                args: Vec::new(),
            }),
            _ => {}
        }
    }

    // Job-lifecycle records from the joined spans, in span order.
    for s in &spans {
        let mut tags = vec![("job".to_owned(), s.job.to_string())];
        if let Some(c) = s.class {
            tags.push(("class".to_owned(), format!("\"{c}\"")));
        }
        if let Some(k) = s.kind {
            tags.push(("kind".to_owned(), format!("\"{k}\"")));
        }
        if let Some(admit) = s.admit {
            records.push(Record {
                name: "admit".to_owned(),
                cat: "job",
                ph: "i",
                ts: admit,
                dur: None,
                pid: 1,
                tid: s.tenant,
                scope: true,
                args: vec![("job".to_owned(), s.job.to_string())],
            });
        }
        if let (Some(enq), Some(sched)) = (s.enqueue, s.schedule) {
            let mut args = tags.clone();
            args.push(("deadline".to_owned(), s.deadline.to_string()));
            records.push(Record {
                name: "queued".to_owned(),
                cat: "job",
                ph: "X",
                ts: enq,
                dur: Some(sched.saturating_sub(enq)),
                pid: 1,
                tid: s.tenant,
                scope: false,
                args,
            });
        }
        if let Some((t, queued)) = s.shed {
            let mut args = tags.clone();
            args.push(("wait".to_owned(), queued.to_string()));
            records.push(Record {
                name: "shed".to_owned(),
                cat: "job",
                ph: "X",
                ts: t.saturating_sub(queued),
                dur: Some(queued),
                pid: 1,
                tid: s.tenant,
                scope: false,
                args,
            });
        }
        if let (Some(t), Some(array)) = (s.complete, s.array) {
            let mut args = vec![("job".to_owned(), s.job.to_string())];
            if let Some(c) = s.checksum {
                args.push(("checksum".to_owned(), format!("\"{c:#018x}\"")));
            }
            if let Some(k) = &s.kernel {
                args.push(("kernel".to_owned(), format!("\"{}\"", esc(k))));
            }
            if let Some(fp) = &s.fingerprint {
                args.push(("fingerprint".to_owned(), format!("\"{}\"", esc(fp))));
            }
            if let Some(e) = s.energy {
                args.push(("dynamic_j".to_owned(), num(e.dynamic_j)));
                args.push(("static_j".to_owned(), num(e.static_j)));
                args.push(("reconfig_j".to_owned(), num(e.reconfig_j)));
            }
            records.push(Record {
                name: "complete".to_owned(),
                cat: "job",
                ph: "i",
                ts: t,
                dur: None,
                pid: 0,
                tid: array,
                scope: true,
                args,
            });
        }
    }

    // Session metadata: first value per key wins (multi-serve logs repeat
    // their session header; the strict parser rejects duplicate keys).
    let mut meta_keys: BTreeSet<&'static str> = BTreeSet::new();
    let mut other: Vec<(&'static str, String)> = Vec::new();
    for ev in log.events() {
        if let TraceEvent::Meta { key, value } = ev {
            if meta_keys.insert(key) {
                other.push((key, value.clone()));
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {");
    for (i, (k, v)) in other.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{k}\": \"{}\"", esc(v)));
    }
    if !other.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"traceEvents\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.render());
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One stacked counter track: Chrome `"C"` events on process 0, track
/// `tid`, each sample carrying the same series keys (busy/reconfig/…)
/// so the viewer renders them as a stacked area chart. Produced by
/// `dsra-profile`'s per-array utilization timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name (e.g. `"array 3 utilization"`).
    pub name: String,
    /// Track id on the array process (use the array id).
    pub tid: u32,
    /// `(cycle, series values)` samples in ascending cycle order.
    pub samples: Vec<(u64, Vec<(String, f64)>)>,
}

/// Renders stacked counter tracks as a standalone Chrome trace-event
/// JSON document. Deterministic: tracks and samples render in the order
/// given, values through the same fixed-precision writer as
/// [`chrome_trace`], so same input means same bytes.
pub fn counter_tracks_doc(tracks: &[CounterTrack]) -> String {
    let mut records: Vec<Record> = vec![meta_record(0, 0, "process_name", "arrays")];
    for track in tracks {
        for (t, series) in &track.samples {
            records.push(Record {
                name: track.name.clone(),
                cat: "counter",
                ph: "C",
                ts: *t,
                dur: None,
                pid: 0,
                tid: track.tid,
                scope: false,
                args: series.iter().map(|(k, v)| (k.clone(), num(*v))).collect(),
            });
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {},\n  \"traceEvents\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.render());
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrayPhase, EnergyBreakdown};
    use crate::sink::TraceSink;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.emit(TraceEvent::Meta {
            key: "mode",
            value: "stream".into(),
        });
        log.emit(TraceEvent::Meta {
            key: "mode",
            value: "second-session".into(),
        });
        log.emit(TraceEvent::JobEnqueue {
            t: 0,
            job: 1,
            tenant: 2,
            class: "deadline",
            kind: "me",
            deadline: 900,
        });
        log.emit(TraceEvent::JobAdmit { t: 0, job: 1 });
        log.emit(TraceEvent::JobSchedule {
            t: 30,
            job: 1,
            array: 1,
            kernel: "me\"systolic".into(),
            fingerprint: "0".repeat(32),
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 1,
            phase: ArrayPhase::Idle,
            start: 0,
            end: 30,
            job: None,
            kernel: None,
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 1,
            phase: ArrayPhase::Exec,
            start: 30,
            end: 80,
            job: Some(1),
            kernel: Some("me".into()),
        });
        log.emit(TraceEvent::ArrayInterval {
            array: 1,
            phase: ArrayPhase::Exec,
            start: 80,
            end: 80,
            job: Some(1),
            kernel: None,
        });
        log.emit(TraceEvent::JobComplete {
            t: 80,
            job: 1,
            checksum: 0xdead_beef,
            energy: EnergyBreakdown {
                dynamic_j: 0.5,
                static_j: 0.25,
                reconfig_j: 0.0,
            },
        });
        log.emit(TraceEvent::JobShed {
            t: 60,
            job: 2,
            tenant: 0,
            queued: 45,
        });
        log.emit(TraceEvent::BatteryLevel {
            t: 80,
            charge_j: 7.5,
        });
        log.emit(TraceEvent::Counter {
            t: 80,
            name: "cache_hits",
            value: 3,
        });
        log
    }

    #[test]
    fn export_is_deterministic_and_structurally_sound() {
        let log = sample_log();
        let a = chrome_trace(&log);
        let b = chrome_trace(&log);
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"thread_name\""));
        // First meta value wins; no duplicate keys in otherData.
        assert!(a.contains("\"mode\": \"stream\""));
        assert!(!a.contains("second-session"));
        // Strings are escaped.
        assert!(a.contains("me\\\"systolic"));
        // Zero-length intervals are dropped.
        assert!(!a.contains("\"dur\": 0,"));
        // Shed span rewinds to the arrival instant.
        assert!(a.contains("\"name\": \"shed\", \"cat\": \"job\", \"ph\": \"X\", \"ts\": 15"));
    }

    #[test]
    fn chaos_events_export_as_instants_on_the_array_track() {
        let mut log = EventLog::new();
        log.emit(TraceEvent::FaultInjected {
            t: 10,
            array: 3,
            kind: "stuck_at",
        });
        log.emit(TraceEvent::DivergenceDetected {
            t: 20,
            job: 7,
            array: 3,
        });
        log.emit(TraceEvent::JobRetry {
            t: 25,
            job: 7,
            attempt: 1,
        });
        log.emit(TraceEvent::ArrayQuarantine {
            t: 30,
            array: 3,
            strikes: 2,
        });
        log.emit(TraceEvent::ArrayRestore { t: 90, array: 3 });
        let a = chrome_trace(&log);
        for needle in [
            "\"name\": \"fault\", \"cat\": \"chaos\", \"ph\": \"i\", \"ts\": 10",
            "\"kind\": \"stuck_at\"",
            "\"name\": \"divergence\", \"cat\": \"chaos\", \"ph\": \"i\", \"ts\": 20",
            "\"name\": \"retry\", \"cat\": \"chaos\", \"ph\": \"i\", \"ts\": 25",
            "\"attempt\": 1",
            "\"name\": \"quarantine\", \"cat\": \"chaos\", \"ph\": \"i\", \"ts\": 30",
            "\"strikes\": 2",
            "\"name\": \"restore\", \"cat\": \"chaos\", \"ph\": \"i\", \"ts\": 90",
            // The chaos-only array still gets a named track.
            "\"thread_name\"",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn counter_tracks_doc_is_deterministic_and_stacked() {
        let tracks = vec![CounterTrack {
            name: "array 1 utilization".into(),
            tid: 1,
            samples: vec![
                (0, vec![("busy".into(), 75.0), ("idle".into(), 25.0)]),
                (100, vec![("busy".into(), 50.0), ("idle".into(), 50.0)]),
            ],
        }];
        let a = counter_tracks_doc(&tracks);
        assert_eq!(a, counter_tracks_doc(&tracks));
        assert!(a.contains("\"name\": \"array 1 utilization\""));
        assert!(a.contains("\"ph\": \"C\""));
        assert!(a.contains("\"busy\": 75.000000"));
        assert!(a.contains("\"ts\": 100"));
        assert!(a.contains("\"tid\": 1"));
    }

    #[test]
    fn export_carries_all_track_kinds() {
        let a = chrome_trace(&sample_log());
        for needle in [
            "\"name\": \"idle\"",
            "\"name\": \"exec\"",
            "\"name\": \"queued\"",
            "\"name\": \"admit\"",
            "\"name\": \"complete\"",
            "\"name\": \"battery_j\"",
            "\"name\": \"cache_hits\"",
            "\"checksum\": \"0x00000000deadbeef\"",
            "\"s\": \"t\"",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }
}
