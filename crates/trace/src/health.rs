//! The [`HealthSnapshot`] a streaming monitor answers when queried at a
//! virtual instant.
//!
//! The type lives here — below `dsra-monitor` — so `SocRuntime` and the
//! service dispatcher can expose a health query through the
//! [`crate::TraceSink`] trait without depending on the monitor crate.
//! Every field is plain data derived from the event stream; every
//! timestamp and duration is in virtual cycles, so same-seed snapshots
//! compare equal byte for byte.

/// Latency distribution over the monitor's sliding window (virtual
/// cycles, nearest-rank percentiles from the window histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Completions in the window.
    pub count: u64,
    /// Median enqueue→complete latency.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Cumulative state ratios for one array, from its state intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayHealth {
    /// Array id.
    pub array: u32,
    /// Covered span (largest interval end seen), in cycles.
    pub span_cycles: u64,
    /// Exec cycles as a percentage of the span.
    pub utilization_pct: f64,
    /// Power-gated cycles as a percentage of the span.
    pub gated_pct: f64,
    /// Reconfiguration-stall (reconfig + waking) percentage of the span.
    pub stall_pct: f64,
}

/// Battery trajectory summary from `BatteryLevel` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryHealth {
    /// Most recent charge sample, joules.
    pub charge_j: f64,
    /// Cycle of the most recent sample.
    pub at_cycle: u64,
    /// Observed burn rate in joules per megacycle (0 until two samples
    /// at distinct cycles exist).
    pub burn_j_per_mcycle: f64,
    /// Projected cycle at which the charge reaches zero, extrapolating
    /// the observed burn rate; `None` while the rate is zero.
    pub projected_empty_cycle: Option<u64>,
}

/// Per-tenant service and error-budget state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHealth {
    /// Tenant id.
    pub tenant: u32,
    /// Requests enqueued so far.
    pub enqueued: u64,
    /// Requests completed so far.
    pub served: u64,
    /// Requests shed so far.
    pub shed: u64,
    /// Completions past their deadline so far.
    pub violations: u64,
    /// Error-budget burn rate over the fast window pair.
    pub fast_burn: f64,
    /// Error-budget burn rate over the slow window pair.
    pub slow_burn: f64,
    /// `true` while this tenant's burn-rate alert is latched.
    pub alert: bool,
}

/// Point-in-time health of a serving SoC, assembled by a streaming
/// monitor from the trace-event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSnapshot {
    /// Virtual cycle the snapshot answers for.
    pub at_cycle: u64,
    /// Window length the monitor aggregates over, in cycles.
    pub window_cycles: u64,
    /// Windows sealed (finalised) so far.
    pub windows_sealed: u64,
    /// Latency percentiles over the sliding window.
    pub latency: LatencyStats,
    /// Per-array utilization/gating/stall ratios, ascending array id.
    pub arrays: Vec<ArrayHealth>,
    /// Battery burn summary, when any samples arrived.
    pub battery: Option<BatteryHealth>,
    /// Per-tenant budget state, ascending tenant id.
    pub tenants: Vec<TenantHealth>,
    /// Burn-rate alerts currently latched.
    pub alerts_active: u32,
    /// Total completions observed.
    pub completes: u64,
    /// Total sheds observed.
    pub sheds: u64,
}

impl HealthSnapshot {
    /// Health state for one tenant, if the monitor has seen it.
    pub fn tenant(&self, tenant: u32) -> Option<&TenantHealth> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// Health state for one array, if the monitor has seen it.
    pub fn array(&self, array: u32) -> Option<&ArrayHealth> {
        self.arrays.iter().find(|a| a.array == array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_find_by_id_and_default_is_empty() {
        let mut s = HealthSnapshot::default();
        assert!(s.tenant(0).is_none());
        assert!(s.array(0).is_none());
        s.tenants.push(TenantHealth {
            tenant: 3,
            enqueued: 10,
            served: 8,
            shed: 2,
            violations: 1,
            fast_burn: 0.5,
            slow_burn: 0.25,
            alert: false,
        });
        s.arrays.push(ArrayHealth {
            array: 1,
            span_cycles: 100,
            utilization_pct: 40.0,
            gated_pct: 10.0,
            stall_pct: 5.0,
        });
        assert_eq!(s.tenant(3).map(|t| t.served), Some(8));
        assert_eq!(s.array(1).map(|a| a.span_cycles), Some(100));
        assert!(s.tenant(4).is_none());
    }
}
