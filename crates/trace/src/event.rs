//! The structured event model: job lifecycle, array state intervals,
//! energy attribution, and counters — all stamped in virtual cycles.

/// What an array is doing over one state interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayPhase {
    /// Powered but unused (leakage at full rate unless the policy gates).
    Idle,
    /// Power-gated between jobs or by the elastic pool (leakage scaled by
    /// the gating factor; configuration lost under non-retentive gating).
    Gated,
    /// Rewriting configuration SRAM for an incoming kernel.
    Reconfig,
    /// The full-rewrite reconfiguration of a job that woke a gated array —
    /// same mechanics as [`ArrayPhase::Reconfig`], tagged so gating cost
    /// attribution survives into the trace.
    Waking,
    /// Executing a job.
    Exec,
}

impl ArrayPhase {
    /// Stable lower-case tag used as the Chrome-trace event name.
    pub fn tag(self) -> &'static str {
        match self {
            ArrayPhase::Idle => "idle",
            ArrayPhase::Gated => "gated",
            ArrayPhase::Reconfig => "reconfig",
            ArrayPhase::Waking => "waking",
            ArrayPhase::Exec => "exec",
        }
    }
}

/// Per-job energy attribution (deltas of the owning array's account over
/// the job's reconfig + exec window).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Switching energy (J).
    pub dynamic_j: f64,
    /// Leakage energy (J).
    pub static_j: f64,
    /// Configuration-rewrite energy (J).
    pub reconfig_j: f64,
}

impl EnergyBreakdown {
    /// Sum of all three components.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// One deterministic trace event. All `t`/`start`/`end` stamps are virtual
/// cycles (see the crate docs for the stamping rule).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Session-level metadata (mode, backend, policy, …). Emitted once per
    /// serve/stream session; the exporter keeps the first value per key.
    Meta {
        /// Metadata key.
        key: &'static str,
        /// Metadata value.
        value: String,
    },
    /// A job entered the system (batch submission or service arrival).
    JobEnqueue {
        /// Arrival cycle.
        t: u64,
        /// Job id.
        job: u32,
        /// Owning tenant (0 in batch mode).
        tenant: u32,
        /// Service-class tag (`"quality"`, `"deadline"`, …).
        class: &'static str,
        /// Payload kind tag (`"dct"`, `"me"`, `"encode"`).
        kind: &'static str,
        /// Absolute deadline cycle (0 when the class carries none).
        deadline: u64,
    },
    /// Admission control accepted the job into the ready queue.
    JobAdmit {
        /// Admission cycle.
        t: u64,
        /// Job id.
        job: u32,
    },
    /// Admission control shed the job after `queued` cycles of residency.
    JobShed {
        /// Shed cycle.
        t: u64,
        /// Job id.
        job: u32,
        /// Owning tenant.
        tenant: u32,
        /// Queue residency at the shed instant (cycles).
        queued: u64,
    },
    /// The scheduler bound the job to an array (reconfiguration starts
    /// at this instant).
    JobSchedule {
        /// Schedule cycle (= reconfig start).
        t: u64,
        /// Job id.
        job: u32,
        /// Target array.
        array: u32,
        /// Compiled kernel name.
        kernel: String,
        /// Kernel netlist fingerprint (32 hex digits).
        fingerprint: String,
    },
    /// The job finished executing.
    JobComplete {
        /// Completion cycle.
        t: u64,
        /// Job id.
        job: u32,
        /// Output checksum (backend-independent).
        checksum: u64,
        /// Energy attributed to this job's reconfig + exec window.
        energy: EnergyBreakdown,
    },
    /// One array spent `[start, end)` in `phase`. Emission skips empty
    /// intervals; per array the intervals tile the session gap-free.
    ArrayInterval {
        /// Array id.
        array: u32,
        /// State over the interval.
        phase: ArrayPhase,
        /// First cycle of the interval.
        start: u64,
        /// One past the last cycle of the interval.
        end: u64,
        /// Job occupying the array (reconfig/waking/exec phases).
        job: Option<u32>,
        /// Kernel loaded during the interval, when known.
        kernel: Option<String>,
    },
    /// Battery trajectory sample after a drain.
    BatteryLevel {
        /// Sample cycle.
        t: u64,
        /// Remaining charge (J).
        charge_j: f64,
    },
    /// Monotone counter sample (cache hits/misses, DiffMatrix probes, …).
    Counter {
        /// Sample cycle.
        t: u64,
        /// Counter name.
        name: &'static str,
        /// Cumulative value at `t` (session-relative).
        value: u64,
    },
    /// A chaos fault fired on an array (deterministic fault-plan instant).
    FaultInjected {
        /// Injection cycle.
        t: u64,
        /// Faulted array.
        array: u32,
        /// Fault-kind tag (`"stuck_at"`, `"transient"`, `"reconfig"`,
        /// `"death"`, `"brownout"`).
        kind: &'static str,
    },
    /// A golden spot-check caught a corrupt outcome on `array`.
    DivergenceDetected {
        /// Detection cycle.
        t: u64,
        /// Diverging job id.
        job: u32,
        /// Array that produced the corrupt outcome.
        array: u32,
    },
    /// Recovery re-dispatched a diverging job onto another array.
    JobRetry {
        /// Retry-dispatch cycle.
        t: u64,
        /// Retried job id.
        job: u32,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// K consecutive divergences latched: the array is evicted and
    /// excluded from placement until a probe job passes.
    ArrayQuarantine {
        /// Quarantine cycle.
        t: u64,
        /// Quarantined array.
        array: u32,
        /// Consecutive divergences that triggered the quarantine.
        strikes: u32,
    },
    /// A probe job passed its golden check: the array rejoins placement.
    ArrayRestore {
        /// Restore cycle.
        t: u64,
        /// Restored array.
        array: u32,
    },
}

impl TraceEvent {
    /// Stable tag naming the event kind (the `kind` key of the pinned
    /// trace-file schema).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            TraceEvent::Meta { .. } => "meta",
            TraceEvent::JobEnqueue { .. } => "enqueue",
            TraceEvent::JobAdmit { .. } => "admit",
            TraceEvent::JobShed { .. } => "shed",
            TraceEvent::JobSchedule { .. } => "schedule",
            TraceEvent::JobComplete { .. } => "complete",
            TraceEvent::ArrayInterval { .. } => "interval",
            TraceEvent::BatteryLevel { .. } => "battery",
            TraceEvent::Counter { .. } => "counter",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::DivergenceDetected { .. } => "divergence",
            TraceEvent::JobRetry { .. } => "retry",
            TraceEvent::ArrayQuarantine { .. } => "quarantine",
            TraceEvent::ArrayRestore { .. } => "restore",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tags_are_stable() {
        let tags: Vec<&str> = [
            ArrayPhase::Idle,
            ArrayPhase::Gated,
            ArrayPhase::Reconfig,
            ArrayPhase::Waking,
            ArrayPhase::Exec,
        ]
        .iter()
        .map(|p| p.tag())
        .collect();
        assert_eq!(tags, ["idle", "gated", "reconfig", "waking", "exec"]);
    }

    #[test]
    fn breakdown_totals_sum_components() {
        let e = EnergyBreakdown {
            dynamic_j: 1.0,
            static_j: 0.25,
            reconfig_j: 0.5,
        };
        assert_eq!(e.total_j(), 1.75);
    }
}
