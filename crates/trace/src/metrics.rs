//! A small metrics registry: named counters, gauges, and histograms,
//! with deterministic **sorted** text renderings.
//!
//! Post-processing (`trace_report`) assembles its summary through one of
//! these so every number it prints comes from a named, inspectable slot;
//! tests read the same slots back instead of scraping stdout. Every
//! export path ([`MetricsRegistry::render`],
//! [`MetricsRegistry::render_prometheus`],
//! [`MetricsRegistry::counter_names`]) iterates in sorted name order, so
//! two registries holding the same slots dump identical bytes no matter
//! what order the slots were registered in.

use crate::hist::Histogram;

/// Named counters (`u64`, monotone), gauges (`f64`), and [`Histogram`]s.
/// Lookup is linear — registries hold tens of entries. Exports iterate
/// in sorted name order regardless of registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

/// Name-sorted view of one slot list (stable: duplicate names cannot
/// occur — every mutator upserts by name).
fn by_name<T>(items: &[(String, T)]) -> Vec<&(String, T)> {
    let mut v: Vec<&(String, T)> = items.iter().collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at 0 first.
    pub fn count(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name.to_owned(), delta)),
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sets the named gauge, creating or overwriting it.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_owned(), value)),
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, created with the given shape on first use.
    /// The shape arguments are ignored on later calls.
    pub fn hist_mut(&mut self, name: &str, bucket_width: u64, buckets: usize) -> &mut Histogram {
        if !self.hists.iter().any(|(n, _)| n == name) {
            self.hists
                .push((name.to_owned(), Histogram::new(bucket_width, buckets)));
        }
        let (_, h) = self
            .hists
            .iter_mut()
            .find(|(n, _)| n == name)
            .expect("histogram just inserted");
        h
    }

    /// Read-only access to a histogram.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Registered counter names in sorted order (export order).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        by_name(&self.counters).into_iter().map(|(n, _)| n.as_str())
    }

    /// Deterministic text rendering: counters, gauges (6 decimals), then
    /// histogram percentiles — each section in sorted name order, so the
    /// dump is independent of registration order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (n, v) in by_name(&self.counters) {
            out.push_str(&format!("{n} = {v}\n"));
        }
        for (n, v) in by_name(&self.gauges) {
            out.push_str(&format!("{n} = {v:.6}\n"));
        }
        for (n, h) in by_name(&self.hists) {
            out.push_str(&format!(
                "{n}: n={} p50={} p90={} p99={} max={}\n",
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            ));
        }
        out
    }

    /// Prometheus text-exposition rendering, deterministic: counters, then
    /// gauges, then histograms (as summaries with nearest-rank quantiles),
    /// each section in sorted name order — independent of registration
    /// order. Names are prefixed with `prefix_` and sanitised to
    /// `[a-zA-Z0-9_:]`; integer counters print exactly and gauges print
    /// with 6 decimals, so same-seed dumps are byte-identical.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let name_of = |raw: &str| {
            let mut n = String::with_capacity(prefix.len() + raw.len() + 1);
            n.push_str(prefix);
            n.push('_');
            for c in raw.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    n.push(c);
                } else {
                    n.push('_');
                }
            }
            n
        };
        let mut out = String::new();
        for (raw, v) in by_name(&self.counters) {
            let n = name_of(raw);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (raw, v) in by_name(&self.gauges) {
            let n = name_of(raw);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v:.6}\n"));
        }
        for (raw, h) in by_name(&self.hists) {
            let n = name_of(raw);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", h.percentile(p)));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = MetricsRegistry::new();
        m.count("served", 3);
        m.count("served", 2);
        assert_eq!(m.counter("served"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite_and_histograms_keep_their_shape() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("util_pct", 10.0);
        m.set_gauge("util_pct", 62.5);
        assert_eq!(m.gauge("util_pct"), Some(62.5));
        assert_eq!(m.gauge("absent"), None);
        m.hist_mut("queue", 1, 64).record_all([5, 9, 12]);
        // Shape arguments are ignored after creation.
        m.hist_mut("queue", 999, 1).record(7);
        let h = m.hist("queue").expect("queue histogram");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 12);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let mut m = MetricsRegistry::new();
        m.count("zebra", 1);
        m.count("alpha", 2);
        m.set_gauge("pct", 50.0);
        m.hist_mut("lat", 1, 8).record(3);
        let r = m.render();
        assert_eq!(r, m.render());
        let zebra = r.find("zebra = 1").expect("zebra line");
        let alpha = r.find("alpha = 2").expect("alpha line");
        assert!(alpha < zebra, "sorted order, not insertion order");
        assert!(r.contains("pct = 50.000000"));
        assert!(r.contains("lat: n=1 p50=3 p90=3 p99=3 max=3"));
        assert_eq!(m.counter_names().collect::<Vec<_>>(), ["alpha", "zebra"]);
    }

    #[test]
    fn export_order_is_independent_of_registration_order() {
        let names = ["zebra", "mid", "alpha"];
        let mut forward = MetricsRegistry::new();
        let mut backward = MetricsRegistry::new();
        for (i, n) in names.iter().enumerate() {
            forward.count(n, i as u64 + 1);
            forward.set_gauge(&format!("g_{n}"), i as f64);
            forward.hist_mut(&format!("h_{n}"), 1, 8).record(i as u64);
        }
        for (i, n) in names.iter().enumerate().rev() {
            backward.count(n, i as u64 + 1);
            backward.set_gauge(&format!("g_{n}"), i as f64);
            backward.hist_mut(&format!("h_{n}"), 1, 8).record(i as u64);
        }
        assert_eq!(forward.render(), backward.render());
        assert_eq!(
            forward.render_prometheus("dsra"),
            backward.render_prometheus("dsra")
        );
        assert_eq!(
            forward.counter_names().collect::<Vec<_>>(),
            ["alpha", "mid", "zebra"]
        );
    }

    #[test]
    fn prometheus_rendering_is_typed_prefixed_and_sanitised() {
        let mut m = MetricsRegistry::new();
        m.count("jobs", 12);
        m.set_gauge("util-pct", 62.5);
        m.hist_mut("latency_us", 1, 64).record_all([10, 20, 30]);
        let p = m.render_prometheus("dsra");
        assert_eq!(p, m.render_prometheus("dsra"), "deterministic");
        assert!(p.contains("# TYPE dsra_jobs counter\ndsra_jobs 12\n"));
        assert!(
            p.contains("# TYPE dsra_util_pct gauge\ndsra_util_pct 62.500000\n"),
            "dash sanitised to underscore: {p}"
        );
        assert!(p.contains("# TYPE dsra_latency_us summary\n"));
        assert!(p.contains("dsra_latency_us{quantile=\"0.5\"} 20\n"));
        assert!(p.contains("dsra_latency_us{quantile=\"0.99\"} 30\n"));
        assert!(p.contains("dsra_latency_us_sum 60\n"));
        assert!(p.contains("dsra_latency_us_count 3\n"));
        let counters = p.find("dsra_jobs").expect("counter");
        let gauges = p.find("dsra_util_pct").expect("gauge");
        let hists = p.find("dsra_latency_us").expect("summary");
        assert!(counters < gauges && gauges < hists, "section order");
    }
}
