//! # dsra-trace — deterministic virtual-time tracing
//!
//! Every layer above `dsra-core` reports end-of-run aggregates; this crate
//! records *where the time and energy went*. A [`TraceSink`] is threaded
//! through `SocRuntime` (batch and stream paths), `dsra-service` admission,
//! and the power accounts; the default [`NoopSink`] keeps the hot path
//! allocation-free while the recording [`EventLog`] captures structured
//! [`TraceEvent`]s for export and analysis.
//!
//! ## The virtual-time stamping rule
//!
//! Every timestamp in a [`TraceEvent`] is a **virtual** simulation cycle —
//! never a wall-clock reading. Wall-clock numbers (like the runtime's
//! `PhaseTimings`) are diagnostics and must never enter the event stream,
//! so two runs of the same seed produce byte-identical traces and the
//! Chrome exporter ([`chrome_trace`]) is deterministic end to end.
//!
//! ```
//! use dsra_trace::{chrome_trace, EventLog, TraceEvent, TraceSink};
//!
//! let mut log = EventLog::new();
//! log.emit(TraceEvent::JobEnqueue {
//!     t: 0,
//!     job: 7,
//!     tenant: 0,
//!     class: "quality",
//!     kind: "dct",
//!     deadline: 0,
//! });
//! assert!(log.enabled());
//! let json = chrome_trace(&log);
//! assert!(json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod health;
pub mod hist;
pub mod metrics;
pub mod sink;

pub use chrome::{chrome_trace, counter_tracks_doc, CounterTrack};
pub use event::{ArrayPhase, EnergyBreakdown, TraceEvent};
pub use health::{ArrayHealth, BatteryHealth, HealthSnapshot, LatencyStats, TenantHealth};
pub use hist::Histogram;
pub use metrics::MetricsRegistry;
pub use sink::{EventLog, JobSpan, NoopSink, TraceSink};
