//! Technology cost model: area, delay, dynamic energy and leakage in
//! calibrated arbitrary units.
//!
//! The paper's headline numbers (−75 % power / −45 % area / +23 % timing for
//! the ME array vs a generic FPGA, −38 % / −14 % / −54 % for the DA array,
//! from refs \[1\]\[2\]) come from 0.13 µm synthesis flows we do not have.
//! What *is* reproducible is the structural story: a domain-specific cluster
//! does in one hard macro what costs several LUTs, flip-flops and dozens of
//! bit-level routing switches on a fine-grain FPGA. This module prices both
//! sides with one set of constants, calibrated once (see
//! `calibration` notes in DESIGN.md) so the FPGA:DSRA ratios land in the
//! bands the paper reports. Absolute numbers are meaningless; ratios are
//! the experiment.

use dsra_core::cluster::ClusterCfg;
use dsra_core::netlist::{Netlist, NodeKind};
use dsra_core::route::RoutingStats;
use dsra_sim::Activity;

/// Calibrated technology constants (arbitrary units: area in element-
/// equivalents, delay in ns-like units, energy in fJ-like units).
#[derive(Debug, Clone, Copy)]
pub struct TechModel {
    /// Area of one 4-bit cluster element.
    pub a_element: f64,
    /// Fixed per-cluster overhead (config, intra-cluster wiring).
    pub a_cluster: f64,
    /// Area per memory bit (dense macro).
    pub a_mem_bit: f64,
    /// Area per routing switch point (one config bit's worth of switch).
    pub a_switch: f64,
    /// Area of one FPGA CLB (4-LUT + FF + local routing).
    pub a_clb: f64,
    /// Combinational delay through one cluster level.
    pub d_cluster: f64,
    /// Delay of one FPGA LUT level.
    pub d_lut: f64,
    /// Routing delay per mesh hop (bus track, ganged switch).
    pub d_hop: f64,
    /// Routing delay per FPGA hop (bit-level switches).
    pub d_hop_fpga: f64,
    /// Energy per net-bit toggle per mesh hop.
    pub e_wire_hop: f64,
    /// Energy per net-bit toggle per FPGA hop.
    pub e_wire_hop_fpga: f64,
    /// Energy per cluster-output toggle (internal datapath).
    pub e_cluster_toggle: f64,
    /// Energy per LUT output toggle.
    pub e_lut_toggle: f64,
    /// Leakage power per configuration bit.
    pub p_leak_cfg: f64,
    /// Leakage power per area unit.
    pub p_leak_area: f64,
}

impl Default for TechModel {
    fn default() -> Self {
        // Calibration: one global fit against the paper's reported ratios
        // (see EXPERIMENTS.md E4/E5). The structural quantities (LUT counts,
        // switch counts, hops) do most of the work; these constants set the
        // exchange rates between them.
        TechModel {
            // Area: a domain cluster carries a large fixed overhead (mode
            // decoders, intra-cluster routing) and ~2 CLB-equivalents per
            // 4-bit element; its configurable-geometry memories cost close
            // to an FPGA LUT-ROM bit — which is why the paper's DA array
            // only saves 14 % area while the (memory-free) ME array saves 45 %.
            a_element: 2.08,
            a_cluster: 7.0,
            a_mem_bit: 0.08,
            a_switch: 0.05,
            a_clb: 1.0,
            // Delay: a cascaded-element cluster level is ~2.3x slower than
            // one LUT+carry level (flexible intra-cluster muxing), but the
            // mixed mesh's ganged bus switches are ~2.5x faster per hop
            // than bit-level FPGA switches.
            d_cluster: 1.0,
            d_lut: 0.44,
            d_hop: 0.30,
            d_hop_fpga: 0.74,
            // Energy: same functional toggles; the FPGA pays ~2.4x wire
            // capacitance per hop and 16 config-SRAM bits of leakage per
            // LUT, the DSRA pays leakage on its own (memory-heavy for DA)
            // configuration plane.
            e_wire_hop: 1.0,
            e_wire_hop_fpga: 2.44,
            e_cluster_toggle: 0.3,
            e_lut_toggle: 0.15,
            p_leak_cfg: 0.1865,
            p_leak_area: 0.01,
        }
    }
}

/// Cost summary of one mapped implementation on one fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplCost {
    /// Logic + memory + used-switch area (area units).
    pub area: f64,
    /// Critical-path estimate (delay units).
    pub delay: f64,
    /// Dynamic energy per simulated cycle (energy units), from measured
    /// switching activity.
    pub dyn_energy_per_cycle: f64,
    /// Static (leakage) power (power units).
    pub leak_power: f64,
    /// Total configuration bits (cluster + routing).
    pub config_bits: u64,
}

impl ImplCost {
    /// Total power proxy at one cycle per time unit: dynamic + leakage.
    pub fn power(&self) -> f64 {
        self.dyn_energy_per_cycle + self.leak_power
    }

    /// The static/dynamic split the power subsystem (`dsra-power`)
    /// consumes: activity-driven energy per cycle on one side, leakage
    /// power on the other. Voltage/frequency scaling applies differently
    /// to the two halves, which is why downstream accounting must never
    /// re-merge them into a single number.
    pub fn energy_split(&self) -> EnergySplit {
        EnergySplit {
            dyn_energy_per_cycle: self.dyn_energy_per_cycle,
            leak_power: self.leak_power,
        }
    }
}

/// An implementation's energy cost split into its voltage-scaling classes:
/// dynamic (activity-based, scales ∝ V²) and static leakage (scales ∝ V,
/// paid per *time* rather than per toggle). Produced by
/// [`ImplCost::energy_split`]; consumed by `dsra-power`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergySplit {
    /// Activity-based dynamic energy per simulated cycle at nominal V/f.
    pub dyn_energy_per_cycle: f64,
    /// Leakage power at nominal V (energy per time unit; one cycle = one
    /// time unit at the nominal clock).
    pub leak_power: f64,
}

/// Leakage power of one configured cluster: its private configuration
/// plane plus its logic/memory area, at nominal voltage.
///
/// This is the power-gating granularity — an idle array stops paying
/// exactly the sum of its clusters' leakage (the routing plane's share is
/// priced separately from [`RoutingStats`], see [`routing_leakage`]).
pub fn cluster_leakage(cfg: &ClusterCfg, model: &TechModel) -> f64 {
    let (base_area, mem_bits) = match cfg {
        ClusterCfg::Memory { words, width, .. } => {
            (model.a_cluster, u64::from(*words) * u64::from(*width))
        }
        _ => (
            model.a_cluster + f64::from(cfg.element_count()) * model.a_element,
            0,
        ),
    };
    let area = base_area + mem_bits as f64 * model.a_mem_bit;
    f64::from(cfg.config_bits()) * model.p_leak_cfg + area * model.p_leak_area
}

/// Leakage power of the routing plane: its configuration bits plus the
/// switch-point area, at nominal voltage.
pub fn routing_leakage(routing: &RoutingStats, model: &TechModel) -> f64 {
    routing.config_bits as f64 * model.p_leak_cfg
        + routing.switch_points as f64 * model.a_switch * model.p_leak_area
}

/// Per-cluster FPGA resource estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpgaResources {
    /// 4-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
}

impl FpgaResources {
    /// CLBs needed (one LUT + one FF per CLB, 85 % packing efficiency).
    pub fn clbs(&self) -> u64 {
        let packed = self.luts.max(self.ffs);
        (packed as f64 / 0.85).ceil() as u64
    }
}

/// Technology-maps one cluster configuration to 4-LUT FPGA resources.
///
/// The counts follow standard FPGA mapping folklore: one LUT per output bit
/// of a 2-input arithmetic/mux function (carry chains included), three
/// LUT-levels' worth for an absolute difference, LUT-as-16×1-ROM for
/// memories (distributed ROM) plus a mux overhead.
pub fn map_cluster_to_fpga(cfg: &ClusterCfg) -> FpgaResources {
    use dsra_core::cluster::AddShiftCfg;
    let w = u64::from(cfg.width());
    match cfg {
        ClusterCfg::RegMux { registered, .. } => FpgaResources {
            luts: w,
            ffs: if *registered { w } else { 0 },
        },
        // a-b, b-a, and a per-bit select: ~3 LUTs/bit.
        ClusterCfg::AbsDiff { .. } => FpgaResources {
            luts: 3 * w,
            ffs: 0,
        },
        ClusterCfg::AddAcc { accumulate, .. } => FpgaResources {
            luts: w,
            ffs: if *accumulate { w } else { 0 },
        },
        ClusterCfg::Comparator {
            mode, index_width, ..
        } => {
            use dsra_core::cluster::CompMode;
            match mode {
                CompMode::Min | CompMode::Max => FpgaResources {
                    luts: 2 * w,
                    ffs: 0,
                },
                _ => FpgaResources {
                    luts: 2 * w + u64::from(*index_width),
                    ffs: w + u64::from(*index_width),
                },
            }
        }
        ClusterCfg::AddShift(as_cfg) => match as_cfg {
            AddShiftCfg::Add { serial, .. } | AddShiftCfg::Sub { serial, .. } => {
                if *serial {
                    FpgaResources { luts: 2, ffs: 1 }
                } else {
                    FpgaResources { luts: w, ffs: 0 }
                }
            }
            AddShiftCfg::SerialReg { width } => FpgaResources {
                luts: u64::from(*width) / 4 + 2, // counter + output mux
                ffs: u64::from(*width) + 4,
            },
            AddShiftCfg::ShiftAcc { acc_width, .. } => FpgaResources {
                luts: u64::from(*acc_width),
                ffs: u64::from(*acc_width),
            },
        },
        ClusterCfg::Memory { words, width, .. } => {
            // LUT as 16x1 distributed ROM + read mux overhead.
            let bits = u64::from(*words) * u64::from(*width);
            let rom_luts = bits.div_ceil(16);
            let mux_luts = (rom_luts as f64 * 0.25).ceil() as u64;
            FpgaResources {
                luts: rom_luts + mux_luts,
                ffs: 0,
            }
        }
    }
}

/// Maps a whole netlist to FPGA resources.
pub fn map_netlist_to_fpga(netlist: &Netlist) -> FpgaResources {
    let mut total = FpgaResources::default();
    for node in netlist.nodes() {
        if let NodeKind::Cluster(cfg) = &node.kind {
            let r = map_cluster_to_fpga(cfg);
            total.luts += r.luts;
            total.ffs += r.ffs;
        }
    }
    total
}

/// Prices a design mapped on the domain-specific array.
pub fn dsra_cost(
    netlist: &Netlist,
    routing: &RoutingStats,
    activity: &Activity,
    model: &TechModel,
) -> ImplCost {
    let mut area = 0.0;
    let mut mem_bits = 0u64;
    for node in netlist.nodes() {
        if let NodeKind::Cluster(cfg) = &node.kind {
            match cfg {
                ClusterCfg::Memory { words, width, .. } => {
                    mem_bits += u64::from(*words) * u64::from(*width);
                    area += model.a_cluster;
                }
                _ => {
                    area += model.a_cluster + f64::from(cfg.element_count()) * model.a_element;
                }
            }
        }
    }
    area += mem_bits as f64 * model.a_mem_bit;
    area += routing.switch_points as f64 * model.a_switch;

    let depth = netlist.logic_depth().unwrap_or(1).max(1) as f64;
    let delay = depth * model.d_cluster + f64::from(routing.max_net_hops) * model.d_hop;

    let cycles = activity.cycles().max(1) as f64;
    let wire_energy =
        activity.total_net_toggles() as f64 * model.e_wire_hop * mean_hops(routing) / cycles;
    let cluster_energy = activity.total_node_toggles() as f64 * model.e_cluster_toggle / cycles;
    let config_bits = netlist.cluster_config_bits() as u64 + routing.config_bits;
    ImplCost {
        area,
        delay,
        dyn_energy_per_cycle: wire_energy + cluster_energy,
        leak_power: config_bits as f64 * model.p_leak_cfg + area * model.p_leak_area,
        config_bits,
    }
}

/// Prices the same design technology-mapped onto the generic fine-grain
/// FPGA (same placement geometry, 1-bit routing, LUT pricing).
pub fn fpga_cost(
    netlist: &Netlist,
    routing_fine: &RoutingStats,
    activity: &Activity,
    model: &TechModel,
) -> ImplCost {
    let resources = map_netlist_to_fpga(netlist);
    let mut area = resources.clbs() as f64 * model.a_clb;
    area += routing_fine.switch_points as f64 * model.a_switch;

    // One cluster level maps to roughly one LUT+carry level (dedicated
    // carry chains keep FPGA arithmetic shallow).
    let depth = netlist.logic_depth().unwrap_or(1).max(1) as f64;
    let delay = depth * model.d_lut + f64::from(routing_fine.max_net_hops) * model.d_hop_fpga;

    let cycles = activity.cycles().max(1) as f64;
    // Same functional toggles, bit-level switching fabric, plus LUT-internal
    // activity proportional to the logic replication factor.
    let replication = resources.luts as f64 / cluster_count(netlist).max(1) as f64;
    let wire_energy =
        activity.total_net_toggles() as f64 * model.e_wire_hop_fpga * mean_hops(routing_fine)
            / cycles;
    let lut_energy =
        activity.total_node_toggles() as f64 * model.e_lut_toggle * replication / cycles;
    let config_bits = resources.luts * 16 + routing_fine.config_bits;
    ImplCost {
        area,
        delay,
        dyn_energy_per_cycle: wire_energy + lut_energy,
        leak_power: config_bits as f64 * model.p_leak_cfg + area * model.p_leak_area,
        config_bits,
    }
}

/// Average net length in hops (plus one for the connection boxes) — the
/// per-toggle wire-capacitance proxy. Public so activity-based energy
/// integration elsewhere (`dsra-power`) prices toggles exactly as
/// [`dsra_cost`] does.
pub fn mean_hops(routing: &RoutingStats) -> f64 {
    1.0 + routing.total_hops as f64 / routing.nets.max(1) as f64
}

fn cluster_count(netlist: &Netlist) -> u64 {
    netlist.cluster_nodes().len() as u64
}

/// Relative improvements of the DSRA mapping over the FPGA mapping, in the
/// units the paper quotes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Power reduction in percent (paper: 75 % ME, 38 % DA).
    pub power_reduction_pct: f64,
    /// Area reduction in percent (paper: 45 % ME, 14 % DA).
    pub area_reduction_pct: f64,
    /// Critical-path (timing) improvement in percent (paper: 23 % ME, 54 % DA).
    pub timing_improvement_pct: f64,
}

/// Compares two priced mappings.
pub fn compare(dsra: &ImplCost, fpga: &ImplCost) -> Comparison {
    let pct = |ours: f64, theirs: f64| (1.0 - ours / theirs) * 100.0;
    Comparison {
        power_reduction_pct: pct(dsra.power(), fpga.power()),
        area_reduction_pct: pct(dsra.area, fpga.area),
        timing_improvement_pct: pct(dsra.delay, fpga.delay),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_core::cluster::{AbsDiffMode, AddShiftCfg};

    #[test]
    fn fpga_mapping_charges_memories_as_lut_rom() {
        let rom = ClusterCfg::Memory {
            words: 256,
            width: 8,
            contents: vec![0; 256],
        };
        let r = map_cluster_to_fpga(&rom);
        // 2048 bits -> 128 ROM LUTs + 32 mux LUTs.
        assert_eq!(r.luts, 160);
        assert_eq!(r.ffs, 0);
    }

    #[test]
    fn fpga_mapping_charges_absdiff_three_luts_per_bit() {
        let ad = ClusterCfg::AbsDiff {
            width: 8,
            mode: AbsDiffMode::AbsDiff,
        };
        assert_eq!(map_cluster_to_fpga(&ad).luts, 24);
    }

    #[test]
    fn serial_adder_is_tiny_on_both_fabrics() {
        let s = ClusterCfg::AddShift(AddShiftCfg::Add {
            width: 1,
            serial: true,
        });
        let r = map_cluster_to_fpga(&s);
        assert!(r.luts <= 2 && r.ffs <= 1);
    }

    #[test]
    fn clb_packing_uses_max_of_luts_and_ffs() {
        let r = FpgaResources { luts: 100, ffs: 40 };
        assert!(r.clbs() >= 100);
        let r2 = FpgaResources { luts: 10, ffs: 200 };
        assert!(r2.clbs() >= 200);
    }

    #[test]
    fn per_cluster_leakage_sums_to_the_priced_total() {
        // The power-gating granularity must account for every leakage
        // term dsra_cost prices: Σ cluster_leakage + routing_leakage ==
        // ImplCost::leak_power, exactly (same constants, same quantities).
        use dsra_core::fabric::{Fabric, MeshSpec};
        use dsra_core::netlist::{Netlist, NodeKind};
        use dsra_core::place::{place, PlacerOptions};
        use dsra_core::route::{route, RouterOptions};

        let mut nl = Netlist::new("leak");
        let addr = nl.input("addr", 4).unwrap();
        let b = nl.input("b", 8).unwrap();
        let y = nl.output("y", 8).unwrap();
        let rom = nl
            .cluster(
                "rom",
                ClusterCfg::Memory {
                    words: 16,
                    width: 8,
                    contents: vec![3; 16],
                },
            )
            .unwrap();
        let add = nl
            .cluster(
                "add",
                ClusterCfg::AddShift(AddShiftCfg::Add {
                    width: 8,
                    serial: false,
                }),
            )
            .unwrap();
        nl.connect((addr, "out"), (rom, "addr")).unwrap();
        nl.connect((rom, "dout"), (add, "a")).unwrap();
        nl.connect((b, "out"), (add, "b")).unwrap();
        nl.connect((add, "y"), (y, "in")).unwrap();

        let fabric = Fabric::da_array(8, 8, MeshSpec::mixed());
        let placement = place(&nl, &fabric, PlacerOptions::default()).unwrap();
        let routing = route(&nl, &fabric, &placement, RouterOptions::default()).unwrap();
        let model = TechModel::default();
        let activity =
            dsra_sim::Activity::synthetic(vec![0; nl.nets().len()], vec![0; nl.nodes().len()], 1);
        let cost = dsra_cost(&nl, &routing.stats, &activity, &model);

        let cluster_sum: f64 = nl
            .nodes()
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Cluster(cfg) => Some(cluster_leakage(cfg, &model)),
                _ => None,
            })
            .sum();
        let total = cluster_sum + routing_leakage(&routing.stats, &model);
        assert!(
            (total - cost.leak_power).abs() < 1e-9 * cost.leak_power.max(1.0),
            "split {total} vs priced {}",
            cost.leak_power
        );
    }

    #[test]
    fn comparison_percentages() {
        let a = ImplCost {
            area: 50.0,
            delay: 8.0,
            dyn_energy_per_cycle: 20.0,
            leak_power: 5.0,
            config_bits: 100,
        };
        let b = ImplCost {
            area: 100.0,
            delay: 10.0,
            dyn_energy_per_cycle: 90.0,
            leak_power: 10.0,
            config_bits: 1000,
        };
        let c = compare(&a, &b);
        assert!((c.area_reduction_pct - 50.0).abs() < 1e-9);
        assert!((c.power_reduction_pct - 75.0).abs() < 1e-9);
        assert!((c.timing_improvement_pct - 20.0).abs() < 1e-9);
    }
}
