//! End-to-end DSRA-vs-FPGA evaluation pipeline (experiments E4/E5) and the
//! interconnect-mesh ablation (E6).

use dsra_core::error::Result;
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::netlist::Netlist;
use dsra_core::place::{place, PlacerOptions};
use dsra_core::route::{route, RouterOptions, RoutingStats};
use dsra_sim::Activity;

use crate::model::{compare, dsra_cost, fpga_cost, Comparison, ImplCost, TechModel};

/// Everything produced by one two-fabric evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Cost on the domain-specific array (mixed 8-bit/1-bit mesh).
    pub dsra: ImplCost,
    /// Cost on the generic fine-grain FPGA model.
    pub fpga: ImplCost,
    /// Relative improvements (the paper's units).
    pub comparison: Comparison,
    /// Routing statistics on the mixed mesh.
    pub routing_mixed: RoutingStats,
    /// Routing statistics on the 1-bit mesh.
    pub routing_fine: RoutingStats,
}

/// Places and routes `netlist` on `fabric` twice — once with the mixed
/// 8-bit/1-bit mesh, once with a capacity-matched 1-bit-only mesh — and
/// prices both against the technology model using the measured `activity`.
///
/// # Errors
/// Propagates placement/routing failures (fabric too small, unroutable).
pub fn evaluate_against_fpga(
    netlist: &Netlist,
    fabric: &Fabric,
    activity: &Activity,
    model: &TechModel,
) -> Result<Evaluation> {
    let mixed = fabric.with_mesh(MeshSpec::mixed());
    let fine = fabric.with_mesh(MeshSpec::fine_grain());
    let placement = place(netlist, &mixed, PlacerOptions::default())?;
    let routing_mixed = route(netlist, &mixed, &placement, RouterOptions::default())?;
    let routing_fine = route(netlist, &fine, &placement, RouterOptions::default())?;
    let dsra = dsra_cost(netlist, &routing_mixed.stats, activity, model);
    let fpga = fpga_cost(netlist, &routing_fine.stats, activity, model);
    Ok(Evaluation {
        comparison: compare(&dsra, &fpga),
        dsra,
        fpga,
        routing_mixed: routing_mixed.stats,
        routing_fine: routing_fine.stats,
    })
}

/// Mesh ablation (E6): routes the same placed design over the mixed mesh
/// and the 1-bit-only mesh and reports the switch/configuration cost of
/// each — the §2 claim that bus tracks need "a reduced number of switches
/// and configuration bits".
///
/// # Errors
/// Propagates placement/routing failures.
pub fn mesh_ablation(netlist: &Netlist, fabric: &Fabric) -> Result<(RoutingStats, RoutingStats)> {
    let mixed = fabric.with_mesh(MeshSpec::mixed());
    let fine = fabric.with_mesh(MeshSpec::fine_grain());
    let placement = place(netlist, &mixed, PlacerOptions::default())?;
    let rm = route(netlist, &mixed, &placement, RouterOptions::default())?;
    let rf = route(netlist, &fine, &placement, RouterOptions::default())?;
    Ok((rm.stats, rf.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_core::cluster::{AbsDiffMode, AddOp, ClusterCfg};
    use dsra_core::error::CoreError;
    use dsra_sim::Simulator;

    /// A small SAD datapath with realistic multi-bit nets.
    fn sad_strip(n: usize) -> Netlist {
        let mut nl = Netlist::new("sad-strip");
        let mut prev = None;
        for i in 0..n {
            let a = nl.input(format!("a{i}"), 8).unwrap();
            let b = nl.input(format!("b{i}"), 8).unwrap();
            let ad = nl
                .cluster(
                    format!("ad{i}"),
                    ClusterCfg::AbsDiff {
                        width: 8,
                        mode: AbsDiffMode::AbsDiff,
                    },
                )
                .unwrap();
            nl.connect((a, "out"), (ad, "a")).unwrap();
            nl.connect((b, "out"), (ad, "b")).unwrap();
            let add = nl
                .cluster(
                    format!("add{i}"),
                    ClusterCfg::AddAcc {
                        width: 8,
                        op: AddOp::Add,
                        accumulate: false,
                    },
                )
                .unwrap();
            nl.connect((ad, "y"), (add, "a")).unwrap();
            if let Some(p) = prev {
                nl.connect((p, "y"), (add, "b")).unwrap();
            }
            prev = Some(add);
        }
        let y = nl.output("y", 8).unwrap();
        nl.connect((prev.unwrap(), "y"), (y, "in")).unwrap();
        nl
    }

    fn activity_for(nl: &Netlist, cycles: u64) -> Activity {
        let mut sim = Simulator::new(nl).unwrap();
        for c in 0..cycles {
            for i in 0..4 {
                let _ = sim.set(&format!("a{i}"), (c * 37 + i * 11) % 256);
                let _ = sim.set(&format!("b{i}"), (c * 91 + i * 7) % 256);
            }
            sim.step();
        }
        sim.activity().clone()
    }

    #[test]
    fn evaluation_produces_consistent_costs() -> std::result::Result<(), CoreError> {
        let nl = sad_strip(4);
        let fabric = Fabric::me_array(12, 10, MeshSpec::mixed());
        let act = activity_for(&nl, 64);
        let ev = evaluate_against_fpga(&nl, &fabric, &act, &TechModel::default())?;
        assert!(ev.dsra.area > 0.0 && ev.fpga.area > 0.0);
        assert!(ev.dsra.power() > 0.0 && ev.fpga.power() > 0.0);
        // The domain-specific fabric must win on datapath workloads.
        assert!(ev.comparison.power_reduction_pct > 0.0);
        assert!(ev.comparison.area_reduction_pct > 0.0);
        Ok(())
    }

    #[test]
    fn mesh_ablation_shows_bus_advantage() -> std::result::Result<(), CoreError> {
        let nl = sad_strip(4);
        let fabric = Fabric::me_array(12, 10, MeshSpec::mixed());
        let (mixed, fine) = mesh_ablation(&nl, &fabric)?;
        assert!(
            fine.config_bits > mixed.config_bits,
            "1-bit mesh {} bits should exceed mixed mesh {} bits",
            fine.config_bits,
            mixed.config_bits
        );
        assert!(fine.switch_points > mixed.switch_points);
        Ok(())
    }
}
