//! # dsra-tech — technology model and generic-FPGA baseline
//!
//! Prices mapped designs (area / delay / power / configuration bits) on the
//! domain-specific arrays and on a generic fine-grain 4-LUT FPGA model, to
//! reproduce the paper's comparison claims (E4/E5) and the interconnect
//! ablation (E6). All units are calibrated arbitrary units — the *ratios*
//! are the reproducible quantity, see DESIGN.md §2.

#![warn(missing_docs)]

pub mod compare;
pub mod model;

pub use compare::{evaluate_against_fpga, mesh_ablation, Evaluation};
pub use model::{
    compare as compare_costs, dsra_cost, fpga_cost, map_cluster_to_fpga, map_netlist_to_fpga,
    Comparison, FpgaResources, ImplCost, TechModel,
};
