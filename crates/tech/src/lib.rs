//! # dsra-tech — technology model and generic-FPGA baseline
//!
//! Prices mapped designs (area / delay / power / configuration bits) on the
//! domain-specific arrays and on a generic fine-grain 4-LUT FPGA model, to
//! reproduce the paper's comparison claims (E4/E5) and the interconnect
//! ablation (E6). All units are calibrated arbitrary units — the *ratios*
//! are the reproducible quantity, see DESIGN.md §2.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_core::cluster::{AbsDiffMode, ClusterCfg};
//! use dsra_tech::map_cluster_to_fpga;
//!
//! // One 8-bit |a−b| cluster costs a pile of 4-LUTs on the generic FPGA —
//! // the granularity mismatch the paper's comparisons quantify.
//! let r = map_cluster_to_fpga(&ClusterCfg::AbsDiff {
//!     width: 8,
//!     mode: AbsDiffMode::AbsDiff,
//! });
//! assert!(r.luts >= 8);
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod model;

pub use compare::{evaluate_against_fpga, mesh_ablation, Evaluation};
pub use model::{
    cluster_leakage, compare as compare_costs, dsra_cost, fpga_cost, map_cluster_to_fpga,
    map_netlist_to_fpga, mean_hops, routing_leakage, Comparison, EnergySplit, FpgaResources,
    ImplCost, TechModel,
};
