//! Fault-injection regression tests through the precompiled `ExecPlan`
//! path.
//!
//! The simulator's write path has a fast path that skips fault masking
//! entirely when no faults are injected. These tests pin the contract that
//! fast path must preserve: a fault-free run is byte-identical whether the
//! fault machinery was ever armed or not, and an injected fault is
//! *observable* — the masked output really differs from the clean run.

use dsra_core::prelude::*;
use dsra_sim::{ExecPlan, Simulator, StuckFault};
use proptest::prelude::*;

/// A two-stage datapath: |a - b| into a registered accumulator — small
/// enough to reason about exactly, deep enough that a fault on an internal
/// net has to propagate through a downstream cluster to be seen.
fn sad_cell() -> Netlist {
    let mut nl = Netlist::new("sad_fault");
    let a = nl.input("a", 8).unwrap();
    let b = nl.input("b", 8).unwrap();
    let ad = nl
        .cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::AbsDiff,
            },
        )
        .unwrap();
    let acc = nl
        .cluster(
            "acc",
            ClusterCfg::AddAcc {
                width: 16,
                op: AddOp::Add,
                accumulate: true,
            },
        )
        .unwrap();
    let zero = nl.constant("z8", 0, 8).unwrap();
    let wide = nl.concat("w", &[(ad, "y"), (zero, "out")]).unwrap();
    let y = nl.output("y", 16).unwrap();
    nl.connect((a, "out"), (ad, "a")).unwrap();
    nl.connect((b, "out"), (ad, "b")).unwrap();
    nl.connect((wide, "out"), (acc, "a")).unwrap();
    nl.connect((acc, "y"), (y, "in")).unwrap();
    nl
}

/// The internal net a fault lands on: the abs-diff output.
fn ad_output_net(nl: &Netlist) -> dsra_core::netlist::NetId {
    let ad = nl.node_by_name("ad").unwrap();
    nl.net_of(dsra_core::netlist::PortRef { node: ad, port: 2 })
        .expect("ad.y is routed")
}

/// Drives the same stimulus through a plan-backed simulator and returns the
/// accumulated output.
fn run_plan(nl: &Netlist, plan: &ExecPlan, fault: Option<StuckFault>) -> u64 {
    let mut sim = Simulator::with_plan(nl, plan);
    if let Some(f) = fault {
        sim.inject_fault(f);
    }
    sim.set("a", 0x40).unwrap();
    sim.set("b", 0x41).unwrap(); // |diff| = 1: only the LSB carries signal
    sim.run(4);
    sim.get("y").unwrap()
}

#[test]
fn stuck_at_fault_through_exec_plan_is_observable() {
    let nl = sad_cell();
    let plan = ExecPlan::compile(&nl).unwrap();
    let fault = StuckFault {
        net: ad_output_net(&nl),
        bit: 0,
        stuck_high: false,
    };

    // One shared plan, two simulators: the plan is pure compiled structure,
    // so fault state must live entirely in the simulator instance.
    let clean = run_plan(&nl, &plan, None);
    let faulted = run_plan(&nl, &plan, Some(fault));
    assert_eq!(clean, 3, "three visible accumulation edges of |0x40-0x41|");
    assert_ne!(
        faulted, clean,
        "a stuck-at-0 LSB on the abs-diff output must change the masked \
         output — if these agree, the no-fault fast path is being taken \
         with a fault armed"
    );
    assert_eq!(faulted, 0, "LSB stuck low kills the unit difference");
}

#[test]
fn clearing_faults_restores_the_clean_output() {
    let nl = sad_cell();
    let plan = ExecPlan::compile(&nl).unwrap();
    let fault = StuckFault {
        net: ad_output_net(&nl),
        bit: 0,
        stuck_high: false,
    };
    let clean = run_plan(&nl, &plan, None);

    // Same simulator instance: inject, clear, then run the stimulus. After
    // clear_faults() the write path is back on the fast path and the run
    // must be byte-identical to one that never saw a fault.
    let mut sim = Simulator::with_plan(&nl, &plan);
    sim.inject_fault(fault);
    sim.clear_faults();
    sim.set("a", 0x40).unwrap();
    sim.set("b", 0x41).unwrap();
    sim.run(4);
    assert_eq!(
        sim.get("y").unwrap(),
        clean,
        "clear_faults() must fully restore fault-free behaviour"
    );
}

/// A one-stage pipeline whose faulted net is directly observable: the
/// abs-diff output drives the top-level `y`, so the masked word can be
/// compared bit-for-bit against the clean word without the accumulator
/// smearing the difference across the bus.
fn observable_cell() -> Netlist {
    let mut nl = Netlist::new("observable_fault");
    let a = nl.input("a", 8).unwrap();
    let b = nl.input("b", 8).unwrap();
    let ad = nl
        .cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::AbsDiff,
            },
        )
        .unwrap();
    let y = nl.output("y", 8).unwrap();
    nl.connect((a, "out"), (ad, "a")).unwrap();
    nl.connect((b, "out"), (ad, "b")).unwrap();
    nl.connect((ad, "y"), (y, "in")).unwrap();
    nl
}

proptest! {
    /// Pins the indexed-mask fault path against first principles: for any
    /// stimulus and any sequence of stuck-at faults on one net, the faulted
    /// output must equal the clean output with the fault list replayed in
    /// injection order — later faults on the same bit win — and the two
    /// words may differ **only** on faulted bit positions.
    #[test]
    fn faulted_output_differs_from_clean_only_on_masked_bits(
        a in 0u64..256,
        b in 0u64..256,
        fspec: u64,
    ) {
        let nl = observable_cell();
        let plan = ExecPlan::compile(&nl).unwrap();
        let net = ad_output_net(&nl);

        // Decode 1..=4 faults from the raw sample: 4 bits of position and
        // one stuck-value bit per fault, replayed in injection order.
        let count = (fspec & 3) as usize + 1;
        let faults: Vec<StuckFault> = (0..count)
            .map(|i| {
                let chunk = fspec >> (2 + 4 * i);
                StuckFault {
                    net,
                    bit: (chunk & 7) as u8, // 8-bit bus
                    stuck_high: chunk & 8 != 0,
                }
            })
            .collect();

        let settled = |fs: &[StuckFault]| -> u64 {
            let mut sim = Simulator::with_plan(&nl, &plan);
            for f in fs {
                sim.inject_fault(*f);
            }
            sim.set("a", a).unwrap();
            sim.set("b", b).unwrap();
            sim.step();
            sim.get("y").unwrap()
        };
        let clean = settled(&[]);
        let faulted = settled(&faults);

        // Reference semantics: replay the list in order.
        let mut expected = clean;
        let mut masked_bits = 0u64;
        for f in &faults {
            let bit = 1u64 << f.bit;
            masked_bits |= bit;
            if f.stuck_high {
                expected |= bit;
            } else {
                expected &= !bit;
            }
        }
        prop_assert_eq!(faulted, expected);
        prop_assert_eq!(
            (faulted ^ clean) & !masked_bits,
            0,
            "faulted and clean outputs may differ only on masked bits"
        );
    }
}
