//! The op-level profiler's two contracts: a live [`CountingProf`] agrees
//! exactly with the plan's static [`OpMix`] (`counters == mix × cycles`),
//! and profiling is a pure observer — outputs, activity and state are
//! byte-identical with the sink on or off.

use dsra_core::prelude::*;
use dsra_sim::{CountingProf, ExecPlan, NoopProf, OpClass, Simulator};

/// A small design exercising combinational, sequential and memory ops:
/// |a - b| accumulated over time, plus a ROM lookup.
fn mixed_netlist() -> Netlist {
    let mut nl = Netlist::new("mix");
    let a = nl.input("a", 8).unwrap();
    let b = nl.input("b", 8).unwrap();
    let en = nl.input("en", 1).unwrap();
    let addr = nl.input("addr", 4).unwrap();
    let y = nl.output("y", 16).unwrap();
    let r = nl.output("rom_q", 8).unwrap();
    let ad = nl
        .cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::AbsDiff,
            },
        )
        .unwrap();
    let acc = nl
        .cluster(
            "acc",
            ClusterCfg::AddAcc {
                width: 16,
                op: AddOp::Add,
                accumulate: true,
            },
        )
        .unwrap();
    let rom = nl
        .cluster(
            "rom",
            ClusterCfg::Memory {
                words: 16,
                width: 8,
                contents: (0..16).map(|i| i * 3).collect(),
            },
        )
        .unwrap();
    nl.connect((a, "out"), (ad, "a")).unwrap();
    nl.connect((b, "out"), (ad, "b")).unwrap();
    let ext = nl.sign_extend("ext", (ad, "y"), 16).unwrap();
    nl.connect((ext, "out"), (acc, "a")).unwrap();
    nl.connect((en, "out"), (acc, "en")).unwrap();
    nl.connect((acc, "y"), (y, "in")).unwrap();
    nl.connect((addr, "out"), (rom, "addr")).unwrap();
    nl.connect((rom, "dout"), (r, "in")).unwrap();
    nl
}

fn drive_pattern(sim: &mut Simulator<impl dsra_sim::ProfSink>, c: u64) {
    sim.set("a", (c * 13) % 256).unwrap();
    sim.set("b", (c * 7 + 3) % 256).unwrap();
    sim.set("en", u64::from(!c.is_multiple_of(3))).unwrap();
    sim.set("addr", c % 16).unwrap();
}

#[test]
fn counting_prof_matches_static_op_mix() {
    let nl = mixed_netlist();
    let plan = ExecPlan::compile(&nl).unwrap();
    let mix = plan.op_mix();
    // The design has 4 inputs, one AbsDiff, one Acc (publish + tick) and
    // one ROM executing each cycle.
    assert_eq!(mix.count(OpClass::Input), 4);
    assert_eq!(mix.count(OpClass::SignExtend), 1);
    assert_eq!(mix.count(OpClass::AbsDiff), 1);
    assert_eq!(mix.count(OpClass::Acc), 2);
    assert_eq!(mix.count(OpClass::Memory), 1);
    assert_eq!(mix.count(OpClass::Mux), 0);

    let mut sim = Simulator::with_plan_profiled(&nl, &plan, CountingProf::new());
    let cycles = 137u64;
    for c in 0..cycles {
        drive_pattern(&mut sim, c);
        sim.step();
    }
    let prof = sim.prof();
    assert_eq!(prof.cycles(), cycles);
    for class in OpClass::ALL {
        assert_eq!(
            prof.class_count(class),
            mix.count(class) * cycles,
            "live {} count must equal mix × cycles",
            class.tag()
        );
    }
    assert_eq!(prof.total_ops(), mix.ops_per_cycle() * cycles);
    assert_eq!(prof.implied_mix().as_ref(), Some(&mix));
}

#[test]
fn profiling_is_a_pure_observer() {
    let nl = mixed_netlist();
    let plan = ExecPlan::compile(&nl).unwrap();
    let mut plain = Simulator::with_plan_profiled(&nl, &plan, NoopProf);
    let mut profiled = Simulator::with_plan_profiled(&nl, &plan, CountingProf::new());
    for c in 0..200u64 {
        drive_pattern(&mut plain, c);
        drive_pattern(&mut profiled, c);
        plain.step();
        profiled.step();
        assert_eq!(plain.get("y").unwrap(), profiled.get("y").unwrap());
        assert_eq!(plain.get("rom_q").unwrap(), profiled.get("rom_q").unwrap());
    }
    assert_eq!(plain.cycle(), profiled.cycle());
    assert_eq!(
        plain.activity().total_net_toggles(),
        profiled.activity().total_net_toggles(),
        "switching activity must not see the profiler"
    );
    assert_eq!(
        plain.activity().total_node_toggles(),
        profiled.activity().total_node_toggles()
    );
}
