//! Functional tests for every cluster model, exercised through the public
//! simulator API.

use dsra_core::fixed::{from_signed, to_signed};
use dsra_core::prelude::*;
use dsra_sim::Simulator;
use proptest::prelude::*;

fn single_cluster(cfg: ClusterCfg, ins: &[(&str, u8)], outs: &[(&str, u8)]) -> Netlist {
    let mut nl = Netlist::new("t");
    let c = nl.cluster("c", cfg).unwrap();
    for (name, width) in ins {
        let i = nl.input(format!("i_{name}"), *width).unwrap();
        nl.connect((i, "out"), (c, name)).unwrap();
    }
    for (name, width) in outs {
        let o = nl.output(format!("o_{name}"), *width).unwrap();
        nl.connect((c, name), (o, "in")).unwrap();
    }
    nl
}

#[test]
fn regmux_combinational_select() {
    let nl = single_cluster(
        ClusterCfg::RegMux {
            width: 8,
            registered: false,
        },
        &[("a", 8), ("b", 8), ("sel", 1)],
        &[("y", 8)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("i_a", 10).unwrap();
    sim.set("i_b", 20).unwrap();
    sim.set("i_sel", 0).unwrap();
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 10);
    sim.set("i_sel", 1).unwrap();
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 20);
}

#[test]
fn regmux_registered_delays_one_cycle() {
    let nl = single_cluster(
        ClusterCfg::RegMux {
            width: 8,
            registered: true,
        },
        &[("a", 8), ("sel", 1)],
        &[("y", 8)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("i_a", 42).unwrap();
    sim.set("i_sel", 0).unwrap();
    sim.step();
    // Value captured at the first edge appears on the second cycle.
    assert_eq!(sim.get("o_y").unwrap(), 0);
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 42);
}

#[test]
fn regmux_register_chain_acts_as_delay_line() {
    // Two registered muxes in series: 2-cycle delay (the ME "register array"
    // that propagates current-block pixels).
    let mut nl = Netlist::new("chain");
    let a = nl.input("a", 8).unwrap();
    let m1 = nl
        .cluster(
            "m1",
            ClusterCfg::RegMux {
                width: 8,
                registered: true,
            },
        )
        .unwrap();
    let m2 = nl
        .cluster(
            "m2",
            ClusterCfg::RegMux {
                width: 8,
                registered: true,
            },
        )
        .unwrap();
    let y = nl.output("y", 8).unwrap();
    nl.connect((a, "out"), (m1, "a")).unwrap();
    nl.connect((m1, "y"), (m2, "a")).unwrap();
    nl.connect((m2, "y"), (y, "in")).unwrap();
    let mut sim = Simulator::new(&nl).unwrap();
    for (cycle, px) in [7u64, 13, 21, 5].iter().enumerate() {
        sim.set("a", *px).unwrap();
        sim.step();
        if cycle >= 2 {
            let expected = [7u64, 13, 21, 5][cycle - 2];
            assert_eq!(sim.get("y").unwrap(), expected, "cycle {cycle}");
        }
    }
}

#[test]
fn absdiff_modes() {
    for (mode, a, b, expect) in [
        (AbsDiffMode::Add, 100u64, 27u64, 127u64),
        (AbsDiffMode::Sub, 100, 27, 73),
        (AbsDiffMode::AbsDiff, 27, 100, 73),
        (AbsDiffMode::AbsDiff, 100, 27, 73),
        (AbsDiffMode::AbsDiff, 255, 0, 255),
    ] {
        let nl = single_cluster(
            ClusterCfg::AbsDiff { width: 8, mode },
            &[("a", 8), ("b", 8)],
            &[("y", 8)],
        );
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set("i_a", a).unwrap();
        sim.set("i_b", b).unwrap();
        sim.step();
        assert_eq!(sim.get("o_y").unwrap(), expect, "{mode:?} {a} {b}");
    }
}

#[test]
fn addacc_accumulates_with_enable_and_clear() {
    let nl = single_cluster(
        ClusterCfg::AddAcc {
            width: 16,
            op: AddOp::Add,
            accumulate: true,
        },
        &[("a", 16), ("en", 1), ("clr", 1)],
        &[("y", 16)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("i_clr", 0).unwrap();
    sim.set("i_en", 1).unwrap();
    for v in [5u64, 7, 11] {
        sim.set("i_a", v).unwrap();
        sim.step();
    }
    // Disable: the registered sum becomes visible and holds.
    sim.set("i_en", 0).unwrap();
    sim.set("i_a", 999).unwrap();
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 23);
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 23);
    // Clear wins.
    sim.set("i_clr", 1).unwrap();
    sim.step();
    sim.set("i_clr", 0).unwrap();
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 0);
}

#[test]
fn comparator_two_input() {
    let nl = single_cluster(
        ClusterCfg::Comparator {
            width: 8,
            index_width: 4,
            mode: CompMode::Min,
        },
        &[("a", 8), ("b", 8)],
        &[("y", 8), ("which", 1)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("i_a", 9).unwrap();
    sim.set("i_b", 4).unwrap();
    sim.step();
    assert_eq!(sim.get("o_y").unwrap(), 4);
    assert_eq!(sim.get("o_which").unwrap(), 1);
}

#[test]
fn comparator_stream_argmin_tracks_index() {
    let nl = single_cluster(
        ClusterCfg::Comparator {
            width: 16,
            index_width: 8,
            mode: CompMode::StreamMin,
        },
        &[("x", 16), ("idx", 8), ("en", 1), ("clr", 1)],
        &[("best", 16), ("best_idx", 8)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("i_en", 1).unwrap();
    let sads = [900u64, 450, 700, 450, 30, 999];
    for (i, s) in sads.iter().enumerate() {
        sim.set("i_x", *s).unwrap();
        sim.set("i_idx", i as u64).unwrap();
        sim.step();
    }
    sim.step(); // propagate registered outputs
    assert_eq!(sim.get("o_best").unwrap(), 30);
    assert_eq!(sim.get("o_best_idx").unwrap(), 4);
}

#[test]
fn serial_reg_emits_lsb_first_then_sign_extends() {
    let nl = single_cluster(
        ClusterCfg::AddShift(AddShiftCfg::SerialReg { width: 4 }),
        &[("d", 4), ("load", 1), ("en", 1)],
        &[("q", 1)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    // Load -3 = 0b1101.
    sim.set("i_d", from_signed(-3, 4)).unwrap();
    sim.set("i_load", 1).unwrap();
    sim.set("i_en", 0).unwrap();
    sim.step();
    sim.set("i_load", 0).unwrap();
    sim.set("i_en", 1).unwrap();
    let mut bits = Vec::new();
    for _ in 0..6 {
        sim.step();
        bits.push(sim.get("o_q").unwrap());
    }
    // Wait: output BEFORE each tick reflects current pos; first step above
    // already emitted bit 0 after the load cycle.
    assert_eq!(bits, vec![1, 0, 1, 1, 1, 1], "LSB first, then sign bits");
}

fn serial_addsub_netlist(sub: bool) -> Netlist {
    let mut nl = Netlist::new("ser");
    let a = nl.input("a", 1).unwrap();
    let b = nl.input("b", 1).unwrap();
    let clr = nl.input("clr", 1).unwrap();
    let cfg = if sub {
        AddShiftCfg::Sub {
            width: 1,
            serial: true,
        }
    } else {
        AddShiftCfg::Add {
            width: 1,
            serial: true,
        }
    };
    let c = nl.cluster("c", ClusterCfg::AddShift(cfg)).unwrap();
    let y = nl.output("y", 1).unwrap();
    nl.connect((a, "out"), (c, "a")).unwrap();
    nl.connect((b, "out"), (c, "b")).unwrap();
    nl.connect((clr, "out"), (c, "clr")).unwrap();
    nl.connect((c, "y"), (y, "in")).unwrap();
    nl
}

fn run_serial_addsub(sub: bool, a: i64, b: i64, width: u8, stream_len: u8) -> i64 {
    let nl = serial_addsub_netlist(sub);
    let mut sim = Simulator::new(&nl).unwrap();
    // Reset carry.
    sim.set("clr", 1).unwrap();
    sim.step();
    sim.set("clr", 0).unwrap();
    let ra = from_signed(a, width);
    let rb = from_signed(b, width);
    let mut result = 0u64;
    for t in 0..stream_len {
        let bit = |raw: u64| (raw >> t.min(width - 1)) & 1; // sign extension
        sim.set("a", bit(ra)).unwrap();
        sim.set("b", bit(rb)).unwrap();
        sim.step();
        result |= sim.get("y").unwrap() << t;
    }
    to_signed(result, stream_len)
}

#[test]
fn serial_adder_small_cases() {
    assert_eq!(run_serial_addsub(false, 3, 5, 8, 10), 8);
    assert_eq!(run_serial_addsub(false, -3, 5, 8, 10), 2);
    assert_eq!(run_serial_addsub(false, -100, -27, 8, 10), -127);
    assert_eq!(run_serial_addsub(true, 3, 5, 8, 10), -2);
    assert_eq!(run_serial_addsub(true, -100, 27, 8, 10), -127);
}

proptest! {
    #[test]
    fn prop_serial_adder_matches_wide_sum(a in -2000i64..2000, b in -2000i64..2000) {
        // 12-bit operands streamed for 14 cycles: result exact in 14 bits.
        prop_assert_eq!(run_serial_addsub(false, a, b, 12, 14), a + b);
    }

    #[test]
    fn prop_serial_subtracter_matches_wide_diff(a in -2000i64..2000, b in -2000i64..2000) {
        prop_assert_eq!(run_serial_addsub(true, a, b, 12, 14), a - b);
    }
}

/// Builds the canonical 2-input DA unit: two serial registers addressing a
/// 4-word ROM feeding a shift-accumulator. This is exactly the "CORDIC
/// rotator" primitive of §3.3 (one output lane of it).
fn da_unit(c0: i64, c1: i64, rom_width: u8, acc_width: u8) -> Netlist {
    let mut nl = Netlist::new("da2");
    let x0 = nl.input("x0", 8).unwrap();
    let x1 = nl.input("x1", 8).unwrap();
    let load = nl.input("load", 1).unwrap();
    let en = nl.input("en", 1).unwrap();
    let sub = nl.input("sub", 1).unwrap();
    let acc_en = nl.input("acc_en", 1).unwrap();
    let clr = nl.input("clr", 1).unwrap();

    let sr0 = nl
        .cluster(
            "sr0",
            ClusterCfg::AddShift(AddShiftCfg::SerialReg { width: 8 }),
        )
        .unwrap();
    let sr1 = nl
        .cluster(
            "sr1",
            ClusterCfg::AddShift(AddShiftCfg::SerialReg { width: 8 }),
        )
        .unwrap();
    nl.connect((x0, "out"), (sr0, "d")).unwrap();
    nl.connect((x1, "out"), (sr1, "d")).unwrap();
    for sr in [sr0, sr1] {
        nl.connect((load, "out"), (sr, "load")).unwrap();
        nl.connect((en, "out"), (sr, "en")).unwrap();
    }
    let contents: Vec<u64> = (0..4u64)
        .map(|a| {
            let v = c0 * ((a & 1) as i64) + c1 * (((a >> 1) & 1) as i64);
            from_signed(v, rom_width)
        })
        .collect();
    let rom = nl
        .cluster(
            "rom",
            ClusterCfg::Memory {
                words: 4,
                width: rom_width,
                contents,
            },
        )
        .unwrap();
    let addr = nl.concat("addr", &[(sr0, "q"), (sr1, "q")]).unwrap();
    nl.connect((addr, "out"), (rom, "addr")).unwrap();
    let acc = nl
        .cluster(
            "acc",
            ClusterCfg::AddShift(AddShiftCfg::ShiftAcc {
                acc_width,
                data_width: rom_width,
            }),
        )
        .unwrap();
    nl.connect((rom, "dout"), (acc, "d")).unwrap();
    nl.connect((acc_en, "out"), (acc, "en")).unwrap();
    nl.connect((sub, "out"), (acc, "sub")).unwrap();
    nl.connect((clr, "out"), (acc, "clr")).unwrap();
    let y = nl.output("y", acc_width).unwrap();
    nl.connect((acc, "y"), (y, "in")).unwrap();
    nl
}

fn run_da_unit(nl: &Netlist, x0: i64, x1: i64, bits: u8) -> i64 {
    let mut sim = Simulator::new(nl).unwrap();
    sim.set_signed("x0", x0).unwrap();
    sim.set_signed("x1", x1).unwrap();
    // Cycle 0: load serial registers, clear accumulator.
    sim.set("load", 1).unwrap();
    sim.set("clr", 1).unwrap();
    sim.set("en", 0).unwrap();
    sim.set("acc_en", 0).unwrap();
    sim.step();
    sim.set("load", 0).unwrap();
    sim.set("clr", 0).unwrap();
    sim.set("en", 1).unwrap();
    sim.set("acc_en", 1).unwrap();
    // Cycles 1..=bits: accumulate, subtracting on the sign-bit cycle.
    for t in 0..bits {
        sim.set("sub", u64::from(t == bits - 1)).unwrap();
        sim.step();
    }
    sim.set("acc_en", 0).unwrap();
    sim.set("en", 0).unwrap();
    sim.step();
    sim.get_signed("y").unwrap()
}

#[test]
fn da_unit_computes_linear_combination_exactly() {
    // acc_width - data_width = 16 - 8 = 8 = stream length -> exact result.
    let nl = da_unit(3, -5, 8, 16);
    for (x0, x1) in [
        (0i64, 0i64),
        (1, 0),
        (0, 1),
        (100, -100),
        (-128, 127),
        (57, 33),
    ] {
        let y = run_da_unit(&nl, x0, x1, 8);
        assert_eq!(y, 3 * x0 - 5 * x1, "x0={x0} x1={x1}");
    }
}

proptest! {
    #[test]
    fn prop_da_unit_matches_dot_product(x0 in -128i64..=127, x1 in -128i64..=127) {
        let nl = da_unit(7, 11, 16, 24);
        let y = run_da_unit(&nl, x0, x1, 8);
        prop_assert_eq!(y, 7 * x0 + 11 * x1);
    }
}

#[test]
fn shift_acc_serial_output_chains() {
    // After accumulation the shift-accumulator can stream its result out
    // serially (sh/qs) — the mechanism that lets DA stages cascade.
    let nl = da_unit(1, 0, 8, 16);
    // Reuse the netlist but read qs via y after manual shifting is not
    // exposed here; instead check y halves under sh pulses.
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set_signed("x0", 64).unwrap();
    sim.set_signed("x1", 0).unwrap();
    sim.set("load", 1).unwrap();
    sim.set("clr", 1).unwrap();
    sim.step();
    sim.set("load", 0).unwrap();
    sim.set("clr", 0).unwrap();
    sim.set("en", 1).unwrap();
    sim.set("acc_en", 1).unwrap();
    for t in 0..8 {
        sim.set("sub", u64::from(t == 7)).unwrap();
        sim.step();
    }
    sim.set("acc_en", 0).unwrap();
    sim.step();
    assert_eq!(sim.get_signed("y").unwrap(), 64);
}

#[test]
fn memory_lookup() {
    let contents: Vec<u64> = (0..16).map(|i| (i * 3) as u64).collect();
    let nl = single_cluster(
        ClusterCfg::Memory {
            words: 16,
            width: 8,
            contents,
        },
        &[("addr", 4)],
        &[("dout", 8)],
    );
    let mut sim = Simulator::new(&nl).unwrap();
    for a in 0..16u64 {
        sim.set("i_addr", a).unwrap();
        sim.step();
        assert_eq!(sim.get("o_dout").unwrap(), a * 3);
    }
}

#[test]
fn activity_counts_toggles_deterministically() {
    let nl = single_cluster(
        ClusterCfg::AbsDiff {
            width: 8,
            mode: AbsDiffMode::AbsDiff,
        },
        &[("a", 8), ("b", 8)],
        &[("y", 8)],
    );
    let run = || {
        let mut sim = Simulator::new(&nl).unwrap();
        for i in 0..32u64 {
            sim.set("i_a", i * 5 % 256).unwrap();
            sim.set("i_b", i * 11 % 256).unwrap();
            sim.step();
        }
        sim.activity().total_net_toggles()
    };
    let t1 = run();
    let t2 = run();
    assert_eq!(t1, t2);
    assert!(t1 > 0);
}

#[test]
fn constants_drive_steady_values() {
    let mut nl = Netlist::new("c");
    let k = nl.constant("k", 0x2A, 8).unwrap();
    let a = nl.input("a", 8).unwrap();
    let ad = nl
        .cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::Sub,
            },
        )
        .unwrap();
    let y = nl.output("y", 8).unwrap();
    nl.connect((a, "out"), (ad, "a")).unwrap();
    nl.connect((k, "out"), (ad, "b")).unwrap();
    nl.connect((ad, "y"), (y, "in")).unwrap();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("a", 0x30).unwrap();
    sim.step();
    assert_eq!(sim.get("y").unwrap(), 6);
}

#[test]
fn slice_extracts_fields() {
    let mut nl = Netlist::new("s");
    let a = nl.input("a", 8).unwrap();
    let hi = nl.slice("hi", (a, "out"), 4, 4).unwrap();
    let y = nl.output("y", 4).unwrap();
    nl.connect((hi, "out"), (y, "in")).unwrap();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set("a", 0xA7).unwrap();
    sim.step();
    assert_eq!(sim.get("y").unwrap(), 0xA);
}
