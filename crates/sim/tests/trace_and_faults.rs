//! Waveform capture and stuck-at fault-injection tests.

use dsra_core::prelude::*;
use dsra_sim::{Simulator, StuckFault};

fn sad_cell() -> Netlist {
    let mut nl = Netlist::new("sad");
    let a = nl.input("a", 8).unwrap();
    let b = nl.input("b", 8).unwrap();
    let ad = nl
        .cluster(
            "ad",
            ClusterCfg::AbsDiff {
                width: 8,
                mode: AbsDiffMode::AbsDiff,
            },
        )
        .unwrap();
    let acc = nl
        .cluster(
            "acc",
            ClusterCfg::AddAcc {
                width: 16,
                op: AddOp::Add,
                accumulate: true,
            },
        )
        .unwrap();
    let zero = nl.constant("z8", 0, 8).unwrap();
    let wide = nl.concat("w", &[(ad, "y"), (zero, "out")]).unwrap();
    let y = nl.output("y", 16).unwrap();
    nl.connect((a, "out"), (ad, "a")).unwrap();
    nl.connect((b, "out"), (ad, "b")).unwrap();
    nl.connect((wide, "out"), (acc, "a")).unwrap();
    nl.connect((acc, "y"), (y, "in")).unwrap();
    nl
}

#[test]
fn waveform_records_every_cycle() {
    let nl = sad_cell();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.record_waveform();
    for i in 0..5u64 {
        sim.set("a", 10 + i).unwrap();
        sim.set("b", 3).unwrap();
        sim.step();
    }
    let w = sim.waveform().unwrap();
    assert_eq!(w.cycles(), 5);
}

#[test]
fn vcd_export_is_wellformed() {
    let nl = sad_cell();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.record_waveform();
    sim.set("a", 100).unwrap();
    sim.set("b", 55).unwrap();
    sim.run(3);
    let vcd = sim.waveform().unwrap().to_vcd("sad_cell");
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("$var wire 8"));
    assert!(vcd.contains("$var wire 16"));
    assert!(vcd.contains("#0"));
    // Constant nets emit exactly one change.
    let changes = vcd.lines().filter(|l| l.starts_with('b')).count();
    assert!(changes > 0);
}

#[test]
fn stuck_at_fault_corrupts_the_output_observably() {
    let nl = sad_cell();
    let ad = nl.node_by_name("ad").unwrap();
    let ad_y = nl
        .net_of(dsra_core::netlist::PortRef { node: ad, port: 2 })
        .expect("ad.y is routed");

    let run = |fault: Option<StuckFault>| -> u64 {
        let mut sim = Simulator::new(&nl).unwrap();
        if let Some(f) = fault {
            sim.inject_fault(f);
        }
        sim.set("a", 0x40).unwrap();
        sim.set("b", 0x41).unwrap(); // |diff| = 1 -> LSB exercised
        sim.run(4);
        sim.get("y").unwrap()
    };
    let healthy = run(None);
    let faulty = run(Some(StuckFault {
        net: ad_y,
        bit: 0,
        stuck_high: false,
    }));
    assert_ne!(healthy, faulty, "stuck-at-0 on the LSB must be observable");
    // Registered accumulator: after run(4) the visible value reflects three
    // accumulation edges (Moore output, one-cycle visibility).
    assert_eq!(healthy, 3);
    assert_eq!(faulty, 0); // LSB stuck low kills the difference
}

#[test]
fn fault_on_masked_bit_is_undetectable() {
    let nl = sad_cell();
    let ad = nl.node_by_name("ad").unwrap();
    let ad_y = nl
        .net_of(dsra_core::netlist::PortRef { node: ad, port: 2 })
        .unwrap();
    let run = |fault: Option<StuckFault>| -> u64 {
        let mut sim = Simulator::new(&nl).unwrap();
        if let Some(f) = fault {
            sim.inject_fault(f);
        }
        sim.set("a", 0x81).unwrap();
        sim.set("b", 0x01).unwrap(); // |diff| = 0x80: bit 7 set
        sim.run(2);
        sim.get("y").unwrap()
    };
    let healthy = run(None);
    // Stuck-HIGH on a bit that is already high: silent.
    let faulty = run(Some(StuckFault {
        net: ad_y,
        bit: 7,
        stuck_high: true,
    }));
    assert_eq!(healthy, faulty);
}

#[test]
fn clearing_faults_restores_behaviour() {
    let nl = sad_cell();
    let ad = nl.node_by_name("ad").unwrap();
    let ad_y = nl
        .net_of(dsra_core::netlist::PortRef { node: ad, port: 2 })
        .unwrap();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.inject_fault(StuckFault {
        net: ad_y,
        bit: 0,
        stuck_high: true,
    });
    sim.clear_faults();
    sim.set("a", 8).unwrap();
    sim.set("b", 8).unwrap();
    sim.run(3);
    assert_eq!(sim.get("y").unwrap(), 0, "no fault -> zero SAD");
}

#[test]
fn dct_fault_campaign_detects_most_rom_faults() {
    // A miniature testability study (ATPG-style): stuck-at faults on a DCT
    // ROM output net, detected if ANY of a small vector set exposes them.
    // Coverage is input-dependent — a stuck-high bit that every accessed
    // word already sets is silent for that vector — hence multiple vectors.
    use dsra_dct::{BasicDa, DaParams, DctImpl};
    let imp = BasicDa::new(DaParams::precise()).unwrap();
    let nl = imp.netlist();
    let rom0 = nl.node_by_name("lane0_rom").unwrap();
    let dout_port = nl.node(rom0).port_index("dout").unwrap();
    let net = nl
        .net_of(dsra_core::netlist::PortRef {
            node: rom0,
            port: dout_port,
        })
        .unwrap();
    // Address-diverse vectors (distinct bit patterns per input) exercise
    // many ROM words; the DC and impulse vectors deliberately exercise few.
    let vectors: [[i64; 8]; 6] = [
        [100, -50, 25, -12, 6, -3, 1, 0],
        [2047; 8],
        [-2048, 2047, -2048, 2047, -2048, 2047, -2048, 2047],
        [1, 0, 0, 0, 0, 0, 0, 0],
        [1021, -733, 587, -401, 311, -239, 181, -127],
        [1365, -1366, 819, -820, 585, -586, 437, -438],
    ];

    let run_y0 = |fault: Option<StuckFault>, x: &[i64; 8]| -> f64 {
        let mut sim = Simulator::new(nl).unwrap();
        if let Some(f) = fault {
            sim.inject_fault(f);
        }
        for (i, &v) in x.iter().enumerate() {
            sim.set_signed(&format!("x{i}"), v).unwrap();
        }
        sim.set("ctl_load", 1).unwrap();
        sim.set("ctl_clr", 1).unwrap();
        sim.step();
        sim.set("ctl_load", 0).unwrap();
        sim.set("ctl_clr", 0).unwrap();
        sim.set("ctl_sren", 1).unwrap();
        sim.set("ctl_accen", 1).unwrap();
        for t in 0..12 {
            sim.set("ctl_sub", u64::from(t == 11)).unwrap();
            sim.step();
        }
        sim.set("ctl_sren", 0).unwrap();
        sim.set("ctl_accen", 0).unwrap();
        sim.step();
        imp.params().decode_acc(sim.get("y0").unwrap(), 12)
    };
    let healthy: Vec<f64> = vectors.iter().map(|x| run_y0(None, x)).collect();

    let mut detected = 0;
    let mut total = 0;
    for bit in 0..16u8 {
        for stuck_high in [false, true] {
            total += 1;
            let fault = StuckFault {
                net,
                bit,
                stuck_high,
            };
            let exposed = vectors
                .iter()
                .zip(&healthy)
                .any(|(x, h)| (run_y0(Some(fault), x) - h).abs() > 0.5);
            if exposed {
                detected += 1;
            }
        }
    }
    // Single-observation-point coverage on a value-sparse lane: around half
    // of the 32 single-bit faults are observable — and crucially, the
    // coverage must not silently collapse.
    assert!(
        detected * 2 >= total,
        "fault coverage too low: {detected}/{total}"
    );
    assert!(
        detected < total,
        "some faults must remain masked (value-sparse ROM): {detected}/{total}"
    );
}
