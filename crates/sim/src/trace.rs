//! Waveform capture: per-cycle net snapshots and VCD export.
//!
//! Debugging a bit-serial DA pipeline without waveforms is miserable; this
//! gives the simulator the standard EDA answer. Snapshots are taken at the
//! end of every cycle (post-settle values, the ones registers latched).

use std::fmt::Write as _;

use dsra_core::netlist::Netlist;

/// A recorded waveform: one row of net values per simulated cycle.
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    names: Vec<(String, u8)>,
    rows: Vec<Vec<u64>>,
}

impl Waveform {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        Waveform {
            names: netlist
                .nets()
                .iter()
                .map(|n| (n.name.clone(), n.width))
                .collect(),
            rows: Vec::new(),
        }
    }

    pub(crate) fn capture(&mut self, values: &[u64]) {
        self.rows.push(values.to_vec());
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.rows.len()
    }

    /// Value of net `index` at `cycle`.
    pub fn value(&self, cycle: usize, index: usize) -> Option<u64> {
        self.rows.get(cycle).and_then(|r| r.get(index)).copied()
    }

    /// Renders the waveform as a VCD document (IEEE 1364 value-change dump),
    /// loadable by GTKWave and friends.
    pub fn to_vcd(&self, design: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date dsra-sim $end");
        let _ = writeln!(out, "$version dsra-sim 0.1 $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(design));
        for (i, (name, width)) in self.names.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                width,
                ident(i),
                sanitize(name)
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last: Vec<Option<u64>> = vec![None; self.names.len()];
        for (t, row) in self.rows.iter().enumerate() {
            let mut emitted_time = false;
            for (i, &v) in row.iter().enumerate() {
                if last[i] != Some(v) {
                    if !emitted_time {
                        let _ = writeln!(out, "#{t}");
                        emitted_time = true;
                    }
                    let width = self.names[i].1;
                    if width == 1 {
                        let _ = writeln!(out, "{}{}", v & 1, ident(i));
                    } else {
                        let _ = writeln!(out, "b{:b} {}", v, ident(i));
                    }
                    last[i] = Some(v);
                }
            }
        }
        out
    }
}

/// VCD identifier for variable `i` (printable-ASCII base-94 encoding).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "collision at {i}");
        }
    }

    #[test]
    fn sanitize_strips_dots() {
        assert_eq!(sanitize("sr0.q"), "sr0_q");
    }
}
