//! The cycle-accurate simulation engine.
//!
//! Two-phase execution per clock: all combinational logic settles in
//! levelized order, then every sequential cluster ticks. Values travel as raw
//! two's-complement words ([`dsra_core::fixed`]).

use std::collections::HashMap;

use dsra_core::cluster::{AbsDiffMode, AddOp, AddShiftCfg, ClusterCfg, CompMode};
use dsra_core::error::{CoreError, Result};
use dsra_core::fixed::{from_signed, mask, to_signed};
use dsra_core::netlist::{Netlist, NodeId, NodeKind, PortDir, PortRef};

use crate::activity::Activity;

/// Sequential state of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    None,
    /// RegMux output register.
    Reg {
        q: u64,
    },
    /// AddAcc accumulator.
    Acc {
        acc: u64,
    },
    /// Bit-serial adder/subtracter carry.
    Carry {
        c: u8,
    },
    /// Parallel-to-serial shift register.
    SerialReg {
        reg: u64,
        pos: u8,
    },
    /// DA shift-accumulator.
    ShiftAcc {
        acc: u64,
    },
    /// Streaming comparator.
    Comp {
        best: u64,
        best_idx: u64,
        valid: bool,
    },
}

/// Cycle-accurate simulator for a checked netlist.
///
/// ```
/// use dsra_core::prelude::*;
/// use dsra_sim::Simulator;
///
/// # fn main() -> std::result::Result<(), CoreError> {
/// let mut nl = Netlist::new("abs");
/// let a = nl.input("a", 8)?;
/// let b = nl.input("b", 8)?;
/// let ad = nl.cluster("ad", ClusterCfg::AbsDiff {
///     width: 8,
///     mode: AbsDiffMode::AbsDiff,
/// })?;
/// let y = nl.output("y", 8)?;
/// nl.connect((a, "out"), (ad, "a"))?;
/// nl.connect((b, "out"), (ad, "b"))?;
/// nl.connect((ad, "y"), (y, "in"))?;
///
/// let mut sim = Simulator::new(&nl)?;
/// sim.set("a", 200)?;
/// sim.set("b", 55)?;
/// sim.step();
/// assert_eq!(sim.get("y")?, 145);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    order: Vec<NodeId>,
    /// Current value per net.
    net_values: Vec<u64>,
    /// Previous-cycle value per net (for toggle counting).
    prev_values: Vec<u64>,
    states: Vec<NodeState>,
    external: Vec<u64>,
    input_ids: HashMap<String, NodeId>,
    output_ids: HashMap<String, NodeId>,
    activity: Activity,
    cycle: u64,
    waveform: Option<crate::trace::Waveform>,
    faults: Vec<StuckFault>,
}

/// A stuck-at fault injected on one bit of a net (testability experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckFault {
    /// Faulted net.
    pub net: dsra_core::netlist::NetId,
    /// Bit position within the bus.
    pub bit: u8,
    /// Stuck value.
    pub stuck_high: bool,
}

impl<'n> Simulator<'n> {
    /// Builds a simulator, validating the netlist (`check()`).
    ///
    /// # Errors
    /// Propagates netlist validation failures (unconnected mandatory inputs,
    /// combinational loops).
    pub fn new(netlist: &'n Netlist) -> Result<Self> {
        let order = netlist.check()?;
        let states = netlist
            .nodes()
            .iter()
            .map(|n| initial_state(&n.kind))
            .collect();
        let input_ids = netlist
            .input_nodes()
            .into_iter()
            .map(|id| (netlist.node(id).name.clone(), id))
            .collect();
        let output_ids = netlist
            .output_nodes()
            .into_iter()
            .map(|id| (netlist.node(id).name.clone(), id))
            .collect();
        Ok(Simulator {
            netlist,
            order,
            net_values: vec![0; netlist.nets().len()],
            prev_values: vec![0; netlist.nets().len()],
            states,
            external: vec![0; netlist.nodes().len()],
            input_ids,
            output_ids,
            activity: Activity::new(netlist.nets().len(), netlist.nodes().len()),
            cycle: 0,
            waveform: None,
            faults: Vec::new(),
        })
    }

    /// Drives a top-level input (raw bus word, masked to the input width).
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no input has this name.
    pub fn set(&mut self, input: &str, raw: u64) -> Result<()> {
        let id = *self
            .input_ids
            .get(input)
            .ok_or_else(|| CoreError::UnknownNode(input.to_owned()))?;
        let width = match self.netlist.node(id).kind {
            NodeKind::Input { width } => width,
            _ => unreachable!("input_ids only holds inputs"),
        };
        self.external[id.0 as usize] = mask(raw, width);
        Ok(())
    }

    /// Drives a top-level input with a signed value.
    ///
    /// # Errors
    /// Same as [`Simulator::set`].
    pub fn set_signed(&mut self, input: &str, value: i64) -> Result<()> {
        let id = *self
            .input_ids
            .get(input)
            .ok_or_else(|| CoreError::UnknownNode(input.to_owned()))?;
        let width = match self.netlist.node(id).kind {
            NodeKind::Input { width } => width,
            _ => unreachable!(),
        };
        self.external[id.0 as usize] = from_signed(value, width);
        Ok(())
    }

    /// Reads a top-level output (raw bus word) after the last `step`.
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no output has this name.
    pub fn get(&self, output: &str) -> Result<u64> {
        let id = *self
            .output_ids
            .get(output)
            .ok_or_else(|| CoreError::UnknownNode(output.to_owned()))?;
        Ok(self.output_value(id))
    }

    /// Reads a top-level output as a signed value.
    ///
    /// # Errors
    /// Same as [`Simulator::get`].
    pub fn get_signed(&self, output: &str) -> Result<i64> {
        let id = *self
            .output_ids
            .get(output)
            .ok_or_else(|| CoreError::UnknownNode(output.to_owned()))?;
        let width = match self.netlist.node(id).kind {
            NodeKind::Output { width } => width,
            _ => unreachable!(),
        };
        Ok(to_signed(self.output_value(id), width))
    }

    fn output_value(&self, id: NodeId) -> u64 {
        let pref = PortRef { node: id, port: 0 };
        self.netlist
            .net_of(pref)
            .map_or(0, |n| self.net_values[n.0 as usize])
    }

    /// Executes one clock cycle: combinational settle, activity recording,
    /// sequential tick.
    pub fn step(&mut self) {
        self.settle();
        for i in 0..self.net_values.len() {
            self.activity
                .record_net(i, self.prev_values[i], self.net_values[i]);
        }
        self.prev_values.copy_from_slice(&self.net_values);
        if let Some(w) = &mut self.waveform {
            w.capture(&self.net_values);
        }
        self.tick();
        self.activity.end_cycle();
        self.cycle += 1;
    }

    /// Starts recording a waveform (one snapshot per cycle from now on).
    pub fn record_waveform(&mut self) {
        self.waveform = Some(crate::trace::Waveform::new(self.netlist));
    }

    /// The recorded waveform, if recording was enabled.
    pub fn waveform(&self) -> Option<&crate::trace::Waveform> {
        self.waveform.as_ref()
    }

    /// Injects a stuck-at fault on one bit of a net. The fault applies from
    /// the next evaluation onward; several faults may be active at once.
    pub fn inject_fault(&mut self, fault: StuckFault) {
        self.faults.push(fault);
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Cycles executed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated switching activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Combinational propagation without advancing the clock (useful in
    /// tests to observe settled values).
    ///
    /// Phase A publishes every *source* value — external inputs, constants
    /// and the Moore outputs of sequential clusters (which depend only on
    /// state). Phase B then evaluates combinational nodes in levelized
    /// order, so a single pass settles the whole design.
    pub fn settle(&mut self) {
        for idx in 0..self.netlist.nodes().len() {
            let id = NodeId(idx as u32);
            if !self.netlist.node(id).kind.comb_output() {
                let outputs = self.eval_node(id);
                self.write_outputs(id, &outputs);
            }
        }
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            if self.netlist.node(id).kind.comb_output() {
                let outputs = self.eval_node(id);
                self.write_outputs(id, &outputs);
            }
        }
    }

    fn input_value(&self, id: NodeId, port: u16) -> u64 {
        let pref = PortRef { node: id, port };
        match self.netlist.net_of(pref) {
            Some(net) => self.net_values[net.0 as usize],
            None => self.netlist.node(id).ports[port as usize]
                .default
                .unwrap_or(0),
        }
    }

    /// Gathers all input-port values of a node (by port order).
    fn gather(&self, id: NodeId) -> Vec<u64> {
        let node = self.netlist.node(id);
        node.ports
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if p.dir == PortDir::In {
                    self.input_value(id, pi as u16)
                } else {
                    0
                }
            })
            .collect()
    }

    fn write_outputs(&mut self, id: NodeId, outputs: &[(u16, u64)]) {
        for &(port, value) in outputs {
            let pref = PortRef { node: id, port };
            if let Some(net) = self.netlist.net_of(pref) {
                // Only nets driven by this port.
                if self.netlist.net(net).driver == pref {
                    let mut v = value;
                    for f in &self.faults {
                        if f.net == net {
                            if f.stuck_high {
                                v |= 1u64 << f.bit;
                            } else {
                                v &= !(1u64 << f.bit);
                            }
                        }
                    }
                    self.net_values[net.0 as usize] = v;
                }
            }
        }
    }

    /// Computes a node's output port values for the current cycle.
    fn eval_node(&mut self, id: NodeId) -> Vec<(u16, u64)> {
        let node = self.netlist.node(id);
        let ins = self.gather(id);
        let port = |name: &str| node.port_index(name).expect("port exists") as usize;
        let state = &self.states[id.0 as usize];
        match &node.kind {
            NodeKind::Input { width } => {
                vec![(0, mask(self.external[id.0 as usize], *width))]
            }
            NodeKind::Output { .. } => vec![],
            NodeKind::Const { value, width } => vec![(0, mask(*value, *width))],
            NodeKind::Concat { parts } => {
                let mut out = 0u64;
                let mut shift = 0u32;
                for (i, w) in parts.iter().enumerate() {
                    out |= mask(ins[i], *w) << shift;
                    shift += u32::from(*w);
                }
                vec![(parts.len() as u16, out)]
            }
            NodeKind::Slice { offset, width, .. } => {
                vec![(1, mask(ins[0] >> offset, *width))]
            }
            NodeKind::SignExtend { in_width, width } => {
                vec![(1, from_signed(to_signed(ins[0], *in_width), *width))]
            }
            NodeKind::Cluster(cfg) => match cfg {
                ClusterCfg::RegMux {
                    width, registered, ..
                } => {
                    if *registered {
                        match state {
                            NodeState::Reg { q } => vec![(port("y") as u16, mask(*q, *width))],
                            _ => unreachable!(),
                        }
                    } else {
                        let a = ins[port("a")];
                        let b = ins[port("b")];
                        let sel = ins[port("sel")] & 1;
                        vec![(port("y") as u16, if sel == 1 { b } else { a })]
                    }
                }
                ClusterCfg::AbsDiff { width, mode } => {
                    let a = ins[port("a")];
                    let b = ins[port("b")];
                    let y = match mode {
                        AbsDiffMode::Add => mask(a.wrapping_add(b), *width),
                        AbsDiffMode::Sub => mask(a.wrapping_sub(b), *width),
                        // Pixels are unsigned: |a - b| = max - min.
                        AbsDiffMode::AbsDiff => mask(a.max(b) - a.min(b), *width),
                    };
                    vec![(port("y") as u16, y)]
                }
                ClusterCfg::AddAcc {
                    width,
                    op,
                    accumulate,
                } => {
                    if *accumulate {
                        match state {
                            NodeState::Acc { acc } => {
                                vec![(port("y") as u16, mask(*acc, *width))]
                            }
                            _ => unreachable!(),
                        }
                    } else {
                        let a = ins[port("a")];
                        let b = ins[port("b")];
                        let y = match op {
                            AddOp::Add => mask(a.wrapping_add(b), *width),
                            AddOp::Sub => mask(a.wrapping_sub(b), *width),
                        };
                        vec![(port("y") as u16, y)]
                    }
                }
                ClusterCfg::Comparator { mode, .. } => match mode {
                    CompMode::Min | CompMode::Max => {
                        let a = ins[port("a")];
                        let b = ins[port("b")];
                        // SAD metrics are unsigned.
                        let (y, which) = match mode {
                            CompMode::Min => (a.min(b), u64::from(a > b)),
                            _ => (a.max(b), u64::from(a < b)),
                        };
                        vec![(port("y") as u16, y), (port("which") as u16, which)]
                    }
                    CompMode::StreamMin | CompMode::StreamMax => match state {
                        NodeState::Comp { best, best_idx, .. } => vec![
                            (port("best") as u16, *best),
                            (port("best_idx") as u16, *best_idx),
                        ],
                        _ => unreachable!(),
                    },
                },
                ClusterCfg::AddShift(as_cfg) => match as_cfg {
                    AddShiftCfg::Add { width, serial } | AddShiftCfg::Sub { width, serial } => {
                        let is_sub = matches!(as_cfg, AddShiftCfg::Sub { .. });
                        if *serial {
                            let a = ins[port("a")] & 1;
                            let b0 = ins[port("b")] & 1;
                            let b = if is_sub { b0 ^ 1 } else { b0 };
                            let c = match state {
                                NodeState::Carry { c } => u64::from(*c),
                                _ => unreachable!(),
                            };
                            vec![(port("y") as u16, a ^ b ^ c)]
                        } else {
                            let a = ins[port("a")];
                            let b = ins[port("b")];
                            let y = if is_sub {
                                mask(a.wrapping_sub(b), *width)
                            } else {
                                mask(a.wrapping_add(b), *width)
                            };
                            vec![(port("y") as u16, y)]
                        }
                    }
                    AddShiftCfg::SerialReg { width } => match state {
                        NodeState::SerialReg { reg, pos } => {
                            let bit_idx = (*pos).min(width - 1);
                            vec![(port("q") as u16, (reg >> bit_idx) & 1)]
                        }
                        _ => unreachable!(),
                    },
                    AddShiftCfg::ShiftAcc { acc_width, .. } => match state {
                        NodeState::ShiftAcc { acc } => vec![
                            (port("y") as u16, mask(*acc, *acc_width)),
                            (port("qs") as u16, acc & 1),
                        ],
                        _ => unreachable!(),
                    },
                },
                ClusterCfg::Memory {
                    words,
                    width,
                    contents,
                } => {
                    let addr = (ins[port("addr")] as usize) % usize::from(*words);
                    vec![(port("dout") as u16, mask(contents[addr], *width))]
                }
            },
        }
    }

    /// Clock edge: update every sequential node from the settled net values.
    fn tick(&mut self) {
        for idx in 0..self.netlist.nodes().len() {
            let id = NodeId(idx as u32);
            let node = self.netlist.node(id);
            if !node.kind.sequential() {
                continue;
            }
            let ins = self.gather(id);
            let port = |name: &str| node.port_index(name).expect("port exists") as usize;
            let NodeKind::Cluster(cfg) = &node.kind else {
                continue;
            };
            let new_state = match (cfg, &self.states[idx]) {
                (ClusterCfg::RegMux { .. }, NodeState::Reg { q }) => {
                    let en = ins[port("en")] & 1;
                    if en == 1 {
                        let sel = ins[port("sel")] & 1;
                        let d = if sel == 1 {
                            ins[port("b")]
                        } else {
                            ins[port("a")]
                        };
                        NodeState::Reg { q: d }
                    } else {
                        NodeState::Reg { q: *q }
                    }
                }
                (ClusterCfg::AddAcc { width, op, .. }, NodeState::Acc { acc }) => {
                    let clr = ins[port("clr")] & 1;
                    let en = ins[port("en")] & 1;
                    if clr == 1 {
                        NodeState::Acc { acc: 0 }
                    } else if en == 1 {
                        let a = ins[port("a")];
                        let b = ins[port("b")];
                        let term = match op {
                            AddOp::Add => a.wrapping_add(b),
                            AddOp::Sub => a.wrapping_sub(b),
                        };
                        NodeState::Acc {
                            acc: mask(acc.wrapping_add(term), *width),
                        }
                    } else {
                        NodeState::Acc { acc: *acc }
                    }
                }
                (
                    ClusterCfg::Comparator { mode, .. },
                    NodeState::Comp {
                        best,
                        best_idx,
                        valid,
                    },
                ) => {
                    let clr = ins[port("clr")] & 1;
                    let en = ins[port("en")] & 1;
                    if clr == 1 {
                        NodeState::Comp {
                            best: 0,
                            best_idx: 0,
                            valid: false,
                        }
                    } else if en == 1 {
                        let x = ins[port("x")];
                        let idx_in = ins[port("idx")];
                        let better = !valid
                            || match mode {
                                CompMode::StreamMin => x < *best,
                                _ => x > *best,
                            };
                        if better {
                            NodeState::Comp {
                                best: x,
                                best_idx: idx_in,
                                valid: true,
                            }
                        } else {
                            NodeState::Comp {
                                best: *best,
                                best_idx: *best_idx,
                                valid: true,
                            }
                        }
                    } else {
                        NodeState::Comp {
                            best: *best,
                            best_idx: *best_idx,
                            valid: *valid,
                        }
                    }
                }
                (ClusterCfg::AddShift(as_cfg), state) => match (as_cfg, state) {
                    (AddShiftCfg::Add { .. } | AddShiftCfg::Sub { .. }, NodeState::Carry { c }) => {
                        let is_sub = matches!(as_cfg, AddShiftCfg::Sub { .. });
                        let clr = ins[port("clr")] & 1;
                        if clr == 1 {
                            NodeState::Carry {
                                c: u8::from(is_sub),
                            }
                        } else {
                            let a = ins[port("a")] & 1;
                            let b0 = ins[port("b")] & 1;
                            let b = if is_sub { b0 ^ 1 } else { b0 };
                            let cin = u64::from(*c);
                            let cout = (a & b) | (a & cin) | (b & cin);
                            NodeState::Carry { c: cout as u8 }
                        }
                    }
                    (AddShiftCfg::SerialReg { .. }, NodeState::SerialReg { reg, pos }) => {
                        let load = ins[port("load")] & 1;
                        let en = ins[port("en")] & 1;
                        if load == 1 {
                            NodeState::SerialReg {
                                reg: ins[port("d")],
                                pos: 0,
                            }
                        } else if en == 1 {
                            NodeState::SerialReg {
                                reg: *reg,
                                pos: pos.saturating_add(1),
                            }
                        } else {
                            NodeState::SerialReg {
                                reg: *reg,
                                pos: *pos,
                            }
                        }
                    }
                    (
                        AddShiftCfg::ShiftAcc {
                            acc_width,
                            data_width,
                        },
                        NodeState::ShiftAcc { acc },
                    ) => {
                        let clr = ins[port("clr")] & 1;
                        let en = ins[port("en")] & 1;
                        let sh = ins[port("sh")] & 1;
                        if clr == 1 {
                            NodeState::ShiftAcc { acc: 0 }
                        } else if en == 1 {
                            let align = u32::from(acc_width - data_width);
                            let sub = ins[port("sub")] & 1;
                            let sa = to_signed(*acc, *acc_width);
                            let sd = to_signed(ins[port("d")], *data_width);
                            let term = sd << align;
                            let sum = if sub == 1 { sa - term } else { sa + term };
                            NodeState::ShiftAcc {
                                acc: from_signed(sum >> 1, *acc_width),
                            }
                        } else if sh == 1 {
                            let sa = to_signed(*acc, *acc_width);
                            NodeState::ShiftAcc {
                                acc: from_signed(sa >> 1, *acc_width),
                            }
                        } else {
                            NodeState::ShiftAcc { acc: *acc }
                        }
                    }
                    _ => unreachable!("state/config mismatch"),
                },
                _ => unreachable!("state/config mismatch"),
            };
            if new_state != self.states[idx] {
                self.activity.credit_node(idx, 1);
            }
            self.states[idx] = new_state;
        }
    }
}

fn initial_state(kind: &NodeKind) -> NodeState {
    match kind {
        NodeKind::Cluster(cfg) => match cfg {
            ClusterCfg::RegMux {
                registered: true, ..
            } => NodeState::Reg { q: 0 },
            ClusterCfg::AddAcc {
                accumulate: true, ..
            } => NodeState::Acc { acc: 0 },
            ClusterCfg::Comparator {
                mode: CompMode::StreamMin | CompMode::StreamMax,
                ..
            } => NodeState::Comp {
                best: 0,
                best_idx: 0,
                valid: false,
            },
            ClusterCfg::AddShift(cfg) => match cfg {
                AddShiftCfg::Add { serial: true, .. } => NodeState::Carry { c: 0 },
                AddShiftCfg::Sub { serial: true, .. } => NodeState::Carry { c: 1 },
                AddShiftCfg::SerialReg { .. } => NodeState::SerialReg { reg: 0, pos: 0 },
                AddShiftCfg::ShiftAcc { .. } => NodeState::ShiftAcc { acc: 0 },
                _ => NodeState::None,
            },
            _ => NodeState::None,
        },
        _ => NodeState::None,
    }
}
