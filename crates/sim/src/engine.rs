//! The cycle-accurate simulation engine.
//!
//! Two-phase execution per clock: all combinational logic settles in
//! levelized order, then every sequential cluster ticks. Values travel as raw
//! two's-complement words ([`dsra_core::fixed`]).
//!
//! ## The flat execution plan
//!
//! The netlist graph is walked **once**, at [`ExecPlan::compile`] /
//! [`Simulator::new`] time, and lowered into a flat plan: every node becomes
//! one enum-dispatched op with its input ports resolved to net
//! indices (or baked-in defaults), its output ports resolved to the nets
//! they drive, and its memory contents pre-masked. The per-cycle loops then
//! touch only dense `Vec`s — no port-name lookups, no adjacency chasing and
//! **zero heap allocations per simulated cycle** (the old engine allocated a
//! fresh `Vec` per node per cycle in `gather`/`eval_node`).
//!
//! Drivers that rebuild a `Simulator` per block or per search (the DCT
//! `transform` harnesses, the ME engines) compile the plan once at
//! construction and share it via [`Simulator::with_plan`], so the graph walk
//! is paid per *kernel*, not per invocation.

use dsra_core::cluster::{AbsDiffMode, AddOp, AddShiftCfg, ClusterCfg, CompMode};
use dsra_core::error::{CoreError, Result};
use dsra_core::fixed::{from_signed, mask, to_signed};
use dsra_core::netlist::{Netlist, NodeId, NodeKind, PortDir, PortRef};

use crate::activity::Activity;
use crate::prof::{NoopProf, OpClass, OpMix, ProfSink};

/// Sentinel for "no net" in the compiled plan (unconnected optional port or
/// undriven output).
const NO_NET: u32 = u32::MAX;

/// Sequential state of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    None,
    /// RegMux output register.
    Reg {
        q: u64,
    },
    /// AddAcc accumulator.
    Acc {
        acc: u64,
    },
    /// Bit-serial adder/subtracter carry.
    Carry {
        c: u8,
    },
    /// Parallel-to-serial shift register.
    SerialReg {
        reg: u64,
        pos: u8,
    },
    /// DA shift-accumulator.
    ShiftAcc {
        acc: u64,
    },
    /// Streaming comparator.
    Comp {
        best: u64,
        best_idx: u64,
        valid: bool,
    },
}

/// One resolved input port: either a net to read or a baked-in default.
#[derive(Debug, Clone, Copy)]
struct InSlot {
    net: u32,
    default: u64,
}

impl InSlot {
    #[inline]
    fn read(self, nets: &[u64]) -> u64 {
        if self.net == NO_NET {
            self.default
        } else {
            nets[self.net as usize]
        }
    }
}

/// A node lowered to a dispatchable operation with resolved ports. The
/// variant split mirrors [`NodeKind::comb_output`]: `*Out` variants publish
/// Moore state in phase A, the rest settle combinationally in phase B.
#[derive(Debug, Clone, Copy)]
enum EvalOp {
    /// Output node: pure sink, nothing to evaluate.
    Sink,
    /// Top-level input: publishes the externally driven word.
    Input { ext: u32, width: u8, out: u32 },
    /// Constant driver (value pre-masked at compile time).
    Const { value: u64, out: u32 },
    /// Concatenation: parts live in the plan's CSR pool.
    Concat { start: u32, len: u32, out: u32 },
    Slice {
        a: InSlot,
        offset: u8,
        width: u8,
        out: u32,
    },
    SignExtend {
        a: InSlot,
        in_width: u8,
        width: u8,
        out: u32,
    },
    /// Unregistered RegMux.
    Mux {
        a: InSlot,
        b: InSlot,
        sel: InSlot,
        out: u32,
    },
    /// Registered RegMux: publishes the register.
    RegOut { width: u8, out: u32 },
    AbsDiff {
        a: InSlot,
        b: InSlot,
        width: u8,
        mode: AbsDiffMode,
        out: u32,
    },
    /// Combinational add/sub (AddAcc pass-through and parallel AddShift).
    AddSub {
        a: InSlot,
        b: InSlot,
        width: u8,
        sub: bool,
        out: u32,
    },
    /// Accumulating AddAcc: publishes the accumulator.
    AccOut { width: u8, out: u32 },
    /// Two-value min/max comparator.
    CmpMinMax {
        a: InSlot,
        b: InSlot,
        max: bool,
        out_y: u32,
        out_which: u32,
    },
    /// Streaming comparator: publishes best/best_idx state.
    CmpStreamOut { out_best: u32, out_idx: u32 },
    /// Bit-serial adder/subtracter sum bit (carry is state).
    SerialAdd {
        a: InSlot,
        b: InSlot,
        sub: bool,
        out: u32,
    },
    /// Parallel-to-serial register: publishes the current bit.
    SerialRegOut { width: u8, out: u32 },
    /// Shift-accumulator: publishes the accumulator and its serial bit.
    ShiftAccOut {
        acc_width: u8,
        out_y: u32,
        out_qs: u32,
    },
    /// Asynchronous-read memory; contents pre-masked in the plan's pool.
    Memory {
        addr: InSlot,
        mem: u32,
        words: u16,
        out: u32,
    },
}

/// Clock-edge update of one sequential node, with resolved control ports.
#[derive(Debug, Clone, Copy)]
enum TickOp {
    Reg {
        a: InSlot,
        b: InSlot,
        sel: InSlot,
        en: InSlot,
    },
    Acc {
        a: InSlot,
        b: InSlot,
        en: InSlot,
        clr: InSlot,
        width: u8,
        sub: bool,
    },
    Comp {
        x: InSlot,
        idx: InSlot,
        en: InSlot,
        clr: InSlot,
        min: bool,
    },
    Carry {
        a: InSlot,
        b: InSlot,
        clr: InSlot,
        sub: bool,
    },
    SerialReg {
        d: InSlot,
        load: InSlot,
        en: InSlot,
    },
    ShiftAcc {
        d: InSlot,
        en: InSlot,
        clr: InSlot,
        sub: InSlot,
        sh: InSlot,
        acc_width: u8,
        data_width: u8,
    },
}

/// The flat, allocation-free execution plan a checked netlist compiles to.
///
/// Compiling is `O(nodes + ports + nets)` and immutable thereafter, so one
/// plan can back any number of [`Simulator`]s over the same netlist (see
/// [`Simulator::with_plan`]) — kernels that simulate many blocks pay the
/// graph walk once.
#[derive(Debug)]
pub struct ExecPlan {
    nodes: usize,
    nets: usize,
    /// Per-node lowered op (indexed by node id).
    ops: Vec<EvalOp>,
    /// Phase A: source nodes (inputs, constants, Moore outputs of
    /// sequential clusters), ascending node id — identical order to the
    /// graph walk it replaces.
    phase_a: Vec<u32>,
    /// Phase B: combinational nodes in levelized order.
    phase_b: Vec<u32>,
    /// Sequential nodes with their clock-edge ops, ascending node id.
    ticks: Vec<(u32, TickOp)>,
    /// CSR pool of concat parts: (slot, part width, shift).
    concat_parts: Vec<(InSlot, u8, u32)>,
    /// Pre-masked memory contents.
    mems: Vec<Vec<u64>>,
    /// Power-on state per node.
    initial_states: Vec<NodeState>,
}

impl ExecPlan {
    /// Compiles a netlist into its flat execution plan, validating it
    /// (`check()`) along the way.
    ///
    /// # Errors
    /// Propagates netlist validation failures (unconnected mandatory
    /// inputs, combinational loops).
    pub fn compile(netlist: &Netlist) -> Result<Self> {
        let order = netlist.check()?;
        let mut plan = ExecPlan {
            nodes: netlist.nodes().len(),
            nets: netlist.nets().len(),
            ops: Vec::with_capacity(netlist.nodes().len()),
            phase_a: Vec::new(),
            phase_b: Vec::new(),
            ticks: Vec::new(),
            concat_parts: Vec::new(),
            mems: Vec::new(),
            initial_states: netlist
                .nodes()
                .iter()
                .map(|n| initial_state(&n.kind))
                .collect(),
        };
        for (idx, node) in netlist.nodes().iter().enumerate() {
            let id = NodeId(idx as u32);
            let op = plan.lower(netlist, id);
            if !matches!(op, EvalOp::Sink) && !node.kind.comb_output() {
                plan.phase_a.push(idx as u32);
            }
            if node.kind.sequential() {
                let tick = lower_tick(netlist, id);
                plan.ticks.push((idx as u32, tick));
            }
            plan.ops.push(op);
        }
        for id in order {
            if netlist.node(id).kind.comb_output() {
                plan.phase_b.push(id.0);
            }
        }
        Ok(plan)
    }

    /// The plan's static per-cycle op mix: how many ops of each class one
    /// [`Simulator::step`] executes. Every settle evaluates the same
    /// `phase_a`/`phase_b` nodes and every tick updates the same
    /// sequential nodes, so this is exact — a live
    /// [`crate::CountingProf`] over `n` cycles reports precisely
    /// `n ×` these counts. Attribution layers use it to split busy
    /// cycles across op classes without per-cycle counting.
    pub fn op_mix(&self) -> OpMix {
        let mut mix = OpMix::new();
        for &idx in self.phase_a.iter().chain(&self.phase_b) {
            if let Some(class) = op_class(&self.ops[idx as usize]) {
                mix.add(class, 1);
            }
        }
        for &(_, tick) in &self.ticks {
            mix.add(tick_class(&tick), 1);
        }
        mix
    }

    /// Lowers one node, resolving every port it reads or drives.
    fn lower(&mut self, netlist: &Netlist, id: NodeId) -> EvalOp {
        let node = netlist.node(id);
        let slot = |name: &str| in_slot(netlist, id, name);
        let out = |name: &str| out_net(netlist, id, name);
        match &node.kind {
            NodeKind::Input { width } => EvalOp::Input {
                ext: id.0,
                width: *width,
                out: out("out"),
            },
            NodeKind::Output { .. } => EvalOp::Sink,
            NodeKind::Const { value, width } => EvalOp::Const {
                value: mask(*value, *width),
                out: out("out"),
            },
            NodeKind::Concat { parts } => {
                let start = self.concat_parts.len() as u32;
                let mut shift = 0u32;
                for (i, w) in parts.iter().enumerate() {
                    self.concat_parts.push((slot(&format!("in{i}")), *w, shift));
                    shift += u32::from(*w);
                }
                EvalOp::Concat {
                    start,
                    len: parts.len() as u32,
                    out: out("out"),
                }
            }
            NodeKind::Slice { offset, width, .. } => EvalOp::Slice {
                a: slot("in"),
                offset: *offset,
                width: *width,
                out: out("out"),
            },
            NodeKind::SignExtend { in_width, width } => EvalOp::SignExtend {
                a: slot("in"),
                in_width: *in_width,
                width: *width,
                out: out("out"),
            },
            NodeKind::Cluster(cfg) => match cfg {
                ClusterCfg::RegMux {
                    width, registered, ..
                } => {
                    if *registered {
                        EvalOp::RegOut {
                            width: *width,
                            out: out("y"),
                        }
                    } else {
                        EvalOp::Mux {
                            a: slot("a"),
                            b: slot("b"),
                            sel: slot("sel"),
                            out: out("y"),
                        }
                    }
                }
                ClusterCfg::AbsDiff { width, mode } => EvalOp::AbsDiff {
                    a: slot("a"),
                    b: slot("b"),
                    width: *width,
                    mode: *mode,
                    out: out("y"),
                },
                ClusterCfg::AddAcc {
                    width,
                    op,
                    accumulate,
                } => {
                    if *accumulate {
                        EvalOp::AccOut {
                            width: *width,
                            out: out("y"),
                        }
                    } else {
                        EvalOp::AddSub {
                            a: slot("a"),
                            b: slot("b"),
                            width: *width,
                            sub: matches!(op, AddOp::Sub),
                            out: out("y"),
                        }
                    }
                }
                ClusterCfg::Comparator { mode, .. } => match mode {
                    CompMode::Min | CompMode::Max => EvalOp::CmpMinMax {
                        a: slot("a"),
                        b: slot("b"),
                        max: matches!(mode, CompMode::Max),
                        out_y: out("y"),
                        out_which: out("which"),
                    },
                    CompMode::StreamMin | CompMode::StreamMax => EvalOp::CmpStreamOut {
                        out_best: out("best"),
                        out_idx: out("best_idx"),
                    },
                },
                ClusterCfg::AddShift(as_cfg) => match as_cfg {
                    AddShiftCfg::Add { width, serial } | AddShiftCfg::Sub { width, serial } => {
                        let sub = matches!(as_cfg, AddShiftCfg::Sub { .. });
                        if *serial {
                            EvalOp::SerialAdd {
                                a: slot("a"),
                                b: slot("b"),
                                sub,
                                out: out("y"),
                            }
                        } else {
                            EvalOp::AddSub {
                                a: slot("a"),
                                b: slot("b"),
                                width: *width,
                                sub,
                                out: out("y"),
                            }
                        }
                    }
                    AddShiftCfg::SerialReg { width } => EvalOp::SerialRegOut {
                        width: *width,
                        out: out("q"),
                    },
                    AddShiftCfg::ShiftAcc { acc_width, .. } => EvalOp::ShiftAccOut {
                        acc_width: *acc_width,
                        out_y: out("y"),
                        out_qs: out("qs"),
                    },
                },
                ClusterCfg::Memory {
                    words,
                    width,
                    contents,
                } => {
                    let mem = self.mems.len() as u32;
                    self.mems
                        .push(contents.iter().map(|&w| mask(w, *width)).collect());
                    EvalOp::Memory {
                        addr: slot("addr"),
                        mem,
                        words: *words,
                        out: out("dout"),
                    }
                }
            },
        }
    }
}

/// Resolves an input port to the net it reads (or its baked default).
fn in_slot(netlist: &Netlist, id: NodeId, name: &str) -> InSlot {
    let node = netlist.node(id);
    let pi = node.port_index(name).expect("port exists");
    let pref = PortRef { node: id, port: pi };
    debug_assert_eq!(node.ports[pi as usize].dir, PortDir::In);
    match netlist.net_of(pref) {
        Some(net) => InSlot {
            net: net.0,
            default: 0,
        },
        None => InSlot {
            net: NO_NET,
            default: node.ports[pi as usize].default.unwrap_or(0),
        },
    }
}

/// Resolves an output port to the net it drives — only when it is that
/// net's driver, exactly as the old `write_outputs` guarded.
fn out_net(netlist: &Netlist, id: NodeId, name: &str) -> u32 {
    let node = netlist.node(id);
    let pi = node.port_index(name).expect("port exists");
    let pref = PortRef { node: id, port: pi };
    match netlist.net_of(pref) {
        Some(net) if netlist.net(net).driver == pref => net.0,
        _ => NO_NET,
    }
}

fn lower_tick(netlist: &Netlist, id: NodeId) -> TickOp {
    let slot = |name: &str| in_slot(netlist, id, name);
    let NodeKind::Cluster(cfg) = &netlist.node(id).kind else {
        unreachable!("only clusters are sequential");
    };
    match cfg {
        ClusterCfg::RegMux { .. } => TickOp::Reg {
            a: slot("a"),
            b: slot("b"),
            sel: slot("sel"),
            en: slot("en"),
        },
        ClusterCfg::AddAcc { width, op, .. } => TickOp::Acc {
            a: slot("a"),
            b: slot("b"),
            en: slot("en"),
            clr: slot("clr"),
            width: *width,
            sub: matches!(op, AddOp::Sub),
        },
        ClusterCfg::Comparator { mode, .. } => TickOp::Comp {
            x: slot("x"),
            idx: slot("idx"),
            en: slot("en"),
            clr: slot("clr"),
            min: matches!(mode, CompMode::StreamMin),
        },
        ClusterCfg::AddShift(as_cfg) => match as_cfg {
            AddShiftCfg::Add { .. } | AddShiftCfg::Sub { .. } => TickOp::Carry {
                a: slot("a"),
                b: slot("b"),
                clr: slot("clr"),
                sub: matches!(as_cfg, AddShiftCfg::Sub { .. }),
            },
            AddShiftCfg::SerialReg { .. } => TickOp::SerialReg {
                d: slot("d"),
                load: slot("load"),
                en: slot("en"),
            },
            AddShiftCfg::ShiftAcc {
                acc_width,
                data_width,
            } => TickOp::ShiftAcc {
                d: slot("d"),
                en: slot("en"),
                clr: slot("clr"),
                sub: slot("sub"),
                sh: slot("sh"),
                acc_width: *acc_width,
                data_width: *data_width,
            },
        },
        _ => unreachable!("state/config mismatch"),
    }
}

/// Profiling class of one settle-phase op (`None` for pure sinks, which
/// execute nothing).
fn op_class(op: &EvalOp) -> Option<OpClass> {
    Some(match op {
        EvalOp::Sink => return None,
        EvalOp::Input { .. } => OpClass::Input,
        EvalOp::Const { .. } => OpClass::Const,
        EvalOp::Concat { .. } => OpClass::Concat,
        EvalOp::Slice { .. } => OpClass::Slice,
        EvalOp::SignExtend { .. } => OpClass::SignExtend,
        EvalOp::Mux { .. } => OpClass::Mux,
        EvalOp::RegOut { .. } => OpClass::Reg,
        EvalOp::AbsDiff { .. } => OpClass::AbsDiff,
        EvalOp::AddSub { .. } => OpClass::AddSub,
        EvalOp::AccOut { .. } => OpClass::Acc,
        EvalOp::CmpMinMax { .. } => OpClass::CmpMinMax,
        EvalOp::CmpStreamOut { .. } => OpClass::CmpStream,
        EvalOp::SerialAdd { .. } => OpClass::SerialAdd,
        EvalOp::SerialRegOut { .. } => OpClass::SerialReg,
        EvalOp::ShiftAccOut { .. } => OpClass::ShiftAcc,
        EvalOp::Memory { .. } => OpClass::Memory,
    })
}

/// Profiling class of one clock-edge op (the tick rides the same class
/// as the cluster's Moore publish).
fn tick_class(op: &TickOp) -> OpClass {
    match op {
        TickOp::Reg { .. } => OpClass::Reg,
        TickOp::Acc { .. } => OpClass::Acc,
        TickOp::Comp { .. } => OpClass::CmpStream,
        TickOp::Carry { .. } => OpClass::SerialAdd,
        TickOp::SerialReg { .. } => OpClass::SerialReg,
        TickOp::ShiftAcc { .. } => OpClass::ShiftAcc,
    }
}

/// The plan a simulator executes: its own, or one shared by the caller.
#[derive(Debug)]
enum PlanSource<'n> {
    Owned(Box<ExecPlan>),
    Shared(&'n ExecPlan),
}

/// A resolved top-level input, for allocation-free driving on hot paths
/// (resolve once with [`Simulator::input_port`], then [`Simulator::drive`]
/// per cycle — no name lookup, no formatting).
///
/// Handles depend only on the netlist's structure, so one resolved handle is
/// valid for every simulator built over that netlist (drivers resolve at
/// construction time, then reuse across blocks/searches).
#[derive(Debug, Clone, Copy)]
pub struct InputPort {
    ext: u32,
    width: u8,
}

impl InputPort {
    /// Resolves a top-level input by name.
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no input has this name.
    pub fn resolve(netlist: &Netlist, input: &str) -> Result<InputPort> {
        match netlist.node_by_name(input) {
            Some(id) => match netlist.node(id).kind {
                NodeKind::Input { width } => Ok(InputPort { ext: id.0, width }),
                _ => Err(CoreError::UnknownNode(input.to_owned())),
            },
            None => Err(CoreError::UnknownNode(input.to_owned())),
        }
    }
}

/// A resolved top-level output, for allocation-free reading
/// ([`Simulator::output_port`] once, [`Simulator::read`] per use). Like
/// [`InputPort`], valid for every simulator over the same netlist.
#[derive(Debug, Clone, Copy)]
pub struct OutputPort {
    net: u32,
    width: u8,
}

impl OutputPort {
    /// Resolves a top-level output by name.
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no output has this name.
    pub fn resolve(netlist: &Netlist, output: &str) -> Result<OutputPort> {
        match netlist.node_by_name(output) {
            Some(id) => match netlist.node(id).kind {
                NodeKind::Output { width } => {
                    let pref = PortRef { node: id, port: 0 };
                    let net = netlist.net_of(pref).map_or(NO_NET, |n| n.0);
                    Ok(OutputPort { net, width })
                }
                _ => Err(CoreError::UnknownNode(output.to_owned())),
            },
            None => Err(CoreError::UnknownNode(output.to_owned())),
        }
    }
}

/// Cycle-accurate simulator for a checked netlist.
///
/// ```
/// use dsra_core::prelude::*;
/// use dsra_sim::Simulator;
///
/// # fn main() -> std::result::Result<(), CoreError> {
/// let mut nl = Netlist::new("abs");
/// let a = nl.input("a", 8)?;
/// let b = nl.input("b", 8)?;
/// let ad = nl.cluster("ad", ClusterCfg::AbsDiff {
///     width: 8,
///     mode: AbsDiffMode::AbsDiff,
/// })?;
/// let y = nl.output("y", 8)?;
/// nl.connect((a, "out"), (ad, "a"))?;
/// nl.connect((b, "out"), (ad, "b"))?;
/// nl.connect((ad, "y"), (y, "in"))?;
///
/// let mut sim = Simulator::new(&nl)?;
/// sim.set("a", 200)?;
/// sim.set("b", 55)?;
/// sim.step();
/// assert_eq!(sim.get("y")?, 145);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'n, P: ProfSink = NoopProf> {
    netlist: &'n Netlist,
    plan: PlanSource<'n>,
    /// Current value per net.
    net_values: Vec<u64>,
    /// Previous-cycle value per net (for toggle counting).
    prev_values: Vec<u64>,
    states: Vec<NodeState>,
    external: Vec<u64>,
    activity: Activity,
    cycle: u64,
    waveform: Option<crate::trace::Waveform>,
    faults: Vec<StuckFault>,
    /// Per-net or/and fault masks, indexed by net id. Empty while no faults
    /// are injected; rebuilt incrementally by `inject_fault` and dropped by
    /// `clear_faults`, so the faulted write path is one indexed load instead
    /// of a scan over the whole fault list.
    fault_masks: Vec<FaultMask>,
    /// Op-level profiling sink. [`NoopProf`] (the default) has
    /// `ENABLED = false`, so every record call below const-folds away
    /// and the hot loop is the unprofiled one.
    prof: P,
}

/// The composed effect of every fault on one net: `(v | or) & and`.
#[derive(Debug, Clone, Copy)]
struct FaultMask {
    or: u64,
    and: u64,
}

impl FaultMask {
    const CLEAN: FaultMask = FaultMask { or: 0, and: !0 };
}

/// A stuck-at fault injected on one bit of a net (testability experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckFault {
    /// Faulted net.
    pub net: dsra_core::netlist::NetId,
    /// Bit position within the bus.
    pub bit: u8,
    /// Stuck value.
    pub stuck_high: bool,
}

impl<'n> Simulator<'n> {
    /// Builds a simulator, validating the netlist (`check()`) and compiling
    /// its private execution plan.
    ///
    /// # Errors
    /// Propagates netlist validation failures (unconnected mandatory inputs,
    /// combinational loops).
    pub fn new(netlist: &'n Netlist) -> Result<Self> {
        Self::new_profiled(netlist, NoopProf)
    }

    /// Builds a simulator over a plan compiled earlier with
    /// [`ExecPlan::compile`] from the **same** netlist — the graph walk is
    /// skipped, so constructing per-block/per-search simulators is cheap.
    ///
    /// # Panics
    /// Panics if the plan's node/net counts do not match the netlist (a
    /// plan compiled from a different netlist).
    pub fn with_plan(netlist: &'n Netlist, plan: &'n ExecPlan) -> Self {
        Self::with_plan_profiled(netlist, plan, NoopProf)
    }
}

impl<'n, P: ProfSink> Simulator<'n, P> {
    /// [`Simulator::new`] with an explicit profiling sink (a
    /// [`crate::CountingProf`] records per-op/per-class execution
    /// counts; results are byte-identical either way — the sink only
    /// observes).
    ///
    /// # Errors
    /// Same as [`Simulator::new`].
    pub fn new_profiled(netlist: &'n Netlist, prof: P) -> Result<Self> {
        let plan = ExecPlan::compile(netlist)?;
        Ok(Self::build(
            netlist,
            PlanSource::Owned(Box::new(plan)),
            prof,
        ))
    }

    /// [`Simulator::with_plan`] with an explicit profiling sink.
    ///
    /// # Panics
    /// Same as [`Simulator::with_plan`].
    pub fn with_plan_profiled(netlist: &'n Netlist, plan: &'n ExecPlan, prof: P) -> Self {
        assert!(
            plan.nodes == netlist.nodes().len() && plan.nets == netlist.nets().len(),
            "execution plan was compiled from a different netlist"
        );
        Self::build(netlist, PlanSource::Shared(plan), prof)
    }

    fn build(netlist: &'n Netlist, plan: PlanSource<'n>, prof: P) -> Self {
        let states = match &plan {
            PlanSource::Owned(p) => p.initial_states.clone(),
            PlanSource::Shared(p) => p.initial_states.clone(),
        };
        Simulator {
            netlist,
            plan,
            net_values: vec![0; netlist.nets().len()],
            prev_values: vec![0; netlist.nets().len()],
            states,
            external: vec![0; netlist.nodes().len()],
            activity: Activity::new(netlist.nets().len(), netlist.nodes().len()),
            cycle: 0,
            waveform: None,
            faults: Vec::new(),
            fault_masks: Vec::new(),
            prof,
        }
    }

    /// The profiling sink's accumulated state.
    pub fn prof(&self) -> &P {
        &self.prof
    }

    #[inline]
    fn plan(&self) -> &ExecPlan {
        match &self.plan {
            PlanSource::Owned(p) => p,
            PlanSource::Shared(p) => p,
        }
    }

    /// Resolves a top-level input by name for repeated allocation-free
    /// driving via [`Simulator::drive`].
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no input has this name.
    pub fn input_port(&self, input: &str) -> Result<InputPort> {
        InputPort::resolve(self.netlist, input)
    }

    /// Resolves a top-level output by name for repeated allocation-free
    /// reading via [`Simulator::read`].
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no output has this name.
    pub fn output_port(&self, output: &str) -> Result<OutputPort> {
        OutputPort::resolve(self.netlist, output)
    }

    /// Drives a resolved input port (raw bus word, masked to its width).
    #[inline]
    pub fn drive(&mut self, port: InputPort, raw: u64) {
        self.external[port.ext as usize] = mask(raw, port.width);
    }

    /// Drives a resolved input port with a signed value.
    #[inline]
    pub fn drive_signed(&mut self, port: InputPort, value: i64) {
        self.external[port.ext as usize] = from_signed(value, port.width);
    }

    /// Reads a resolved output port after the last `step`.
    #[inline]
    pub fn read(&self, port: OutputPort) -> u64 {
        if port.net == NO_NET {
            0
        } else {
            self.net_values[port.net as usize]
        }
    }

    /// Reads a resolved output port as a signed value.
    #[inline]
    pub fn read_signed(&self, port: OutputPort) -> i64 {
        to_signed(self.read(port), port.width)
    }

    /// Drives a top-level input (raw bus word, masked to the input width).
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no input has this name.
    pub fn set(&mut self, input: &str, raw: u64) -> Result<()> {
        let port = self.input_port(input)?;
        self.drive(port, raw);
        Ok(())
    }

    /// Drives a top-level input with a signed value.
    ///
    /// # Errors
    /// Same as [`Simulator::set`].
    pub fn set_signed(&mut self, input: &str, value: i64) -> Result<()> {
        let port = self.input_port(input)?;
        self.drive_signed(port, value);
        Ok(())
    }

    /// Reads a top-level output (raw bus word) after the last `step`.
    ///
    /// # Errors
    /// [`CoreError::UnknownNode`] if no output has this name.
    pub fn get(&self, output: &str) -> Result<u64> {
        Ok(self.read(self.output_port(output)?))
    }

    /// Reads a top-level output as a signed value.
    ///
    /// # Errors
    /// Same as [`Simulator::get`].
    pub fn get_signed(&self, output: &str) -> Result<i64> {
        Ok(self.read_signed(self.output_port(output)?))
    }

    /// Executes one clock cycle: combinational settle, activity recording,
    /// sequential tick.
    pub fn step(&mut self) {
        self.settle();
        for i in 0..self.net_values.len() {
            self.activity
                .record_net(i, self.prev_values[i], self.net_values[i]);
        }
        self.prev_values.copy_from_slice(&self.net_values);
        if let Some(w) = &mut self.waveform {
            w.capture(&self.net_values);
        }
        self.tick();
        self.activity.end_cycle();
        if P::ENABLED {
            self.prof.record_cycle();
        }
        self.cycle += 1;
    }

    /// Starts recording a waveform (one snapshot per cycle from now on).
    pub fn record_waveform(&mut self) {
        self.waveform = Some(crate::trace::Waveform::new(self.netlist));
    }

    /// The recorded waveform, if recording was enabled.
    pub fn waveform(&self) -> Option<&crate::trace::Waveform> {
        self.waveform.as_ref()
    }

    /// Injects a stuck-at fault on one bit of a net. The fault applies from
    /// the next evaluation onward; several faults may be active at once and
    /// later injections on the same bit win, exactly as if the fault list
    /// were replayed in order. While no faults are injected (the common
    /// case) the write path skips fault handling entirely; with faults
    /// present each write costs one indexed mask load, not a list scan.
    pub fn inject_fault(&mut self, fault: StuckFault) {
        if self.fault_masks.is_empty() {
            self.fault_masks = vec![FaultMask::CLEAN; self.net_values.len()];
        }
        if let Some(m) = self.fault_masks.get_mut(fault.net.0 as usize) {
            let bit = 1u64 << fault.bit;
            if fault.stuck_high {
                m.or |= bit;
                m.and |= bit;
            } else {
                m.and &= !bit;
                m.or &= !bit;
            }
        }
        self.faults.push(fault);
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.fault_masks.clear();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Cycles executed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated switching activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Writes one settled output value, applying stuck-at faults only when
    /// any are injected (one indexed mask load, no fault-list scan).
    #[inline]
    fn write(&mut self, out: u32, value: u64) {
        if out == NO_NET {
            return;
        }
        let mut v = value;
        if !self.fault_masks.is_empty() {
            let m = self.fault_masks[out as usize];
            v = (v | m.or) & m.and;
        }
        self.net_values[out as usize] = v;
    }

    /// Combinational propagation without advancing the clock (useful in
    /// tests to observe settled values).
    ///
    /// Phase A publishes every *source* value — external inputs, constants
    /// and the Moore outputs of sequential clusters (which depend only on
    /// state). Phase B then evaluates combinational nodes in levelized
    /// order, so a single pass settles the whole design.
    pub fn settle(&mut self) {
        for i in 0..self.plan().phase_a.len() {
            let n = self.plan().phase_a[i];
            self.eval(n as usize);
        }
        for i in 0..self.plan().phase_b.len() {
            let n = self.plan().phase_b[i];
            self.eval(n as usize);
        }
    }

    /// Evaluates one node's outputs for the current cycle and writes them.
    #[inline]
    fn eval(&mut self, idx: usize) {
        let op = self.plan().ops[idx];
        if P::ENABLED {
            if let Some(class) = op_class(&op) {
                self.prof.record_op(idx as u32, class);
            }
        }
        match op {
            EvalOp::Sink => {}
            EvalOp::Input { ext, width, out } => {
                let v = mask(self.external[ext as usize], width);
                self.write(out, v);
            }
            EvalOp::Const { value, out } => self.write(out, value),
            EvalOp::Concat { start, len, out } => {
                let mut v = 0u64;
                {
                    let plan = self.plan();
                    for &(slot, w, sh) in &plan.concat_parts[start as usize..(start + len) as usize]
                    {
                        v |= mask(slot.read(&self.net_values), w) << sh;
                    }
                }
                self.write(out, v);
            }
            EvalOp::Slice {
                a,
                offset,
                width,
                out,
            } => {
                let v = mask(a.read(&self.net_values) >> offset, width);
                self.write(out, v);
            }
            EvalOp::SignExtend {
                a,
                in_width,
                width,
                out,
            } => {
                let v = from_signed(to_signed(a.read(&self.net_values), in_width), width);
                self.write(out, v);
            }
            EvalOp::Mux { a, b, sel, out } => {
                let v = if sel.read(&self.net_values) & 1 == 1 {
                    b.read(&self.net_values)
                } else {
                    a.read(&self.net_values)
                };
                self.write(out, v);
            }
            EvalOp::RegOut { width, out } => {
                let NodeState::Reg { q } = self.states[idx] else {
                    unreachable!()
                };
                self.write(out, mask(q, width));
            }
            EvalOp::AbsDiff {
                a,
                b,
                width,
                mode,
                out,
            } => {
                let a = a.read(&self.net_values);
                let b = b.read(&self.net_values);
                let v = match mode {
                    AbsDiffMode::Add => mask(a.wrapping_add(b), width),
                    AbsDiffMode::Sub => mask(a.wrapping_sub(b), width),
                    // Pixels are unsigned: |a - b| = max - min.
                    AbsDiffMode::AbsDiff => mask(a.max(b) - a.min(b), width),
                };
                self.write(out, v);
            }
            EvalOp::AddSub {
                a,
                b,
                width,
                sub,
                out,
            } => {
                let a = a.read(&self.net_values);
                let b = b.read(&self.net_values);
                let v = if sub {
                    mask(a.wrapping_sub(b), width)
                } else {
                    mask(a.wrapping_add(b), width)
                };
                self.write(out, v);
            }
            EvalOp::AccOut { width, out } => {
                let NodeState::Acc { acc } = self.states[idx] else {
                    unreachable!()
                };
                self.write(out, mask(acc, width));
            }
            EvalOp::CmpMinMax {
                a,
                b,
                max,
                out_y,
                out_which,
            } => {
                let a = a.read(&self.net_values);
                let b = b.read(&self.net_values);
                // SAD metrics are unsigned.
                let (y, which) = if max {
                    (a.max(b), u64::from(a < b))
                } else {
                    (a.min(b), u64::from(a > b))
                };
                self.write(out_y, y);
                self.write(out_which, which);
            }
            EvalOp::CmpStreamOut { out_best, out_idx } => {
                let NodeState::Comp { best, best_idx, .. } = self.states[idx] else {
                    unreachable!()
                };
                self.write(out_best, best);
                self.write(out_idx, best_idx);
            }
            EvalOp::SerialAdd { a, b, sub, out } => {
                let a = a.read(&self.net_values) & 1;
                let b0 = b.read(&self.net_values) & 1;
                let b = if sub { b0 ^ 1 } else { b0 };
                let NodeState::Carry { c } = self.states[idx] else {
                    unreachable!()
                };
                self.write(out, a ^ b ^ u64::from(c));
            }
            EvalOp::SerialRegOut { width, out } => {
                let NodeState::SerialReg { reg, pos } = self.states[idx] else {
                    unreachable!()
                };
                let bit_idx = pos.min(width - 1);
                self.write(out, (reg >> bit_idx) & 1);
            }
            EvalOp::ShiftAccOut {
                acc_width,
                out_y,
                out_qs,
            } => {
                let NodeState::ShiftAcc { acc } = self.states[idx] else {
                    unreachable!()
                };
                self.write(out_y, mask(acc, acc_width));
                self.write(out_qs, acc & 1);
            }
            EvalOp::Memory {
                addr,
                mem,
                words,
                out,
            } => {
                let a = (addr.read(&self.net_values) as usize) % usize::from(words);
                let v = self.plan().mems[mem as usize][a];
                self.write(out, v);
            }
        }
    }

    /// Clock edge: update every sequential node from the settled net values.
    fn tick(&mut self) {
        for i in 0..self.plan().ticks.len() {
            let (idx, op) = self.plan().ticks[i];
            let idx = idx as usize;
            if P::ENABLED {
                self.prof.record_op(idx as u32, tick_class(&op));
            }
            let nets = &self.net_values;
            let new_state = match (op, &self.states[idx]) {
                (TickOp::Reg { a, b, sel, en }, NodeState::Reg { q }) => {
                    if en.read(nets) & 1 == 1 {
                        let d = if sel.read(nets) & 1 == 1 {
                            b.read(nets)
                        } else {
                            a.read(nets)
                        };
                        NodeState::Reg { q: d }
                    } else {
                        NodeState::Reg { q: *q }
                    }
                }
                (
                    TickOp::Acc {
                        a,
                        b,
                        en,
                        clr,
                        width,
                        sub,
                    },
                    NodeState::Acc { acc },
                ) => {
                    if clr.read(nets) & 1 == 1 {
                        NodeState::Acc { acc: 0 }
                    } else if en.read(nets) & 1 == 1 {
                        let a = a.read(nets);
                        let b = b.read(nets);
                        let term = if sub {
                            a.wrapping_sub(b)
                        } else {
                            a.wrapping_add(b)
                        };
                        NodeState::Acc {
                            acc: mask(acc.wrapping_add(term), width),
                        }
                    } else {
                        NodeState::Acc { acc: *acc }
                    }
                }
                (
                    TickOp::Comp {
                        x,
                        idx: idx_slot,
                        en,
                        clr,
                        min,
                    },
                    NodeState::Comp {
                        best,
                        best_idx,
                        valid,
                    },
                ) => {
                    if clr.read(nets) & 1 == 1 {
                        NodeState::Comp {
                            best: 0,
                            best_idx: 0,
                            valid: false,
                        }
                    } else if en.read(nets) & 1 == 1 {
                        let x = x.read(nets);
                        let idx_in = idx_slot.read(nets);
                        let better = !valid || if min { x < *best } else { x > *best };
                        if better {
                            NodeState::Comp {
                                best: x,
                                best_idx: idx_in,
                                valid: true,
                            }
                        } else {
                            NodeState::Comp {
                                best: *best,
                                best_idx: *best_idx,
                                valid: true,
                            }
                        }
                    } else {
                        NodeState::Comp {
                            best: *best,
                            best_idx: *best_idx,
                            valid: *valid,
                        }
                    }
                }
                (TickOp::Carry { a, b, clr, sub }, NodeState::Carry { c }) => {
                    if clr.read(nets) & 1 == 1 {
                        NodeState::Carry { c: u8::from(sub) }
                    } else {
                        let a = a.read(nets) & 1;
                        let b0 = b.read(nets) & 1;
                        let b = if sub { b0 ^ 1 } else { b0 };
                        let cin = u64::from(*c);
                        let cout = (a & b) | (a & cin) | (b & cin);
                        NodeState::Carry { c: cout as u8 }
                    }
                }
                (TickOp::SerialReg { d, load, en }, NodeState::SerialReg { reg, pos }) => {
                    if load.read(nets) & 1 == 1 {
                        NodeState::SerialReg {
                            reg: d.read(nets),
                            pos: 0,
                        }
                    } else if en.read(nets) & 1 == 1 {
                        NodeState::SerialReg {
                            reg: *reg,
                            pos: pos.saturating_add(1),
                        }
                    } else {
                        NodeState::SerialReg {
                            reg: *reg,
                            pos: *pos,
                        }
                    }
                }
                (
                    TickOp::ShiftAcc {
                        d,
                        en,
                        clr,
                        sub,
                        sh,
                        acc_width,
                        data_width,
                    },
                    NodeState::ShiftAcc { acc },
                ) => {
                    if clr.read(nets) & 1 == 1 {
                        NodeState::ShiftAcc { acc: 0 }
                    } else if en.read(nets) & 1 == 1 {
                        let align = u32::from(acc_width - data_width);
                        let sa = to_signed(*acc, acc_width);
                        let sd = to_signed(d.read(nets), data_width);
                        let term = sd << align;
                        let sum = if sub.read(nets) & 1 == 1 {
                            sa - term
                        } else {
                            sa + term
                        };
                        NodeState::ShiftAcc {
                            acc: from_signed(sum >> 1, acc_width),
                        }
                    } else if sh.read(nets) & 1 == 1 {
                        let sa = to_signed(*acc, acc_width);
                        NodeState::ShiftAcc {
                            acc: from_signed(sa >> 1, acc_width),
                        }
                    } else {
                        NodeState::ShiftAcc { acc: *acc }
                    }
                }
                _ => unreachable!("state/config mismatch"),
            };
            if new_state != self.states[idx] {
                self.activity.credit_node(idx, 1);
            }
            self.states[idx] = new_state;
        }
    }
}

fn initial_state(kind: &NodeKind) -> NodeState {
    match kind {
        NodeKind::Cluster(cfg) => match cfg {
            ClusterCfg::RegMux {
                registered: true, ..
            } => NodeState::Reg { q: 0 },
            ClusterCfg::AddAcc {
                accumulate: true, ..
            } => NodeState::Acc { acc: 0 },
            ClusterCfg::Comparator {
                mode: CompMode::StreamMin | CompMode::StreamMax,
                ..
            } => NodeState::Comp {
                best: 0,
                best_idx: 0,
                valid: false,
            },
            ClusterCfg::AddShift(cfg) => match cfg {
                AddShiftCfg::Add { serial: true, .. } => NodeState::Carry { c: 0 },
                AddShiftCfg::Sub { serial: true, .. } => NodeState::Carry { c: 1 },
                AddShiftCfg::SerialReg { .. } => NodeState::SerialReg { reg: 0, pos: 0 },
                AddShiftCfg::ShiftAcc { .. } => NodeState::ShiftAcc { acc: 0 },
                _ => NodeState::None,
            },
            _ => NodeState::None,
        },
        _ => NodeState::None,
    }
}
