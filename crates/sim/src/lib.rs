//! # dsra-sim — cycle-accurate simulator for domain-specific array netlists
//!
//! Executes [`dsra_core::netlist::Netlist`] designs cycle by cycle with
//! hardware-faithful semantics:
//!
//! * two-phase clocking: combinational settle in levelized order, then a
//!   global register tick;
//! * bit-serial distributed arithmetic — LSB-first serial streams, carry
//!   flip-flops in serial adders, right-shift-accumulate with a subtracting
//!   sign-bit cycle (White's DA, ref. \[4\] of the paper);
//! * per-net toggle counting for activity-based power estimation
//!   (`dsra-tech`);
//! * zero-cost-when-disabled op-level profiling ([`prof`]): the
//!   interpreter is generic over a [`ProfSink`] (default [`NoopProf`],
//!   monomorphized away) and every plan exposes its static per-cycle
//!   [`OpMix`] via [`ExecPlan::op_mix`] for cycle attribution.
//!
//! The hot path is allocation-free: a checked netlist compiles once into a
//! flat [`ExecPlan`] (resolved port slots, enum-dispatched ops, pre-masked
//! ROMs) and every simulated cycle runs over dense arrays. Drivers that
//! build many simulators over one netlist share the plan via
//! [`Simulator::with_plan`] and drive pins through resolved handles
//! ([`Simulator::input_port`] / [`Simulator::drive`]).
//!
//! See [`Simulator`] for a usage example.

#![warn(missing_docs)]

pub mod activity;
pub mod engine;
pub mod prof;
pub mod trace;

pub use activity::Activity;
pub use engine::{ExecPlan, InputPort, OutputPort, Simulator, StuckFault};
pub use prof::{CountingProf, NoopProf, OpClass, OpMix, ProfSink};
pub use trace::Waveform;
