//! Op-level profiling for the flat-plan interpreter: zero-cost when
//! disabled, cycle-exact when on.
//!
//! The seam mirrors `dsra-trace`'s `NoopSink`: the simulator is generic
//! over a [`ProfSink`] whose `ENABLED` flag is an associated `const`, so
//! the disabled path ([`NoopProf`], the default) monomorphizes every
//! `record_*` call away — the compiled hot loop is bit-for-bit the
//! pre-profiling one, and simulation results are byte-identical with
//! profiling on or off (the sink only *observes*).
//!
//! ## The static op mix
//!
//! The flat plan executes the same ops every cycle: every `phase_a` /
//! `phase_b` node evaluates once and every sequential node ticks once per
//! [`crate::Simulator::step`]. Per-cycle op-class counts are therefore a
//! *static* property of the plan — [`crate::ExecPlan::op_mix`] returns
//! them without simulating, and a live [`CountingProf`] must agree
//! exactly: `counters == op_mix × cycles`. Attribution layers
//! (`dsra-profile`) exploit this to split a kernel's busy cycles across
//! op classes without paying for per-cycle counting.

/// The operation classes the interpreter dispatches on, collapsed over
/// widths and modes. Sequential clusters contribute **two** counts per
/// cycle — one Moore-output publish in the settle phase and one
/// clock-edge tick — matching what the interpreter actually executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Top-level input publish.
    Input,
    /// Constant driver.
    Const,
    /// Bus concatenation.
    Concat,
    /// Bit-slice extraction.
    Slice,
    /// Sign extension.
    SignExtend,
    /// Unregistered 2:1 mux.
    Mux,
    /// Registered RegMux (publish + tick).
    Reg,
    /// Absolute difference / add / sub pixel op.
    AbsDiff,
    /// Combinational add/subtract.
    AddSub,
    /// Accumulating adder (publish + tick).
    Acc,
    /// Two-value min/max comparator.
    CmpMinMax,
    /// Streaming best/index comparator (publish + tick).
    CmpStream,
    /// Bit-serial full-adder sum bit (the carry tick rides the same
    /// class).
    SerialAdd,
    /// Parallel-to-serial shift register (publish + tick).
    SerialReg,
    /// DA shift-accumulator (publish + tick).
    ShiftAcc,
    /// Asynchronous-read memory (DA ROMs).
    Memory,
}

impl OpClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 16;

    /// Every class, in stable declaration order (the tie-break order of
    /// [`OpMix::attribute`]).
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Input,
        OpClass::Const,
        OpClass::Concat,
        OpClass::Slice,
        OpClass::SignExtend,
        OpClass::Mux,
        OpClass::Reg,
        OpClass::AbsDiff,
        OpClass::AddSub,
        OpClass::Acc,
        OpClass::CmpMinMax,
        OpClass::CmpStream,
        OpClass::SerialAdd,
        OpClass::SerialReg,
        OpClass::ShiftAcc,
        OpClass::Memory,
    ];

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case tag — the `op:<tag>` leaf of flamegraph stacks.
    pub fn tag(self) -> &'static str {
        match self {
            OpClass::Input => "input",
            OpClass::Const => "const",
            OpClass::Concat => "concat",
            OpClass::Slice => "slice",
            OpClass::SignExtend => "sign_extend",
            OpClass::Mux => "mux",
            OpClass::Reg => "reg",
            OpClass::AbsDiff => "abs_diff",
            OpClass::AddSub => "add_sub",
            OpClass::Acc => "acc",
            OpClass::CmpMinMax => "cmp_min_max",
            OpClass::CmpStream => "cmp_stream",
            OpClass::SerialAdd => "serial_add",
            OpClass::SerialReg => "serial_reg",
            OpClass::ShiftAcc => "shift_acc",
            OpClass::Memory => "memory",
        }
    }
}

/// Per-cycle op-class execution counts of one compiled plan — the static
/// profile every simulated cycle repeats (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpMix {
    per_cycle: [u64; OpClass::COUNT],
}

impl OpMix {
    /// An empty mix (no ops — the mix of an empty netlist).
    pub fn new() -> Self {
        OpMix::default()
    }

    /// Adds `n` executions-per-cycle of one class.
    pub fn add(&mut self, class: OpClass, n: u64) {
        self.per_cycle[class.index()] += n;
    }

    /// Executions per cycle of one class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.per_cycle[class.index()]
    }

    /// Total op executions per cycle across all classes.
    pub fn ops_per_cycle(&self) -> u64 {
        self.per_cycle.iter().sum()
    }

    /// `true` when the plan executes no ops.
    pub fn is_empty(&self) -> bool {
        self.ops_per_cycle() == 0
    }

    /// Splits `cycles` busy cycles across the mix's op classes,
    /// proportionally to their per-cycle counts, by largest remainder
    /// (ties to the earlier class in [`OpClass::ALL`]). The returned
    /// shares cover `cycles` **exactly** — attribution never leaks a
    /// cycle — and only classes present in the mix appear.
    pub fn attribute(&self, cycles: u64) -> Vec<(OpClass, u64)> {
        let total = u128::from(self.ops_per_cycle());
        if total == 0 || cycles == 0 {
            return Vec::new();
        }
        let mut shares: Vec<(OpClass, u64, u128)> = Vec::new();
        let mut assigned: u64 = 0;
        for class in OpClass::ALL {
            let w = u128::from(self.count(class));
            if w == 0 {
                continue;
            }
            let exact = u128::from(cycles) * w;
            let base = (exact / total) as u64;
            assigned += base;
            shares.push((class, base, exact % total));
        }
        let mut leftover = cycles - assigned;
        while leftover > 0 {
            // Stable max-by-remainder: earlier class wins ties.
            let (best, _) = shares
                .iter()
                .enumerate()
                .max_by(|(ai, a), (bi, b)| a.2.cmp(&b.2).then(bi.cmp(ai)))
                .expect("non-empty mix");
            shares[best].1 += 1;
            shares[best].2 = 0;
            leftover -= 1;
        }
        shares.into_iter().map(|(c, n, _)| (c, n)).collect()
    }
}

/// Receives op-level execution records from the interpreter. `ENABLED`
/// is an associated `const` so the disabled sink compiles to nothing.
pub trait ProfSink: std::fmt::Debug {
    /// `false` for [`NoopProf`]; the simulator guards every record call
    /// behind `if P::ENABLED`, which const-folds away when `false`.
    const ENABLED: bool;

    /// One op executed for `node` this cycle.
    fn record_op(&mut self, node: u32, class: OpClass);

    /// One full cycle completed.
    fn record_cycle(&mut self);
}

/// The default sink: profiling off, zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProf;

impl ProfSink for NoopProf {
    const ENABLED: bool = false;

    #[inline]
    fn record_op(&mut self, _node: u32, _class: OpClass) {}

    #[inline]
    fn record_cycle(&mut self) {}
}

/// A live counting sink: per-class and per-node op counts plus the cycle
/// count. Exists to *verify* the static mix (`counters == op_mix ×
/// cycles`) and to profile ad-hoc simulations; the attribution layer
/// uses [`OpMix`] directly.
#[derive(Debug, Clone, Default)]
pub struct CountingProf {
    cycles: u64,
    per_class: [u64; OpClass::COUNT],
    per_node: Vec<u64>,
}

impl CountingProf {
    /// A zeroed counter set.
    pub fn new() -> Self {
        CountingProf::default()
    }

    /// Cycles recorded so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Op executions recorded for one class.
    pub fn class_count(&self, class: OpClass) -> u64 {
        self.per_class[class.index()]
    }

    /// Op executions recorded for one node (0 for never-seen nodes).
    pub fn node_count(&self, node: u32) -> u64 {
        self.per_node.get(node as usize).copied().unwrap_or(0)
    }

    /// Total op executions across all classes.
    pub fn total_ops(&self) -> u64 {
        self.per_class.iter().sum()
    }

    /// The per-cycle mix these counters imply (`None` before the first
    /// full cycle or if the counts are not an exact multiple — which
    /// would mean the plan's op set varied per cycle, i.e. a bug).
    pub fn implied_mix(&self) -> Option<OpMix> {
        if self.cycles == 0 {
            return None;
        }
        let mut mix = OpMix::new();
        for class in OpClass::ALL {
            let n = self.class_count(class);
            if !n.is_multiple_of(self.cycles) {
                return None;
            }
            mix.add(class, n / self.cycles);
        }
        Some(mix)
    }
}

impl ProfSink for CountingProf {
    const ENABLED: bool = true;

    #[inline]
    fn record_op(&mut self, node: u32, class: OpClass) {
        self.per_class[class.index()] += 1;
        let idx = node as usize;
        if idx >= self.per_node.len() {
            self.per_node.resize(idx + 1, 0);
        }
        self.per_node[idx] += 1;
    }

    #[inline]
    fn record_cycle(&mut self) {
        self.cycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_and_tags_are_stable() {
        assert_eq!(OpClass::ALL.len(), OpClass::COUNT);
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(OpClass::ShiftAcc.tag(), "shift_acc");
        assert_eq!(OpClass::SerialAdd.tag(), "serial_add");
    }

    #[test]
    fn attribute_is_exact_and_proportional() {
        let mut mix = OpMix::new();
        mix.add(OpClass::AbsDiff, 3);
        mix.add(OpClass::Acc, 1);
        mix.add(OpClass::Reg, 2);
        for cycles in [0u64, 1, 7, 100, 48_211, u64::from(u32::MAX)] {
            let shares = mix.attribute(cycles);
            let sum: u64 = shares.iter().map(|&(_, n)| n).sum();
            assert_eq!(sum, cycles, "attribution must cover every cycle");
        }
        let shares = mix.attribute(600);
        assert_eq!(
            shares,
            vec![
                (OpClass::Reg, 200),
                (OpClass::AbsDiff, 300),
                (OpClass::Acc, 100)
            ]
        );
    }

    #[test]
    fn attribute_of_empty_mix_is_empty() {
        assert!(OpMix::new().attribute(1000).is_empty());
    }

    #[test]
    fn counting_prof_tracks_per_node_and_per_class() {
        let mut p = CountingProf::new();
        p.record_op(4, OpClass::Mux);
        p.record_op(4, OpClass::Mux);
        p.record_op(9, OpClass::Memory);
        p.record_cycle();
        assert_eq!(p.cycles(), 1);
        assert_eq!(p.class_count(OpClass::Mux), 2);
        assert_eq!(p.node_count(4), 2);
        assert_eq!(p.node_count(9), 1);
        assert_eq!(p.node_count(100), 0);
        assert_eq!(p.total_ops(), 3);
        let mix = p.implied_mix().expect("one full cycle");
        assert_eq!(mix.count(OpClass::Mux), 2);
        assert_eq!(mix.count(OpClass::Memory), 1);
    }
}
