//! Switching-activity bookkeeping.
//!
//! The paper performs no power measurements (§3.6) but notes that the
//! implementations "can have different power consumption due to the
//! different area usage and different signal activities in the design".
//! The simulator therefore counts, per net, how many bits toggle each cycle;
//! `dsra-tech` turns these counts into activity-based energy estimates
//! (experiment E9).

use dsra_core::netlist::{NetId, Netlist};

/// Per-net and per-node toggle counters accumulated over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Activity {
    net_toggles: Vec<u64>,
    node_output_toggles: Vec<u64>,
    cycles: u64,
}

impl Activity {
    pub(crate) fn new(nets: usize, nodes: usize) -> Self {
        Activity {
            net_toggles: vec![0; nets],
            node_output_toggles: vec![0; nodes],
            cycles: 0,
        }
    }

    /// Builds an activity record from explicit toggle counts — for energy
    /// models and property tests that need controlled activity without
    /// running a simulation (e.g. `dsra-power`'s monotonicity properties).
    /// Simulation-produced records come from [`crate::Simulator::activity`].
    pub fn synthetic(net_toggles: Vec<u64>, node_output_toggles: Vec<u64>, cycles: u64) -> Self {
        Activity {
            net_toggles,
            node_output_toggles,
            cycles,
        }
    }

    pub(crate) fn record_net(&mut self, net: usize, prev: u64, cur: u64) {
        self.net_toggles[net] += u64::from((prev ^ cur).count_ones());
    }

    pub(crate) fn credit_node(&mut self, node: usize, toggles: u64) {
        self.node_output_toggles[node] += toggles;
    }

    pub(crate) fn end_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Bit toggles observed on one net.
    pub fn net_toggles(&self, net: NetId) -> u64 {
        self.net_toggles.get(net.0 as usize).copied().unwrap_or(0)
    }

    /// Total bit toggles over all nets.
    pub fn total_net_toggles(&self) -> u64 {
        self.net_toggles.iter().sum()
    }

    /// Output toggles credited to one node (its internal datapath activity
    /// proxy).
    pub fn node_toggles(&self, node: dsra_core::netlist::NodeId) -> u64 {
        self.node_output_toggles
            .get(node.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Total node output toggles.
    pub fn total_node_toggles(&self) -> u64 {
        self.node_output_toggles.iter().sum()
    }

    /// Mean toggles per net per cycle — the classic switching-activity
    /// factor, weighted by net count.
    pub fn mean_activity(&self, netlist: &Netlist) -> f64 {
        if self.cycles == 0 || netlist.nets().is_empty() {
            return 0.0;
        }
        let bits: u64 = netlist.nets().iter().map(|n| u64::from(n.width)).sum();
        self.total_net_toggles() as f64 / (bits as f64 * self.cycles as f64)
    }
}
