//! Seeded, virtual-time fault plans: which array breaks, how, and when.
//!
//! A [`FaultPlan`] is a pure function of its [`ChaosConfig`] — the same
//! seed always yields the same events at the same virtual instants, so a
//! chaos session is as byte-deterministic as a fault-free one. Events
//! fire when the dispatcher's virtual clock reaches them (the recovery
//! hook folds their instants into the loop's time advance, so none are
//! skipped over).

use dsra_core::rng::SplitMix64;

/// How an array misbehaves, once a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A stuck-at fault on one lane of the array's output path: the
    /// checksum bit is forced `high`/low on every execution while the
    /// fault is active (`at_us..until_us`) — the Backend-boundary mirror
    /// of the simulator's net-level `StuckFault` or/and masking.
    StuckAt {
        /// Checksum bit lane (0..64) the fault pins.
        bit: u8,
        /// `true` pins the lane to 1, `false` to 0.
        high: bool,
        /// Virtual µs at which the (intermittent) fault clears itself.
        until_us: u64,
    },
    /// A transient single-execution upset: the given mask is XORed into
    /// the checksum of exactly the next execution, then the fault clears.
    Transient {
        /// Non-zero XOR mask flipped into one execution's checksum.
        bits: u64,
    },
    /// A corrupted configuration-plane write: every execution on the
    /// array diverges until the (bad) bitstream is evicted — which is
    /// exactly what quarantine does, so a probe after quarantine finds
    /// the array healthy again.
    ReconfigCorrupt,
    /// The array dies: every execution from here on returns garbage and
    /// no probe ever re-admits it.
    Death,
    /// A battery brownout step: `pct` percent of the pack's capacity is
    /// drained instantly (the energy-aware layers see the step on their
    /// next snapshot). Not an array fault — `array` carries the step
    /// index instead.
    Brownout {
        /// Percent of battery capacity removed by the step.
        pct: u8,
    },
}

impl FaultKind {
    /// Stable tag, matching the `FaultInjected` trace event and the
    /// Chrome-trace exporter (`stuck_at`, `transient`, `reconfig`,
    /// `death`, `brownout`).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::StuckAt { .. } => "stuck_at",
            FaultKind::Transient { .. } => "transient",
            FaultKind::ReconfigCorrupt => "reconfig",
            FaultKind::Death => "death",
            FaultKind::Brownout { .. } => "brownout",
        }
    }

    /// Sort rank for deterministic ordering of same-instant events.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::StuckAt { .. } => 0,
            FaultKind::Transient { .. } => 1,
            FaultKind::ReconfigCorrupt => 2,
            FaultKind::Death => 3,
            FaultKind::Brownout { .. } => 4,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual µs at which the fault lands.
    pub at_us: u64,
    /// Target array (pool id); for [`FaultKind::Brownout`], the step
    /// index (brownouts hit the shared battery, not an array).
    pub array: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// What a [`FaultPlan`] should contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Plan seed; same seed, same plan, byte for byte.
    pub seed: u64,
    /// Virtual window faults land in (events draw from its middle 80%,
    /// so the session both warms up and winds down fault-free).
    pub duration_us: u64,
    /// Pool size faults draw targets from.
    pub arrays: usize,
    /// Stuck-at faults to schedule (each with a self-clearing window).
    pub stuck_at: usize,
    /// Transient single-execution bit flips to schedule.
    pub transients: usize,
    /// Corrupted configuration writes to schedule.
    pub reconfig: usize,
    /// Array deaths to schedule.
    pub deaths: usize,
    /// Battery brownout steps to schedule.
    pub brownouts: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            duration_us: 6_000,
            arrays: 4,
            stuck_at: 2,
            transients: 3,
            reconfig: 1,
            deaths: 1,
            brownouts: 1,
        }
    }
}

/// A sorted schedule of [`FaultEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the plan for `cfg` — deterministic in every field.
    pub fn generate(cfg: &ChaosConfig) -> Self {
        let mut rng = SplitMix64::new(cfg.seed ^ 0xC0A5_7A6E_FAB1_0CAFu64);
        let lo = cfg.duration_us / 10;
        let span = (cfg.duration_us * 8 / 10).max(1);
        let at = |rng: &mut SplitMix64| lo + rng.next_below(span);
        let array = |rng: &mut SplitMix64| rng.next_below(cfg.arrays.max(1) as u64) as usize;
        let mut events = Vec::new();
        for _ in 0..cfg.stuck_at {
            let at_us = at(&mut rng);
            events.push(FaultEvent {
                at_us,
                array: array(&mut rng),
                kind: FaultKind::StuckAt {
                    bit: rng.next_below(64) as u8,
                    high: rng.next_below(2) == 1,
                    // Long enough that recovery has to act, short enough
                    // that a later probe can genuinely re-admit.
                    until_us: at_us + cfg.duration_us / 4 + rng.next_below(span / 2 + 1),
                },
            });
        }
        for _ in 0..cfg.transients {
            events.push(FaultEvent {
                at_us: at(&mut rng),
                array: array(&mut rng),
                kind: FaultKind::Transient {
                    // At least one bit flips, so a transient is never a
                    // silent no-op.
                    bits: rng.next_u64() | 1,
                },
            });
        }
        for _ in 0..cfg.reconfig {
            events.push(FaultEvent {
                at_us: at(&mut rng),
                array: array(&mut rng),
                kind: FaultKind::ReconfigCorrupt,
            });
        }
        for _ in 0..cfg.deaths {
            events.push(FaultEvent {
                at_us: at(&mut rng),
                array: array(&mut rng),
                kind: FaultKind::Death,
            });
        }
        for i in 0..cfg.brownouts {
            events.push(FaultEvent {
                at_us: at(&mut rng),
                array: i,
                kind: FaultKind::Brownout {
                    pct: 5 + rng.next_below(20) as u8,
                },
            });
        }
        events.sort_by_key(|e| (e.at_us, e.array, e.kind.rank()));
        FaultPlan { events }
    }

    /// The schedule, ascending by `(at_us, array, kind)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is scheduled (a fault-free chaos session).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_sorted() {
        let cfg = ChaosConfig::default();
        let a = FaultPlan::generate(&cfg);
        let b = FaultPlan::generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(
            a.len(),
            cfg.stuck_at + cfg.transients + cfg.reconfig + cfg.deaths + cfg.brownouts
        );
        assert!(a.events().windows(2).all(|w| w[0].at_us <= w[1].at_us));
        let c = FaultPlan::generate(&ChaosConfig {
            seed: 8,
            ..ChaosConfig::default()
        });
        assert_ne!(a, c, "a different seed must move the plan");
    }

    #[test]
    fn events_land_inside_the_middle_of_the_window() {
        let cfg = ChaosConfig {
            duration_us: 10_000,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::generate(&cfg);
        for e in plan.events() {
            assert!(e.at_us >= 1_000 && e.at_us < 9_000, "{e:?}");
            if let FaultKind::StuckAt { until_us, .. } = e.kind {
                assert!(until_us > e.at_us);
            }
            if let FaultKind::Transient { bits } = e.kind {
                assert_ne!(bits, 0);
            }
        }
    }
}
