//! # dsra-chaos — deterministic fault injection with detection and recovery
//!
//! Every layer below this one assumes the arrays compute correctly; real
//! reconfigurable fabric does not always oblige — lanes stick, upsets
//! flip bits, configuration writes land corrupted, arrays die, batteries
//! brown out. This crate makes the streaming stack *survive* that, and
//! proves it deterministically (DESIGN.md §13):
//!
//! * a **fault plan** ([`FaultPlan`]): a seeded schedule of virtual-time
//!   faults — stuck-at lanes with self-clearing windows, single-execution
//!   transients, corrupted configuration writes, array death, battery
//!   brownout steps — the same seed always breaks the same things at the
//!   same instants;
//! * an **injector** ([`ChaosBackend`] via [`install_chaos`]): a
//!   [`dsra_backend::Backend`] decorator corrupting result checksums with
//!   the simulator's stuck-at or/and mask semantics, while timing stays
//!   honest — silent data corruption, exactly the failure detection has
//!   to earn its keep against;
//! * **detection** ([`ChaosHook`]): golden spot checks — every Nth served
//!   job is re-verified against [`dsra_backend::GoldenBackend`] and any
//!   mismatch becomes a structured [`dsra_backend::Divergence`];
//! * **recovery**: bounded virtual-time retry with backoff on a
//!   *different* array, K-consecutive-divergence quarantine (bitstream
//!   evicted, placement excluded, the online monitor alerted through the
//!   `ArrayQuarantine` trace event) and periodic probes that re-admit
//!   arrays once healthy;
//! * the **E15 experiment** ([`serve_with_chaos`]): the E13 stream under
//!   a fault plan, recovery-on vs fault-oblivious — corrupt results
//!   served, useful goodput, recovery overhead — byte-deterministic per
//!   seed (`chaos_serve`, `BENCH_chaos.json`).
//!
//! ```
//! use dsra_chaos::{serve_with_chaos, ChaosConfig, FaultPlan, RecoveryConfig};
//! use dsra_runtime::{RuntimeConfig, SocRuntime};
//! use dsra_service::{standard_tenants, ServiceConfig, TraceConfig};
//!
//! # fn main() -> Result<(), dsra_core::error::CoreError> {
//! let mut runtime = SocRuntime::new(RuntimeConfig::default())?;
//! let trace = TraceConfig {
//!     tenants: standard_tenants(2, 400),
//!     duration_us: 4_000,
//!     ..Default::default()
//! };
//! let plan = FaultPlan::generate(&ChaosConfig {
//!     duration_us: trace.duration_us,
//!     ..Default::default()
//! });
//! let report = serve_with_chaos(
//!     &mut runtime,
//!     &trace,
//!     &ServiceConfig::default(),
//!     &plan,
//!     RecoveryConfig::default(),
//! )?;
//! // Per-job spot checks withhold every corrupt result.
//! assert_eq!(report.corrupt_served, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod plan;
pub mod recover;
pub mod session;

pub use fault::{install_chaos, ChaosBackend, ChaosState};
pub use plan::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};
pub use recover::{ChaosHook, RecoveryConfig, RecoveryCounts};
pub use session::{assemble, serve_with_chaos, ChaosReport};
