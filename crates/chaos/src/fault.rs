//! The fault-injection surface: a shared [`ChaosState`] holding each
//! array's active faults, and the [`ChaosBackend`] decorator that applies
//! them at the [`Backend`] execution boundary.
//!
//! Corruption happens on the *checksum* — the deterministic output digest
//! every served result carries — with the same or/and mask semantics the
//! cycle-level simulator uses for net-level stuck-at faults
//! (`dsra_sim::StuckFault`): a stuck lane is forced on every execution,
//! a transient XORs one execution, a dead array returns deterministic
//! garbage. Timing is left honest (`exec_cycles` pass through), so a
//! faulty array still *looks* healthy to the scheduler — only the data
//! is wrong, which is exactly what makes silent corruption dangerous and
//! detection worth paying for.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use dsra_backend::Backend;
use dsra_core::error::Result;
use dsra_core::report::ExecOutcome;
use dsra_dct::DaParams;
use dsra_runtime::SocRuntime;
use dsra_video::JobSpec;

use crate::plan::{FaultEvent, FaultKind};

/// Deterministic garbage fold for a dead array's output.
const DEATH_SALT: u64 = 0xDEAD_A77A_DEAD_A77A;
/// Deterministic fold for a corrupted configuration plane.
const RECONFIG_SALT: u64 = 0xBAD0_C0DE_BAD0_C0DE;

/// One array's active faults.
#[derive(Debug, Clone, Default)]
struct ArrayFaults {
    /// Active stuck-at lanes: `(bit, high, until_us)`, in injection
    /// order (later faults win, as in the simulator's sequential
    /// replay).
    stuck: Vec<(u8, bool, u64)>,
    /// Pending transient mask — XORed into exactly one execution.
    transient: u64,
    /// `true` while the array's configuration plane is corrupted.
    reconfig: bool,
    /// `true` once the array is dead.
    dead: bool,
}

impl ArrayFaults {
    /// Whether any fault would corrupt an execution at `now_us`.
    fn is_faulty(&self, now_us: u64) -> bool {
        self.dead
            || self.reconfig
            || self.transient != 0
            || self.stuck.iter().any(|&(_, _, until)| until > now_us)
    }
}

/// The mutable fault state behind [`ChaosState`].
#[derive(Debug, Default)]
pub struct ChaosCore {
    now_us: u64,
    arrays: Vec<ArrayFaults>,
    /// Ground truth per job id: was the *latest* execution of this job
    /// corrupted? (Retries overwrite — what matters is whether the
    /// result that could reach a tenant is corrupt.)
    last_corrupt: BTreeMap<u32, bool>,
    corrupt_execs: u64,
    total_execs: u64,
}

impl ChaosCore {
    fn corrupt(&mut self, array: usize, job: u32, checksum: u64) -> u64 {
        self.total_execs += 1;
        let now_us = self.now_us;
        let Some(f) = self.arrays.get_mut(array) else {
            self.last_corrupt.insert(job, false);
            return checksum;
        };
        let mut v = checksum;
        if f.dead {
            v = v.rotate_left(17) ^ DEATH_SALT;
        }
        if f.reconfig {
            v = v.rotate_left(5) ^ RECONFIG_SALT;
        }
        // Stuck lanes compose exactly like the simulator's sequential
        // fault replay: later injections win on a contested bit.
        for &(bit, high, until_us) in &f.stuck {
            if until_us <= now_us {
                continue; // intermittent fault, currently self-cleared
            }
            let mask = 1u64 << bit;
            if high {
                v |= mask;
            } else {
                v &= !mask;
            }
        }
        if f.transient != 0 {
            v ^= f.transient;
            f.transient = 0; // single-execution upset
        }
        let corrupted = v != checksum;
        self.corrupt_execs += u64::from(corrupted);
        self.last_corrupt.insert(job, corrupted);
        v
    }
}

/// Shared handle to the fault state: the recovery hook arms faults and
/// probes through it, every [`ChaosBackend`] corrupts through it.
#[derive(Debug, Clone, Default)]
pub struct ChaosState(Arc<Mutex<ChaosCore>>);

impl ChaosState {
    /// Fresh, fault-free state for a pool of `arrays`.
    pub fn new(arrays: usize) -> Self {
        ChaosState(Arc::new(Mutex::new(ChaosCore {
            arrays: vec![ArrayFaults::default(); arrays],
            ..ChaosCore::default()
        })))
    }

    fn lock(&self) -> MutexGuard<'_, ChaosCore> {
        self.0.lock().expect("chaos state lock poisoned")
    }

    /// Advances the fault clock (stuck-at windows are judged against it).
    pub fn set_now(&self, now_us: u64) {
        self.lock().now_us = now_us;
    }

    /// Arms one scheduled fault. Brownouts are battery-side and ignored
    /// here (the hook drains the battery directly).
    pub fn apply(&self, ev: &FaultEvent) {
        let mut core = self.lock();
        let Some(f) = core.arrays.get_mut(ev.array) else {
            return;
        };
        match ev.kind {
            FaultKind::StuckAt {
                bit,
                high,
                until_us,
            } => f.stuck.push((bit, high, until_us)),
            FaultKind::Transient { bits } => f.transient ^= bits,
            FaultKind::ReconfigCorrupt => f.reconfig = true,
            FaultKind::Death => f.dead = true,
            FaultKind::Brownout { .. } => {}
        }
    }

    /// Quarantine side effect: the array's bitstream was evicted, so a
    /// corrupted configuration plane is gone (its next load is clean),
    /// and any armed transient is discharged. Stuck-at windows and death
    /// are physical and survive.
    pub fn on_quarantine(&self, array: usize) {
        let mut core = self.lock();
        if let Some(f) = core.arrays.get_mut(array) {
            f.reconfig = false;
            f.transient = 0;
        }
    }

    /// The probe's verdict: would an execution on `array` corrupt right
    /// now? (`at_us` is the probe instant — intermittent stuck-at faults
    /// may have self-cleared by then.)
    pub fn is_faulty(&self, array: usize, at_us: u64) -> bool {
        let core = self.lock();
        core.arrays.get(array).is_some_and(|f| f.is_faulty(at_us))
    }

    /// Whether the latest execution of `job` delivered a corrupt
    /// checksum — the ground-truth oracle `corrupt_served` accounting
    /// checks served outcomes against.
    pub fn was_last_corrupt(&self, job: u32) -> bool {
        self.lock().last_corrupt.get(&job).copied().unwrap_or(false)
    }

    /// `(corrupt, total)` executions the decorators have seen.
    pub fn exec_counts(&self) -> (u64, u64) {
        let core = self.lock();
        (core.corrupt_execs, core.total_execs)
    }
}

/// The fault-injecting [`Backend`] decorator: executes the inner backend
/// unchanged, then corrupts the checksum per the shared fault state.
pub struct ChaosBackend {
    array: usize,
    inner: Box<dyn Backend>,
    state: ChaosState,
}

impl ChaosBackend {
    /// Decorates `inner` as pool array `array`.
    pub fn new(array: usize, inner: Box<dyn Backend>, state: ChaosState) -> Self {
        ChaosBackend {
            array,
            inner,
            state,
        }
    }
}

impl Backend for ChaosBackend {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn execute(
        &mut self,
        params: DaParams,
        job: &JobSpec,
        kernel_name: &str,
    ) -> Result<ExecOutcome> {
        let outcome = self.inner.execute(params, job, kernel_name)?;
        let checksum = self
            .state
            .lock()
            .corrupt(self.array, job.id, outcome.checksum);
        Ok(ExecOutcome {
            checksum,
            ..outcome
        })
    }
}

/// Interposes a [`ChaosBackend`] on every array of `runtime` and returns
/// the shared state the recovery hook drives. Call once per runtime (a
/// second call would stack decorators).
pub fn install_chaos(runtime: &mut SocRuntime) -> ChaosState {
    let state = ChaosState::new(runtime.engine_count());
    let handle = state.clone();
    runtime.wrap_engines(move |array, inner| {
        Box::new(ChaosBackend::new(array, inner, handle.clone()))
    });
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedBackend(u64);
    impl Backend for FixedBackend {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn execute(&mut self, _: DaParams, _: &JobSpec, _: &str) -> Result<ExecOutcome> {
            Ok(ExecOutcome {
                exec_cycles: 100,
                checksum: self.0,
            })
        }
    }

    fn job(id: u32) -> JobSpec {
        JobSpec {
            id,
            arrival_cycle: 0,
            class: dsra_video::ServiceClass::Quality,
            payload: dsra_video::JobPayload::DctBlocks {
                blocks: 1,
                amplitude: 64,
            },
            seed: 1,
        }
    }

    fn exec(b: &mut ChaosBackend, id: u32) -> u64 {
        b.execute(DaParams::precise(), &job(id), "dct_basic")
            .unwrap()
            .checksum
    }

    #[test]
    fn stuck_at_forces_the_lane_until_it_expires() {
        let state = ChaosState::new(1);
        let mut b = ChaosBackend::new(0, Box::new(FixedBackend(0)), state.clone());
        state.apply(&FaultEvent {
            at_us: 10,
            array: 0,
            kind: FaultKind::StuckAt {
                bit: 3,
                high: true,
                until_us: 100,
            },
        });
        state.set_now(50);
        assert_eq!(exec(&mut b, 0), 1 << 3);
        assert!(state.was_last_corrupt(0));
        assert!(state.is_faulty(0, 50));
        // Past the window the intermittent fault self-clears.
        state.set_now(100);
        assert_eq!(exec(&mut b, 1), 0);
        assert!(!state.was_last_corrupt(1));
        assert!(!state.is_faulty(0, 100));
    }

    #[test]
    fn stuck_low_on_an_already_low_lane_is_a_silent_no_op() {
        let state = ChaosState::new(1);
        let mut b = ChaosBackend::new(0, Box::new(FixedBackend(0)), state.clone());
        state.apply(&FaultEvent {
            at_us: 0,
            array: 0,
            kind: FaultKind::StuckAt {
                bit: 5,
                high: false,
                until_us: 100,
            },
        });
        assert_eq!(exec(&mut b, 0), 0);
        assert!(!state.was_last_corrupt(0), "no bit moved, no corruption");
    }

    #[test]
    fn transient_flips_exactly_one_execution() {
        let state = ChaosState::new(1);
        let mut b = ChaosBackend::new(0, Box::new(FixedBackend(0xFF)), state.clone());
        state.apply(&FaultEvent {
            at_us: 0,
            array: 0,
            kind: FaultKind::Transient { bits: 0b101 },
        });
        assert_eq!(exec(&mut b, 0), 0xFF ^ 0b101);
        assert_eq!(exec(&mut b, 1), 0xFF, "cleared after one execution");
        let (corrupt, total) = state.exec_counts();
        assert_eq!((corrupt, total), (1, 2));
    }

    #[test]
    fn death_is_permanent_and_reconfig_clears_on_quarantine() {
        let state = ChaosState::new(2);
        let mut dead = ChaosBackend::new(0, Box::new(FixedBackend(7)), state.clone());
        let mut bad_cfg = ChaosBackend::new(1, Box::new(FixedBackend(7)), state.clone());
        state.apply(&FaultEvent {
            at_us: 0,
            array: 0,
            kind: FaultKind::Death,
        });
        state.apply(&FaultEvent {
            at_us: 0,
            array: 1,
            kind: FaultKind::ReconfigCorrupt,
        });
        assert_ne!(exec(&mut dead, 0), 7);
        assert_ne!(exec(&mut bad_cfg, 1), 7);
        state.on_quarantine(0);
        state.on_quarantine(1);
        assert!(state.is_faulty(0, 1_000_000), "death survives quarantine");
        assert!(!state.is_faulty(1, 0), "reconfig clears with the eviction");
        assert_ne!(exec(&mut dead, 2), 7);
        assert_eq!(exec(&mut bad_cfg, 3), 7);
    }
}
