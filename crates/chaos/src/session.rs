//! One-call chaos sessions and their report — the E15 entry point.

use dsra_core::error::Result;
use dsra_core::rng::fnv1a_fold;
use dsra_runtime::SocRuntime;
use dsra_service::{
    generate_trace, serve_requests_with_hook, ServiceConfig, ServiceReport, TraceConfig,
};

use crate::fault::{install_chaos, ChaosState};
use crate::plan::FaultPlan;
use crate::recover::{ChaosHook, RecoveryConfig, RecoveryCounts};

/// A chaos session's outcome: the ordinary SLO report plus the
/// corruption ground truth only the injector can know.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The dispatch/SLO report of the session.
    pub service: ServiceReport,
    /// Injection and recovery tallies.
    pub counts: RecoveryCounts,
    /// Served requests whose delivered checksum was corrupt — the number
    /// that must be zero when recovery is on with a per-job spot check.
    pub corrupt_served: usize,
    /// Request ids behind [`ChaosReport::corrupt_served`] (ascending).
    pub corrupt_ids: std::collections::BTreeSet<u32>,
    /// Corrupted executions across the session (including the ones
    /// detection caught and retried away).
    pub corrupt_execs: u64,
    /// Total executions the fault decorators saw.
    pub total_execs: u64,
}

impl ChaosReport {
    /// Goodput that only counts *correct* results: served within SLO and
    /// not corrupt, as a percentage of submitted requests. The honest
    /// comparison metric between recovery-on and fault-oblivious arms —
    /// a corrupt frame served on time is not goodput.
    pub fn useful_goodput_pct(&self) -> f64 {
        if self.service.requests == 0 {
            return 100.0;
        }
        let useful =
            self.service.served - self.service.violations - self.corrupt_served_within_slo();
        useful as f64 * 100.0 / self.service.requests as f64
    }

    /// Corrupt-but-on-time serves (corrupt late ones are already counted
    /// out by the violation term).
    fn corrupt_served_within_slo(&self) -> usize {
        self.corrupt_outcome_ids()
            .iter()
            .filter(|&&id| !self.service.outcomes[id as usize].violated)
            .count()
    }

    /// Ids of served outcomes whose checksum was corrupt.
    pub fn corrupt_outcome_ids(&self) -> Vec<u32> {
        self.service
            .outcomes
            .iter()
            .filter(|o| !o.shed && !o.failed && self.corrupt_ids.contains(&o.id))
            .map(|o| o.id)
            .collect()
    }

    /// Deterministic digest over the session: dispatch digest, recovery
    /// tallies and corruption ground truth.
    pub fn digest(&self) -> u64 {
        let mut h = self.service.digest();
        for v in [
            self.counts.faults_injected,
            self.counts.divergences,
            self.counts.retries,
            self.counts.quarantines,
            self.counts.restores,
            self.counts.failed_jobs,
            self.corrupt_served as u64,
            self.corrupt_execs,
            self.total_execs,
        ] {
            h = fnv1a_fold(h, v);
        }
        h
    }
}

/// Runs one streaming session under `plan` with `recovery`: interposes
/// the fault decorators on every array, drives the dispatcher through a
/// [`ChaosHook`], and folds the corruption ground truth into the report.
///
/// The runtime must be fresh (the decorators stack if installed twice).
///
/// # Errors
/// See [`dsra_service::serve_requests`].
pub fn serve_with_chaos(
    runtime: &mut SocRuntime,
    trace_config: &TraceConfig,
    service: &ServiceConfig,
    plan: &FaultPlan,
    recovery: RecoveryConfig,
) -> Result<ChaosReport> {
    let state = install_chaos(runtime);
    let arrays = runtime.engine_count();
    let mut hook = ChaosHook::new(plan.clone(), state.clone(), arrays, recovery);
    let trace = generate_trace(trace_config);
    let service_report = serve_requests_with_hook(
        runtime,
        &trace_config.tenants,
        trace_config.duration_us,
        &trace,
        service,
        &mut hook,
    )?;
    Ok(assemble(service_report, hook.counts(), &state))
}

/// Builds the [`ChaosReport`] for a finished session (exposed for
/// callers that drive [`ChaosHook`] themselves).
pub fn assemble(service: ServiceReport, counts: RecoveryCounts, state: &ChaosState) -> ChaosReport {
    let corrupt_ids: std::collections::BTreeSet<u32> = service
        .outcomes
        .iter()
        .filter(|o| !o.shed && !o.failed && state.was_last_corrupt(o.id))
        .map(|o| o.id)
        .collect();
    let (corrupt_execs, total_execs) = state.exec_counts();
    ChaosReport {
        corrupt_served: corrupt_ids.len(),
        corrupt_ids,
        service,
        counts,
        corrupt_execs,
        total_execs,
    }
}
