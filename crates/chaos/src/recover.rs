//! The recovery side: a [`DispatchHook`] that injects the plan on
//! schedule, spot-checks served results against the golden reference,
//! retries diverged jobs on a different array, and quarantines arrays
//! that keep diverging — with periodic probes that re-admit them once
//! healthy.
//!
//! Everything runs in virtual time through the dispatcher's event loop:
//! fault instants and probe instants are folded into the loop's time
//! advance ([`ChaosHook::next_event_us`]), retries are re-dispatches at
//! a backed-off virtual arrival, and all bookkeeping is integer state —
//! so a chaos session is byte-identical across runs for the same seed.

use dsra_backend::{Backend, Divergence, GoldenBackend};
use dsra_core::error::Result;
use dsra_runtime::{SocRuntime, StreamedJob};
use dsra_service::DispatchHook;
use dsra_trace::TraceEvent;
use dsra_video::{JobPayload, JobSpec};

use crate::fault::ChaosState;
use crate::plan::{FaultKind, FaultPlan};

/// Recovery knobs. [`RecoveryConfig::default`] is the full recovery
/// stack; [`RecoveryConfig::oblivious`] switches every mechanism off —
/// the fault-*oblivious* baseline E15 compares against, which serves
/// whatever the arrays produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Re-verify every Nth served job against the golden reference
    /// (1 = every job); 0 disables detection entirely. Retries, when
    /// they happen, are always verified regardless of the cadence.
    pub spot_check_every: u64,
    /// Retry budget per job after a detected divergence.
    pub max_retries: u32,
    /// Virtual-µs backoff before a retry re-dispatches (scales linearly
    /// with the attempt number).
    pub retry_backoff_us: u64,
    /// Consecutive divergences on one array before it is quarantined;
    /// 0 disables quarantine.
    pub quarantine_strikes: u32,
    /// Virtual µs between probes of a quarantined array.
    pub probe_interval_us: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            spot_check_every: 1,
            max_retries: 3,
            retry_backoff_us: 20,
            quarantine_strikes: 2,
            probe_interval_us: 500,
        }
    }
}

impl RecoveryConfig {
    /// No detection, no retries, no quarantine: serve whatever comes
    /// out of the arrays.
    pub fn oblivious() -> Self {
        RecoveryConfig {
            spot_check_every: 0,
            max_retries: 0,
            retry_backoff_us: 0,
            quarantine_strikes: 0,
            probe_interval_us: 0,
        }
    }
}

/// Recovery-side tallies (the trace carries the same story as events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Faults injected on schedule.
    pub faults_injected: u64,
    /// Divergences the spot checks caught.
    pub divergences: u64,
    /// Retry dispatches.
    pub retries: u64,
    /// Arrays quarantined.
    pub quarantines: u64,
    /// Quarantined arrays probed healthy and re-admitted.
    pub restores: u64,
    /// Jobs failed after exhausting the retry budget.
    pub failed_jobs: u64,
}

/// The chaos [`DispatchHook`]: fault injection plus the full
/// detect/retry/quarantine/probe recovery loop.
pub struct ChaosHook {
    plan: FaultPlan,
    next_fault: usize,
    state: ChaosState,
    recovery: RecoveryConfig,
    golden: GoldenBackend,
    /// Consecutive-divergence strikes per array.
    strikes: Vec<u32>,
    /// Next probe instant per quarantined array (µs).
    probe_at: Vec<Option<u64>>,
    /// First-attempt dispatches seen, for the spot-check cadence.
    dispatched: u64,
    counts: RecoveryCounts,
}

impl ChaosHook {
    /// A hook for `plan` over a pool of `arrays`, driving `state` (from
    /// [`crate::install_chaos`] on the same runtime).
    pub fn new(
        plan: FaultPlan,
        state: ChaosState,
        arrays: usize,
        recovery: RecoveryConfig,
    ) -> Self {
        ChaosHook {
            plan,
            next_fault: 0,
            state,
            recovery,
            golden: GoldenBackend::default(),
            strikes: vec![0; arrays],
            probe_at: vec![None; arrays],
            dispatched: 0,
            counts: RecoveryCounts::default(),
        }
    }

    /// The tallies so far.
    pub fn counts(&self) -> RecoveryCounts {
        self.counts
    }

    fn cycles_per_us(runtime: &SocRuntime) -> u64 {
        (runtime.config().soc.clock_mhz.round() as u64).max(1)
    }

    fn payload_kind(payload: &JobPayload) -> dsra_runtime::ArrayKind {
        match payload {
            JobPayload::MeSearch { .. } => dsra_runtime::ArrayKind::Me,
            _ => dsra_runtime::ArrayKind::Da,
        }
    }

    /// Quarantines `array` unless it is the last healthy array of its
    /// kind (a degraded pool keeps serving — jobs that keep diverging
    /// there fail per-job instead of stalling the whole service).
    fn try_quarantine(&mut self, runtime: &mut SocRuntime, array: usize, now_cycle: u64) -> bool {
        let status = runtime.stream_array_status();
        let kind = status[array].kind;
        let healthy_peers = status
            .iter()
            .filter(|a| a.kind == kind && !a.quarantined && a.id != array)
            .count();
        if healthy_peers == 0 || !runtime.stream_quarantine(array, now_cycle) {
            return false;
        }
        self.counts.quarantines += 1;
        // The eviction just dropped the (possibly corrupt) bitstream.
        self.state.on_quarantine(array);
        if runtime.trace_sink().enabled() {
            runtime.trace_sink().emit(TraceEvent::ArrayQuarantine {
                t: now_cycle,
                array: array as u32,
                strikes: self.strikes[array],
            });
        }
        true
    }
}

impl DispatchHook for ChaosHook {
    fn on_tick(&mut self, runtime: &mut SocRuntime, now_us: u64) {
        let cyc = Self::cycles_per_us(runtime);
        self.state.set_now(now_us);
        // Land every fault scheduled at or before this instant. The
        // dispatcher's clock visits each fault instant exactly (they are
        // folded into next_event_us), so `t` below is the scheduled time.
        while let Some(ev) = self.plan.events().get(self.next_fault) {
            if ev.at_us > now_us {
                break;
            }
            let ev = *ev;
            self.next_fault += 1;
            self.counts.faults_injected += 1;
            if let FaultKind::Brownout { pct } = ev.kind {
                let step = runtime.config().power.battery_capacity_j * f64::from(pct) / 100.0;
                runtime.drain_battery(step);
            } else {
                self.state.apply(&ev);
            }
            if runtime.trace_sink().enabled() {
                runtime.trace_sink().emit(TraceEvent::FaultInjected {
                    t: ev.at_us * cyc,
                    array: ev.array as u32,
                    kind: ev.kind.tag(),
                });
            }
        }
        // Probe due quarantined arrays; re-admit the ones that come back
        // clean (stuck-at windows expire, evicted reconfig corruption is
        // gone; death never probes healthy).
        for array in 0..self.probe_at.len() {
            let Some(due) = self.probe_at[array] else {
                continue;
            };
            if due > now_us {
                continue;
            }
            if self.state.is_faulty(array, now_us) {
                self.probe_at[array] = Some(now_us + self.recovery.probe_interval_us.max(1));
            } else if runtime.stream_restore(array, now_us * cyc) {
                self.probe_at[array] = None;
                self.strikes[array] = 0;
                self.counts.restores += 1;
                if runtime.trace_sink().enabled() {
                    runtime.trace_sink().emit(TraceEvent::ArrayRestore {
                        t: now_us * cyc,
                        array: array as u32,
                    });
                }
            } else {
                self.probe_at[array] = None; // not actually quarantined
            }
        }
    }

    fn next_event_us(&mut self, now_us: u64) -> Option<u64> {
        let fault = self
            .plan
            .events()
            .get(self.next_fault)
            .map(|e| e.at_us)
            .filter(|&t| t > now_us);
        let probe = self
            .probe_at
            .iter()
            .filter_map(|p| p.filter(|&t| t > now_us))
            .min();
        match (fault, probe) {
            (Some(f), Some(p)) => Some(f.min(p)),
            (f, p) => f.or(p),
        }
    }

    fn dispatch(
        &mut self,
        runtime: &mut SocRuntime,
        job: &JobSpec,
        now_us: u64,
    ) -> Result<Option<StreamedJob>> {
        let cyc = Self::cycles_per_us(runtime);
        let kind = Self::payload_kind(&job.payload);
        self.dispatched += 1;
        let cadence = self.recovery.spot_check_every;
        let check_first = cadence > 0 && self.dispatched.is_multiple_of(cadence);
        let mut exclude: Option<usize> = None;
        let mut arrival_cycle = job.arrival_cycle;
        for attempt in 0..=self.recovery.max_retries {
            // A fully-quarantined pool cannot place the job at all.
            if !runtime
                .stream_array_status()
                .iter()
                .any(|a| a.kind == kind && !a.quarantined)
            {
                self.counts.failed_jobs += 1;
                return Ok(None);
            }
            let attempt_spec = JobSpec {
                arrival_cycle,
                ..*job
            };
            let served = runtime.stream_serve_job_excluding(&attempt_spec, exclude)?;
            // Detection: golden spot-check on the cadence; every retry is
            // verified (the retry only exists because of a divergence).
            if !(check_first || attempt > 0) {
                self.strikes[served.array] = 0;
                return Ok(Some(served));
            }
            let expected =
                self.golden
                    .execute(runtime.config().da_params, &attempt_spec, &served.kernel)?;
            let got = dsra_core::report::ExecOutcome {
                exec_cycles: expected.exec_cycles,
                checksum: served.checksum,
            };
            let Some(divergence) =
                Divergence::compare(&attempt_spec, &served.kernel, expected, got)
            else {
                self.strikes[served.array] = 0;
                return Ok(Some(served));
            };
            // Diverged: trace it, strike the array, maybe quarantine,
            // then retry elsewhere with a backed-off virtual arrival.
            self.counts.divergences += 1;
            self.strikes[served.array] += 1;
            if runtime.trace_sink().enabled() {
                runtime.trace_sink().emit(TraceEvent::DivergenceDetected {
                    t: served.end_cycle,
                    job: divergence.job,
                    array: served.array as u32,
                });
            }
            let strikes = self.recovery.quarantine_strikes;
            if strikes > 0
                && self.strikes[served.array] >= strikes
                && self.try_quarantine(runtime, served.array, served.end_cycle)
            {
                self.probe_at[served.array] = Some(
                    now_us.max(served.end_cycle / cyc) + self.recovery.probe_interval_us.max(1),
                );
            }
            if attempt == self.recovery.max_retries {
                break;
            }
            let backoff = self.recovery.retry_backoff_us * u64::from(attempt + 1) * cyc;
            arrival_cycle = served.end_cycle + backoff;
            self.counts.retries += 1;
            if runtime.trace_sink().enabled() {
                runtime.trace_sink().emit(TraceEvent::JobRetry {
                    t: arrival_cycle,
                    job: job.id,
                    attempt: attempt + 1,
                });
            }
            exclude = Some(served.array);
        }
        self.counts.failed_jobs += 1;
        Ok(None)
    }
}
