//! Integration gates for the chaos stack: determinism, the
//! recovery-vs-oblivious comparison, monitor integration, and the
//! conservation property (admitted == served + shed + failed, with no
//! corrupt checksum reaching the SLO report when recovery is on).

use dsra_chaos::{serve_with_chaos, ChaosConfig, FaultPlan, RecoveryConfig};
use dsra_monitor::MonitorHandle;
use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
use dsra_service::{install_monitor, standard_tenants, ServiceConfig, TraceConfig};
use dsra_trace::NoopSink;
use proptest::prelude::*;

fn runtime() -> SocRuntime {
    // Two mappings keep debug-mode construction cheap (the full set is
    // exercised by the release-mode tier-1 gate).
    SocRuntime::new(RuntimeConfig {
        da_arrays: 2,
        me_arrays: 2,
        mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
        ..Default::default()
    })
    .unwrap()
}

fn trace(duration_us: u64) -> TraceConfig {
    TraceConfig {
        tenants: standard_tenants(3, 150),
        duration_us,
        ..Default::default()
    }
}

fn plan(seed: u64, duration_us: u64) -> FaultPlan {
    FaultPlan::generate(&ChaosConfig {
        seed,
        duration_us,
        arrays: 4,
        ..Default::default()
    })
}

#[test]
fn chaos_sessions_are_byte_deterministic() {
    let trace = trace(6_000);
    let plan = plan(7, 6_000);
    let service = ServiceConfig::default();
    let a = serve_with_chaos(
        &mut runtime(),
        &trace,
        &service,
        &plan,
        RecoveryConfig::default(),
    )
    .unwrap();
    let b = serve_with_chaos(
        &mut runtime(),
        &trace,
        &service,
        &plan,
        RecoveryConfig::default(),
    )
    .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    // The plan actually fired and detection actually caught corruption.
    assert_eq!(a.counts.faults_injected as usize, plan.len());
    assert!(a.counts.divergences > 0, "plan must provoke divergences");
}

#[test]
fn recovery_serves_no_corrupt_results_and_beats_oblivious_goodput() {
    let trace = trace(6_000);
    let plan = plan(7, 6_000);
    let service = ServiceConfig::default();
    let recovered = serve_with_chaos(
        &mut runtime(),
        &trace,
        &service,
        &plan,
        RecoveryConfig::default(),
    )
    .unwrap();
    let oblivious = serve_with_chaos(
        &mut runtime(),
        &trace,
        &service,
        &plan,
        RecoveryConfig::oblivious(),
    )
    .unwrap();
    // The oblivious arm serves silently corrupt results; recovery
    // withholds every one (per-job spot check).
    assert!(oblivious.corrupt_served > 0, "plan too gentle to matter");
    assert_eq!(recovered.corrupt_served, 0);
    assert!(recovered.counts.retries > 0);
    assert!(
        recovered.counts.quarantines > 0,
        "a dead array must strike out"
    );
    assert!(
        recovered.useful_goodput_pct() > oblivious.useful_goodput_pct(),
        "recovery must win on corruption-aware goodput: {:.1}% vs {:.1}%",
        recovered.useful_goodput_pct(),
        oblivious.useful_goodput_pct()
    );
    // Oblivious never detects, retries, or quarantines.
    assert_eq!(oblivious.counts.divergences, 0);
    assert_eq!(oblivious.counts.retries, 0);
    assert_eq!(oblivious.counts.quarantines, 0);
    assert_eq!(oblivious.service.failed, 0);
}

#[test]
fn an_empty_plan_changes_nothing() {
    use dsra_service::serve_trace;
    let trace = trace(4_000);
    let service = ServiceConfig::default();
    let plain = serve_trace(&mut runtime(), &trace, &service).unwrap();
    let chaos = serve_with_chaos(
        &mut runtime(),
        &trace,
        &service,
        &FaultPlan::default(),
        RecoveryConfig::default(),
    )
    .unwrap();
    // No faults: the hooked loop, the decorators and the per-job golden
    // spot checks are all behaviour-invisible.
    assert_eq!(chaos.service.digest(), plain.digest());
    assert_eq!(chaos.corrupt_served, 0);
    assert_eq!(chaos.counts.divergences, 0);
    assert_eq!(chaos.service.failed, 0);
}

#[test]
fn quarantine_alerts_reach_the_online_monitor() {
    let trace = trace(6_000);
    let plan = plan(7, 6_000);
    let mut rt = runtime();
    let handle: MonitorHandle = install_monitor(&mut rt, &trace.tenants, Box::new(NoopSink));
    let service = ServiceConfig {
        monitor: Some(handle.clone()),
        ..Default::default()
    };
    let report =
        serve_with_chaos(&mut rt, &trace, &service, &plan, RecoveryConfig::default()).unwrap();
    let counts = handle.chaos_counts();
    assert_eq!(counts.faults, report.counts.faults_injected);
    assert_eq!(counts.divergences, report.counts.divergences);
    assert_eq!(counts.retries, report.counts.retries);
    assert_eq!(counts.quarantines, report.counts.quarantines);
    assert_eq!(counts.restores, report.counts.restores);
    // A dead array never probes healthy, so it is still quarantined at
    // session end — and a quarantined array is an active alert, which is
    // what health-driven admission keys off.
    assert!(!handle.quarantined_arrays().is_empty());
    assert!(handle.final_snapshot().alerts_active >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Satellite 3: request conservation and the no-corrupt-results
    // invariant hold across fault plans, not just the pinned seed.
    #[test]
    fn every_admitted_request_is_served_shed_or_failed(seed in 0u64..1_000) {
        let trace = trace(4_000);
        let plan = plan(seed, 4_000);
        let report = serve_with_chaos(
            &mut runtime(),
            &trace,
            &ServiceConfig::default(),
            &plan,
            RecoveryConfig::default(),
        )
        .unwrap();
        let s = &report.service;
        prop_assert_eq!(s.requests, s.served + s.shed + s.failed);
        let served = s.outcomes.iter().filter(|o| !o.shed && !o.failed).count();
        let shed = s.outcomes.iter().filter(|o| o.shed).count();
        let failed = s.outcomes.iter().filter(|o| o.failed).count();
        prop_assert_eq!((served, shed, failed), (s.served, s.shed, s.failed));
        for o in &s.outcomes {
            prop_assert!(!(o.shed && o.failed), "shed and failed are exclusive");
        }
        // With a per-job spot check, no corrupt checksum reaches the
        // SLO report: the ground-truth oracle agrees with zero.
        prop_assert_eq!(report.corrupt_served, 0);
        prop_assert!(report.corrupt_outcome_ids().is_empty());
    }
}
