//! Inverse DCT on the DA array.
//!
//! A decoder needs the IDCT next to the forward transform; the paper's
//! reference \[8\] (an online CORDIC 2-D IDCT) shows the authors intended
//! the same fabric to host it. Since DA absorbs any fixed-coefficient
//! linear map, the orthonormal inverse (DCT-III, the transpose of the
//! forward matrix) maps onto the identical Fig.-4 structure: 8 serial
//! registers, 8 ROMs, 8 shift accumulators. Reconfiguring between forward
//! and inverse transforms is purely a ROM-content rewrite — measured by
//! the reconfiguration tests below.

use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};

use crate::da::{add_controls, da_lane, encode_sample, serializer, DaParams};
use crate::harness::{run_single_phase, BlockIo, DctImpl};
use crate::reference;

/// Bit-serial DA inverse DCT (structure of Fig. 4, transposed coefficients).
#[derive(Debug)]
pub struct BasicIdct {
    netlist: Netlist,
    params: DaParams,
    cycles: u64,
    io: BlockIo,
}

impl BasicIdct {
    /// Builds the inverse mapping.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        let mut nl = Netlist::new("basic-idct");
        let ctl = add_controls(&mut nl)?;
        let mut srs: Vec<NodeId> = Vec::with_capacity(8);
        for u in 0..8 {
            let x = nl.input(format!("x{u}"), params.input_bits)?;
            srs.push(serializer(
                &mut nl,
                &format!("sr{u}"),
                (x, "out"),
                params.input_bits,
                &ctl,
            )?);
        }
        let addr_parts: Vec<(NodeId, &str)> = srs.iter().map(|&n| (n, "q")).collect();
        let addr = nl.concat("addr", &addr_parts)?;
        for i in 0..8 {
            // Row i of the inverse = column i of the forward matrix.
            let coeffs: Vec<f64> = (0..8).map(|u| reference::dct_coeff(u, i)).collect();
            let (_, acc) = da_lane(
                &mut nl,
                &format!("lane{i}"),
                (addr, "out"),
                &coeffs,
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            let y = nl.output(format!("y{i}"), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }
        let io = BlockIo::new(&nl)?;
        Ok(BasicIdct {
            netlist: nl,
            params,
            cycles: u64::from(params.input_bits) + 2,
            io,
        })
    }

    /// Reconstructs 8 samples from 8 (integer-rounded) coefficients.
    ///
    /// # Errors
    /// Propagates driver errors.
    pub fn inverse(&self, coeffs: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = self.io.sim(&self.netlist);
        for (u, &v) in coeffs.iter().enumerate() {
            sim.drive(self.io.xs[u], encode_sample(v, self.params.input_bits));
        }
        run_single_phase(&mut sim, self.params.input_bits)?;
        let mut out = [0.0; 8];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self
                .params
                .decode_acc(sim.read(self.io.ys[i]), self.params.input_bits);
        }
        Ok(out)
    }
}

impl DctImpl for BasicIdct {
    fn name(&self) -> &'static str {
        "BASIC IDCT"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        self.inverse(x)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic_da::BasicDa;

    #[test]
    fn same_structure_as_forward() {
        let inv = BasicIdct::new(DaParams::precise()).unwrap();
        let r = inv.report();
        assert_eq!(r.table1_row(), [0, 0, 8, 8, 8]);
        assert_eq!(r.total_clusters(), 24);
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let fwd = BasicDa::new(DaParams::precise()).unwrap();
        let inv = BasicIdct::new(DaParams::precise()).unwrap();
        let x = [120i64, -80, 44, 9, -33, 71, -2, 15];
        let coeffs = fwd.transform(&x).unwrap();
        let rounded: [i64; 8] = std::array::from_fn(|u| coeffs[u].round() as i64);
        let back = inv.inverse(&rounded).unwrap();
        for (i, (orig, rec)) in x.iter().zip(back.iter()).enumerate() {
            assert!(
                (*orig as f64 - rec).abs() < 1.5,
                "sample {i}: {orig} vs {rec}"
            );
        }
    }

    #[test]
    fn inverse_matches_reference_idct() {
        let inv = BasicIdct::new(DaParams::precise()).unwrap();
        let coeffs = [200i64, -31, 55, 0, -12, 7, 99, -64];
        let hw = inv.inverse(&coeffs).unwrap();
        let cf: [f64; 8] = std::array::from_fn(|u| coeffs[u] as f64);
        let sw = reference::idct_1d(&cf);
        for (i, (h, s)) in hw.iter().zip(sw.iter()).enumerate() {
            assert!((h - s).abs() < 0.5, "sample {i}: {h} vs {s}");
        }
    }

    #[test]
    fn forward_to_inverse_is_a_rom_only_reconfiguration() {
        use dsra_core::prelude::*;
        // Same structure, different ROM contents: switching between the
        // forward and inverse transform rewrites memory frames only.
        let fwd = BasicDa::new(DaParams::precise()).unwrap();
        let inv = BasicIdct::new(DaParams::precise()).unwrap();
        let fabric = Fabric::da_array(16, 12, MeshSpec::mixed());
        let bs = |nl: &Netlist| {
            let p = place(nl, &fabric, PlacerOptions::default()).unwrap();
            let r = route(nl, &fabric, &p, RouterOptions::default()).unwrap();
            Bitstream::generate(nl, &fabric, &p, &r)
        };
        let bf = bs(fwd.netlist());
        let bi = bs(inv.netlist());
        let diff = bf.diff_bits(&bi);
        assert!(diff > 0, "contents must differ");
        // Far less than a full rewrite: structure and routing coincide.
        assert!(
            diff < bf.total_bits() / 2,
            "diff {diff} should be mostly ROM contents (total {})",
            bf.total_bits()
        );
    }
}
