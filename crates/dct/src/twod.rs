//! 2-D DCT by row-column decomposition on any of the 1-D hardware mappings.
//!
//! MPEG-4/H.263 use the 8×8 2-D DCT; the array computes it as eight row
//! transforms followed by eight column transforms, with the intermediate
//! coefficients re-quantised to the input width (a transpose memory in a
//! real system; the SoC controller's address generator here).

use dsra_core::error::Result;

use crate::harness::DctImpl;
use crate::reference::N;

/// Runs an 8×8 block through `imp` twice (rows then columns).
///
/// Intermediate values are rounded to integers before the column pass,
/// modelling the transpose-memory word width.
///
/// # Errors
/// Propagates driver errors from the underlying implementation.
pub fn dct_2d_hw(imp: &dyn DctImpl, block: &[[i64; N]; N]) -> Result<[[f64; N]; N]> {
    let mut rows = [[0.0; N]; N];
    for (r, row) in block.iter().enumerate() {
        rows[r] = imp.transform(row)?;
    }
    let mut out = [[0.0; N]; N];
    for c in 0..N {
        let col: [i64; N] = std::array::from_fn(|r| rows[r][c].round() as i64);
        let t = imp.transform(&col)?;
        for (r, v) in t.iter().enumerate() {
            out[r][c] = *v;
        }
    }
    Ok(out)
}

/// Total array cycles for one 8×8 block (16 one-dimensional transforms).
pub fn cycles_2d(imp: &dyn DctImpl) -> u64 {
    imp.cycles_per_block() * (2 * N as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic_da::BasicDa;
    use crate::da::DaParams;
    use crate::reference;

    #[test]
    fn two_d_matches_reference_on_texture_block() {
        let imp = BasicDa::new(DaParams::precise()).unwrap();
        let mut block = [[0i64; N]; N];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (((r * 37 + c * 101) % 255) as i64) - 128;
            }
        }
        let hw = dct_2d_hw(&imp, &block).unwrap();
        let blockf: [[f64; N]; N] =
            std::array::from_fn(|r| std::array::from_fn(|c| block[r][c] as f64));
        let sw = reference::dct_2d(&blockf);
        for r in 0..N {
            for c in 0..N {
                assert!(
                    (hw[r][c] - sw[r][c]).abs() < 3.0,
                    "({r},{c}): {} vs {}",
                    hw[r][c],
                    sw[r][c]
                );
            }
        }
    }

    #[test]
    fn cycles_scale_with_sixteen_transforms() {
        let imp = BasicDa::new(DaParams::precise()).unwrap();
        assert_eq!(cycles_2d(&imp), imp.cycles_per_block() * 16);
    }
}
