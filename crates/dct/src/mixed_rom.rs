//! §3.2 / Fig. 5 — the Mixed-ROM DCT: even/odd matrix split.
//!
//! Algebraic manipulation (Lee's decomposition, refs \[6\]\[7\] of the
//! paper) reduces the 8×8 DCT matrix to two 4×4 products on the butterfly
//! sums `a_n = x_n + x_{7-n}` and differences `b_n = x_n − x_{7-n}`. Each
//! 4-input DA unit needs a 16-word ROM — "16 times less than the previous
//! implementation, but some overhead has been incurred in the form of
//! adders".

use dsra_core::cluster::{AddShiftCfg, ClusterCfg};
use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};

use crate::da::{add_controls, da_lane, encode_sample, serializer, DaParams};
use crate::harness::{run_single_phase, BlockIo, DctImpl};
use crate::reference;

/// Internal butterfly datapath width (sign-extended from the input width).
pub(crate) const STAGE_WIDTH: u8 = 16;

/// The Fig.-5 Mixed-ROM implementation.
#[derive(Debug)]
pub struct MixedRom {
    netlist: Netlist,
    params: DaParams,
    stream_bits: u8,
    cycles: u64,
    io: BlockIo,
}

/// Builds the shared front half of the Mixed-ROM/SCC structures: inputs,
/// sign extension, and the a/b butterfly stage. Returns `(a, b)` adder and
/// subtracter nodes (outputs on port `y`).
pub(crate) fn build_butterfly_stage(
    nl: &mut Netlist,
    input_bits: u8,
) -> Result<([NodeId; 4], [NodeId; 4])> {
    let mut xs = Vec::with_capacity(8);
    for i in 0..8 {
        let x = nl.input(format!("x{i}"), input_bits)?;
        let se = nl.sign_extend(format!("se{i}"), (x, "out"), STAGE_WIDTH)?;
        xs.push(se);
    }
    let mut adds = [NodeId(0); 4];
    let mut subs = [NodeId(0); 4];
    for n in 0..4 {
        let add = nl.cluster(
            format!("add_a{n}"),
            ClusterCfg::AddShift(AddShiftCfg::Add {
                width: STAGE_WIDTH,
                serial: false,
            }),
        )?;
        nl.connect((xs[n], "out"), (add, "a"))?;
        nl.connect((xs[7 - n], "out"), (add, "b"))?;
        adds[n] = add;
        let sub = nl.cluster(
            format!("sub_b{n}"),
            ClusterCfg::AddShift(AddShiftCfg::Sub {
                width: STAGE_WIDTH,
                serial: false,
            }),
        )?;
        nl.connect((xs[n], "out"), (sub, "a"))?;
        nl.connect((xs[7 - n], "out"), (sub, "b"))?;
        subs[n] = sub;
    }
    Ok((adds, subs))
}

impl MixedRom {
    /// Builds the mapping.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        Self::with_odd_coeffs(
            params,
            |k, n| reference::dct_coeff(2 * k + 1, n),
            "mixed-rom",
        )
    }

    /// Shared constructor: the SCC even/odd variant reuses this structure
    /// with its own odd-part coefficient layout.
    pub(crate) fn with_odd_coeffs(
        params: DaParams,
        odd_coeff: impl Fn(usize, usize) -> f64,
        name: &str,
    ) -> Result<Self> {
        let mut nl = Netlist::new(name);
        let ctl = add_controls(&mut nl)?;
        let (adds, subs) = build_butterfly_stage(&mut nl, params.input_bits)?;
        // Serialise the butterfly outputs.
        let mut sa = Vec::with_capacity(4);
        let mut sb = Vec::with_capacity(4);
        for n in 0..4 {
            sa.push(serializer(
                &mut nl,
                &format!("sra{n}"),
                (adds[n], "y"),
                STAGE_WIDTH,
                &ctl,
            )?);
            sb.push(serializer(
                &mut nl,
                &format!("srb{n}"),
                (subs[n], "y"),
                STAGE_WIDTH,
                &ctl,
            )?);
        }
        let addr_e_parts: Vec<(NodeId, &str)> = sa.iter().map(|&n| (n, "q")).collect();
        let addr_e = nl.concat("addr_e", &addr_e_parts)?;
        let addr_o_parts: Vec<(NodeId, &str)> = sb.iter().map(|&n| (n, "q")).collect();
        let addr_o = nl.concat("addr_o", &addr_o_parts)?;
        // Even lanes: X_{2k} = Σ a_n · dct(2k, n).
        for k in 0..4 {
            let coeffs: Vec<f64> = (0..4).map(|n| reference::dct_coeff(2 * k, n)).collect();
            let (_, acc) = da_lane(
                &mut nl,
                &format!("even{k}"),
                (addr_e, "out"),
                &coeffs,
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            let y = nl.output(format!("y{}", 2 * k), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }
        // Odd lanes: X_{2k+1} = Σ b_n · odd_coeff(k, n).
        for k in 0..4 {
            let coeffs: Vec<f64> = (0..4).map(|n| odd_coeff(k, n)).collect();
            let (_, acc) = da_lane(
                &mut nl,
                &format!("odd{k}"),
                (addr_o, "out"),
                &coeffs,
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            let y = nl.output(format!("y{}", 2 * k + 1), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }
        let io = BlockIo::new(&nl)?;
        // Butterfly sums occupy one extra bit: stream two guard cycles.
        let stream_bits = params.input_bits + 2;
        Ok(MixedRom {
            netlist: nl,
            params,
            stream_bits,
            cycles: u64::from(stream_bits) + 2,
            io,
        })
    }

    pub(crate) fn transform_named(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = self.io.sim(&self.netlist);
        for (i, &v) in x.iter().enumerate() {
            sim.drive(self.io.xs[i], encode_sample(v, self.params.input_bits));
        }
        run_single_phase(&mut sim, self.stream_bits)?;
        let mut out = [0.0; 8];
        for (u, o) in out.iter_mut().enumerate() {
            *o = self
                .params
                .decode_acc(sim.read(self.io.ys[u]), self.stream_bits);
        }
        Ok(out)
    }
}

impl DctImpl for MixedRom {
    fn name(&self) -> &'static str {
        "MIX ROM"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        self.transform_named(x)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::measure_accuracy;

    #[test]
    fn table1_column_matches_paper() {
        let imp = MixedRom::new(DaParams::precise()).unwrap();
        let r = imp.report();
        // Table 1, MIX ROM column: 4 / 4 / 8 / 8, mem 8, total 32.
        assert_eq!(r.table1_row(), [4, 4, 8, 8, 8]);
        assert_eq!(r.add_shift_total(), 24);
        assert_eq!(r.total_clusters(), 32);
        // 16-word ROMs: 16x smaller than Fig. 4's 256-word ROMs.
        assert_eq!(r.memory_words(), 8 * 16);
    }

    #[test]
    fn matches_reference_on_random_blocks() {
        let imp = MixedRom::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 12, 2047, 99).unwrap();
        assert!(acc.max_abs_err < 1.5, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn impulse_responses_match_reference() {
        let imp = MixedRom::new(DaParams::precise()).unwrap();
        for pos in 0..8 {
            let mut x = [0i64; 8];
            x[pos] = 1000;
            let hw = imp.transform(&x).unwrap();
            let sw = reference::dct_1d_int(&x);
            for (u, (h, s)) in hw.iter().zip(sw.iter()).enumerate() {
                assert!((h - s).abs() < 1.0, "impulse {pos} coeff {u}: {h} vs {s}");
            }
        }
    }
}
