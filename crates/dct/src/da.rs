//! Distributed-arithmetic building blocks shared by all six DCT mappings:
//! fixed-point parameters, ROM content generation and netlist helpers.
//!
//! All mappings follow White's bit-serial DA (ref. \[4\] of the paper):
//! parallel samples are serialised LSB-first, the serial bits of all inputs
//! form a ROM address, and a shift-accumulator sums the ROM words with a
//! subtracting final (sign-bit) cycle.

use dsra_core::cluster::{AddShiftCfg, ClusterCfg};
use dsra_core::error::Result;
use dsra_core::fixed::{from_signed, to_signed, Q};
use dsra_core::netlist::{Netlist, NodeId};

/// Fixed-point parameters of a DA datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaParams {
    /// Bit-serial cycles per sample (serial stream length `B`).
    pub input_bits: u8,
    /// ROM word width in bits.
    pub rom_width: u8,
    /// Fractional bits inside a ROM word.
    pub rom_frac: u8,
    /// Shift-accumulator register width.
    pub acc_width: u8,
}

impl DaParams {
    /// High-precision configuration: exact DA (no accumulator truncation,
    /// `acc_width - rom_width >= input_bits`), coefficient error only.
    pub fn precise() -> Self {
        DaParams {
            input_bits: 12,
            rom_width: 16,
            rom_frac: 13,
            acc_width: 32,
        }
    }

    /// The widths printed in Fig. 4 of the paper: 12-bit samples, 8-bit ROM
    /// words, 16-bit shift accumulators. Coarser, with visible truncation
    /// noise — used by the accuracy/precision experiments.
    pub fn paper() -> Self {
        DaParams {
            input_bits: 12,
            rom_width: 8,
            rom_frac: 5,
            acc_width: 16,
        }
    }

    /// ROM word fixed-point format.
    pub fn q(&self) -> Q {
        Q::new(self.rom_width, self.rom_frac)
    }

    /// Alignment shift of the accumulator (`A = acc_width - rom_width`).
    pub fn align(&self) -> u8 {
        self.acc_width - self.rom_width
    }

    /// `true` when the right-shift accumulator loses no bits for this
    /// stream length.
    pub fn exact(&self, stream_bits: u8) -> bool {
        self.align() >= stream_bits
    }

    /// Decodes a raw accumulator word into the real value of
    /// `Σ_t s_t·rom_t·2^t / 2^rom_frac` given the stream length used.
    ///
    /// After `B` accumulate cycles the register holds
    /// `Σ s_t·rom_t·2^(t + A - B)`; undoing the `2^(A-B)` alignment and the
    /// ROM fraction yields the mathematical dot product.
    pub fn decode_acc(&self, raw: u64, stream_bits: u8) -> f64 {
        let v = to_signed(raw, self.acc_width) as f64;
        let shift = f64::from(self.align() as i32 - i32::from(stream_bits));
        v / 2f64.powf(shift) / self.q().scale()
    }
}

impl Default for DaParams {
    fn default() -> Self {
        DaParams::precise()
    }
}

/// Generates ROM contents for an n-input DA unit: word at address `a` holds
/// the fixed-point sum of `coeffs[i]` over set bits `i` of `a`.
///
/// # Panics
/// Panics if more than 10 coefficients are given (1024-word ROM limit).
pub fn da_rom_contents(coeffs: &[f64], q: Q) -> Vec<u64> {
    assert!(coeffs.len() <= 10, "ROM address space limit");
    let words = 1usize << coeffs.len();
    (0..words)
        .map(|addr| {
            let sum: f64 = coeffs
                .iter()
                .enumerate()
                .filter(|(i, _)| addr >> i & 1 == 1)
                .map(|(_, c)| *c)
                .sum();
            q.encode(sum)
        })
        .collect()
}

/// Worst-case absolute coefficient sum — must stay inside the Q range for
/// the ROM not to saturate.
pub fn rom_dynamic_range(coeffs: &[f64]) -> f64 {
    coeffs.iter().map(|c| c.abs()).sum()
}

/// The shared control pins every DA mapping exposes.
///
/// The SoC controller (paper §2: "a controller in the processor is used to
/// integrate and generate the addresses for these array structures") drives
/// these; in this repo that controller is the Rust driver in
/// [`crate::harness`].
#[derive(Debug, Clone, Copy)]
pub struct ControlPins {
    /// Parallel load strobe for the serial registers.
    pub load: NodeId,
    /// Serial-register shift enable.
    pub sren: NodeId,
    /// Accumulator enable (phase 1).
    pub accen: NodeId,
    /// Sign-bit-cycle subtract (phase 1).
    pub sub: NodeId,
    /// Global clear.
    pub clr: NodeId,
}

/// Adds the standard control input pins to a netlist.
pub fn add_controls(nl: &mut Netlist) -> Result<ControlPins> {
    Ok(ControlPins {
        load: nl.input("ctl_load", 1)?,
        sren: nl.input("ctl_sren", 1)?,
        accen: nl.input("ctl_accen", 1)?,
        sub: nl.input("ctl_sub", 1)?,
        clr: nl.input("ctl_clr", 1)?,
    })
}

/// Instantiates a parallel-to-serial register fed from `src` and wired to
/// the shared controls; returns the node (serial output port `q`).
pub fn serializer(
    nl: &mut Netlist,
    name: &str,
    src: (NodeId, &str),
    width: u8,
    ctl: &ControlPins,
) -> Result<NodeId> {
    let sr = nl.cluster(name, ClusterCfg::AddShift(AddShiftCfg::SerialReg { width }))?;
    nl.connect(src, (sr, "d"))?;
    nl.connect((ctl.load, "out"), (sr, "load"))?;
    nl.connect((ctl.sren, "out"), (sr, "en"))?;
    Ok(sr)
}

/// Instantiates one DA lane: a ROM programmed with `coeffs` addressed by the
/// given serial bit sources, feeding a shift-accumulator wired to the shared
/// controls. Returns `(rom, acc)`; the accumulated word is on `acc.y`.
#[allow(clippy::too_many_arguments)]
pub fn da_lane(
    nl: &mut Netlist,
    name: &str,
    addr: (NodeId, &str),
    coeffs: &[f64],
    params: &DaParams,
    ctl_accen: NodeId,
    ctl_sub: NodeId,
    ctl_clr: NodeId,
) -> Result<(NodeId, NodeId)> {
    let words = 1u16 << coeffs.len();
    let rom = nl.cluster(
        format!("{name}_rom"),
        ClusterCfg::Memory {
            words,
            width: params.rom_width,
            contents: da_rom_contents(coeffs, params.q()),
        },
    )?;
    nl.connect(addr, (rom, "addr"))?;
    let acc = nl.cluster(
        format!("{name}_acc"),
        ClusterCfg::AddShift(AddShiftCfg::ShiftAcc {
            acc_width: params.acc_width,
            data_width: params.rom_width,
        }),
    )?;
    nl.connect((rom, "dout"), (acc, "d"))?;
    nl.connect((ctl_accen, "out"), (acc, "en"))?;
    nl.connect((ctl_sub, "out"), (acc, "sub"))?;
    nl.connect((ctl_clr, "out"), (acc, "clr"))?;
    Ok((rom, acc))
}

/// Encodes a signed sample for a 12-bit input pin.
pub fn encode_sample(value: i64, width: u8) -> u64 {
    from_signed(value, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_contents_cover_all_subsets() {
        let q = Q::new(16, 13);
        let rom = da_rom_contents(&[0.5, -0.25, 1.0], q);
        assert_eq!(rom.len(), 8);
        assert_eq!(to_signed(rom[0], 16), 0);
        // addr 0b101 -> 0.5 + 1.0
        let v = to_signed(rom[5], 16) as f64 / q.scale();
        assert!((v - 1.5).abs() < 1e-3);
    }

    #[test]
    fn decode_inverts_alignment() {
        let p = DaParams::precise();
        // Simulate an exact accumulation result: value 3.25 with B = 12.
        let real = 3.25;
        let fixed = (real * p.q().scale()) as i64; // Σ s_t rom_t 2^t
        let aligned = fixed << (i32::from(p.align()) - 12);
        let raw = from_signed(aligned, p.acc_width);
        assert!((p.decode_acc(raw, 12) - real).abs() < 1e-9);
    }

    #[test]
    fn paper_params_are_not_exact_precise_are() {
        assert!(DaParams::precise().exact(12));
        assert!(!DaParams::paper().exact(12));
    }

    #[test]
    fn dynamic_range_guard() {
        let coeffs = [0.49, 0.46, 0.41, 0.27, 0.49, 0.46, 0.41, 0.27];
        assert!(rom_dynamic_range(&coeffs) < DaParams::precise().q().max_value());
    }
}
