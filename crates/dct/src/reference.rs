//! Reference DCT implementations (double precision and integer), the golden
//! models every hardware mapping is validated against.

/// Transform size used throughout the paper (8-point DCT).
pub const N: usize = 8;

/// Normalisation factor `α(u)` of the orthonormal DCT-II.
#[inline]
pub fn alpha(u: usize) -> f64 {
    if u == 0 {
        (1.0 / N as f64).sqrt()
    } else {
        (2.0 / N as f64).sqrt()
    }
}

/// Entry `(u, i)` of the orthonormal 8-point DCT-II matrix:
/// `α(u)·cos((2i+1)uπ/16)`.
#[inline]
pub fn dct_coeff(u: usize, i: usize) -> f64 {
    alpha(u) * (((2 * i + 1) * u) as f64 * std::f64::consts::PI / (2.0 * N as f64)).cos()
}

/// The full 8×8 orthonormal DCT-II matrix (rows = output coefficients).
pub fn dct_matrix() -> [[f64; N]; N] {
    let mut m = [[0.0; N]; N];
    for (u, row) in m.iter_mut().enumerate() {
        for (i, e) in row.iter_mut().enumerate() {
            *e = dct_coeff(u, i);
        }
    }
    m
}

/// Reference 1-D forward DCT-II of an 8-sample block.
///
/// ```
/// use dsra_dct::reference::{dct_1d, idct_1d};
/// let x = [100.0, -3.0, 5.0, 8.0, -100.0, 44.0, 7.0, 0.0];
/// let y = dct_1d(&x);
/// let back = idct_1d(&y);
/// for (a, b) in x.iter().zip(back.iter()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
pub fn dct_1d(x: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for (u, o) in out.iter_mut().enumerate() {
        *o = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| xi * dct_coeff(u, i))
            .sum();
    }
    out
}

/// Reference 1-D inverse DCT (DCT-III with orthonormal scaling).
pub fn idct_1d(y: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for (i, o) in out.iter_mut().enumerate() {
        *o = y
            .iter()
            .enumerate()
            .map(|(u, &yu)| yu * dct_coeff(u, i))
            .sum();
    }
    out
}

/// Reference 2-D forward DCT of an 8×8 block (row-column decomposition).
pub fn dct_2d(block: &[[f64; N]; N]) -> [[f64; N]; N] {
    let mut tmp = [[0.0; N]; N];
    for (r, row) in block.iter().enumerate() {
        tmp[r] = dct_1d(row);
    }
    let mut out = [[0.0; N]; N];
    for c in 0..N {
        let col: [f64; N] = std::array::from_fn(|r| tmp[r][c]);
        let t = dct_1d(&col);
        for (r, v) in t.iter().enumerate() {
            out[r][c] = *v;
        }
    }
    out
}

/// Reference 2-D inverse DCT.
pub fn idct_2d(coeffs: &[[f64; N]; N]) -> [[f64; N]; N] {
    let mut tmp = [[0.0; N]; N];
    for c in 0..N {
        let col: [f64; N] = std::array::from_fn(|r| coeffs[r][c]);
        let t = idct_1d(&col);
        for (r, v) in t.iter().enumerate() {
            tmp[r][c] = *v;
        }
    }
    let mut out = [[0.0; N]; N];
    for (r, row) in tmp.iter().enumerate() {
        out[r] = idct_1d(row);
    }
    out
}

/// 1-D DCT of integer samples, returned in doubles (used to compare against
/// the fixed-point hardware mappings).
pub fn dct_1d_int(x: &[i64; N]) -> [f64; N] {
    let xs: [f64; N] = std::array::from_fn(|i| x[i] as f64);
    dct_1d(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_input_concentrates_in_x0() {
        let x = [10.0; N];
        let y = dct_1d(&x);
        assert!((y[0] - 10.0 * (N as f64).sqrt()).abs() < 1e-9);
        for v in &y[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_is_orthonormal() {
        let m = dct_matrix();
        for a in 0..N {
            for b in 0..N {
                let dot: f64 = (0..N).map(|i| m[a][i] * m[b][i]).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "rows {a},{b}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = [3.0, -1.0, 4.0, 1.0, -5.0, 9.0, -2.0, 6.0];
        let y = dct_1d(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-9);
    }

    #[test]
    fn two_d_round_trip() {
        let mut block = [[0.0; N]; N];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((r * 31 + c * 17) % 256) as f64 - 128.0;
            }
        }
        let y = dct_2d(&block);
        let back = idct_2d(&y);
        for r in 0..N {
            for c in 0..N {
                assert!((block[r][c] - back[r][c]).abs() < 1e-8);
            }
        }
    }
}
