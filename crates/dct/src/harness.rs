//! Common interface and measurement harness for the six DCT mappings.

use dsra_core::error::Result;
use dsra_core::netlist::Netlist;
use dsra_core::report::ResourceReport;
use dsra_sim::{ExecPlan, InputPort, OutputPort, Simulator};

use crate::da::DaParams;
use crate::reference;

/// Per-mapping simulation assets compiled once at construction: the flat
/// execution plan plus resolved `x0..x7` / `y0..y7` pin handles. `transform`
/// builds one cheap simulator per block over the shared plan instead of
/// re-walking the netlist graph every time.
#[derive(Debug)]
pub(crate) struct BlockIo {
    plan: ExecPlan,
    pub(crate) xs: [InputPort; 8],
    pub(crate) ys: [OutputPort; 8],
}

impl BlockIo {
    /// Compiles the plan and resolves the standard block pins.
    pub(crate) fn new(netlist: &Netlist) -> Result<Self> {
        let plan = ExecPlan::compile(netlist)?;
        let mut xs = Vec::with_capacity(8);
        let mut ys = Vec::with_capacity(8);
        for i in 0..8 {
            xs.push(InputPort::resolve(netlist, &format!("x{i}"))?);
            ys.push(OutputPort::resolve(netlist, &format!("y{i}"))?);
        }
        Ok(BlockIo {
            plan,
            xs: xs.try_into().expect("8 inputs"),
            ys: ys.try_into().expect("8 outputs"),
        })
    }

    /// A fresh simulator over the shared plan.
    pub(crate) fn sim<'n>(&'n self, netlist: &'n Netlist) -> Simulator<'n> {
        Simulator::with_plan(netlist, &self.plan)
    }
}

/// A DCT implementation mapped onto the distributed-arithmetic array.
///
/// All six mappings of §3 implement this trait: they expose their structural
/// netlist (for placement/routing/area accounting) and a `transform` driver
/// that plays the SoC controller, steering the control pins cycle by cycle.
///
/// `Send` so runtimes can keep per-array engine caches and hand them to
/// worker threads (every mapping is plain owned data).
pub trait DctImpl: Send {
    /// Display name (column header of Table 1).
    fn name(&self) -> &'static str;

    /// The structural netlist of the mapping.
    fn netlist(&self) -> &Netlist;

    /// Fixed-point parameters in use.
    fn params(&self) -> &DaParams;

    /// Transforms one 8-sample block. Outputs are decoded to real values
    /// directly comparable with [`reference::dct_1d_int`] (any scaled-DCT
    /// factors are already applied).
    ///
    /// # Errors
    /// Propagates simulator construction errors; input magnitudes must fit
    /// the implementation's input width.
    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]>;

    /// Clock cycles one block occupies the array (load + bit-serial phases +
    /// flush), as measured by the driver.
    fn cycles_per_block(&self) -> u64;

    /// Table-1 style resource report (named with the display name).
    fn report(&self) -> ResourceReport {
        self.netlist().resource_report().renamed(self.name())
    }
}

/// Accuracy of a hardware mapping against the double-precision reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Maximum absolute coefficient error observed.
    pub max_abs_err: f64,
    /// Root-mean-square coefficient error.
    pub rms_err: f64,
    /// Number of blocks evaluated.
    pub blocks: usize,
}

/// Runs `blocks` random 8-sample blocks (12-bit range by default) through an
/// implementation and accumulates error statistics against the reference.
///
/// # Errors
/// Propagates driver errors.
pub fn measure_accuracy(
    imp: &dyn DctImpl,
    blocks: usize,
    amplitude: i64,
    seed: u64,
) -> Result<Accuracy> {
    let mut rng = dsra_core::rng::SplitMix64::new(seed);
    let mut max_abs: f64 = 0.0;
    let mut sq_sum = 0.0;
    let mut count = 0usize;
    for _ in 0..blocks {
        let x: [i64; 8] =
            std::array::from_fn(|_| (rng.next_below(2 * amplitude as u64 + 1) as i64) - amplitude);
        let hw = imp.transform(&x)?;
        let sw = reference::dct_1d_int(&x);
        for (h, s) in hw.iter().zip(sw.iter()) {
            let e = (h - s).abs();
            max_abs = max_abs.max(e);
            sq_sum += e * e;
            count += 1;
        }
    }
    Ok(Accuracy {
        max_abs_err: max_abs,
        rms_err: (sq_sum / count.max(1) as f64).sqrt(),
        blocks,
    })
}

/// Builds every implementation of §3 with shared parameters, in the column
/// order of Table 1 (plus the Fig.-4 basic DA, which the table omits).
///
/// # Errors
/// Propagates netlist construction errors.
pub fn all_impls(params: DaParams) -> Result<Vec<Box<dyn DctImpl>>> {
    Ok(vec![
        Box::new(crate::basic_da::BasicDa::new(params)?),
        Box::new(crate::mixed_rom::MixedRom::new(params)?),
        Box::new(crate::cordic::Cordic1::new(params)?),
        Box::new(crate::cordic::Cordic2::new(params)?),
        Box::new(crate::scc::SccEvenOdd::new(params)?),
        Box::new(crate::scc::SccFull::new(params)?),
    ])
}

/// Shared single-phase DA driver: load cycle, `bits` accumulate cycles with
/// a subtracting sign cycle, one flush cycle. Inputs must already be set.
/// Returns the cycle count consumed.
pub(crate) fn run_single_phase(sim: &mut Simulator<'_>, bits: u8) -> Result<u64> {
    sim.set("ctl_load", 1)?;
    sim.set("ctl_clr", 1)?;
    sim.set("ctl_sren", 0)?;
    sim.set("ctl_accen", 0)?;
    sim.set("ctl_sub", 0)?;
    sim.step();
    sim.set("ctl_load", 0)?;
    sim.set("ctl_clr", 0)?;
    sim.set("ctl_sren", 1)?;
    sim.set("ctl_accen", 1)?;
    for t in 0..bits {
        sim.set("ctl_sub", u64::from(t == bits - 1))?;
        sim.step();
    }
    sim.set("ctl_sren", 0)?;
    sim.set("ctl_accen", 0)?;
    sim.set("ctl_sub", 0)?;
    sim.step();
    Ok(u64::from(bits) + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_reference_against_itself_is_zero() {
        // A trivial impl that calls the reference directly.
        struct Ideal {
            nl: Netlist,
            p: DaParams,
        }
        impl DctImpl for Ideal {
            fn name(&self) -> &'static str {
                "IDEAL"
            }
            fn netlist(&self) -> &Netlist {
                &self.nl
            }
            fn params(&self) -> &DaParams {
                &self.p
            }
            fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
                Ok(reference::dct_1d_int(x))
            }
            fn cycles_per_block(&self) -> u64 {
                0
            }
        }
        let ideal = Ideal {
            nl: Netlist::new("ideal"),
            p: DaParams::precise(),
        };
        let acc = measure_accuracy(&ideal, 4, 2047, 7).unwrap();
        assert_eq!(acc.max_abs_err, 0.0);
        assert_eq!(acc.rms_err, 0.0);
    }
}
