//! §3.5 / Figs. 8–9 — Li's skew-circular-convolution DCT formulations.
//!
//! Li's algorithm (\[11\] of the paper) exploits the multiplicative group
//! structure of odd residues modulo 4N: every odd `u (mod 32)` is `±3^e` for
//! a unique exponent `e ∈ Z₈`, so products `(2n+1)(2k+1)` become exponent
//! *sums* and the odd-part DCT matrix becomes (skew-)circulant in the
//! mapped index space:
//!
//! ```text
//! cos((2n+1)(2k+1)·π/16) = C[(e(2n+1) + e(2k+1)) mod 8],
//! C[e] = cos(3^e · π/16),     C[e+4] = −C[e]   (the "skew" wrap)
//! ```
//!
//! * [`SccEvenOdd`] (Fig. 8) splits even/odd like the Mixed-ROM mapping; its
//!   odd-part 16-word ROMs all read from the shared table `C` at rotated
//!   offsets.
//! * [`SccFull`] (Fig. 9) skips the butterfly stage entirely: 256-word ROMs
//!   absorb the full coefficient rows ("16 times more \[ROM\] than the
//!   previous implementation but does not require adder/subtracters"). The
//!   four odd-output ROMs are exact rotations of one another in the
//!   exponent-mapped input order.

#![allow(clippy::needless_range_loop)] // index-coupled matrix math reads clearer

use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};

use crate::da::{add_controls, da_lane, encode_sample, serializer, DaParams};
use crate::harness::{run_single_phase, BlockIo, DctImpl};
use crate::mixed_rom::MixedRom;
use crate::reference;

/// Exponent map of the group of odd residues mod 32: returns `e` such that
/// `u ≡ ±3^e (mod 32)`.
///
/// # Panics
/// Panics if `u` is even.
pub fn exponent_of(u: usize) -> usize {
    assert!(u % 2 == 1, "exponent map defined on odd residues");
    let mut p = 1usize;
    for e in 0..8 {
        if p == u % 32 || (32 - p) == u % 32 {
            return e;
        }
        p = (p * 3) % 32;
    }
    unreachable!("±3^e covers all odd residues mod 32");
}

/// The shared coefficient table `C[e] = α·cos(3^e·π/16)` (orthonormal DCT
/// scaling included).
pub fn shared_table() -> [f64; 8] {
    let alpha = reference::alpha(1);
    let mut c = [0.0; 8];
    let mut p = 1u32;
    for e in 0..8 {
        c[e] = alpha * (f64::from(p) * std::f64::consts::PI / 16.0).cos();
        p = (p * 3) % 32;
    }
    c
}

/// Odd-part coefficient in Li's exponent-mapped form:
/// `dct(2k+1, n) = C[(e(2n+1)+e(2k+1)) mod 8]`.
pub fn scc_odd_coeff(k: usize, n: usize) -> f64 {
    let c = shared_table();
    c[(exponent_of(2 * n + 1) + exponent_of(2 * k + 1)) % 8]
}

/// Fig. 8 — SCC with even/odd split. Structurally a Mixed-ROM mapping whose
/// odd ROMs are generated from the shared rotated table.
#[derive(Debug)]
pub struct SccEvenOdd {
    inner: MixedRom,
}

impl SccEvenOdd {
    /// Builds the mapping.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        Ok(SccEvenOdd {
            inner: MixedRom::with_odd_coeffs(params, scc_odd_coeff, "scc-even-odd")?,
        })
    }
}

impl DctImpl for SccEvenOdd {
    fn name(&self) -> &'static str {
        "SCC E/O"
    }

    fn netlist(&self) -> &Netlist {
        self.inner.netlist()
    }

    fn params(&self) -> &DaParams {
        self.inner.params()
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        self.inner.transform_named(x)
    }

    fn cycles_per_block(&self) -> u64 {
        self.inner.cycles_per_block()
    }
}

/// Fig. 9 — SCC without the even/odd split: eight serialisers feed eight
/// 256-word ROMs; inputs are wired in exponent order so the odd-output ROMs
/// are rotations of a single table.
#[derive(Debug)]
pub struct SccFull {
    netlist: Netlist,
    params: DaParams,
    cycles: u64,
    /// `slot_of_input[i]` = serialiser slot of input `x_i`.
    slot_of_input: [usize; 8],
    io: BlockIo,
}

impl SccFull {
    /// Builds the mapping.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        let mut nl = Netlist::new("scc-full");
        let ctl = add_controls(&mut nl)?;
        // Input i = x_i with (2i+1) ≡ ±3^e (mod 32); e is a bijection onto
        // Z₈, the serialiser slot.
        let mut slot_of_input = [0usize; 8];
        let mut input_of_slot = [0usize; 8];
        for i in 0..8 {
            let e = exponent_of(2 * i + 1);
            slot_of_input[i] = e;
            input_of_slot[e] = i;
        }
        let mut srs: Vec<Option<NodeId>> = vec![None; 8];
        for i in 0..8 {
            let x = nl.input(format!("x{i}"), params.input_bits)?;
            let slot = slot_of_input[i];
            let sr = serializer(
                &mut nl,
                &format!("sr_slot{slot}"),
                (x, "out"),
                params.input_bits,
                &ctl,
            )?;
            srs[slot] = Some(sr);
        }
        let srs: Vec<NodeId> = srs.into_iter().map(|s| s.expect("slot filled")).collect();
        let addr_parts: Vec<(NodeId, &str)> = srs.iter().map(|&n| (n, "q")).collect();
        let addr = nl.concat("addr", &addr_parts)?;
        for u in 0..8 {
            // Coefficient for slot j = dct(u, input_of_slot[j]).
            let coeffs: Vec<f64> = (0..8)
                .map(|j| reference::dct_coeff(u, input_of_slot[j]))
                .collect();
            let (_, acc) = da_lane(
                &mut nl,
                &format!("lane{u}"),
                (addr, "out"),
                &coeffs,
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            let y = nl.output(format!("y{u}"), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }
        let io = BlockIo::new(&nl)?;
        Ok(SccFull {
            netlist: nl,
            params,
            cycles: u64::from(params.input_bits) + 2,
            slot_of_input,
            io,
        })
    }

    /// The exponent-order slot of each input (Li's input reordering).
    pub fn input_reordering(&self) -> [usize; 8] {
        self.slot_of_input
    }

    /// Coefficient vector (slot order) of one output lane — used by the
    /// structural rotation tests.
    pub fn lane_coeffs(&self, u: usize) -> [f64; 8] {
        let mut input_of_slot = [0usize; 8];
        for i in 0..8 {
            input_of_slot[self.slot_of_input[i]] = i;
        }
        std::array::from_fn(|j| reference::dct_coeff(u, input_of_slot[j]))
    }
}

impl DctImpl for SccFull {
    fn name(&self) -> &'static str {
        "SCC"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = self.io.sim(&self.netlist);
        for (i, &v) in x.iter().enumerate() {
            sim.drive(self.io.xs[i], encode_sample(v, self.params.input_bits));
        }
        run_single_phase(&mut sim, self.params.input_bits)?;
        let mut out = [0.0; 8];
        for (u, o) in out.iter_mut().enumerate() {
            *o = self
                .params
                .decode_acc(sim.read(self.io.ys[u]), self.params.input_bits);
        }
        Ok(out)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::measure_accuracy;

    #[test]
    fn exponent_map_is_a_bijection_on_odd_indices() {
        let mut seen = [false; 8];
        for i in 0..8 {
            let e = exponent_of(2 * i + 1);
            assert!(!seen[e], "exponent {e} repeated");
            seen[e] = true;
        }
    }

    #[test]
    fn skew_wrap_property() {
        let c = shared_table();
        for e in 0..4 {
            assert!(
                (c[e + 4] + c[e]).abs() < 1e-12,
                "C[{}] = {} should equal -C[{}] = {}",
                e + 4,
                c[e + 4],
                e,
                c[e]
            );
        }
    }

    #[test]
    fn scc_odd_coeffs_equal_dct_coeffs() {
        // Li's identity: the exponent-mapped table reproduces the true DCT
        // coefficients exactly.
        for k in 0..4 {
            for n in 0..4 {
                let direct = reference::dct_coeff(2 * k + 1, n);
                let mapped = scc_odd_coeff(k, n);
                assert!(
                    (direct - mapped).abs() < 1e-12,
                    "k={k} n={n}: {direct} vs {mapped}"
                );
            }
        }
    }

    #[test]
    fn even_odd_table1_column() {
        let imp = SccEvenOdd::new(DaParams::precise()).unwrap();
        let r = imp.report();
        // Table 1, SCC EVEN/ODD column: 4 / 4 / 8 / 8, mem 8, total 32.
        assert_eq!(r.table1_row(), [4, 4, 8, 8, 8]);
        assert_eq!(r.total_clusters(), 32);
    }

    #[test]
    fn full_table1_column() {
        let imp = SccFull::new(DaParams::precise()).unwrap();
        let r = imp.report();
        // Table 1, SCC column: 0 / 0 / 8 / 8, mem 8, total 24.
        assert_eq!(r.table1_row(), [0, 0, 8, 8, 8]);
        assert_eq!(r.add_shift_total(), 16);
        assert_eq!(r.total_clusters(), 24);
        assert_eq!(r.memory_words(), 8 * 256);
    }

    #[test]
    fn even_odd_matches_reference() {
        let imp = SccEvenOdd::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 10, 2047, 3).unwrap();
        assert!(acc.max_abs_err < 1.5, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn full_matches_reference() {
        let imp = SccFull::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 10, 2047, 4).unwrap();
        assert!(acc.max_abs_err < 1.5, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn odd_lanes_are_rotations_of_the_shared_table() {
        // Li's structural property: in slot space, odd-output lane k has
        // coefficients C[(j + e(2k+1)) mod 8] — one table, rotated.
        let imp = SccFull::new(DaParams::precise()).unwrap();
        let c = shared_table();
        for k in 0..4 {
            let lane = imp.lane_coeffs(2 * k + 1);
            let off = exponent_of(2 * k + 1);
            for (j, v) in lane.iter().enumerate() {
                let expect = c[(j + off) % 8];
                assert!(
                    (v - expect).abs() < 1e-12,
                    "lane {} slot {}: {} vs table {}",
                    2 * k + 1,
                    j,
                    v,
                    expect
                );
            }
        }
    }
}
