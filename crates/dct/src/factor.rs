//! Numeric factorization of the odd-part DCT matrix into the
//! rotator/butterfly structures of the two CORDIC-based mappings.
//!
//! The paper references rotation-based flow graphs (\[8\], \[9\]) without
//! printing them, so this module *derives* equivalent factorizations
//! directly from the 4×4 odd-part matrix:
//!
//! * **CORDIC #1** (§3.3): `M = Y · B · X` — a sandwich of two block-diagonal
//!   stages of arbitrary 2×2 DA blocks (`X` = input rotators, `Y` = output
//!   rotators, each block one "CORDIC rotator": 2 ROMs + 2 shift
//!   accumulators) around a fixed ±1 butterfly `B` (4 bit-serial
//!   adders/subtracters). Solved by alternating least squares.
//! * **CORDIC #2** (§3.4): `M = R · G` — output rotators after a 6-operation
//!   add/sub network `G` (two levels), the scaled-DCT arrangement. Solved by
//!   direct least squares per candidate network.
//!
//! Residuals are driven below `1e-9`, far under the ROM quantisation floor,
//! so the hardware mappings are as exact as their fixed-point formats allow.

#![allow(clippy::needless_range_loop)] // index-coupled matrix math reads clearer

use dsra_core::rng::SplitMix64;

/// A 4×4 matrix of f64.
pub type M4 = [[f64; 4]; 4];

/// Multiplies two 4×4 matrices.
pub fn mul4(a: &M4, b: &M4) -> M4 {
    let mut out = [[0.0; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            out[r][c] = (0..4).map(|k| a[r][k] * b[k][c]).sum();
        }
    }
    out
}

/// Frobenius-norm distance between two 4×4 matrices.
pub fn dist4(a: &M4, b: &M4) -> f64 {
    let mut s = 0.0;
    for r in 0..4 {
        for c in 0..4 {
            let d = a[r][c] - b[r][c];
            s += d * d;
        }
    }
    s.sqrt()
}

/// The odd-part target: rows are DCT outputs `X1, X3, X5, X7` (orthonormal
/// scaling) applied to the butterfly differences `b_n = x_n - x_{7-n}`.
pub fn odd_target() -> M4 {
    let mut m = [[0.0; 4]; 4];
    for (k, row) in m.iter_mut().enumerate() {
        let u = 2 * k + 1;
        for (n, e) in row.iter_mut().enumerate() {
            *e = crate::reference::dct_coeff(u, n);
        }
    }
    m
}

/// Block-diagonal 4×4 from two 2×2 blocks acting on index pairs
/// `(pair0.0, pair0.1)` and `(pair1.0, pair1.1)`.
fn block_diag(
    b0: [[f64; 2]; 2],
    b1: [[f64; 2]; 2],
    pair0: (usize, usize),
    pair1: (usize, usize),
) -> M4 {
    let mut m = [[0.0; 4]; 4];
    let put = |m: &mut M4, b: [[f64; 2]; 2], p: (usize, usize)| {
        m[p.0][p.0] = b[0][0];
        m[p.0][p.1] = b[0][1];
        m[p.1][p.0] = b[1][0];
        m[p.1][p.1] = b[1][1];
    };
    put(&mut m, b0, pair0);
    put(&mut m, b1, pair1);
    m
}

/// The three ways to split `{0,1,2,3}` into two pairs.
pub const PAIRINGS: [((usize, usize), (usize, usize)); 3] =
    [((0, 1), (2, 3)), ((0, 2), (1, 3)), ((0, 3), (1, 2))];

/// Butterfly stage patterns: `q_i = p_a ± p_b` over a pairing, expressed as
/// ±1 matrices. Four add/sub operations each.
fn butterfly_patterns() -> Vec<M4> {
    let mut out = Vec::new();
    for (p0, p1) in PAIRINGS {
        // q0 = pa + pb, q1 = pa - pb for each pair; two output layouts
        // (block outputs adjacent or interleaved).
        for layout in 0..2usize {
            let mut m = [[0.0; 4]; 4];
            let rows: [usize; 4] = if layout == 0 {
                [0, 1, 2, 3]
            } else {
                [0, 2, 1, 3]
            };
            m[rows[0]][p0.0] = 1.0;
            m[rows[0]][p0.1] = 1.0;
            m[rows[1]][p0.0] = 1.0;
            m[rows[1]][p0.1] = -1.0;
            m[rows[2]][p1.0] = 1.0;
            m[rows[2]][p1.1] = 1.0;
            m[rows[3]][p1.0] = 1.0;
            m[rows[3]][p1.1] = -1.0;
            out.push(m);
        }
    }
    out
}

/// Result of the CORDIC #1 sandwich factorization `M ≈ Y·B·X`.
#[derive(Debug, Clone)]
pub struct Sandwich {
    /// Input stage: two 2×2 blocks (rotator matrices) and their input pairs.
    pub x_blocks: [[[f64; 2]; 2]; 2],
    /// Input pairing (which `b` indices each X block consumes).
    pub x_pairs: ((usize, usize), (usize, usize)),
    /// The ±1 butterfly between the stages.
    pub butterfly: M4,
    /// Output stage blocks.
    pub y_blocks: [[[f64; 2]; 2]; 2],
    /// Output pairing (which final rows each Y block produces).
    pub y_pairs: ((usize, usize), (usize, usize)),
    /// Final Frobenius residual against the target.
    pub residual: f64,
}

impl Sandwich {
    /// Reassembles the full 4×4 matrix this factorization realises.
    pub fn realize(&self) -> M4 {
        let x = block_diag(
            self.x_blocks[0],
            self.x_blocks[1],
            self.x_pairs.0,
            self.x_pairs.1,
        );
        let y = block_diag(
            self.y_blocks[0],
            self.y_blocks[1],
            self.y_pairs.0,
            self.y_pairs.1,
        );
        mul4(&y, &mul4(&self.butterfly, &x))
    }
}

/// Solves `M ≈ Y·B·X` (both `X` and `Y` block-diagonal) by alternating least
/// squares over butterfly patterns and pairings. Returns the best
/// factorization found; the unit tests assert its residual is ≤ 1e-9.
pub fn solve_sandwich(target: &M4) -> Sandwich {
    let mut best: Option<Sandwich> = None;
    for butterfly in butterfly_patterns() {
        for &(xp0, xp1) in &PAIRINGS {
            for &(yp0, yp1) in &PAIRINGS {
                for seed in 0..6u64 {
                    let cand = als(target, &butterfly, (xp0, xp1), (yp0, yp1), seed);
                    if best.as_ref().is_none_or(|b| cand.residual < b.residual) {
                        best = Some(cand);
                    }
                }
                if best.as_ref().is_some_and(|b| b.residual < 1e-11) {
                    return best.unwrap();
                }
            }
        }
    }
    best.expect("pattern library is non-empty")
}

fn als(
    target: &M4,
    butterfly: &M4,
    x_pairs: ((usize, usize), (usize, usize)),
    y_pairs: ((usize, usize), (usize, usize)),
    seed: u64,
) -> Sandwich {
    let mut rng = SplitMix64::new(0xC0DE_1C00u64 ^ seed.wrapping_mul(0x9E37_79B9));
    let mut x_blocks = [[[0.0f64; 2]; 2]; 2];
    for b in &mut x_blocks {
        for row in b.iter_mut() {
            for v in row.iter_mut() {
                *v = rng.next_f64() * 2.0 - 1.0;
            }
        }
    }
    let mut y_blocks = x_blocks;
    let mut residual = f64::INFINITY;
    for _ in 0..400 {
        // Given X, solve Y per output block: rows of M over K = B·X.
        let x = block_diag(x_blocks[0], x_blocks[1], x_pairs.0, x_pairs.1);
        let k = mul4(butterfly, &x);
        for (bi, pair) in [y_pairs.0, y_pairs.1].into_iter().enumerate() {
            // Y block columns correspond to the same pair indices in q-space.
            y_blocks[bi] = lsq_rows(target, &k, pair);
        }
        // Given Y, solve X per input block: M = (Y·B)·X.
        let y = block_diag(y_blocks[0], y_blocks[1], y_pairs.0, y_pairs.1);
        let w = mul4(&y, butterfly);
        for (bi, pair) in [x_pairs.0, x_pairs.1].into_iter().enumerate() {
            x_blocks[bi] = lsq_cols(target, &w, pair);
        }
        let x = block_diag(x_blocks[0], x_blocks[1], x_pairs.0, x_pairs.1);
        let y = block_diag(y_blocks[0], y_blocks[1], y_pairs.0, y_pairs.1);
        let realized = mul4(&y, &mul4(butterfly, &x));
        let r = dist4(target, &realized);
        if (residual - r).abs() < 1e-15 {
            residual = r;
            break;
        }
        residual = r;
    }
    // The factorization is invariant under X·λ, Y/λ; rebalance so both
    // stages fit comfortably inside the ROM fixed-point range.
    let norm = |blocks: &[[[f64; 2]; 2]; 2]| -> f64 {
        blocks
            .iter()
            .flat_map(|b| b.iter())
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    };
    let (nx, ny) = (norm(&x_blocks), norm(&y_blocks));
    if nx > 1e-12 && ny > 1e-12 {
        let lambda = (ny / nx).sqrt();
        for b in &mut x_blocks {
            for row in b.iter_mut() {
                for v in row.iter_mut() {
                    *v *= lambda;
                }
            }
        }
        for b in &mut y_blocks {
            for row in b.iter_mut() {
                for v in row.iter_mut() {
                    *v /= lambda;
                }
            }
        }
    }
    Sandwich {
        x_blocks,
        x_pairs,
        butterfly: *butterfly,
        y_blocks,
        y_pairs,
        residual,
    }
}

/// Solves the 2×2 block `Y` minimising ‖M[pair rows] − Y·K[pair rows]‖ where
/// `Y` reads K rows `pair`.
fn lsq_rows(m: &M4, k: &M4, pair: (usize, usize)) -> [[f64; 2]; 2] {
    // For each output row r in {pair.0, pair.1}:
    //   m[r][:] = y0 * k[pair.0][:] + y1 * k[pair.1][:]
    let k0 = k[pair.0];
    let k1 = k[pair.1];
    let g00: f64 = k0.iter().map(|v| v * v).sum();
    let g01: f64 = k0.iter().zip(&k1).map(|(a, b)| a * b).sum();
    let g11: f64 = k1.iter().map(|v| v * v).sum();
    let det = g00 * g11 - g01 * g01;
    let mut out = [[0.0; 2]; 2];
    for (i, r) in [pair.0, pair.1].into_iter().enumerate() {
        let b0: f64 = m[r].iter().zip(&k0).map(|(a, b)| a * b).sum();
        let b1: f64 = m[r].iter().zip(&k1).map(|(a, b)| a * b).sum();
        if det.abs() > 1e-12 {
            out[i][0] = (b0 * g11 - b1 * g01) / det;
            out[i][1] = (b1 * g00 - b0 * g01) / det;
        }
    }
    out
}

/// Solves the 2×2 block `X` minimising ‖M[:, pair cols] − W·X_embedded‖ where
/// the block consumes input columns `pair`.
fn lsq_cols(m: &M4, w: &M4, pair: (usize, usize)) -> [[f64; 2]; 2] {
    // Column c of M restricted: m[:][c] = w[:][pair.0]*x0c + w[:][pair.1]*x1c
    let w0: [f64; 4] = std::array::from_fn(|r| w[r][pair.0]);
    let w1: [f64; 4] = std::array::from_fn(|r| w[r][pair.1]);
    let g00: f64 = w0.iter().map(|v| v * v).sum();
    let g01: f64 = w0.iter().zip(&w1).map(|(a, b)| a * b).sum();
    let g11: f64 = w1.iter().map(|v| v * v).sum();
    let det = g00 * g11 - g01 * g01;
    let mut out = [[0.0; 2]; 2];
    for (j, c) in [pair.0, pair.1].into_iter().enumerate() {
        let mc: [f64; 4] = std::array::from_fn(|r| m[r][c]);
        let b0: f64 = mc.iter().zip(&w0).map(|(a, b)| a * b).sum();
        let b1: f64 = mc.iter().zip(&w1).map(|(a, b)| a * b).sum();
        if det.abs() > 1e-12 {
            out[0][j] = (b0 * g11 - b1 * g01) / det;
            out[1][j] = (b1 * g00 - b0 * g01) / det;
        }
    }
    out
}

/// Result of the CORDIC #2 (scaled) factorization
/// `M = diag(s)·Ŷ·B·X`: input rotators `X` (the only DA blocks), a fixed
/// ±1 butterfly `B` (4 bit-serial ops), a fixed 2-op post network `Ŷ`, and
/// per-output scale factors `s` absorbed into quantisation — the defining
/// property of a *scaled* DCT (§3.4: "the constant scale factor ... can be
/// combined with the quantization constants").
#[derive(Debug, Clone)]
pub struct ScaledSandwich {
    /// Input rotator blocks.
    pub x_blocks: [[[f64; 2]; 2]; 2],
    /// Input pairing.
    pub x_pairs: ((usize, usize), (usize, usize)),
    /// The 4-op butterfly.
    pub butterfly: M4,
    /// The 2-op post network (butterfly on one wire pair, pass elsewhere).
    pub post: M4,
    /// Wire pair combined by the post network.
    pub post_pair: (usize, usize),
    /// Per-output scale factors (row `k` of the realised matrix times `s[k]`
    /// equals the target row).
    pub scales: [f64; 4],
    /// Frobenius residual of `diag(s)·post·butterfly·X` against the target.
    pub residual: f64,
}

impl ScaledSandwich {
    /// The realised (unscaled) matrix `Ŷ·B·X`.
    pub fn realize_unscaled(&self) -> M4 {
        let x = block_diag(
            self.x_blocks[0],
            self.x_blocks[1],
            self.x_pairs.0,
            self.x_pairs.1,
        );
        mul4(&self.post, &mul4(&self.butterfly, &x))
    }

    /// The realised matrix with scales applied (should equal the target).
    pub fn realize(&self) -> M4 {
        let mut m = self.realize_unscaled();
        for (r, row) in m.iter_mut().enumerate() {
            for v in row.iter_mut() {
                *v *= self.scales[r];
            }
        }
        m
    }
}

/// Solves `M = diag(s)·Ŷ·B·X` by enumerating (Ŷ, B, pairing) candidates and
/// solving the scale vector from the block-diagonality constraints
/// (a 4-unknown homogeneous linear system).
pub fn solve_scaled_sandwich(target: &M4) -> ScaledSandwich {
    let mut best: Option<ScaledSandwich> = None;
    for butterfly in butterfly_patterns() {
        for (i, j) in [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            // Post network: rows i, j become h_i ± h_j; others pass.
            let mut post = [[0.0; 4]; 4];
            post[i][i] = 1.0;
            post[i][j] = 1.0;
            post[j][i] = 1.0;
            post[j][j] = -1.0;
            for k in 0..4 {
                if k != i && k != j {
                    post[k][k] = 1.0;
                }
            }
            let t = mul4(&post, &butterfly);
            let Some(tinv) = inv4(&t) else { continue };
            for &(xp0, xp1) in &PAIRINGS {
                // X = T⁻¹·diag(w)·M must be block diagonal on (xp0, xp1):
                // each off-block entry is linear in w. Build the 8×4 system.
                let off: Vec<(usize, usize)> = off_block_entries(xp0, xp1);
                let mut a = [[0.0f64; 4]; 8];
                for (row, &(r, c)) in off.iter().enumerate() {
                    for k in 0..4 {
                        a[row][k] = tinv[r][k] * target[k][c];
                    }
                }
                let Some(w) = nullspace4(&a) else { continue };
                if w.iter().any(|v| v.abs() < 1e-9) {
                    continue; // a zero weight means an infinite scale
                }
                // X_full = T⁻¹·diag(w)·M, extract blocks.
                let mut wm = *target;
                for (k, row) in wm.iter_mut().enumerate() {
                    for v in row.iter_mut() {
                        *v *= w[k];
                    }
                }
                let xf = mul4(&tinv, &wm);
                let xb = |p: (usize, usize)| {
                    [[xf[p.0][p.0], xf[p.0][p.1]], [xf[p.1][p.0], xf[p.1][p.1]]]
                };
                let mut cand = ScaledSandwich {
                    x_blocks: [xb(xp0), xb(xp1)],
                    x_pairs: (xp0, xp1),
                    butterfly,
                    post,
                    post_pair: (i, j),
                    scales: [1.0 / w[0], 1.0 / w[1], 1.0 / w[2], 1.0 / w[3]],
                    residual: 0.0,
                };
                cand.residual = dist4(target, &cand.realize());
                if best.as_ref().is_none_or(|b| cand.residual < b.residual) {
                    best = Some(cand);
                }
                if best.as_ref().is_some_and(|b| b.residual < 1e-11) {
                    return best.unwrap();
                }
            }
        }
    }
    best.expect("candidate library is non-empty")
}

fn off_block_entries(p0: (usize, usize), p1: (usize, usize)) -> Vec<(usize, usize)> {
    let block_of = |idx: usize| -> usize {
        if idx == p0.0 || idx == p0.1 {
            0
        } else {
            1
        }
    };
    let _ = p1;
    let mut out = Vec::new();
    for r in 0..4 {
        for c in 0..4 {
            if block_of(r) != block_of(c) {
                out.push((r, c));
            }
        }
    }
    out
}

/// Inverts a 4×4 matrix by Gauss-Jordan elimination; `None` if singular.
pub fn inv4(m: &M4) -> Option<M4> {
    let mut a = *m;
    let mut inv = [[0.0; 4]; 4];
    for (r, row) in inv.iter_mut().enumerate() {
        row[r] = 1.0;
    }
    for col in 0..4 {
        // Partial pivot.
        let pivot = (col..4).max_by(|&x, &y| {
            a[x][col]
                .abs()
                .partial_cmp(&a[y][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let d = a[col][col];
        for c in 0..4 {
            a[col][c] /= d;
            inv[col][c] /= d;
        }
        for r in 0..4 {
            if r != col {
                let f = a[r][col];
                for c in 0..4 {
                    a[r][c] -= f * a[col][c];
                    inv[r][c] -= f * inv[col][c];
                }
            }
        }
    }
    Some(inv)
}

/// Finds a unit-norm vector `w` with `A·w ≈ 0` for an 8×4 system, or `None`
/// if the nullspace is trivial. Uses Gaussian elimination with the last free
/// column set to 1.
fn nullspace4(a: &[[f64; 4]; 8]) -> Option<[f64; 4]> {
    let mut m: Vec<[f64; 4]> = a.to_vec();
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
    let mut row = 0;
    for col in 0..4 {
        // Pivot search below `row`.
        let Some(p) = (row..m.len()).max_by(|&x, &y| {
            m[x][col]
                .abs()
                .partial_cmp(&m[y][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            break;
        };
        if m[p][col].abs() < 1e-9 {
            continue; // free column
        }
        m.swap(row, p);
        let d = m[row][col];
        for c in 0..4 {
            m[row][c] /= d;
        }
        for r in 0..m.len() {
            if r != row {
                let f = m[r][col];
                for c in 0..4 {
                    m[r][c] -= f * m[row][c];
                }
            }
        }
        pivots.push((row, col));
        row += 1;
        if row == m.len() {
            break;
        }
    }
    if pivots.len() == 4 {
        return None; // full rank, trivial nullspace only
    }
    // Choose the first free column, set w[free] = 1, back-substitute.
    let pivot_cols: Vec<usize> = pivots.iter().map(|&(_, c)| c).collect();
    let free = (0..4).find(|c| !pivot_cols.contains(c))?;
    let mut w = [0.0f64; 4];
    w[free] = 1.0;
    for &(r, c) in &pivots {
        w[c] = -m[r][free];
    }
    // Normalise to make scales well-conditioned.
    let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm < 1e-12 {
        return None;
    }
    for v in &mut w {
        *v /= norm;
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_factorization_is_exact() {
        let target = odd_target();
        let s = solve_sandwich(&target);
        assert!(
            s.residual < 1e-9,
            "CORDIC#1 sandwich residual too large: {}",
            s.residual
        );
        assert!(dist4(&target, &s.realize()) < 1e-9);
    }

    #[test]
    fn scaled_sandwich_factorization_is_exact() {
        let target = odd_target();
        let s = solve_scaled_sandwich(&target);
        assert!(
            s.residual < 1e-9,
            "CORDIC#2 scaled sandwich residual too large: {}",
            s.residual
        );
        assert!(dist4(&target, &s.realize()) < 1e-9);
        // At least one scale should be non-trivial (the absorbed sqrt(2)).
        assert!(s.scales.iter().any(|v| (v.abs() - 1.0).abs() > 1e-6));
    }

    #[test]
    fn mul4_identity() {
        let mut i4 = [[0.0; 4]; 4];
        for (r, row) in i4.iter_mut().enumerate() {
            row[r] = 1.0;
        }
        let t = odd_target();
        assert!(dist4(&mul4(&i4, &t), &t) < 1e-12);
    }
}
