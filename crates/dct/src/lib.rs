//! # dsra-dct — DCT implementations on the distributed-arithmetic array
//!
//! The six DCT mappings of the paper's §3, each built as a
//! [`dsra_core::netlist::Netlist`] over add-shift and memory clusters and
//! executed bit-serially on the `dsra-sim` engine.

#![warn(missing_docs)]

pub mod basic_da;
pub mod cordic;
pub mod da;
pub mod factor;
pub mod harness;
pub mod idct;
pub mod mixed_rom;
pub mod reference;
pub mod scc;
pub mod twod;

pub use basic_da::BasicDa;
pub use cordic::{Cordic1, Cordic2};
pub use da::DaParams;
pub use harness::{all_impls, measure_accuracy, Accuracy, DctImpl};
pub use idct::BasicIdct;
pub use mixed_rom::MixedRom;
pub use scc::{SccEvenOdd, SccFull};
