//! §3.3–3.4 / Figs. 6–7 — the two CORDIC-rotator-based DCT mappings.
//!
//! A "CORDIC rotator" on this fabric is a 2-input/2-output DA block: two
//! 4-word ROMs plus two shift-accumulators (§3.3: "The CORDIC rotators are
//! implemented through ROM and Shift Accumulators"). Because the ROM words
//! are free, each rotator realises an arbitrary 2×2 matrix — rotation,
//! scaled rotation, or plain scaling.
//!
//! * [`Cordic1`] (Fig. 6): 6 rotators + 16 butterfly adders. Even part: two
//!   rotators after parallel butterflies. Odd part: the
//!   [`crate::factor::solve_sandwich`] factorization — two input rotators,
//!   four *bit-serial* butterfly adders chained off the accumulators'
//!   serial outputs, two output rotators.
//! * [`Cordic2`] (Fig. 7): the scaled architecture — 3 rotators + 20
//!   butterfly adders. `X0/X4` collapse to plain adders (scale factors
//!   folded into quantisation, §3.4), and the odd part uses the
//!   [`crate::factor::solve_scaled_sandwich`] factorization with serial
//!   output taps.

#![allow(clippy::needless_range_loop)] // index-coupled matrix math reads clearer

use dsra_core::cluster::{AddShiftCfg, ClusterCfg};
use dsra_core::error::Result;
use dsra_core::fixed::to_signed;
use dsra_core::netlist::{Netlist, NodeId};
use dsra_sim::Simulator;

use crate::da::{add_controls, da_lane, encode_sample, ControlPins, DaParams};
use crate::factor::{solve_sandwich, solve_scaled_sandwich, Sandwich, ScaledSandwich};
use crate::harness::{BlockIo, DctImpl};
use crate::mixed_rom::{build_butterfly_stage, STAGE_WIDTH};
use crate::reference;

fn alpha0() -> f64 {
    reference::alpha(0)
}
fn alpha() -> f64 {
    reference::alpha(1)
}

/// Even-part construction shared by both CORDIC mappings: the `u` butterfly
/// stage over `a0..a3`. Returns `(u0, u1, u2, u3)` node ids (`u0/u1` sums,
/// `u2/u3` differences; outputs on port `y`).
fn build_u_stage(nl: &mut Netlist, adds: &[NodeId; 4]) -> Result<[NodeId; 4]> {
    let mk = |nl: &mut Netlist, name: &str, sub: bool| -> Result<NodeId> {
        let cfg = if sub {
            AddShiftCfg::Sub {
                width: STAGE_WIDTH,
                serial: false,
            }
        } else {
            AddShiftCfg::Add {
                width: STAGE_WIDTH,
                serial: false,
            }
        };
        nl.cluster(name, ClusterCfg::AddShift(cfg))
    };
    let u0 = mk(nl, "u0", false)?;
    nl.connect((adds[0], "y"), (u0, "a"))?;
    nl.connect((adds[3], "y"), (u0, "b"))?;
    let u1 = mk(nl, "u1", false)?;
    nl.connect((adds[1], "y"), (u1, "a"))?;
    nl.connect((adds[2], "y"), (u1, "b"))?;
    let u2 = mk(nl, "u2", true)?;
    nl.connect((adds[1], "y"), (u2, "a"))?;
    nl.connect((adds[2], "y"), (u2, "b"))?;
    let u3 = mk(nl, "u3", true)?;
    nl.connect((adds[0], "y"), (u3, "a"))?;
    nl.connect((adds[3], "y"), (u3, "b"))?;
    Ok([u0, u1, u2, u3])
}

/// Builds a serialiser on a 16-bit stage output.
fn stage_serializer(
    nl: &mut Netlist,
    name: &str,
    src: NodeId,
    ctl: &ControlPins,
) -> Result<NodeId> {
    crate::da::serializer(nl, name, (src, "y"), STAGE_WIDTH, ctl)
}

/// Builds one 2-in/2-out rotator: two DA lanes sharing a 2-bit address.
/// `coeff_rows[r]` are the matrix rows; returns the two accumulator nodes.
#[allow(clippy::too_many_arguments)]
fn rotator(
    nl: &mut Netlist,
    name: &str,
    bit_a: (NodeId, &str),
    bit_b: (NodeId, &str),
    coeff_rows: [[f64; 2]; 2],
    params: &DaParams,
    accen: NodeId,
    sub: NodeId,
    clr: NodeId,
) -> Result<[NodeId; 2]> {
    let addr = nl.concat(format!("{name}_addr"), &[bit_a, bit_b])?;
    let range = crate::da::rom_dynamic_range(&coeff_rows[0])
        .max(crate::da::rom_dynamic_range(&coeff_rows[1]));
    assert!(
        range <= params.q().max_value(),
        "rotator `{name}` coefficients ({range:.3}) exceed the ROM range"
    );
    let mut accs = [NodeId(0); 2];
    for (r, acc) in accs.iter_mut().enumerate() {
        let (_, a) = da_lane(
            nl,
            &format!("{name}_r{r}"),
            (addr, "out"),
            &coeff_rows[r],
            params,
            accen,
            sub,
            clr,
        )?;
        *acc = a;
    }
    Ok(accs)
}

/// A bit-serial ±op on two 1-bit streams; `sign = false` adds, `true`
/// subtracts. Carry clear wired to `sclr`.
fn serial_op(
    nl: &mut Netlist,
    name: &str,
    a: (NodeId, &str),
    b: (NodeId, &str),
    sign: bool,
    sclr: NodeId,
) -> Result<NodeId> {
    let cfg = if sign {
        AddShiftCfg::Sub {
            width: 1,
            serial: true,
        }
    } else {
        AddShiftCfg::Add {
            width: 1,
            serial: true,
        }
    };
    let op = nl.cluster(name, ClusterCfg::AddShift(cfg))?;
    nl.connect(a, (op, "a"))?;
    nl.connect(b, (op, "b"))?;
    nl.connect((sclr, "out"), (op, "clr"))?;
    Ok(op)
}

/// Extracts (columns, sign) of a ±1 butterfly row with exactly two nonzeros.
fn row_ops(row: &[f64; 4]) -> (usize, usize, bool) {
    let nz: Vec<usize> = (0..4).filter(|&c| row[c].abs() > 0.5).collect();
    assert_eq!(nz.len(), 2, "butterfly rows have two operands");
    assert!(row[nz[0]] > 0.0, "library rows lead with +1");
    (nz[0], nz[1], row[nz[1]] < 0.0)
}

/// Extra control pins used by the two-phase CORDIC schedules.
struct Phase2Pins {
    sh: NodeId,
    sclr: NodeId,
    accen2: NodeId,
    sub2: NodeId,
}

fn add_phase2_controls(nl: &mut Netlist) -> Result<Phase2Pins> {
    Ok(Phase2Pins {
        sh: nl.input("ctl_sh", 1)?,
        sclr: nl.input("ctl_sclr", 1)?,
        accen2: nl.input("ctl_accen2", 1)?,
        sub2: nl.input("ctl_sub2", 1)?,
    })
}

/// Phase schedule constants shared by the drivers.
#[derive(Debug, Clone, Copy)]
struct Schedule {
    /// Phase-1 serial stream length.
    b1: u8,
    /// Low accumulator bits discarded before phase 2 (precision trade).
    presh: u8,
    /// Phase-2 serial stream length.
    b2: u8,
}

impl Schedule {
    fn for_params(params: &DaParams, max_row_norm: f64) -> Self {
        let b1 = params.input_bits + 2;
        let b2 = params.acc_width - params.rom_width; // keep phase 2 exact

        // Phase-1 accumulator magnitude bound:
        //   |P| <= rowNorm · 2^input_bits · 2^rom_frac · 2^(align - b1)
        let p_bits = (max_row_norm.log2()
            + f64::from(params.input_bits)
            + f64::from(params.rom_frac)
            + f64::from(params.align())
            - f64::from(b1))
        .ceil() as i32
            + 1;
        // Two streams add in the butterfly: need p_bits - presh + 2 <= b2.
        let presh = (p_bits + 2 - i32::from(b2)).max(1) as u8;
        Schedule { b1, presh, b2 }
    }

    /// Decode exponent for phase-2 results: raw · 2^exp recovers the real
    /// value of `row · q_real`.
    fn phase2_exp(&self, params: &DaParams) -> i32 {
        i32::from(self.b2) - i32::from(params.align()) - i32::from(params.rom_frac)
            + i32::from(self.presh)
            - i32::from(params.rom_frac)
            - i32::from(params.align())
            + i32::from(self.b1)
    }

    /// Decode exponent for serial streams sampled in phase 2 (CORDIC #2):
    /// stream integer · 2^exp recovers `q_real`.
    fn stream_exp(&self, params: &DaParams) -> i32 {
        i32::from(self.presh) - i32::from(params.rom_frac) - i32::from(params.align())
            + i32::from(self.b1)
    }
}

/// Runs the common phase-1 part of the CORDIC schedules.
fn run_phase1(sim: &mut Simulator<'_>, sched: &Schedule) -> Result<()> {
    sim.set("ctl_load", 1)?;
    sim.set("ctl_clr", 1)?;
    sim.set("ctl_sren", 0)?;
    sim.set("ctl_accen", 0)?;
    sim.set("ctl_sub", 0)?;
    sim.set("ctl_sh", 0)?;
    sim.set("ctl_sclr", 0)?;
    sim.step();
    sim.set("ctl_load", 0)?;
    sim.set("ctl_clr", 0)?;
    sim.set("ctl_sren", 1)?;
    sim.set("ctl_accen", 1)?;
    for t in 0..sched.b1 {
        sim.set("ctl_sub", u64::from(t == sched.b1 - 1))?;
        sim.step();
    }
    sim.set("ctl_sren", 0)?;
    sim.set("ctl_accen", 0)?;
    sim.set("ctl_sub", 0)?;
    Ok(())
}

/// Runs the discard window (presh cycles) with a carry clear on its last
/// cycle, leaving `sh` asserted for phase 2.
fn run_discard(sim: &mut Simulator<'_>, sched: &Schedule) -> Result<()> {
    sim.set("ctl_sh", 1)?;
    for t in 0..sched.presh {
        sim.set("ctl_sclr", u64::from(t == sched.presh - 1))?;
        sim.step();
    }
    sim.set("ctl_sclr", 0)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// CORDIC #1
// ---------------------------------------------------------------------------

/// Fig. 6 — the 6-rotator, 16-adder CORDIC DCT.
#[derive(Debug)]
pub struct Cordic1 {
    netlist: Netlist,
    params: DaParams,
    sched: Schedule,
    /// Which odd output index (0..4 ⇒ X1,X3,X5,X7) each Y-lane produces.
    cycles: u64,
    io: BlockIo,
}

impl Cordic1 {
    /// Builds the mapping; the odd-part factorization is solved on the fly
    /// (deterministically) and asserted exact.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        let fact: Sandwich = solve_sandwich(&crate::factor::odd_target());
        assert!(
            fact.residual < 1e-7,
            "odd-part sandwich factorization failed: residual {}",
            fact.residual
        );
        let mut nl = Netlist::new("cordic-1");
        let ctl = add_controls(&mut nl)?;
        let p2 = add_phase2_controls(&mut nl)?;
        let (adds, subs) = build_butterfly_stage(&mut nl, params.input_bits)?;
        let us = build_u_stage(&mut nl, &adds)?;

        // Even path: serialise u0..u3, two rotators.
        let su: Vec<NodeId> = (0..4)
            .map(|i| stage_serializer(&mut nl, &format!("sru{i}"), us[i], &ctl))
            .collect::<Result<_>>()?;
        let a = alpha();
        let a0 = alpha0();
        let c4 = (std::f64::consts::PI / 4.0).cos();
        let c2 = (std::f64::consts::PI / 8.0).cos();
        let s2 = (std::f64::consts::PI / 8.0).sin();
        let e1 = rotator(
            &mut nl,
            "rot_e1",
            (su[0], "q"),
            (su[1], "q"),
            [[a0, a0], [a * c4, -a * c4]],
            &params,
            ctl.accen,
            ctl.sub,
            ctl.clr,
        )?;
        let e2 = rotator(
            &mut nl,
            "rot_e2",
            (su[2], "q"),
            (su[3], "q"),
            [[a * s2, a * c2], [-a * c2, a * s2]],
            &params,
            ctl.accen,
            ctl.sub,
            ctl.clr,
        )?;
        for (u, acc) in [(0usize, e1[0]), (4, e1[1]), (2, e2[0]), (6, e2[1])] {
            let y = nl.output(format!("y{u}"), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }

        // Odd path, phase 1: serialise b0..b3 and apply the X rotators.
        let sb: Vec<NodeId> = (0..4)
            .map(|i| stage_serializer(&mut nl, &format!("srb{i}"), subs[i], &ctl))
            .collect::<Result<_>>()?;
        // p accumulators indexed in b-space.
        let mut p_accs: [NodeId; 4] = [NodeId(0); 4];
        for (bi, pair) in [fact.x_pairs.0, fact.x_pairs.1].into_iter().enumerate() {
            let accs = rotator(
                &mut nl,
                &format!("rot_x{bi}"),
                (sb[pair.0], "q"),
                (sb[pair.1], "q"),
                fact.x_blocks[bi],
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            p_accs[pair.0] = accs[0];
            p_accs[pair.1] = accs[1];
        }
        // Wire the phase-1 odd accumulators' shift controls.
        for (i, acc) in p_accs.iter().enumerate() {
            let _ = i;
            nl.connect((p2.sh, "out"), (*acc, "sh"))?;
        }
        // Serial butterflies on the accumulators' serial outputs.
        let mut q_ops: [NodeId; 4] = [NodeId(0); 4];
        for (r, op) in q_ops.iter_mut().enumerate() {
            let (c1, c2i, sign) = row_ops(&fact.butterfly[r]);
            *op = serial_op(
                &mut nl,
                &format!("bfly{r}"),
                (p_accs[c1], "qs"),
                (p_accs[c2i], "qs"),
                sign,
                p2.sclr,
            )?;
        }
        // Output rotators on the butterfly streams.
        for (bi, pair) in [fact.y_pairs.0, fact.y_pairs.1].into_iter().enumerate() {
            let accs = rotator(
                &mut nl,
                &format!("rot_y{bi}"),
                (q_ops[pair.0], "y"),
                (q_ops[pair.1], "y"),
                fact.y_blocks[bi],
                &params,
                p2.accen2,
                p2.sub2,
                ctl.clr,
            )?;
            for (r, acc) in [pair.0, pair.1].into_iter().zip(accs) {
                let y = nl.output(format!("y{}", 2 * r + 1), params.acc_width)?;
                nl.connect((acc, "y"), (y, "in"))?;
            }
        }
        let io = BlockIo::new(&nl)?;
        let max_row_norm = fact
            .x_blocks
            .iter()
            .flat_map(|b| b.iter())
            .map(|row| row[0].abs() + row[1].abs())
            .fold(0.0f64, f64::max);
        let sched = Schedule::for_params(&params, max_row_norm);
        let cycles = 1 + u64::from(sched.b1) + u64::from(sched.presh) + u64::from(sched.b2) + 1;
        Ok(Cordic1 {
            netlist: nl,
            params,
            sched,
            cycles,
            io,
        })
    }
}

impl DctImpl for Cordic1 {
    fn name(&self) -> &'static str {
        "CORDIC 1"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = self.io.sim(&self.netlist);
        for (i, &v) in x.iter().enumerate() {
            sim.drive(self.io.xs[i], encode_sample(v, self.params.input_bits));
        }
        sim.set("ctl_accen2", 0)?;
        sim.set("ctl_sub2", 0)?;
        run_phase1(&mut sim, &self.sched)?;
        run_discard(&mut sim, &self.sched)?;
        sim.set("ctl_accen2", 1)?;
        for t in 0..self.sched.b2 {
            sim.set("ctl_sub2", u64::from(t == self.sched.b2 - 1))?;
            sim.step();
        }
        sim.set("ctl_accen2", 0)?;
        sim.set("ctl_sub2", 0)?;
        sim.set("ctl_sh", 0)?;
        sim.step();

        let mut out = [0.0; 8];
        for u in [0usize, 2, 4, 6] {
            out[u] = self
                .params
                .decode_acc(sim.read(self.io.ys[u]), self.sched.b1);
        }
        let exp = self.sched.phase2_exp(&self.params);
        for u in [1usize, 3, 5, 7] {
            let raw = sim.read(self.io.ys[u]);
            out[u] = to_signed(raw, self.params.acc_width) as f64 * 2f64.powi(exp);
        }
        Ok(out)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

// ---------------------------------------------------------------------------
// CORDIC #2
// ---------------------------------------------------------------------------

/// Fig. 7 — the scaled 3-rotator, 20-adder CORDIC DCT.
///
/// `X0`/`X4` leave the array as parallel adder outputs, the four odd
/// coefficients as bit-serial streams; the per-output scale factors (§3.4)
/// are applied by the driver, standing in for the quantiser.
#[derive(Debug)]
pub struct Cordic2 {
    netlist: Netlist,
    params: DaParams,
    sched: Schedule,
    scales: [f64; 4],
    cycles: u64,
    plan: dsra_sim::ExecPlan,
    xs: [dsra_sim::InputPort; 8],
    /// Even parallel outputs `y0/y2/y4/y6`, indexed by `u / 2`.
    y_even: [dsra_sim::OutputPort; 4],
    /// Odd serial streams `so1/so3/so5/so7`, indexed by `(u - 1) / 2`.
    so: [dsra_sim::OutputPort; 4],
}

impl Cordic2 {
    /// Builds the mapping; the scaled odd-part factorization is solved on
    /// the fly and asserted exact.
    ///
    /// # Errors
    /// Internal netlist inconsistencies only.
    pub fn new(params: DaParams) -> Result<Self> {
        let fact: ScaledSandwich = solve_scaled_sandwich(&crate::factor::odd_target());
        assert!(
            fact.residual < 1e-7,
            "odd-part scaled factorization failed: residual {}",
            fact.residual
        );
        let mut nl = Netlist::new("cordic-2");
        let ctl = add_controls(&mut nl)?;
        let p2 = add_phase2_controls(&mut nl)?;
        let (adds, subs) = build_butterfly_stage(&mut nl, params.input_bits)?;
        let us = build_u_stage(&mut nl, &adds)?;

        // X0/X4: plain adders, scales folded into quantisation.
        let x0 = nl.cluster(
            "x0_add",
            ClusterCfg::AddShift(AddShiftCfg::Add {
                width: STAGE_WIDTH,
                serial: false,
            }),
        )?;
        nl.connect((us[0], "y"), (x0, "a"))?;
        nl.connect((us[1], "y"), (x0, "b"))?;
        let y0 = nl.output("y0", STAGE_WIDTH)?;
        nl.connect((x0, "y"), (y0, "in"))?;
        let x4 = nl.cluster(
            "x4_sub",
            ClusterCfg::AddShift(AddShiftCfg::Sub {
                width: STAGE_WIDTH,
                serial: false,
            }),
        )?;
        nl.connect((us[0], "y"), (x4, "a"))?;
        nl.connect((us[1], "y"), (x4, "b"))?;
        let y4 = nl.output("y4", STAGE_WIDTH)?;
        nl.connect((x4, "y"), (y4, "in"))?;

        // X2/X6: the even rotator (exact).
        let su2 = stage_serializer(&mut nl, "sru2", us[2], &ctl)?;
        let su3 = stage_serializer(&mut nl, "sru3", us[3], &ctl)?;
        let a = alpha();
        let c2 = (std::f64::consts::PI / 8.0).cos();
        let s2 = (std::f64::consts::PI / 8.0).sin();
        let e = rotator(
            &mut nl,
            "rot_e",
            (su2, "q"),
            (su3, "q"),
            [[a * s2, a * c2], [-a * c2, a * s2]],
            &params,
            ctl.accen,
            ctl.sub,
            ctl.clr,
        )?;
        for (u, acc) in [(2usize, e[0]), (6, e[1])] {
            let y = nl.output(format!("y{u}"), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }

        // Odd path: input rotators, then the serial post network.
        let sb: Vec<NodeId> = (0..4)
            .map(|i| stage_serializer(&mut nl, &format!("srb{i}"), subs[i], &ctl))
            .collect::<Result<_>>()?;
        let mut p_accs: [NodeId; 4] = [NodeId(0); 4];
        for (bi, pair) in [fact.x_pairs.0, fact.x_pairs.1].into_iter().enumerate() {
            let accs = rotator(
                &mut nl,
                &format!("rot_x{bi}"),
                (sb[pair.0], "q"),
                (sb[pair.1], "q"),
                fact.x_blocks[bi],
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            p_accs[pair.0] = accs[0];
            p_accs[pair.1] = accs[1];
        }
        for acc in &p_accs {
            nl.connect((p2.sh, "out"), (*acc, "sh"))?;
        }
        let mut h_ops: [NodeId; 4] = [NodeId(0); 4];
        for (r, op) in h_ops.iter_mut().enumerate() {
            let (c1, c2i, sign) = row_ops(&fact.butterfly[r]);
            *op = serial_op(
                &mut nl,
                &format!("bfly{r}"),
                (p_accs[c1], "qs"),
                (p_accs[c2i], "qs"),
                sign,
                p2.sclr,
            )?;
        }
        // Post network: combine post_pair, pass the rest.
        let (pi, pj) = fact.post_pair;
        let post_add = serial_op(
            &mut nl,
            "post_add",
            (h_ops[pi], "y"),
            (h_ops[pj], "y"),
            false,
            p2.sclr,
        )?;
        let post_sub = serial_op(
            &mut nl,
            "post_sub",
            (h_ops[pi], "y"),
            (h_ops[pj], "y"),
            true,
            p2.sclr,
        )?;
        for r in 0..4 {
            let src: (NodeId, &str) = if r == pi {
                (post_add, "y")
            } else if r == pj {
                (post_sub, "y")
            } else {
                (h_ops[r], "y")
            };
            let y = nl.output(format!("so{}", 2 * r + 1), 1)?;
            nl.connect(src, (y, "in"))?;
        }
        let plan = dsra_sim::ExecPlan::compile(&nl)?;
        let mut xs = Vec::with_capacity(8);
        for i in 0..8 {
            xs.push(dsra_sim::InputPort::resolve(&nl, &format!("x{i}"))?);
        }
        let mut y_even = Vec::with_capacity(4);
        let mut so = Vec::with_capacity(4);
        for k in 0..4 {
            y_even.push(dsra_sim::OutputPort::resolve(&nl, &format!("y{}", 2 * k))?);
            so.push(dsra_sim::OutputPort::resolve(
                &nl,
                &format!("so{}", 2 * k + 1),
            )?);
        }
        let max_row_norm = fact
            .x_blocks
            .iter()
            .flat_map(|b| b.iter())
            .map(|row| row[0].abs() + row[1].abs())
            .fold(0.0f64, f64::max);
        let mut sched = Schedule::for_params(&params, max_row_norm);
        // Streams pass two serial levels: one extra guard bit.
        sched.presh += 1;
        let cycles = 1 + u64::from(sched.b1) + u64::from(sched.presh) + u64::from(sched.b2) + 1;
        Ok(Cordic2 {
            netlist: nl,
            params,
            sched,
            scales: fact.scales,
            cycles,
            plan,
            xs: xs.try_into().expect("8 inputs"),
            y_even: y_even.try_into().expect("4 even outputs"),
            so: so.try_into().expect("4 serial outputs"),
        })
    }

    /// The per-output scale factors folded into the quantiser (odd outputs,
    /// ordered X1, X3, X5, X7).
    pub fn odd_scales(&self) -> [f64; 4] {
        self.scales
    }
}

impl DctImpl for Cordic2 {
    fn name(&self) -> &'static str {
        "CORDIC 2"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = Simulator::with_plan(&self.netlist, &self.plan);
        for (i, &v) in x.iter().enumerate() {
            sim.drive(self.xs[i], encode_sample(v, self.params.input_bits));
        }
        sim.set("ctl_accen2", 0)?;
        sim.set("ctl_sub2", 0)?;
        run_phase1(&mut sim, &self.sched)?;
        run_discard(&mut sim, &self.sched)?;
        // Phase 2: sample the four serial output streams.
        let mut streams = [0u64; 4];
        for t in 0..self.sched.b2 {
            sim.step();
            for (s, stream) in streams.iter_mut().enumerate() {
                *stream |= sim.read(self.so[s]) << t;
            }
        }
        sim.set("ctl_sh", 0)?;
        sim.step();

        let mut out = [0.0; 8];
        // Parallel scaled outputs.
        let x0_raw = sim.read(self.y_even[0]);
        let x4_raw = sim.read(self.y_even[2]);
        let c4 = (std::f64::consts::PI / 4.0).cos();
        out[0] = to_signed(x0_raw, STAGE_WIDTH) as f64 * alpha0();
        out[4] = to_signed(x4_raw, STAGE_WIDTH) as f64 * alpha() * c4;
        // Even rotator outputs.
        for u in [2usize, 6] {
            let raw = sim.read(self.y_even[u / 2]);
            out[u] = self.params.decode_acc(raw, self.sched.b1);
        }
        // Odd serial streams, with the quantiser-side scale factors.
        let exp = self.sched.stream_exp(&self.params);
        for (s, stream) in streams.iter().enumerate() {
            let v = to_signed(*stream, self.sched.b2) as f64 * 2f64.powi(exp);
            out[2 * s + 1] = v * self.scales[s];
        }
        Ok(out)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::measure_accuracy;

    #[test]
    fn cordic1_table1_column() {
        let imp = Cordic1::new(DaParams::precise()).unwrap();
        let r = imp.report();
        // Table 1, CORDIC 1 column: 8 / 8 / 8 / 12, mem 12, total 48.
        assert_eq!(r.table1_row(), [8, 8, 8, 12, 12]);
        assert_eq!(r.add_shift_total(), 36);
        assert_eq!(r.total_clusters(), 48);
    }

    #[test]
    fn cordic2_table1_column() {
        let imp = Cordic2::new(DaParams::precise()).unwrap();
        let r = imp.report();
        // Table 1, CORDIC 2 column: 10 / 10 / 6 / 6, mem 6, total 38.
        assert_eq!(r.table1_row(), [10, 10, 6, 6, 6]);
        assert_eq!(r.add_shift_total(), 32);
        assert_eq!(r.total_clusters(), 38);
    }

    #[test]
    fn cordic1_matches_reference_within_fixed_point_budget() {
        let imp = Cordic1::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 8, 2047, 11).unwrap();
        assert!(acc.max_abs_err < 8.0, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn cordic2_matches_reference_within_fixed_point_budget() {
        let imp = Cordic2::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 8, 2047, 12).unwrap();
        assert!(acc.max_abs_err < 8.0, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn cordic1_dc_block() {
        let imp = Cordic1::new(DaParams::precise()).unwrap();
        let y = imp.transform(&[500; 8]).unwrap();
        let sw = reference::dct_1d_int(&[500; 8]);
        for (u, (h, s)) in y.iter().zip(sw.iter()).enumerate() {
            assert!((h - s).abs() < 4.0, "coeff {u}: hw {h} vs sw {s}");
        }
    }

    #[test]
    fn cordic2_uses_three_rotators_cordic1_six() {
        // §3.4: "Uses 3 CORDIC rotators instead of 6" — visible as the
        // memory-cluster count (2 ROMs per rotator).
        let c1 = Cordic1::new(DaParams::precise()).unwrap();
        let c2 = Cordic2::new(DaParams::precise()).unwrap();
        assert_eq!(c1.report().memory_clusters(), 12);
        assert_eq!(c2.report().memory_clusters(), 6);
        // "...20 butterfly adders instead of 16".
        let adders = |r: &dsra_core::report::ResourceReport| r.table1_row()[0] + r.table1_row()[1];
        assert_eq!(adders(&c1.report()), 16);
        assert_eq!(adders(&c2.report()), 20);
    }
}
