//! §3.1 / Fig. 4 — the simple bit-serial distributed-arithmetic DCT.
//!
//! Eight shift registers serialise the samples; the eight serial bits form a
//! common 8-bit address into eight 256-word ROMs (one per coefficient); each
//! ROM feeds a shift-accumulator. "All the N memories receive the same
//! address."

use dsra_core::error::Result;
use dsra_core::netlist::{Netlist, NodeId};

use crate::da::{add_controls, da_lane, encode_sample, serializer, DaParams};
use crate::harness::{run_single_phase, BlockIo, DctImpl};
use crate::reference;

/// The Fig.-4 basic DA implementation.
#[derive(Debug)]
pub struct BasicDa {
    netlist: Netlist,
    params: DaParams,
    cycles: u64,
    io: BlockIo,
}

impl BasicDa {
    /// Builds the mapping with the given fixed-point parameters.
    ///
    /// # Errors
    /// Fails only on internal netlist inconsistencies (a bug), surfaced as
    /// [`dsra_core::error::CoreError`].
    pub fn new(params: DaParams) -> Result<Self> {
        let mut nl = Netlist::new("basic-da");
        let ctl = add_controls(&mut nl)?;
        let mut srs: Vec<NodeId> = Vec::with_capacity(8);
        for i in 0..8 {
            let x = nl.input(format!("x{i}"), params.input_bits)?;
            let sr = serializer(
                &mut nl,
                &format!("sr{i}"),
                (x, "out"),
                params.input_bits,
                &ctl,
            )?;
            srs.push(sr);
        }
        let addr_parts: Vec<(NodeId, &str)> = srs.iter().map(|&n| (n, "q")).collect();
        let addr = nl.concat("addr", &addr_parts)?;
        for u in 0..8 {
            let coeffs: Vec<f64> = (0..8).map(|i| reference::dct_coeff(u, i)).collect();
            let (_rom, acc) = da_lane(
                &mut nl,
                &format!("lane{u}"),
                (addr, "out"),
                &coeffs,
                &params,
                ctl.accen,
                ctl.sub,
                ctl.clr,
            )?;
            let y = nl.output(format!("y{u}"), params.acc_width)?;
            nl.connect((acc, "y"), (y, "in"))?;
        }
        let io = BlockIo::new(&nl)?;
        Ok(BasicDa {
            netlist: nl,
            params,
            cycles: u64::from(params.input_bits) + 2,
            io,
        })
    }
}

impl DctImpl for BasicDa {
    fn name(&self) -> &'static str {
        "BASIC DA"
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn params(&self) -> &DaParams {
        &self.params
    }

    fn transform(&self, x: &[i64; 8]) -> Result<[f64; 8]> {
        let mut sim = self.io.sim(&self.netlist);
        for (i, &v) in x.iter().enumerate() {
            sim.drive(self.io.xs[i], encode_sample(v, self.params.input_bits));
        }
        run_single_phase(&mut sim, self.params.input_bits)?;
        let mut out = [0.0; 8];
        for (u, o) in out.iter_mut().enumerate() {
            *o = self
                .params
                .decode_acc(sim.read(self.io.ys[u]), self.params.input_bits);
        }
        Ok(out)
    }

    fn cycles_per_block(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::measure_accuracy;

    #[test]
    fn table1_row_matches_fig4() {
        let imp = BasicDa::new(DaParams::precise()).unwrap();
        let r = imp.report();
        assert_eq!(r.table1_row(), [0, 0, 8, 8, 8]);
        assert_eq!(r.total_clusters(), 24);
        assert_eq!(r.memory_words(), 8 * 256);
    }

    #[test]
    fn dc_block_transforms_exactly() {
        let imp = BasicDa::new(DaParams::precise()).unwrap();
        let y = imp.transform(&[100; 8]).unwrap();
        let sw = reference::dct_1d_int(&[100; 8]);
        for (h, s) in y.iter().zip(sw.iter()) {
            assert!((h - s).abs() < 0.5, "hw {h} vs sw {s}");
        }
    }

    #[test]
    fn random_blocks_accurate_with_precise_params() {
        let imp = BasicDa::new(DaParams::precise()).unwrap();
        let acc = measure_accuracy(&imp, 12, 2047, 42).unwrap();
        // Exact DA: error bounded by ROM coefficient rounding alone.
        assert!(acc.max_abs_err < 1.5, "max err {}", acc.max_abs_err);
    }

    #[test]
    fn paper_widths_show_truncation_noise_but_stay_usable() {
        let imp = BasicDa::new(DaParams::paper()).unwrap();
        let acc = measure_accuracy(&imp, 8, 255, 42).unwrap();
        // 8-bit ROMs / 16-bit accs: coarse but bounded.
        assert!(acc.max_abs_err < 40.0, "max err {}", acc.max_abs_err);
        let precise = BasicDa::new(DaParams::precise()).unwrap();
        let accp = measure_accuracy(&precise, 8, 255, 42).unwrap();
        assert!(accp.max_abs_err < acc.max_abs_err);
    }
}
