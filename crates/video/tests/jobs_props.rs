//! Property tests for the job-mix generator (ISSUE 5 satellite): the mix
//! is a pure function of its seed, and every motion-search payload any
//! producer draws satisfies the full-window invariant the runtime's
//! undersized-plane rejection guards (`size >= block + 2 * range` on both
//! axes — the rejection path itself is pinned by
//! `undersized_me_plane_is_an_error_not_a_panic` in `dsra-runtime` and by
//! the `dsra-service` dispatch test).

use dsra_core::rng::SplitMix64;
use dsra_video::{generate_job_mix, sample_payload, JobMixConfig, JobMixWeights, JobPayload};
use proptest::prelude::*;

/// `true` when an ME payload's planes can hold the centred search window.
fn me_window_fits(payload: &JobPayload) -> bool {
    match *payload {
        JobPayload::MeSearch {
            size, block, range, ..
        } => {
            let need = u16::from(block) + 2 * u16::from(range);
            size.0 >= need && size.1 >= need
        }
        _ => true,
    }
}

proptest! {
    /// Same seed ⇒ byte-identical mix; a different seed changes it.
    #[test]
    fn job_mix_is_a_pure_function_of_the_seed(seed in any::<u64>(), jobs in 1u32..200) {
        let config = JobMixConfig { jobs, seed, ..Default::default() };
        let a = generate_job_mix(config);
        let b = generate_job_mix(config);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), jobs as usize);
        let other = generate_job_mix(JobMixConfig {
            seed: seed.wrapping_add(1),
            ..config
        });
        prop_assert_ne!(a, other);
    }

    /// Every generated `MeSearch` fits its full search window: the plane
    /// is at least `block + 2 * range` on both axes, so the systolic feed
    /// can never read out of bounds on generated traffic.
    #[test]
    fn every_generated_me_search_fits_its_window(seed in any::<u64>(), jobs in 1u32..200) {
        let mix = generate_job_mix(JobMixConfig {
            jobs,
            seed,
            // ME-heavy so the property actually exercises the payload.
            weights: JobMixWeights { dct: 1, me: 8, encode: 1 },
            ..Default::default()
        });
        for job in &mix {
            prop_assert!(me_window_fits(&job.payload), "{:?}", job.payload);
        }
    }

    /// The shared payload sampler upholds the same invariant for every
    /// consumer (the E13 trace generator draws through it too).
    #[test]
    fn sampled_payloads_fit_their_windows(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let weights = JobMixWeights { dct: 0, me: 1, encode: 0 };
        for _ in 0..64 {
            let payload = sample_payload(&mut rng, weights);
            prop_assert!(me_window_fits(&payload), "{payload:?}");
        }
    }
}

/// The generator's chunking keeps the weights in force: an all-ME chunk
/// is all ME, and a rejected (all-zero) weight set panics rather than
/// silently emitting something.
#[test]
fn zero_weights_are_rejected_loudly() {
    let result = std::panic::catch_unwind(|| {
        let mut rng = SplitMix64::new(7);
        sample_payload(
            &mut rng,
            JobMixWeights {
                dct: 0,
                me: 0,
                encode: 0,
            },
        )
    });
    assert!(result.is_err(), "all-zero weights must panic");
}
