//! # dsra-video — synthetic video substrate
//!
//! The paper evaluates on MPEG-4/H.263-class workloads; real test sequences
//! are not redistributable, so this crate generates synthetic luminance
//! sequences with controllable motion (global pan + moving objects + noise),
//! plus the quantisation and quality metrics a motion-compensated DCT codec
//! needs. See DESIGN.md §2 for the substitution rationale.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_video::{psnr, SequenceConfig, SyntheticSequence};
//!
//! let seq = SyntheticSequence::generate(SequenceConfig {
//!     width: 32,
//!     height: 32,
//!     frames: 2,
//!     ..Default::default()
//! });
//! // Consecutive frames differ only by pan + noise: high but finite PSNR.
//! let quality = psnr(seq.frame(0), seq.frame(1));
//! assert!(quality > 10.0 && quality.is_finite());
//! ```

#![warn(missing_docs)]

pub mod entropy;
pub mod jobs;
pub mod metrics;
pub mod pipeline;
pub mod quant;
pub mod sequence;

pub use entropy::{estimate_bits, run_length, zigzag_scan, RunLevel};
pub use jobs::{
    generate_job_mix, me_search_planes, sample_gap, sample_payload, JobMixConfig, JobMixWeights,
    JobPayload, JobSpec, ServiceClass,
};
pub use metrics::{mse, psnr};
pub use pipeline::{encode_frame, EncodeConfig, EncodeStats};
pub use quant::{dequantize_block, quantize_block, Quantizer};
pub use sequence::{SequenceConfig, SyntheticSequence};
