//! # dsra-video — synthetic video substrate
//!
//! The paper evaluates on MPEG-4/H.263-class workloads; real test sequences
//! are not redistributable, so this crate generates synthetic luminance
//! sequences with controllable motion (global pan + moving objects + noise),
//! plus the quantisation and quality metrics a motion-compensated DCT codec
//! needs. See DESIGN.md §2 for the substitution rationale.

#![warn(missing_docs)]

pub mod entropy;
pub mod metrics;
pub mod pipeline;
pub mod quant;
pub mod sequence;

pub use entropy::{estimate_bits, run_length, zigzag_scan, RunLevel};
pub use metrics::{mse, psnr};
pub use pipeline::{encode_frame, EncodeConfig, EncodeStats};
pub use quant::{dequantize_block, quantize_block, Quantizer};
pub use sequence::{SequenceConfig, SyntheticSequence};
