//! Seeded job-mix generation: the workload description a multi-array SoC
//! runtime serves.
//!
//! A [`JobSpec`] describes *what* a video job needs (DCT blocks, a motion
//! search, a short encode GOP) and *under which service class* it runs —
//! without naming any hardware. `dsra-runtime` maps service classes to
//! `dsra-platform` run-time [`Condition`]s, picks kernels and arrays, and
//! executes the payloads cycle-accurately. Keeping the description here
//! keeps `dsra-video` the single source of workload truth for benchmarks
//! and the runtime alike.
//!
//! [`Condition`]: https://docs.rs/dsra-platform (see `dsra_platform::policy::Condition`)

use dsra_core::rng::SplitMix64;
use dsra_me::Plane;

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPayload {
    /// Transform `blocks` pseudo-random 8-sample blocks (seeded per job) on
    /// a DCT mapping chosen by the runtime policy.
    DctBlocks {
        /// Number of 1-D 8-point blocks.
        blocks: u16,
        /// Sample amplitude (values drawn from `-amplitude..=amplitude`).
        amplitude: i64,
    },
    /// One full-search block-matching run on synthetic shifted planes.
    ///
    /// The runtime searches a centred block, so the plane must fit the full
    /// window: `size >= block + 2 * range` on both axes (the runtime rejects
    /// smaller planes with an error rather than reading out of bounds).
    MeSearch {
        /// Plane width and height in pixels.
        size: (u16, u16),
        /// Ground-truth displacement between the planes.
        shift: (i8, i8),
        /// Block size (pixels).
        block: u8,
        /// Search range (± pixels).
        range: u8,
    },
    /// A short encode GOP: `frames` synthetic frames through the
    /// motion-compensated DCT encode loop.
    EncodeGop {
        /// Frame width and height in pixels (multiples of 16).
        size: (u16, u16),
        /// Number of frames (>= 2; `frames - 1` are encoded).
        frames: u8,
        /// Additive noise amplitude for the synthetic sequence.
        noise: u8,
    },
}

/// Service class a job arrives with — the workload-side counterpart of the
/// platform's run-time `Condition`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// Interactive / mains powered: best quality.
    Quality,
    /// Battery saver: lowest energy mapping.
    LowPower,
    /// Real-time: any mapping within the cycle budget per block.
    Deadline(u64),
    /// Best effort: smallest footprint.
    Background,
}

impl ServiceClass {
    /// Stable lower-case tag (trace events, reports).
    pub fn tag(&self) -> &'static str {
        match self {
            ServiceClass::Quality => "quality",
            ServiceClass::LowPower => "low-power",
            ServiceClass::Deadline(_) => "deadline",
            ServiceClass::Background => "background",
        }
    }
}

/// One job in the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Dense id, also the deterministic ordering key.
    pub id: u32,
    /// Arrival time in SoC cycles (non-decreasing over the mix).
    pub arrival_cycle: u64,
    /// Service class in force for this job.
    pub class: ServiceClass,
    /// The work itself.
    pub payload: JobPayload,
    /// Per-job seed for synthesising payload data.
    pub seed: u64,
}

/// Relative weights of the three payload kinds in a generated mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMixWeights {
    /// Weight of [`JobPayload::DctBlocks`] jobs.
    pub dct: u32,
    /// Weight of [`JobPayload::MeSearch`] jobs.
    pub me: u32,
    /// Weight of [`JobPayload::EncodeGop`] jobs.
    pub encode: u32,
}

impl Default for JobMixWeights {
    fn default() -> Self {
        // DCT-heavy, as a transform-bound codec front end would be.
        JobMixWeights {
            dct: 60,
            me: 25,
            encode: 15,
        }
    }
}

/// Parameters of a generated job mix.
#[derive(Debug, Clone, Copy)]
pub struct JobMixConfig {
    /// Number of jobs.
    pub jobs: u32,
    /// RNG seed; the whole mix is a pure function of this config.
    pub seed: u64,
    /// Payload-kind weights.
    pub weights: JobMixWeights,
    /// Mean inter-arrival gap in SoC cycles (geometric-ish, seeded).
    pub mean_gap_cycles: u64,
}

impl Default for JobMixConfig {
    fn default() -> Self {
        JobMixConfig {
            jobs: 1000,
            seed: 0x50C_5EED,
            weights: JobMixWeights::default(),
            mean_gap_cycles: 200,
        }
    }
}

impl JobMixConfig {
    /// The `index`-th chunk of an endless job stream with this shape:
    /// identical weights and arrival statistics, a chunk-specific seed
    /// derived deterministically from the base seed. Chunk 0 *is* the
    /// base config, so `battery_serve` (E12) discharging a battery over
    /// chunks starts with exactly the E11 mix.
    pub fn chunk(self, index: u64) -> JobMixConfig {
        if index == 0 {
            return self;
        }
        JobMixConfig {
            seed: dsra_core::rng::split_seed(self.seed, index),
            ..self
        }
    }
}

/// Draws one weighted payload — the single payload synthesiser
/// `generate_job_mix` and `dsra-service`'s trace generator share, so
/// every workload producer in the workspace emits the same job shapes.
///
/// Every [`JobPayload::MeSearch`] drawn here satisfies the full-window
/// invariant `size >= block + 2 * range` on both axes (the property
/// `crates/video/tests/jobs_props.rs` pins), so the runtime's
/// undersized-plane rejection can never fire on generated traffic.
///
/// # Panics
/// Panics if every weight is zero.
pub fn sample_payload(rng: &mut SplitMix64, weights: JobMixWeights) -> JobPayload {
    let total_weight = u64::from(weights.dct) + u64::from(weights.me) + u64::from(weights.encode);
    assert!(
        total_weight > 0,
        "job mix needs at least one non-zero weight"
    );
    let pick = rng.next_below(total_weight);
    if pick < u64::from(weights.dct) {
        JobPayload::DctBlocks {
            blocks: 1 + rng.next_below(4) as u16,
            amplitude: 600 + rng.next_below(1200) as i64,
        }
    } else if pick < u64::from(weights.dct) + u64::from(weights.me) {
        JobPayload::MeSearch {
            size: (48, 48),
            shift: (rng.next_below(5) as i8 - 2, rng.next_below(5) as i8 - 2),
            block: 8,
            range: 2 + rng.next_below(2) as u8,
        }
    } else {
        JobPayload::EncodeGop {
            size: (32, 32),
            frames: 2 + rng.next_below(2) as u8,
            noise: rng.next_below(3) as u8,
        }
    }
}

/// Draws one bursty inter-arrival gap around `mean_gap`: most arrivals
/// land back to back, one in four after a lull of up to six means — the
/// single arrival-shape recipe `generate_job_mix` and `dsra-service`'s
/// trace generator share (same time unit as the caller's clock).
pub fn sample_gap(rng: &mut SplitMix64, mean_gap: u64) -> u64 {
    if rng.next_below(4) == 0 {
        mean_gap * (1 + rng.next_below(6))
    } else {
        rng.next_below(mean_gap.max(1) / 2 + 1)
    }
}

/// Generates a deterministic job mix: heterogeneous payloads, a seeded
/// bursty arrival pattern and rotating service classes (including periodic
/// low-battery phases, the paper's §5 motivation).
pub fn generate_job_mix(config: JobMixConfig) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(config.seed);
    let mut jobs = Vec::with_capacity(config.jobs as usize);
    let mut clock = 0u64;
    for id in 0..config.jobs {
        clock += sample_gap(&mut rng, config.mean_gap_cycles);
        let payload = sample_payload(&mut rng, config.weights);
        // Service classes rotate through phases: long quality stretches with
        // periodic battery-saver windows and occasional deadline/background
        // traffic, mirroring a device moving through operating conditions.
        let class = match (clock / (config.mean_gap_cycles.max(1) * 64)) % 4 {
            0 | 2 => match rng.next_below(10) {
                0 => ServiceClass::Deadline(16),
                1 => ServiceClass::Background,
                _ => ServiceClass::Quality,
            },
            1 => ServiceClass::LowPower,
            _ => match rng.next_below(3) {
                0 => ServiceClass::Deadline(32),
                _ => ServiceClass::Quality,
            },
        };
        jobs.push(JobSpec {
            id,
            arrival_cycle: clock,
            class,
            payload,
            seed: rng.next_u64(),
        });
    }
    jobs
}

/// Synthesises the reference/current plane pair of a [`JobPayload::MeSearch`]
/// job: hash-noise texture with the exact ground-truth shift, seeded per job
/// so distinct jobs search distinct content.
pub fn me_search_planes(size: (u16, u16), shift: (i8, i8), seed: u64) -> (Plane, Plane) {
    let (w, h) = (usize::from(size.0), usize::from(size.1));
    let pat = |x: i64, y: i64| -> u8 {
        let v = (x.wrapping_mul(0x9E37_79B9) ^ y.wrapping_mul(0x85EB_CA6B)) as u64 ^ seed;
        ((v ^ (v >> 13)) & 0xFF) as u8
    };
    let mut refd = Vec::with_capacity(w * h);
    let mut curd = Vec::with_capacity(w * h);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            refd.push(pat(x, y));
            curd.push(pat(x + i64::from(shift.0), y + i64::from(shift.1)));
        }
    }
    (Plane::new(w, h, curd), Plane::new(w, h, refd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_me::{full_search, SearchParams};

    #[test]
    fn job_mix_is_deterministic_per_seed() {
        let a = generate_job_mix(JobMixConfig::default());
        let b = generate_job_mix(JobMixConfig::default());
        assert_eq!(a, b);
        let c = generate_job_mix(JobMixConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn job_mix_covers_all_kinds_and_classes() {
        let jobs = generate_job_mix(JobMixConfig::default());
        assert_eq!(jobs.len(), 1000);
        let dct = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::DctBlocks { .. }))
            .count();
        let me = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::MeSearch { .. }))
            .count();
        let enc = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::EncodeGop { .. }))
            .count();
        assert_eq!(dct + me + enc, 1000);
        // Weights are 60/25/15: each kind must show up in force.
        assert!(dct > 400 && me > 120 && enc > 60, "{dct}/{me}/{enc}");
        assert!(jobs.iter().any(|j| j.class == ServiceClass::LowPower));
        assert!(jobs.iter().any(|j| j.class == ServiceClass::Quality));
        // Arrivals never go backwards.
        assert!(jobs
            .windows(2)
            .all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
    }

    #[test]
    fn chunked_mixes_are_deterministic_and_distinct() {
        let base = JobMixConfig::default();
        // Chunk 0 is the base mix itself.
        assert_eq!(generate_job_mix(base.chunk(0)), generate_job_mix(base));
        // Later chunks are reproducible but carry fresh content.
        let c3a = generate_job_mix(base.chunk(3));
        let c3b = generate_job_mix(base.chunk(3));
        assert_eq!(c3a, c3b);
        assert_ne!(c3a, generate_job_mix(base.chunk(4)));
        assert_ne!(c3a, generate_job_mix(base));
        // Shape is preserved: same job count, same weights in force.
        assert_eq!(c3a.len(), 1000);
    }

    #[test]
    fn me_planes_recover_the_planted_shift() {
        let (cur, refp) = me_search_planes((48, 48), (2, -1), 0xBEEF);
        let m = full_search(&cur, &refp, 16, 16, &SearchParams { block: 8, range: 3 });
        assert_eq!(m.mv, (2, -1));
        assert_eq!(m.sad, 0);
    }
}
