//! A miniature motion-compensated DCT encoder loop: the workload the
//! paper's reconfigurable SoC is built for.
//!
//! For each 16×16 macroblock: motion search against the previous
//! reconstructed frame, 8×8 DCT of the residual on a *hardware* DCT mapping,
//! quantisation, then reconstruction (dequantise + reference IDCT + motion
//! compensation) to keep an encoder-side reference frame.

#![allow(clippy::needless_range_loop)] // pixel-coordinate loops read clearer

use dsra_core::error::Result;
use dsra_dct::reference::idct_2d;
use dsra_dct::twod::dct_2d_hw;
use dsra_dct::DctImpl;
use dsra_me::{full_search, Plane, SearchParams};

use crate::quant::{dequantize_block, nonzero_levels, quantize_block, Quantizer};

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncodeConfig {
    /// Motion-search parameters (16-pixel macroblocks in the paper).
    pub search: SearchParams,
    /// Quantiser.
    pub quantizer: Quantizer,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig {
            search: SearchParams {
                block: 16,
                range: 4,
            },
            quantizer: Quantizer::uniform(12.0),
        }
    }
}

/// Per-frame encoding statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeStats {
    /// Macroblocks processed.
    pub macroblocks: usize,
    /// Total SAD of the chosen motion vectors.
    pub total_sad: u64,
    /// Non-zero quantised levels (coarse rate proxy).
    pub nonzero_levels: usize,
    /// Estimated coded bits (zigzag + run-length size model).
    pub estimated_bits: u64,
    /// PSNR of the reconstructed frame against the input.
    pub psnr_db: f64,
    /// DCT array cycles spent (16 1-D transforms per 8×8 block).
    pub dct_cycles: u64,
}

/// Encodes one frame against a reference, returning the reconstruction and
/// statistics. `dct` is the hardware DCT mapping used for the residuals.
///
/// # Errors
/// Propagates hardware-driver errors.
pub fn encode_frame(
    cur: &Plane,
    reference: &Plane,
    dct: &dyn DctImpl,
    config: &EncodeConfig,
) -> Result<(Plane, EncodeStats)> {
    let mb = config.search.block;
    assert!(
        mb.is_multiple_of(8),
        "macroblock must tile into 8x8 DCT blocks"
    );
    let mut recon = Plane::filled(cur.width(), cur.height(), 0);
    let mut stats = EncodeStats {
        macroblocks: 0,
        total_sad: 0,
        nonzero_levels: 0,
        estimated_bits: 0,
        psnr_db: 0.0,
        dct_cycles: 0,
    };
    let mut by = 0;
    while by + mb <= cur.height() {
        let mut bx = 0;
        while bx + mb <= cur.width() {
            let m = full_search(cur, reference, bx, by, &config.search);
            stats.total_sad += m.sad;
            stats.macroblocks += 1;
            // Residual per 8x8 block, through the hardware DCT.
            for sub_y in (0..mb).step_by(8) {
                for sub_x in (0..mb).step_by(8) {
                    let mut residual = [[0i64; 8]; 8];
                    for y in 0..8 {
                        for x in 0..8 {
                            let cx = bx + sub_x + x;
                            let cy = by + sub_y + y;
                            let rx = (cx as i64 + i64::from(m.mv.0)) as usize;
                            let ry = (cy as i64 + i64::from(m.mv.1)) as usize;
                            residual[y][x] =
                                i64::from(cur.at(cx, cy)) - i64::from(reference.at(rx, ry));
                        }
                    }
                    let coeffs = dct_2d_hw(dct, &residual)?;
                    stats.dct_cycles += dsra_dct::twod::cycles_2d(dct);
                    let levels = quantize_block(&coeffs, &config.quantizer);
                    stats.nonzero_levels += nonzero_levels(&levels);
                    stats.estimated_bits += crate::entropy::estimate_bits(
                        &crate::entropy::run_length(&crate::entropy::zigzag_scan(&levels)),
                    );
                    let back = dequantize_block(&levels, &config.quantizer);
                    let rec_res = idct_2d(&back);
                    for y in 0..8 {
                        for x in 0..8 {
                            let cx = bx + sub_x + x;
                            let cy = by + sub_y + y;
                            let rx = (cx as i64 + i64::from(m.mv.0)) as usize;
                            let ry = (cy as i64 + i64::from(m.mv.1)) as usize;
                            let v = f64::from(reference.at(rx, ry)) + rec_res[y][x];
                            *recon.at_mut(cx, cy) = v.round().clamp(0.0, 255.0) as u8;
                        }
                    }
                }
            }
            bx += mb;
        }
        by += mb;
    }
    stats.psnr_db = crate::metrics::psnr(cur, &recon);
    Ok((recon, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{SequenceConfig, SyntheticSequence};
    use dsra_dct::{BasicDa, DaParams};

    #[test]
    fn encode_reaches_reasonable_psnr() {
        let seq = SyntheticSequence::generate(SequenceConfig {
            width: 48,
            height: 48,
            frames: 2,
            noise: 1,
            objects: 1,
            ..Default::default()
        });
        let dct = BasicDa::new(DaParams::precise()).unwrap();
        let cfg = EncodeConfig {
            search: SearchParams {
                block: 16,
                range: 4,
            },
            quantizer: Quantizer::uniform(8.0),
        };
        let (recon, stats) = encode_frame(seq.frame(1), seq.frame(0), &dct, &cfg).unwrap();
        assert_eq!(stats.macroblocks, 9);
        assert!(
            stats.psnr_db > 30.0,
            "reconstruction PSNR too low: {} dB",
            stats.psnr_db
        );
        assert_eq!(recon.width(), 48);
        assert!(stats.dct_cycles > 0);
    }

    #[test]
    fn coarser_quantiser_cuts_rate_and_quality() {
        let seq = SyntheticSequence::generate(SequenceConfig {
            width: 32,
            height: 32,
            frames: 2,
            ..Default::default()
        });
        let dct = BasicDa::new(DaParams::precise()).unwrap();
        let fine_cfg = EncodeConfig {
            search: SearchParams {
                block: 16,
                range: 2,
            },
            quantizer: Quantizer::uniform(4.0),
        };
        let coarse_cfg = EncodeConfig {
            quantizer: Quantizer::uniform(48.0),
            ..fine_cfg.clone()
        };
        let (_, fine) = encode_frame(seq.frame(1), seq.frame(0), &dct, &fine_cfg).unwrap();
        let (_, coarse) = encode_frame(seq.frame(1), seq.frame(0), &dct, &coarse_cfg).unwrap();
        assert!(coarse.nonzero_levels < fine.nonzero_levels);
        assert!(coarse.psnr_db <= fine.psnr_db);
    }
}
