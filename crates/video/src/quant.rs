//! Uniform coefficient quantisation, including the scaled-DCT fold.
//!
//! §3.4 of the paper: "The constant scale factor is not considered in this
//! implementation as that can be combined with the quantization constants
//! without requiring any extra hardware." [`Quantizer::with_scales`] is that
//! combination: per-coefficient scale factors divide into the step sizes.

#![allow(clippy::needless_range_loop)] // (u, v) coefficient loops read clearer

/// A uniform quantiser with a per-coefficient step matrix for 8×8 blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    steps: [[f64; 8]; 8],
}

impl Quantizer {
    /// Flat quantiser with a single step size (H.263-style with QP).
    ///
    /// # Panics
    /// Panics if `step` is not positive.
    pub fn uniform(step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        Quantizer {
            steps: [[step; 8]; 8],
        }
    }

    /// JPEG-flavoured quantiser: low frequencies finer than high ones.
    pub fn perceptual(quality_step: f64) -> Self {
        let mut steps = [[0.0; 8]; 8];
        for (u, row) in steps.iter_mut().enumerate() {
            for (v, s) in row.iter_mut().enumerate() {
                *s = quality_step * (1.0 + 0.28 * (u + v) as f64);
            }
        }
        Quantizer { steps }
    }

    /// Folds per-row output scale factors of a scaled DCT into the steps:
    /// a coefficient produced as `X'_u = X_u / s_u` is quantised with step
    /// `step_u / s_u`, so no multiplier is ever needed in hardware.
    pub fn with_scales(mut self, row_scales: &[f64; 8]) -> Self {
        for (u, row) in self.steps.iter_mut().enumerate() {
            for s in row.iter_mut() {
                *s /= row_scales[u].abs().max(1e-12);
            }
        }
        self
    }

    /// Step size for coefficient `(u, v)`.
    pub fn step(&self, u: usize, v: usize) -> f64 {
        self.steps[u][v]
    }
}

/// Quantises an 8×8 coefficient block to integer levels.
pub fn quantize_block(coeffs: &[[f64; 8]; 8], q: &Quantizer) -> [[i32; 8]; 8] {
    std::array::from_fn(|u| std::array::from_fn(|v| (coeffs[u][v] / q.step(u, v)).round() as i32))
}

/// Reconstructs coefficients from quantised levels.
pub fn dequantize_block(levels: &[[i32; 8]; 8], q: &Quantizer) -> [[f64; 8]; 8] {
    std::array::from_fn(|u| std::array::from_fn(|v| f64::from(levels[u][v]) * q.step(u, v)))
}

/// Counts non-zero levels — the crude rate proxy used by the pipeline
/// statistics.
pub fn nonzero_levels(levels: &[[i32; 8]; 8]) -> usize {
    levels.iter().flatten().filter(|&&v| v != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = Quantizer::uniform(8.0);
        let mut block = [[0.0; 8]; 8];
        for (u, row) in block.iter_mut().enumerate() {
            for (v, c) in row.iter_mut().enumerate() {
                *c = (u as f64 * 13.7) - (v as f64 * 7.3);
            }
        }
        let levels = quantize_block(&block, &q);
        let back = dequantize_block(&levels, &q);
        for u in 0..8 {
            for v in 0..8 {
                assert!((block[u][v] - back[u][v]).abs() <= 4.0 + 1e-9);
            }
        }
    }

    #[test]
    fn scales_fold_into_steps() {
        // Quantising X/s with step/s gives the same levels as X with step.
        let scales = [1.0, 1.3, 0.8, 2.0, 1.0, 1.4, 0.9, 1.1];
        let q = Quantizer::uniform(10.0);
        let qs = Quantizer::uniform(10.0).with_scales(&scales);
        let mut block = [[0.0; 8]; 8];
        let mut scaled = [[0.0; 8]; 8];
        for u in 0..8 {
            for v in 0..8 {
                block[u][v] = (u * 17 + v * 29) as f64 - 60.0;
                scaled[u][v] = block[u][v] / scales[u];
            }
        }
        assert_eq!(quantize_block(&block, &q), quantize_block(&scaled, &qs));
    }

    #[test]
    fn coarser_steps_produce_fewer_levels() {
        let mut block = [[0.0; 8]; 8];
        for u in 0..8 {
            for v in 0..8 {
                block[u][v] = 100.0 / (1.0 + (u + v) as f64);
            }
        }
        let fine = nonzero_levels(&quantize_block(&block, &Quantizer::uniform(2.0)));
        let coarse = nonzero_levels(&quantize_block(&block, &Quantizer::uniform(40.0)));
        assert!(coarse < fine);
    }

    #[test]
    fn perceptual_steps_grow_with_frequency() {
        let q = Quantizer::perceptual(4.0);
        assert!(q.step(7, 7) > q.step(0, 0));
    }
}
