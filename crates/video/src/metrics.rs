//! Quality metrics for reconstructed video.

use dsra_me::Plane;

/// Mean squared error between two planes.
///
/// # Panics
/// Panics if the planes differ in geometry.
pub fn mse(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let n = (a.width() * a.height()) as f64;
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB (8-bit peak).
///
/// Returns `f64::INFINITY` for identical planes.
///
/// # Panics
/// Panics if the planes differ in geometry.
pub fn psnr(a: &Plane, b: &Plane) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / e).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_planes_have_infinite_psnr() {
        let p = Plane::filled(16, 16, 128);
        assert!(psnr(&p, &p).is_infinite());
        assert_eq!(mse(&p, &p), 0.0);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Plane::filled(16, 16, 128);
        let b = Plane::filled(16, 16, 130);
        let c = Plane::filled(16, 16, 160);
        assert!(psnr(&a, &b) > psnr(&a, &c));
        assert!((mse(&a, &b) - 4.0).abs() < 1e-12);
    }
}
