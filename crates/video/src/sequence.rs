//! Synthetic test-sequence generation with controllable motion statistics.

use dsra_core::rng::SplitMix64;
use dsra_me::Plane;

/// Uniform `f64` in `[lo, hi)`.
fn gen_f64(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// Uniform `i64` in `[lo, hi]`.
fn gen_i64(rng: &mut SplitMix64, lo: i64, hi: i64) -> i64 {
    lo + rng.next_below((hi - lo + 1) as u64) as i64
}

/// Parameters of a generated sequence.
#[derive(Debug, Clone, Copy)]
pub struct SequenceConfig {
    /// Frame width (pixels).
    pub width: usize,
    /// Frame height (pixels).
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Global pan per frame, in pixels.
    pub pan: (f64, f64),
    /// Number of independently moving square objects.
    pub objects: usize,
    /// Additive noise amplitude (0 = clean).
    pub noise: u8,
    /// RNG seed (sequences are deterministic per seed).
    pub seed: u64,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            width: 96,
            height: 96,
            frames: 4,
            pan: (1.5, -0.5),
            objects: 3,
            noise: 2,
            seed: 0x5EED,
        }
    }
}

/// A generated sequence of luminance planes.
#[derive(Debug, Clone)]
pub struct SyntheticSequence {
    config: SequenceConfig,
    frames: Vec<Plane>,
}

#[derive(Debug, Clone, Copy)]
struct Object {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    size: usize,
    level: u8,
}

impl SyntheticSequence {
    /// Generates the sequence.
    pub fn generate(config: SequenceConfig) -> Self {
        let mut rng = SplitMix64::new(config.seed);
        let objects: Vec<Object> = (0..config.objects)
            .map(|_| Object {
                x: gen_f64(&mut rng, 0.0, config.width as f64 * 0.75),
                y: gen_f64(&mut rng, 0.0, config.height as f64 * 0.75),
                vx: gen_f64(&mut rng, -3.0, 3.0),
                vy: gen_f64(&mut rng, -3.0, 3.0),
                size: gen_i64(&mut rng, 8, 19) as usize,
                level: gen_i64(&mut rng, 90, 219) as u8,
            })
            .collect();
        let mut frames = Vec::with_capacity(config.frames);
        for f in 0..config.frames {
            let fx = f as f64 * config.pan.0;
            let fy = f as f64 * config.pan.1;
            let mut data = Vec::with_capacity(config.width * config.height);
            for y in 0..config.height {
                for x in 0..config.width {
                    // Smooth textured background, shifted by the pan.
                    let bx = x as f64 + fx;
                    let by = y as f64 + fy;
                    let mut v = 120.0 + 50.0 * ((bx * 0.19).sin() + (by * 0.13).cos());
                    // Foreground objects with their own motion.
                    for (i, o) in objects.iter().enumerate() {
                        let ox = o.x + o.vx * f as f64;
                        let oy = o.y + o.vy * f as f64;
                        if (x as f64) >= ox
                            && (x as f64) < ox + o.size as f64
                            && (y as f64) >= oy
                            && (y as f64) < oy + o.size as f64
                        {
                            v = f64::from(o.level) + 10.0 * ((x + y + i) % 5) as f64;
                        }
                    }
                    if config.noise > 0 {
                        let n =
                            gen_i64(&mut rng, -i64::from(config.noise), i64::from(config.noise));
                        v += n as f64;
                    }
                    data.push(v.clamp(0.0, 255.0) as u8);
                }
            }
            frames.push(Plane::new(config.width, config.height, data));
        }
        SyntheticSequence { config, frames }
    }

    /// The generated frames.
    pub fn frames(&self) -> &[Plane] {
        &self.frames
    }

    /// Frame at index `i`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn frame(&self, i: usize) -> &Plane {
        &self.frames[i]
    }

    /// Generation parameters.
    pub fn config(&self) -> &SequenceConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_me::{full_search, SearchParams};

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSequence::generate(SequenceConfig::default());
        let b = SyntheticSequence::generate(SequenceConfig::default());
        assert_eq!(a.frame(0).data(), b.frame(0).data());
        let c = SyntheticSequence::generate(SequenceConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a.frame(0).data(), c.frame(0).data());
    }

    #[test]
    fn pan_is_recovered_by_motion_search() {
        let seq = SyntheticSequence::generate(SequenceConfig {
            pan: (2.0, 1.0),
            objects: 0,
            noise: 0,
            frames: 2,
            ..Default::default()
        });
        // Block in the background: frame 1 content equals frame 0 shifted by
        // the pan, so the best MV should be (pan.x, pan.y).
        let m = full_search(
            seq.frame(1),
            seq.frame(0),
            40,
            40,
            &SearchParams {
                block: 16,
                range: 4,
            },
        );
        assert_eq!(m.mv, (2, 1));
    }

    #[test]
    fn frames_have_requested_geometry() {
        let seq = SyntheticSequence::generate(SequenceConfig {
            width: 48,
            height: 32,
            frames: 3,
            ..Default::default()
        });
        assert_eq!(seq.frames().len(), 3);
        assert_eq!(seq.frame(2).width(), 48);
        assert_eq!(seq.frame(2).height(), 32);
    }
}
