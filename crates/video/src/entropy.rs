//! Zigzag scanning and a run-length/size rate model — the bit-count proxy
//! an MPEG-4/H.263-class encoder applies after quantisation.

/// The 8×8 zigzag scan order as `(row, col)` pairs.
pub fn zigzag_order() -> [(usize, usize); 64] {
    let mut order = [(0usize, 0usize); 64];
    let (mut r, mut c) = (0isize, 0isize);
    let mut up = true;
    for slot in order.iter_mut() {
        *slot = (r as usize, c as usize);
        if up {
            if c == 7 {
                r += 1;
                up = false;
            } else if r == 0 {
                c += 1;
                up = false;
            } else {
                r -= 1;
                c += 1;
            }
        } else if r == 7 {
            c += 1;
            up = true;
        } else if c == 0 {
            r += 1;
            up = true;
        } else {
            r += 1;
            c -= 1;
        }
    }
    order
}

/// Scans a quantised block into zigzag order.
pub fn zigzag_scan(levels: &[[i32; 8]; 8]) -> [i32; 64] {
    let order = zigzag_order();
    std::array::from_fn(|i| {
        let (r, c) = order[i];
        levels[r][c]
    })
}

/// A (run, level) pair of the run-length coding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLevel {
    /// Zero run preceding the level.
    pub run: u8,
    /// The non-zero level.
    pub level: i32,
}

/// Run-length encodes a zigzag-scanned block (trailing zeros become the
/// implicit end-of-block).
pub fn run_length(scanned: &[i32; 64]) -> Vec<RunLevel> {
    let mut out = Vec::new();
    let mut run = 0u8;
    for &v in scanned.iter() {
        if v == 0 {
            run = run.saturating_add(1);
        } else {
            out.push(RunLevel { run, level: v });
            run = 0;
        }
    }
    out
}

/// Estimates the coded bits of a block with a size-based model:
/// each (run, level) costs `2 + run_bits + 2·size(level)` bits (a stand-in
/// for the H.263 VLC tables), plus an end-of-block symbol.
pub fn estimate_bits(pairs: &[RunLevel]) -> u64 {
    let size = |v: i32| 32 - (v.unsigned_abs().max(1)).leading_zeros() as u64;
    pairs
        .iter()
        .map(|p| 2 + u64::from(p.run.min(15)) / 4 + 2 * size(p.level))
        .sum::<u64>()
        + 4 // EOB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_visits_every_position_once() {
        let order = zigzag_order();
        let mut seen = [[false; 8]; 8];
        for (r, c) in order {
            assert!(!seen[r][c], "({r},{c}) visited twice");
            seen[r][c] = true;
        }
        // Canonical prefix of the JPEG/MPEG zigzag.
        assert_eq!(
            &order[..6],
            &[(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]
        );
        assert_eq!(order[63], (7, 7));
    }

    #[test]
    fn run_length_round_trips_structure() {
        let mut levels = [[0i32; 8]; 8];
        levels[0][0] = 50; // DC
        levels[0][1] = -3;
        levels[2][0] = 7;
        let scanned = zigzag_scan(&levels);
        let pairs = run_length(&scanned);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], RunLevel { run: 0, level: 50 });
        assert_eq!(pairs[1], RunLevel { run: 0, level: -3 });
        // (2,0) is zigzag index 3; one zero (index 2) precedes it.
        assert_eq!(pairs[2], RunLevel { run: 1, level: 7 });
    }

    #[test]
    fn sparser_blocks_cost_fewer_bits() {
        let mut dense = [[3i32; 8]; 8];
        dense[0][0] = 100;
        let mut sparse = [[0i32; 8]; 8];
        sparse[0][0] = 100;
        let db = estimate_bits(&run_length(&zigzag_scan(&dense)));
        let sb = estimate_bits(&run_length(&zigzag_scan(&sparse)));
        assert!(sb < db / 10, "sparse {sb} vs dense {db}");
    }

    #[test]
    fn all_zero_block_costs_only_eob() {
        let z = [[0i32; 8]; 8];
        assert_eq!(estimate_bits(&run_length(&zigzag_scan(&z))), 4);
    }

    #[test]
    fn low_frequency_energy_compresses_better_than_scattered() {
        // Same nonzero count, zigzag-early vs scattered: earlier
        // coefficients ride shorter runs.
        let mut early = [[0i32; 8]; 8];
        let order = zigzag_order();
        for &(r, c) in order.iter().take(6) {
            early[r][c] = 9;
        }
        let mut scattered = [[0i32; 8]; 8];
        for i in 0..6 {
            scattered[7 - i % 3][(7 - i) % 8] = 9;
        }
        let eb = estimate_bits(&run_length(&zigzag_scan(&early)));
        let sbits = estimate_bits(&run_length(&zigzag_scan(&scattered)));
        assert!(eb <= sbits);
    }
}
