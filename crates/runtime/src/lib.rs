//! # dsra-runtime — the multi-array SoC runtime
//!
//! The layer between the compile pipeline and the experiments: a
//! deterministic runtime that serves a queue of heterogeneous video jobs
//! (DCT blocks, motion searches, encode GOPs from `dsra-video`) across a
//! pool of simulated ME and DA arrays, using worker threads.
//!
//! Three pieces (DESIGN.md §6):
//!
//! * a **content-addressed bitstream cache** ([`cache::BitstreamCache`]):
//!   compiled `(placement, routing, bitstream)` artifacts keyed by
//!   `Netlist::fingerprint()`, so place-and-route runs once per distinct
//!   kernel rather than once per job;
//! * a **diff-aware scheduler** ([`scheduler::DiffAwareScheduler`]): each
//!   job lands on the array whose loaded bitstream minimises
//!   `diff_bits()` reconfiguration cost plus queueing delay, with a
//!   [`scheduler::SchedulePolicy`] hook honouring the platform's run-time
//!   `Condition` (battery / deadline / quality);
//! * a **metrics layer** ([`report::RuntimeReport`]): jobs per mega-cycle,
//!   cache hit rate, total reconfiguration bits and per-array utilisation,
//!   consumed by the E11 `soc_serve` binary and its Criterion group.
//!
//! Determinism is load-bearing: scheduling decisions are made sequentially
//! before any worker thread starts, and every payload is a pure function of
//! its job spec, so the report — including its `digest()` — is
//! byte-identical across runs regardless of thread interleaving.
//!
//! ## Quick tour
//!
//! ```
//! use dsra_runtime::{DctMapping, RuntimeConfig, SocRuntime};
//! use dsra_video::{generate_job_mix, JobMixConfig, JobMixWeights};
//!
//! # fn main() -> Result<(), dsra_core::error::CoreError> {
//! // A small pool (1 DA array, no ME arrays) offering two DCT mappings.
//! let mut runtime = SocRuntime::new(RuntimeConfig {
//!     da_arrays: 1,
//!     me_arrays: 0,
//!     mappings: vec![DctMapping::BasicDa, DctMapping::MixedRom],
//!     ..Default::default()
//! })?;
//! let jobs = generate_job_mix(JobMixConfig {
//!     jobs: 8,
//!     weights: JobMixWeights { dct: 1, me: 0, encode: 0 },
//!     ..Default::default()
//! });
//! let report = runtime.serve(&jobs)?;
//! assert_eq!(report.jobs, 8);
//! // Two mappings at most → at most two compiles ever; the rest hit.
//! assert!(report.cache.hits >= 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
mod exec;
pub mod kernel;
pub mod report;
pub mod scheduler;

use std::collections::HashMap;
use std::sync::Arc;

use dsra_core::error::{CoreError, Result};
use dsra_core::fabric::{Fabric, MeshSpec};
use dsra_core::netlist::{Fingerprint, Netlist};
use dsra_dct::DaParams;
use dsra_platform::{profile_impl, standard_da_fabric, Condition, ImplProfile, SocConfig};
use dsra_power::{Battery, EnergyAccount, OperatingPoint};
use dsra_tech::{EnergySplit, TechModel};
use dsra_trace::{ArrayPhase, EnergyBreakdown, HealthSnapshot, NoopSink, TraceEvent, TraceSink};
use dsra_video::{JobPayload, JobSpec};

pub use cache::{BitstreamCache, CacheStats, CompiledKernel};
pub use dsra_backend::{Backend, BackendKind};
pub use kernel::{ArrayKind, DctMapping, KernelId};
pub use report::{
    ArrayReport, BatterySample, BatteryTrajectory, EnergyReport, JobOutcome, RuntimeReport,
};
pub use scheduler::{
    ArrayState, DefaultPolicy, DiffAwareScheduler, DiffMatrix, DiffStats, EnergyAwarePolicy,
    NaivePolicy, PlannedSlot, PowerSnapshot, SchedulePolicy,
};

/// Wall-clock phase timings of the last [`SocRuntime::serve`] call —
/// diagnostics for the perf trajectory (`soc_serve --json` records them).
/// Never part of the deterministic report or its digest.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Milliseconds spent planning (kernel selection + diff-aware
    /// placement) on the serve thread.
    pub planning_ms: f64,
    /// Milliseconds spent executing the per-array plans on worker threads.
    pub exec_ms: f64,
}

/// Power-domain configuration of a [`SocRuntime`]: the battery the pool
/// serves from, the DVFS point it runs at, and the constants the energy
/// accounts integrate with.
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// DVFS operating point the arrays run at.
    pub dvfs: OperatingPoint,
    /// Battery capacity in the technology model's (arbitrary) joules.
    pub battery_capacity_j: f64,
    /// Battery percentage at or below which energy-aware policies switch
    /// to battery-stretching behaviour.
    pub low_battery_pct: u8,
    /// Energy per configuration bit written (dynamic, V²-scaled).
    pub reconfig_energy_per_bit: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            dvfs: OperatingPoint::NOMINAL,
            // Roughly ten default 1000-job serves at nominal — enough for
            // E12's discharge loop to see the low-battery phase kick in.
            battery_capacity_j: 2.0e10,
            low_battery_pct: 20,
            reconfig_energy_per_bit: 2.0,
        }
    }
}

/// Pool and platform configuration of a [`SocRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of DA arrays in the pool.
    pub da_arrays: usize,
    /// Number of ME arrays in the pool.
    pub me_arrays: usize,
    /// SoC configuration-path constants (bus width, clock).
    pub soc: SocConfig,
    /// Fixed-point parameters for the DCT mappings.
    pub da_params: DaParams,
    /// DCT mappings the runtime offers for policy selection.
    pub mappings: Vec<DctMapping>,
    /// Battery, DVFS and energy-accounting constants.
    pub power: PowerConfig,
    /// Execution backend the worker threads run payloads on: the
    /// cycle-level array simulator (default), the pure-software golden
    /// reference, or the differential check mode that runs both and fails
    /// on any divergence. Outcomes are byte-identical across backends by
    /// contract.
    pub backend: BackendKind,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            da_arrays: 2,
            me_arrays: 2,
            soc: SocConfig::default(),
            da_params: DaParams::precise(),
            mappings: DctMapping::ALL.to_vec(),
            power: PowerConfig::default(),
            backend: BackendKind::default(),
        }
    }
}

/// One planned job: everything a worker needs to execute it.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The job.
    pub job: JobSpec,
    /// Run-time condition derived from the job's service class.
    pub condition: Condition,
    /// Compiled kernel serving it (shared cache entry).
    pub kernel: Arc<CompiledKernel>,
    /// Where the scheduler placed it and at what reconfiguration cost.
    pub slot: PlannedSlot,
    /// Estimated payload cycles used for load balancing.
    pub est_exec_cycles: u64,
}

/// A kernel recipe's memoised identity: content address plus the netlist
/// kept around for the (single) compile on a cache miss.
#[derive(Debug)]
struct KernelSeed {
    fingerprint: Fingerprint,
    netlist: Netlist,
}

/// State of the incremental (arrival-ordered) streaming mode: a live
/// scheduler whose per-array clocks survive between jobs, plus per-array
/// gating flags and energy accounts. Owned by the runtime between
/// [`SocRuntime::stream_begin`] and [`SocRuntime::stream_end`].
struct StreamState {
    sched: DiffAwareScheduler,
    gated: Vec<bool>,
    /// Arrays pulled from placement by the fault-recovery layer
    /// (`dsra-chaos`): still powered, bitstream evicted, excluded from
    /// `stream_serve_job` until restored.
    quarantined: Vec<bool>,
    accounts: Vec<EnergyAccount>,
    jobs: Vec<usize>,
    reconfig_events: Vec<usize>,
    reconfig_bits: Vec<u64>,
    exec_cycles: Vec<u64>,
    gate_events: usize,
    wakes: usize,
    /// Cache counters at session open, for the session-delta trace
    /// counters emitted by `stream_end`.
    cache_before: CacheStats,
    /// DiffMatrix counters at session open (same purpose).
    diff_before: DiffStats,
}

/// Scheduler-visible status of one array in streaming mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamArrayStatus {
    /// Array id (dense, DA arrays first).
    pub id: usize,
    /// Fabric kind.
    pub kind: ArrayKind,
    /// Sim-cycle at which the array finishes its accepted work.
    pub free_at: u64,
    /// `true` while the elastic pool holds the array powered off.
    pub gated: bool,
    /// `true` while the fault-recovery layer holds the array out of
    /// placement (see [`SocRuntime::stream_quarantine`]).
    pub quarantined: bool,
}

/// One incrementally served job: what [`SocRuntime::stream_serve_job`]
/// reports back to the streaming frontend.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedJob {
    /// Job id (from the spec).
    pub id: u32,
    /// Array that served it.
    pub array: usize,
    /// Kernel that served it.
    pub kernel: String,
    /// Bits the switch before this job rewrote (full bitstream on a wake).
    pub reconfig_bits: u64,
    /// Cycles on the configuration bus for those bits.
    pub reconfig_cycles: u64,
    /// Measured payload sim-cycles.
    pub exec_cycles: u64,
    /// Start cycle (after arrival and queueing).
    pub start_cycle: u64,
    /// Completion cycle.
    pub end_cycle: u64,
    /// Deterministic output digest.
    pub checksum: u64,
    /// Energy attributable to this job (reconfiguration write + leakage
    /// over its busy window + execution), in joules.
    pub energy_j: f64,
    /// `true` if serving this job woke a power-gated array (the wake paid
    /// the full configuration rewrite counted in `reconfig_bits`).
    pub woke_array: bool,
}

/// Per-array totals of one streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamArrayReport {
    /// Array id.
    pub id: usize,
    /// Fabric kind.
    pub kind: ArrayKind,
    /// Jobs served.
    pub jobs: usize,
    /// Switches that actually wrote bits.
    pub reconfig_events: usize,
    /// Bits rewritten by reconfigurations.
    pub reconfig_bits: u64,
    /// Cycles spent executing payloads.
    pub exec_cycles: u64,
    /// Activity-based dynamic energy (joules).
    pub dynamic_j: f64,
    /// Leakage energy, active and idle (joules).
    pub static_j: f64,
    /// Configuration-plane write energy (joules).
    pub reconfig_j: f64,
    /// Idle cycles spent power-gated (leaking nothing).
    pub gated_cycles: u64,
    /// Idle cycles spent powered (leaking the loaded plane).
    pub idle_cycles: u64,
}

impl StreamArrayReport {
    /// Everything this array drained from the battery.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_j + self.static_j + self.reconfig_j
    }
}

/// What one streaming session cost, returned by [`SocRuntime::stream_end`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Per-array totals (array-id order).
    pub arrays: Vec<StreamArrayReport>,
    /// Times the elastic pool powered an idle array off.
    pub gate_events: usize,
    /// Times a gated array was woken (each wake's first job paid a full
    /// configuration rewrite).
    pub wakes: usize,
}

impl StreamSummary {
    /// Total joules the session drained, all arrays.
    pub fn total_j(&self) -> f64 {
        self.arrays.iter().map(StreamArrayReport::energy_j).sum()
    }

    /// Total idle cycles that leaked nothing thanks to pool gating.
    pub fn gated_cycles(&self) -> u64 {
        self.arrays.iter().map(|a| a.gated_cycles).sum()
    }
}

/// The multi-array SoC runtime.
pub struct SocRuntime {
    config: RuntimeConfig,
    policy: Box<dyn SchedulePolicy>,
    cache: BitstreamCache,
    battery: Battery,
    da_fabric: Fabric,
    /// Profiles of the offered DCT mappings (selection input), aligned with
    /// `config.mappings`.
    profiles: Vec<ImplProfile>,
    dct_seeds: HashMap<&'static str, KernelSeed>,
    /// ME systolic seeds and their fabrics, one per block edge a job has
    /// asked for (built lazily — the job's `block` field is the identity).
    me_seeds: HashMap<u8, (KernelSeed, Fabric)>,
    /// Memoised kernel-pair reconfiguration costs, threaded through every
    /// serve's scheduler so warm probes are table lookups.
    diff_memo: DiffMatrix,
    /// Per-array execution backends, reused across serve calls.
    engines: Vec<Box<dyn Backend>>,
    /// Wall-clock phase timings of the last serve.
    last_timings: PhaseTimings,
    /// Incremental streaming session, if one is open (E13).
    stream: Option<StreamState>,
    /// Trace sink every serve path reports into. The default
    /// [`NoopSink`] is disabled, and all event construction is guarded by
    /// `enabled()`, so the untraced hot path stays allocation-free.
    sink: Box<dyn TraceSink>,
}

impl SocRuntime {
    /// Builds a runtime with the [`DefaultPolicy`].
    ///
    /// Compiles and profiles the offered DCT mappings up front (each is one
    /// cache miss); the ME kernel compiles lazily on the first motion job.
    ///
    /// # Errors
    /// Propagates construction, placement, routing or simulation failures.
    pub fn new(config: RuntimeConfig) -> Result<Self> {
        Self::with_policy(config, Box::new(DefaultPolicy))
    }

    /// Builds a runtime with a custom scheduling policy.
    ///
    /// # Errors
    /// See [`SocRuntime::new`].
    pub fn with_policy(config: RuntimeConfig, policy: Box<dyn SchedulePolicy>) -> Result<Self> {
        assert!(
            !config.mappings.is_empty(),
            "runtime needs at least one DCT mapping to offer"
        );
        let da_fabric = standard_da_fabric();
        let model = TechModel::default();
        let mut cache = BitstreamCache::with_model(model);
        let mut profiles = Vec::with_capacity(config.mappings.len());
        let mut dct_seeds = HashMap::new();
        for mapping in &config.mappings {
            let imp = mapping.build(config.da_params)?;
            let netlist = imp.netlist().clone();
            let fingerprint = netlist.fingerprint();
            let kernel = cache.get_or_compile(
                fingerprint,
                mapping.name(),
                KernelId::Dct(*mapping).array_kind(),
                &da_fabric,
                || Ok(netlist.clone()),
            )?;
            profiles.push(profile_impl(imp.as_ref(), &kernel.artifact, &model)?);
            dct_seeds.insert(
                mapping.name(),
                KernelSeed {
                    fingerprint,
                    netlist,
                },
            );
        }
        let battery = Battery::new(config.power.battery_capacity_j);
        let engines = (0..config.da_arrays + config.me_arrays)
            .map(|_| config.backend.build())
            .collect();
        Ok(SocRuntime {
            config,
            policy,
            cache,
            battery,
            da_fabric,
            profiles,
            dct_seeds,
            me_seeds: HashMap::new(),
            diff_memo: DiffMatrix::new(),
            engines,
            last_timings: PhaseTimings::default(),
            stream: None,
            sink: Box::new(NoopSink),
        })
    }

    /// Installs a trace sink; subsequent serve calls (batch and stream)
    /// report lifecycle, interval, energy and counter events into it.
    /// Every stamp is a virtual cycle — wall-clock never enters the
    /// stream — so a recorded log is byte-identical across runs.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Removes the current trace sink (restoring the no-op default) so a
    /// recorded `EventLog` can be recovered via `TraceSink::into_log`.
    pub fn take_trace_sink(&mut self) -> Box<dyn TraceSink> {
        std::mem::replace(&mut self.sink, Box::new(NoopSink))
    }

    /// The live trace sink — upper layers (the service frontend's
    /// admission path) emit their own events through this, guarded by
    /// `enabled()` exactly like the runtime's own emission.
    pub fn trace_sink(&mut self) -> &mut dyn TraceSink {
        self.sink.as_mut()
    }

    /// Health of this SoC at the virtual instant `now_cycle`, when the
    /// installed sink is a streaming monitor (`dsra-monitor`'s
    /// `MonitorSink`); `None` with a plain recorder or the no-op sink.
    pub fn health_snapshot(&mut self, now_cycle: u64) -> Option<HealthSnapshot> {
        self.sink.health_snapshot(now_cycle)
    }

    /// Profiles of the offered DCT mappings.
    pub fn profiles(&self) -> &[ImplProfile] {
        &self.profiles
    }

    /// Per-kernel `(name, fingerprint-hex, op mix)` of every kernel the
    /// bitstream cache has compiled, sorted by fingerprint — the join key
    /// the attribution profiler (`dsra-profile`) uses to split a
    /// kernel's busy cycles across op classes. Deterministic regardless
    /// of compile order.
    pub fn kernel_op_mixes(&self) -> Vec<(String, String, dsra_sim::OpMix)> {
        self.cache
            .kernels_sorted()
            .into_iter()
            .map(|k| (k.name.clone(), k.fingerprint.to_hex(), k.op_mix.clone()))
            .collect()
    }

    /// Lifetime cache counters (across all serve calls).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The battery the pool serves from (drained by every serve call).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Swaps in a fresh, full battery.
    pub fn recharge_full(&mut self) {
        self.battery.recharge_full();
    }

    /// Drains `joules` straight from the battery, outside any job's
    /// energy attribution — the hook fault injection uses to model a
    /// brownout step. Returns the joules actually removed (clamped at
    /// empty), exactly as [`dsra_power::Battery::drain`] reports.
    pub fn drain_battery(&mut self, joules: f64) -> f64 {
        self.battery.drain(joules)
    }

    /// Number of per-array execution backends (== the pool size).
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Rebuilds every per-array backend through `wrap`, which receives
    /// the array id and the current engine and returns the engine to use
    /// from now on — the hook `dsra-chaos` uses to interpose its
    /// fault-injecting decorator between the scheduler and the real
    /// backends. Call it before serving; engines carry memoised compile
    /// state, so wrapping mid-session only affects subsequent jobs.
    pub fn wrap_engines(
        &mut self,
        mut wrap: impl FnMut(usize, Box<dyn Backend>) -> Box<dyn Backend>,
    ) {
        let engines = std::mem::take(&mut self.engines);
        self.engines = engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| wrap(i, engine))
            .collect();
    }

    /// The scheduling policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Wall-clock phase timings of the last serve (zeroes before the first
    /// call). Diagnostics only — reports and digests never depend on them.
    pub fn phase_timings(&self) -> PhaseTimings {
        self.last_timings
    }

    /// Distinct kernel pairs whose reconfiguration diff is memoised.
    pub fn diff_memo_len(&self) -> usize {
        self.diff_memo.len()
    }

    /// Serves a job queue across the pool and reports what happened.
    ///
    /// Jobs are planned in `(arrival_cycle, id)` order on the current
    /// thread, then each array's plan runs on its own worker thread. The
    /// returned report is a pure function of the job list and the runtime
    /// configuration.
    ///
    /// # Errors
    /// Propagates compile and execution failures; fails if a job's payload
    /// has no compatible array in the pool.
    pub fn serve(&mut self, jobs: &[JobSpec]) -> Result<RuntimeReport> {
        // Batch and streaming modes share the lifetime diff memo; an
        // abandoned streaming session hands it back here.
        if let Some(stream) = self.stream.take() {
            self.diff_memo = stream.sched.into_memo();
        }
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::Meta {
                key: "mode",
                value: "batch".into(),
            });
            self.sink.emit(TraceEvent::Meta {
                key: "backend",
                value: self.config.backend.name().into(),
            });
            self.sink.emit(TraceEvent::Meta {
                key: "policy",
                value: self.policy.name().into(),
            });
        }
        let stats_before = self.cache.stats();
        let diff_before = self.diff_memo.stats();
        let mut order: Vec<&JobSpec> = jobs.iter().collect();
        order.sort_by_key(|j| (j.arrival_cycle, j.id));

        // The power state every decision in this serve sees: the battery
        // reading is taken once at planning time (the controller samples
        // its gauge, then plans), keeping the whole plan a pure function
        // of (jobs, config, battery-at-start).
        let power = PowerSnapshot {
            battery_charge_pct: self.battery.charge_pct(),
            low_battery_pct: self.config.power.low_battery_pct,
            dvfs: self.config.power.dvfs,
        };

        // Phase 1 — deterministic planning. The scheduler borrows the
        // runtime's lifetime diff memo so warm kernel-pair probes are table
        // lookups (timings are diagnostics only and never enter the
        // report).
        let plan_start = std::time::Instant::now();
        let mut sched = DiffAwareScheduler::with_memo(
            self.config.da_arrays,
            self.config.me_arrays,
            self.config.soc,
            std::mem::take(&mut self.diff_memo),
        );
        let arrays = self.config.da_arrays + self.config.me_arrays;
        let mut plans: Vec<Vec<Assignment>> = vec![Vec::new(); arrays];
        for job in order {
            let condition = self.policy.condition(job.class, &power);
            let (kernel, est) = self.kernel_for(job, condition)?;
            if !sched.arrays().iter().any(|a| a.kind == kernel.array_kind) {
                return Err(CoreError::Mismatch(format!(
                    "job {} needs a {} array but the pool has none",
                    job.id,
                    kernel.array_kind.tag()
                )));
            }
            let slot = sched.assign(
                &kernel,
                job.arrival_cycle,
                est,
                self.policy.as_ref(),
                &power,
            );
            plans[slot.array].push(Assignment {
                job: *job,
                condition,
                kernel,
                slot,
                est_exec_cycles: est,
            });
        }

        self.diff_memo = sched.into_memo();
        let planning_ms = plan_start.elapsed().as_secs_f64() * 1e3;

        // Phase 2 — parallel execution, one worker thread per array, each
        // reusing its runtime-owned engines across serve calls.
        let exec_start = std::time::Instant::now();
        let soc = self.config.soc;
        let params = self.config.da_params;
        let results: Vec<Result<Vec<exec::JobExec>>> = std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .iter()
                .zip(self.engines.iter_mut())
                .map(|(plan, backend)| {
                    let backend = backend.as_mut();
                    s.spawn(move || exec::run_worker(soc, params, plan, backend))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("array worker panicked"))
                .collect()
        });
        self.last_timings = PhaseTimings {
            planning_ms,
            exec_ms: exec_start.elapsed().as_secs_f64() * 1e3,
        };

        // Phase 3 — deterministic merge, energy integration, battery
        // drain.
        let mut execs = Vec::with_capacity(arrays);
        for r in results {
            execs.push(r?);
        }
        let cache_delta = self.cache.stats().since(stats_before);
        let report = assemble_report(
            &self.config,
            &plans,
            &execs,
            cache_delta,
            self.policy.power_gate_idle(),
            &self.battery,
            self.sink.as_mut(),
        );
        self.battery.drain(report.energy.total_j());
        if self.sink.enabled() {
            let d = self.diff_memo.stats().since(diff_before);
            for (name, value) in [("diff_probes", d.probes), ("diff_memo_misses", d.misses)] {
                self.sink.emit(TraceEvent::Counter {
                    t: report.makespan_cycles,
                    name,
                    value,
                });
            }
        }
        Ok(report)
    }

    /// Opens an incremental streaming session (E13): fresh per-array
    /// busy-until clocks, all arrays powered and cold, the lifetime diff
    /// memo threaded in. Any previous session is discarded (its memo is
    /// kept).
    ///
    /// In streaming mode jobs are served one at a time in whatever order
    /// the frontend dispatches them — the open-loop `dsra-service` layer
    /// owns arrivals, admission and shedding, and this runtime owns
    /// placement (the same [`SchedulePolicy`]/[`DiffMatrix`] machinery as
    /// batch serving), execution and energy.
    pub fn stream_begin(&mut self) {
        if let Some(stream) = self.stream.take() {
            self.diff_memo = stream.sched.into_memo();
        }
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::Meta {
                key: "mode",
                value: "stream".into(),
            });
            self.sink.emit(TraceEvent::Meta {
                key: "backend",
                value: self.config.backend.name().into(),
            });
            self.sink.emit(TraceEvent::Meta {
                key: "policy",
                value: self.policy.name().into(),
            });
        }
        let cache_before = self.cache.stats();
        let diff_before = self.diff_memo.stats();
        let arrays = self.config.da_arrays + self.config.me_arrays;
        self.stream = Some(StreamState {
            sched: DiffAwareScheduler::with_memo(
                self.config.da_arrays,
                self.config.me_arrays,
                self.config.soc,
                std::mem::take(&mut self.diff_memo),
            ),
            gated: vec![false; arrays],
            quarantined: vec![false; arrays],
            accounts: (0..arrays)
                .map(|i| {
                    let kind = if i < self.config.da_arrays {
                        ArrayKind::Da
                    } else {
                        ArrayKind::Me
                    };
                    EnergyAccount::new(format!("{}{}", kind.tag(), i))
                })
                .collect(),
            jobs: vec![0; arrays],
            reconfig_events: vec![0; arrays],
            reconfig_bits: vec![0; arrays],
            exec_cycles: vec![0; arrays],
            gate_events: 0,
            wakes: 0,
            cache_before,
            diff_before,
        });
    }

    /// Per-array busy-until clocks and gating flags of the open streaming
    /// session (empty when no session is open).
    pub fn stream_array_status(&self) -> Vec<StreamArrayStatus> {
        let Some(stream) = &self.stream else {
            return Vec::new();
        };
        stream
            .sched
            .arrays()
            .iter()
            .map(|a| StreamArrayStatus {
                id: a.id,
                kind: a.kind,
                free_at: a.free_at,
                gated: stream.gated[a.id],
                quarantined: stream.quarantined[a.id],
            })
            .collect()
    }

    /// Pulls an array out of placement at `now_cycle` — the
    /// fault-recovery hook (`dsra-chaos`) calls this after repeated
    /// divergences. The array stays powered, any powered-idle span up to
    /// `now_cycle` is charged (and drained from the battery), and its
    /// resident configuration is evicted — so a later
    /// [`SocRuntime::stream_restore`] re-admits it cold, paying a full
    /// bitstream rewrite, exactly the reload that clears a corrupted
    /// configuration plane. In-flight work is unaffected (`free_at` is
    /// kept), so quarantine drains rather than aborts. Returns `false`
    /// if no session is open, the array is out of range, or it is
    /// already quarantined.
    pub fn stream_quarantine(&mut self, array: usize, now_cycle: u64) -> bool {
        let point = self.config.power.dvfs;
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        if array >= stream.quarantined.len() || stream.quarantined[array] {
            return false;
        }
        let state = &stream.sched.arrays()[array];
        let free_at = state.free_at;
        if !stream.gated[array] && now_cycle > free_at {
            let leak = state
                .loaded
                .as_ref()
                .map_or(0.0, |kernel| kernel.split.leak_power);
            let account = &mut stream.accounts[array];
            let before = account.total_j();
            account.charge_idle(now_cycle - free_at, leak, &point, false);
            let idle_j = account.total_j() - before;
            self.battery.drain(idle_j);
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::ArrayInterval {
                    array: array as u32,
                    phase: ArrayPhase::Idle,
                    start: free_at,
                    end: now_cycle,
                    job: None,
                    kernel: None,
                });
            }
        }
        let stream = self.stream.as_mut().expect("checked above");
        stream.sched.settle(array, free_at.max(now_cycle));
        stream.sched.evict(array);
        stream.quarantined[array] = true;
        true
    }

    /// Re-admits a quarantined array to placement at `now_cycle` (the
    /// recovery hook calls this when a probe finds the array healthy
    /// again). The span it sat quarantined is tallied as idle — it held
    /// no configuration plane, so it leaked nothing — and its busy-until
    /// clock settles to the restore instant, so no job can start on it
    /// before the restore decision existed. It re-enters placement cold.
    /// Returns `false` if no session is open or the array was not
    /// quarantined.
    pub fn stream_restore(&mut self, array: usize, now_cycle: u64) -> bool {
        let point = self.config.power.dvfs;
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        if array >= stream.quarantined.len() || !stream.quarantined[array] {
            return false;
        }
        let free_at = stream.sched.arrays()[array].free_at;
        if now_cycle > free_at {
            // Zero-leak idle (the plane was evicted at quarantine): no
            // joules move, but the idle-cycle tally stays complete.
            stream.accounts[array].charge_idle(now_cycle - free_at, 0.0, &point, false);
        }
        stream.sched.settle(array, free_at.max(now_cycle));
        stream.quarantined[array] = false;
        true
    }

    /// Powers an idle array off at `now_cycle`: the leakage it paid while
    /// idle up to `now_cycle` is charged (and drained from the battery),
    /// its resident configuration is dropped — *non*-retentive gating, so
    /// the next kernel placed there pays a full bitstream rewrite — and
    /// subsequent idle cycles cost nothing. Returns `false` (and does
    /// nothing) if no session is open, the array is still busy beyond
    /// `now_cycle`, or it is already gated.
    pub fn stream_gate(&mut self, array: usize, now_cycle: u64) -> bool {
        let point = self.config.power.dvfs;
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        let state = &stream.sched.arrays()[array];
        if stream.gated[array] || state.free_at > now_cycle {
            return false;
        }
        let leak = state
            .loaded
            .as_ref()
            .map_or(0.0, |kernel| kernel.split.leak_power);
        let free_at = state.free_at;
        let account = &mut stream.accounts[array];
        let before = account.total_j();
        account.charge_idle(now_cycle - free_at, leak, &point, false);
        let idle_j = account.total_j() - before;
        stream.sched.settle(array, now_cycle);
        stream.sched.evict(array);
        stream.gated[array] = true;
        stream.gate_events += 1;
        self.battery.drain(idle_j);
        if self.sink.enabled() && now_cycle > free_at {
            // The powered-idle span the gate decision just closed out.
            self.sink.emit(TraceEvent::ArrayInterval {
                array: array as u32,
                phase: ArrayPhase::Idle,
                start: free_at,
                end: now_cycle,
                job: None,
                kernel: None,
            });
        }
        true
    }

    /// Wakes a gated array at `now_cycle`: the cycles it sat dark are
    /// tallied as gated, its busy-until clock settles to the wake instant
    /// — so no job can start on it before the wake decision existed — and
    /// it re-enters placement. It still holds no configuration (its first
    /// job pays the full rewrite). Returns `false` if no session is open
    /// or the array was not gated.
    pub fn stream_wake(&mut self, array: usize, now_cycle: u64) -> bool {
        let point = self.config.power.dvfs;
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        if !stream.gated[array] {
            return false;
        }
        let free_at = stream.sched.arrays()[array].free_at;
        stream.accounts[array].charge_idle(
            now_cycle.saturating_sub(free_at),
            0.0, // a gated array holds no plane to leak
            &point,
            true,
        );
        stream.sched.settle(array, free_at.max(now_cycle));
        stream.gated[array] = false;
        stream.wakes += 1;
        if self.sink.enabled() && now_cycle > free_at {
            // The dark span between the gate and this wake decision.
            self.sink.emit(TraceEvent::ArrayInterval {
                array: array as u32,
                phase: ArrayPhase::Gated,
                start: free_at,
                end: now_cycle,
                job: None,
                kernel: None,
            });
        }
        true
    }

    /// Serves one job *now*: places it with the session scheduler (gated
    /// arrays excluded — unless every compatible array is gated, in which
    /// case the cheapest one is woken), executes the payload
    /// cycle-accurately, settles the array's busy-until clock with the
    /// measured cycles, charges energy and drains the battery.
    ///
    /// # Errors
    /// Propagates compile and execution failures; fails if no session is
    /// open or the job's payload has no compatible array in the pool.
    pub fn stream_serve_job(&mut self, job: &JobSpec) -> Result<StreamedJob> {
        self.stream_serve_job_excluding(job, None)
    }

    /// [`SocRuntime::stream_serve_job`] with one array barred from
    /// placement — the retry path of the fault-recovery layer, which
    /// re-dispatches a diverged job *away* from the array that produced
    /// the bad result. Quarantined arrays are always excluded; `exclude`
    /// is dropped (rather than failing the job) when it would leave no
    /// candidate, so a single-array pool retries in place.
    ///
    /// # Errors
    /// Everything [`SocRuntime::stream_serve_job`] can raise, plus a
    /// failure when every compatible array is quarantined.
    pub fn stream_serve_job_excluding(
        &mut self,
        job: &JobSpec,
        exclude: Option<usize>,
    ) -> Result<StreamedJob> {
        if self.stream.is_none() {
            return Err(CoreError::Mismatch(
                "stream_serve_job needs an open session (call stream_begin)".into(),
            ));
        }
        let power = PowerSnapshot {
            battery_charge_pct: self.battery.charge_pct(),
            low_battery_pct: self.config.power.low_battery_pct,
            dvfs: self.config.power.dvfs,
        };
        let condition = self.policy.condition(job.class, &power);
        let (kernel, est) = self.kernel_for(job, condition)?;
        let point = self.config.power.dvfs;
        let e_bit = self.config.power.reconfig_energy_per_bit;
        let params = self.config.da_params;
        let tracing = self.sink.enabled();
        let stream = self.stream.as_mut().expect("checked above");
        if !stream
            .sched
            .arrays()
            .iter()
            .any(|a| a.kind == kernel.array_kind)
        {
            return Err(CoreError::Mismatch(format!(
                "job {} needs a {} array but the pool has none",
                job.id,
                kernel.array_kind.tag()
            )));
        }
        // Quarantined arrays never take new work; the recovery layer's
        // retry exclusion only holds while another candidate remains.
        if !stream
            .sched
            .arrays()
            .iter()
            .any(|a| a.kind == kernel.array_kind && !stream.quarantined[a.id])
        {
            return Err(CoreError::Mismatch(format!(
                "job {} needs a {} array but every one is quarantined",
                job.id,
                kernel.array_kind.tag()
            )));
        }
        let exclude = exclude.filter(|&x| {
            stream
                .sched
                .arrays()
                .iter()
                .any(|a| a.kind == kernel.array_kind && !stream.quarantined[a.id] && a.id != x)
        });
        let banned = |i: usize| stream.quarantined[i] || Some(i) == exclude;
        // Gated arrays stay out of placement — except when the whole
        // candidate pool is gated, which force-wakes the winner (the
        // elastic controller's backlog threshold normally wakes arrays
        // before this fallback fires).
        let all_gated = stream
            .sched
            .arrays()
            .iter()
            .filter(|a| a.kind == kernel.array_kind && !banned(a.id))
            .all(|a| stream.gated[a.id]);
        let before: Vec<(u64, f64, bool, bool)> = stream
            .sched
            .arrays()
            .iter()
            .map(|a| {
                (
                    a.free_at,
                    a.loaded
                        .as_ref()
                        .map_or(0.0, |kernel| kernel.split.leak_power),
                    stream.gated[a.id],
                    banned(a.id),
                )
            })
            .collect();
        let slot = stream.sched.assign_filtered(
            &kernel,
            job.arrival_cycle,
            est,
            self.policy.as_ref(),
            &power,
            |i| !before[i].3 && (all_gated || !before[i].2),
        );
        let array = slot.array;
        let (prev_free, prev_leak, was_gated, _) = before[array];
        if was_gated {
            stream.gated[array] = false;
            stream.wakes += 1;
        }
        // Idle gap before this job: a powered plane leaks, a gated one
        // only tallies the cycles it sat dark.
        let start = prev_free.max(job.arrival_cycle);
        let account = &mut stream.accounts[array];
        let gap_before = account.total_j();
        account.charge_idle(start - prev_free, prev_leak, &point, was_gated);
        let gap_j = account.total_j() - gap_before;
        if tracing {
            if start > prev_free {
                self.sink.emit(TraceEvent::ArrayInterval {
                    array: array as u32,
                    phase: if was_gated {
                        ArrayPhase::Gated
                    } else {
                        ArrayPhase::Idle
                    },
                    start: prev_free,
                    end: start,
                    job: None,
                    kernel: None,
                });
            }
            self.sink.emit(TraceEvent::JobSchedule {
                t: start,
                job: job.id,
                array: array as u32,
                kernel: kernel.name.clone(),
                fingerprint: kernel.fingerprint.to_hex(),
            });
        }
        let outcome = self.engines[array].execute(params, job, &kernel.name)?;
        let (exec_cycles, checksum) = (outcome.exec_cycles, outcome.checksum);
        let end = start + slot.reconfig_cycles + exec_cycles;
        stream.sched.settle(array, end);
        // The job's attributable energy, mirroring the batch accounting:
        // its configuration write, the new plane's leakage while the bus
        // writes it, and its execution window.
        let job_before = account.total_j();
        let totals_before = account.totals();
        account.charge_reconfig(slot.reconfig_bits, e_bit, &point);
        account.charge_idle(slot.reconfig_cycles, kernel.split.leak_power, &point, false);
        account.charge_active(exec_cycles, &kernel.split, &point);
        let energy_j = account.total_j() - job_before;
        stream.jobs[array] += 1;
        stream.reconfig_events[array] += usize::from(slot.reconfig_bits > 0);
        stream.reconfig_bits[array] += slot.reconfig_bits;
        stream.exec_cycles[array] += exec_cycles;
        if tracing {
            if slot.reconfig_cycles > 0 {
                self.sink.emit(TraceEvent::ArrayInterval {
                    array: array as u32,
                    phase: if was_gated {
                        ArrayPhase::Waking
                    } else {
                        ArrayPhase::Reconfig
                    },
                    start,
                    end: start + slot.reconfig_cycles,
                    job: Some(job.id),
                    kernel: Some(kernel.name.clone()),
                });
            }
            if exec_cycles > 0 {
                self.sink.emit(TraceEvent::ArrayInterval {
                    array: array as u32,
                    phase: ArrayPhase::Exec,
                    start: start + slot.reconfig_cycles,
                    end,
                    job: Some(job.id),
                    kernel: Some(kernel.name.clone()),
                });
            }
            let d = account.totals().since(&totals_before);
            self.sink.emit(TraceEvent::JobComplete {
                t: end,
                job: job.id,
                checksum,
                energy: EnergyBreakdown {
                    dynamic_j: d.dynamic_j,
                    static_j: d.static_j,
                    reconfig_j: d.reconfig_j,
                },
            });
        }
        self.battery.drain(gap_j + energy_j);
        if tracing {
            self.sink.emit(TraceEvent::BatteryLevel {
                t: end,
                charge_j: self.battery.charge_j(),
            });
        }
        Ok(StreamedJob {
            id: job.id,
            array,
            kernel: kernel.name.clone(),
            reconfig_bits: slot.reconfig_bits,
            reconfig_cycles: slot.reconfig_cycles,
            exec_cycles,
            start_cycle: start,
            end_cycle: end,
            checksum,
            energy_j,
            woke_array: was_gated,
        })
    }

    /// Closes the streaming session at `now_cycle`: every array's tail
    /// idle up to `now_cycle` is charged (leakage or gated, as it stood),
    /// drained from the battery, and the per-array totals are returned.
    /// The session's diff memo flows back into the runtime's lifetime
    /// memo. Returns `None` if no session was open.
    pub fn stream_end(&mut self, now_cycle: u64) -> Option<StreamSummary> {
        let point = self.config.power.dvfs;
        let tracing = self.sink.enabled();
        let mut stream = self.stream.take()?;
        let mut tail_j = 0.0;
        let mut arrays = Vec::with_capacity(stream.accounts.len());
        for state in stream.sched.arrays() {
            let i = state.id;
            let leak = state
                .loaded
                .as_ref()
                .map_or(0.0, |kernel| kernel.split.leak_power);
            let account = &mut stream.accounts[i];
            let before = account.total_j();
            account.charge_idle(
                now_cycle.saturating_sub(state.free_at),
                leak,
                &point,
                stream.gated[i],
            );
            tail_j += account.total_j() - before;
            if tracing && now_cycle > state.free_at {
                self.sink.emit(TraceEvent::ArrayInterval {
                    array: i as u32,
                    phase: if stream.gated[i] {
                        ArrayPhase::Gated
                    } else {
                        ArrayPhase::Idle
                    },
                    start: state.free_at,
                    end: now_cycle,
                    job: None,
                    kernel: None,
                });
            }
            arrays.push(StreamArrayReport {
                id: i,
                kind: state.kind,
                jobs: stream.jobs[i],
                reconfig_events: stream.reconfig_events[i],
                reconfig_bits: stream.reconfig_bits[i],
                exec_cycles: stream.exec_cycles[i],
                dynamic_j: account.dynamic_j,
                static_j: account.static_j,
                reconfig_j: account.reconfig_j,
                gated_cycles: account.gated_cycles,
                idle_cycles: account.idle_cycles,
            });
        }
        self.battery.drain(tail_j);
        self.diff_memo = stream.sched.into_memo();
        if tracing {
            let cache = self.cache.stats().since(stream.cache_before);
            let diff = self.diff_memo.stats().since(stream.diff_before);
            for (name, value) in [
                ("cache_hits", cache.hits),
                ("cache_misses", cache.misses),
                ("diff_probes", diff.probes),
                ("diff_memo_misses", diff.misses),
            ] {
                self.sink.emit(TraceEvent::Counter {
                    t: now_cycle,
                    name,
                    value,
                });
            }
            self.sink.emit(TraceEvent::BatteryLevel {
                t: now_cycle,
                charge_j: self.battery.charge_j(),
            });
        }
        Some(StreamSummary {
            arrays,
            gate_events: stream.gate_events,
            wakes: stream.wakes,
        })
    }

    /// The runtime's pool and platform configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Resolves the kernel and estimated cycles for one job.
    fn kernel_for(
        &mut self,
        job: &JobSpec,
        condition: Condition,
    ) -> Result<(Arc<CompiledKernel>, u64)> {
        match job.payload {
            JobPayload::DctBlocks { blocks, .. } => {
                let (kernel, cycles_per_block) = self.dct_kernel(condition)?;
                Ok((kernel, cycles_per_block * u64::from(blocks)))
            }
            JobPayload::MeSearch { block, range, .. } => {
                // One systolic kernel per block edge, seeded on first sight
                // — the kernel the worker will execute is exactly the one
                // priced and cached here.
                let kernel_id = KernelId::MeSystolic { block };
                let params = self.config.da_params;
                let (seed, fabric) = match self.me_seeds.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => &*e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let (netlist, fingerprint) = kernel_id.build_netlist(params)?;
                        let fabric = me_fabric_for(&netlist);
                        &*e.insert((
                            KernelSeed {
                                fingerprint,
                                netlist,
                            },
                            fabric,
                        ))
                    }
                };
                let kernel = self.cache.get_or_compile(
                    seed.fingerprint,
                    &kernel_id.display_name(),
                    kernel_id.array_kind(),
                    fabric,
                    || Ok(seed.netlist.clone()),
                )?;
                let candidates = {
                    let side = 2 * u64::from(range) + 1;
                    side * side
                };
                Ok((kernel, candidates * u64::from(block) * 2))
            }
            JobPayload::EncodeGop { size, frames, .. } => {
                let (kernel, cycles_per_block) = self.dct_kernel(condition)?;
                let blocks8 = (u64::from(size.0) / 8)
                    * (u64::from(size.1) / 8)
                    * u64::from(frames.saturating_sub(1));
                // 16 1-D transforms per 8×8 block (rows + columns).
                Ok((kernel, blocks8 * 16 * cycles_per_block))
            }
        }
    }

    /// Picks the DCT mapping for a condition and fetches its compiled
    /// kernel through the cache (a hit after warm-up).
    fn dct_kernel(&mut self, condition: Condition) -> Result<(Arc<CompiledKernel>, u64)> {
        let profile = self
            .policy
            .select_mapping(&self.profiles, condition)
            .ok_or_else(|| {
                CoreError::Mismatch(format!("no offered mapping satisfies {condition:?}"))
            })?;
        let seed = self
            .dct_seeds
            .get(profile.name.as_str())
            .expect("profiles and seeds are built together");
        let kernel = self.cache.get_or_compile(
            seed.fingerprint,
            &profile.name,
            ArrayKind::Da,
            &self.da_fabric,
            || Ok(seed.netlist.clone()),
        )?;
        Ok((kernel, profile.cycles_per_block))
    }
}

/// Smallest standard ME array that fits `netlist` (cluster capacity only;
/// the perimeter provides I/O pads).
fn me_fabric_for(netlist: &Netlist) -> Fabric {
    let report = netlist.resource_report();
    let mut height = 6u16;
    loop {
        let fabric = Fabric::me_array(height + 3, height, MeshSpec::mixed());
        if fabric.check_capacity(&report).is_ok() {
            return fabric;
        }
        height += 1;
    }
}

fn payload_tag(payload: &JobPayload) -> &'static str {
    match payload {
        JobPayload::DctBlocks { .. } => "dct",
        JobPayload::MeSearch { .. } => "me",
        JobPayload::EncodeGop { .. } => "encode",
    }
}

/// Folds per-array plans and execution results into the final report,
/// integrating per-array energy (DESIGN.md §7) and the battery trajectory.
/// Also the batch-mode trace emission point: the full per-job timeline is
/// reconstructed here on the main thread, so lifecycle spans, array
/// intervals and battery samples all fall out of the walk (workers stay
/// sink-free).
fn assemble_report(
    config: &RuntimeConfig,
    plans: &[Vec<Assignment>],
    execs: &[Vec<exec::JobExec>],
    cache: CacheStats,
    gate_idle: bool,
    battery: &Battery,
    sink: &mut dyn TraceSink,
) -> RuntimeReport {
    let tracing = sink.enabled();
    let point = config.power.dvfs;
    let e_bit = config.power.reconfig_energy_per_bit;
    let mut outcomes = Vec::new();
    let mut arrays = Vec::with_capacity(plans.len());
    let mut accounts = Vec::with_capacity(plans.len());
    // The kernel left loaded on each array and when the array drained,
    // for tail-idle leakage once the makespan is known.
    let mut residual: Vec<(Option<EnergySplit>, u64)> = Vec::with_capacity(plans.len());
    let mut encoded_frames = 0u64;
    let mut makespan = 0u64;
    for (array_id, (plan, exec)) in plans.iter().zip(execs).enumerate() {
        debug_assert_eq!(plan.len(), exec.len());
        let kind = if array_id < config.da_arrays {
            ArrayKind::Da
        } else {
            ArrayKind::Me
        };
        let mut account = EnergyAccount::new(format!("{}{}", kind.tag(), array_id));
        // An unconfigured array leaks nothing attributable until its
        // first kernel lands; after that, whatever is loaded leaks.
        let mut loaded: Option<EnergySplit> = None;
        let mut free_at = 0u64;
        let mut a = ArrayReport {
            id: array_id,
            kind,
            jobs: plan.len(),
            exec_cycles: 0,
            reconfig_cycles: 0,
            reconfig_bits: 0,
            reconfig_events: 0,
            utilization_pct: 0.0,
            dynamic_j: 0.0,
            static_j: 0.0,
            reconfig_j: 0.0,
            gated_cycles: 0,
        };
        for (asg, ex) in plan.iter().zip(exec) {
            assert_eq!(
                asg.job.id, ex.job_id,
                "worker results must stay in plan order"
            );
            let reconfig_cycles = ex.reconfig.cycles;
            let start = free_at.max(asg.job.arrival_cycle);
            let end = start + reconfig_cycles + ex.exec_cycles;
            // Idle gap before this job: the previously loaded plane
            // leaks (or is gated).
            if let Some(prev) = loaded {
                account.charge_idle(start - free_at, prev.leak_power, &point, gate_idle);
            }
            if tracing {
                sink.emit(TraceEvent::JobEnqueue {
                    t: asg.job.arrival_cycle,
                    job: asg.job.id,
                    tenant: 0,
                    class: asg.job.class.tag(),
                    kind: payload_tag(&asg.job.payload),
                    deadline: 0,
                });
                if start > free_at {
                    sink.emit(TraceEvent::ArrayInterval {
                        array: array_id as u32,
                        phase: if loaded.is_some() && gate_idle {
                            ArrayPhase::Gated
                        } else {
                            ArrayPhase::Idle
                        },
                        start: free_at,
                        end: start,
                        job: None,
                        kernel: None,
                    });
                }
                sink.emit(TraceEvent::JobSchedule {
                    t: start,
                    job: asg.job.id,
                    array: array_id as u32,
                    kernel: asg.kernel.name.clone(),
                    fingerprint: asg.kernel.fingerprint.to_hex(),
                });
                if reconfig_cycles > 0 {
                    sink.emit(TraceEvent::ArrayInterval {
                        array: array_id as u32,
                        phase: ArrayPhase::Reconfig,
                        start,
                        end: start + reconfig_cycles,
                        job: Some(asg.job.id),
                        kernel: Some(asg.kernel.name.clone()),
                    });
                }
                if ex.exec_cycles > 0 {
                    sink.emit(TraceEvent::ArrayInterval {
                        array: array_id as u32,
                        phase: ArrayPhase::Exec,
                        start: start + reconfig_cycles,
                        end,
                        job: Some(asg.job.id),
                        kernel: Some(asg.kernel.name.clone()),
                    });
                }
            }
            let split = asg.kernel.split;
            // The job's attributable energy: its reconfiguration write,
            // the leakage of the (new) plane while the bus writes it,
            // and its execution window, all from one account snapshot.
            let before = account.total_j();
            let totals_before = account.totals();
            account.charge_reconfig(ex.reconfig.bits_written, e_bit, &point);
            account.charge_idle(reconfig_cycles, split.leak_power, &point, false);
            account.charge_active(ex.exec_cycles, &split, &point);
            let energy_j = account.total_j() - before;
            if tracing {
                let d = account.totals().since(&totals_before);
                sink.emit(TraceEvent::JobComplete {
                    t: end,
                    job: asg.job.id,
                    checksum: ex.checksum,
                    energy: EnergyBreakdown {
                        dynamic_j: d.dynamic_j,
                        static_j: d.static_j,
                        reconfig_j: d.reconfig_j,
                    },
                });
            }
            loaded = Some(split);
            free_at = end;
            a.exec_cycles += ex.exec_cycles;
            a.reconfig_cycles += reconfig_cycles;
            a.reconfig_bits += ex.reconfig.bits_written;
            a.reconfig_events += usize::from(ex.reconfig.bits_written > 0);
            if let JobPayload::EncodeGop { frames, .. } = asg.job.payload {
                encoded_frames += u64::from(frames.saturating_sub(1));
            }
            outcomes.push(JobOutcome {
                id: asg.job.id,
                kind: payload_tag(&asg.job.payload),
                array: array_id,
                kernel: asg.kernel.name.clone(),
                reconfig_bits: ex.reconfig.bits_written,
                exec_cycles: ex.exec_cycles,
                arrival_cycle: asg.job.arrival_cycle,
                start_cycle: start,
                end_cycle: end,
                checksum: ex.checksum,
                energy_j,
            });
        }
        makespan = makespan.max(free_at);
        residual.push((loaded, free_at));
        accounts.push(account);
        arrays.push(a);
    }
    // Tail idle: every array leaks (or gates) from its last job to the
    // pool-wide makespan. Like the inter-job gaps, this energy belongs
    // to no job — everything outside the per-job attributions feeds the
    // trajectory's idle drain.
    let job_energy_total: f64 = outcomes.iter().map(|o| o.energy_j).sum();
    for (array_id, (account, (loaded, free_at))) in accounts.iter_mut().zip(&residual).enumerate() {
        if let Some(split) = loaded {
            account.charge_idle(makespan - free_at, split.leak_power, &point, gate_idle);
        }
        if tracing && makespan > *free_at {
            sink.emit(TraceEvent::ArrayInterval {
                array: array_id as u32,
                phase: if loaded.is_some() && gate_idle {
                    ArrayPhase::Gated
                } else {
                    ArrayPhase::Idle
                },
                start: *free_at,
                end: makespan,
                job: None,
                kernel: None,
            });
        }
    }
    for (a, account) in arrays.iter_mut().zip(&accounts) {
        let busy = a.exec_cycles + a.reconfig_cycles;
        a.utilization_pct = if makespan == 0 {
            0.0
        } else {
            busy as f64 * 100.0 / makespan as f64
        };
        a.dynamic_j = account.dynamic_j;
        a.static_j = account.static_j;
        a.reconfig_j = account.reconfig_j;
        a.gated_cycles = account.gated_cycles;
    }
    let dynamic_j: f64 = accounts.iter().map(|c| c.dynamic_j).sum();
    let static_j: f64 = accounts.iter().map(|c| c.static_j).sum();
    let reconfig_j: f64 = accounts.iter().map(|c| c.reconfig_j).sum();
    let total_j = dynamic_j + static_j + reconfig_j;
    let idle_drain_j = total_j - job_energy_total;

    // Battery trajectory: drain per-job energies in completion order,
    // then the idle leakage, saturating exactly as the real battery does.
    let mut by_completion: Vec<(u64, u32, f64)> = outcomes
        .iter()
        .map(|o| (o.end_cycle, o.id, o.energy_j))
        .collect();
    by_completion.sort_unstable_by_key(|&(end, id, _)| (end, id));
    let start_j = battery.charge_j();
    let mut sim = *battery;
    let mut samples: Vec<BatterySample> = Vec::with_capacity(by_completion.len());
    for (end_cycle, id, energy_j) in by_completion {
        sim.drain(energy_j);
        if tracing {
            sink.emit(TraceEvent::BatteryLevel {
                t: end_cycle,
                charge_j: sim.charge_j(),
            });
        }
        samples.push(BatterySample {
            job: id,
            charge_j: sim.charge_j(),
        });
    }
    sim.drain(idle_drain_j);
    if tracing {
        sink.emit(TraceEvent::BatteryLevel {
            t: makespan,
            charge_j: sim.charge_j(),
        });
        for (name, value) in [("cache_hits", cache.hits), ("cache_misses", cache.misses)] {
            sink.emit(TraceEvent::Counter {
                t: makespan,
                name,
                value,
            });
        }
    }

    outcomes.sort_by_key(|o| o.id);
    let count = |tag: &str| outcomes.iter().filter(|o| o.kind == tag).count();
    let jobs = outcomes.len();
    RuntimeReport {
        backend: config.backend.name(),
        jobs,
        dct_jobs: count("dct"),
        me_jobs: count("me"),
        encode_jobs: count("encode"),
        makespan_cycles: makespan,
        jobs_per_megacycle: if makespan == 0 {
            0.0
        } else {
            jobs as f64 * 1e6 / makespan as f64
        },
        cache,
        total_reconfig_bits: arrays.iter().map(|a| a.reconfig_bits).sum(),
        reconfig_events: arrays.iter().map(|a| a.reconfig_events).sum(),
        energy: EnergyReport {
            point,
            dynamic_j,
            static_j,
            reconfig_j,
            gated_cycles: accounts.iter().map(|c| c.gated_cycles).sum(),
            joules_per_job: if jobs == 0 {
                0.0
            } else {
                total_j / jobs as f64
            },
            encoded_frames,
            frames_per_joule: if total_j > 0.0 {
                encoded_frames as f64 / total_j
            } else {
                0.0
            },
            battery: BatteryTrajectory {
                capacity_j: battery.capacity_j(),
                start_j,
                end_j: sim.charge_j(),
                idle_drain_j,
                samples,
            },
        },
        arrays,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsra_video::{generate_job_mix, JobMixConfig, JobMixWeights};

    fn small_mix(jobs: u32, seed: u64) -> Vec<JobSpec> {
        generate_job_mix(JobMixConfig {
            jobs,
            seed,
            ..Default::default()
        })
    }

    fn small_runtime() -> SocRuntime {
        SocRuntime::new(RuntimeConfig {
            da_arrays: 2,
            me_arrays: 2,
            mappings: vec![
                DctMapping::BasicDa,
                DctMapping::MixedRom,
                DctMapping::SccFull,
            ],
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn serve_is_deterministic_across_runtimes_and_threads() {
        let jobs = small_mix(40, 7);
        let a = small_runtime().serve(&jobs).unwrap();
        let b = small_runtime().serve(&jobs).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json("E11"), b.to_json("E11"));
        // …including the energy columns and the full battery trajectory.
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn digest_covers_energy_columns_and_battery_trajectory() {
        let mut rt = small_runtime();
        let report = rt.serve(&small_mix(12, 9)).unwrap();
        assert!(report.energy.total_j() > 0.0);
        assert_eq!(report.energy.battery.samples.len(), report.jobs);
        let digest = report.digest();
        // Any energy column shifting must change the digest: per-job
        // attribution, the serve totals, and the battery trajectory.
        let mut t = report.clone();
        t.outcomes[0].energy_j += 1.0;
        assert_ne!(t.digest(), digest, "per-job energy must be pinned");
        let mut t = report.clone();
        t.energy.static_j += 1.0;
        assert_ne!(t.digest(), digest, "static energy must be pinned");
        let mut t = report.clone();
        t.energy.battery.samples[0].charge_j += 1.0;
        assert_ne!(t.digest(), digest, "battery trajectory must be pinned");
        let mut t = report.clone();
        t.energy.gated_cycles += 1;
        assert_ne!(t.digest(), digest, "gated cycles must be pinned");
    }

    #[test]
    fn warm_memo_and_engines_do_not_change_results() {
        // One runtime serving the same mix twice: the second serve runs
        // with warm worker engines and a warm diff memo, and must produce
        // byte-identical results (the memo is an optimisation, never a
        // behaviour change). A fresh runtime agrees too.
        let jobs = small_mix(30, 21);
        let mut warm = small_runtime();
        let first = warm.serve(&jobs).unwrap();
        warm.recharge_full();
        let second = warm.serve(&jobs).unwrap();
        // Everything outcome-bearing is identical; only the cache counters
        // differ (the first serve paid the one ME compile miss).
        assert_eq!(first.digest(), second.digest());
        assert_eq!(first.outcomes, second.outcomes);
        assert_eq!(first.energy, second.energy);
        assert_eq!(second.cache.misses, 0, "second serve must be all hits");
        assert_eq!(
            small_runtime().serve(&jobs).unwrap().digest(),
            first.digest()
        );
        // The mix rotates kernels, so the memo actually learned pairs.
        assert!(warm.diff_memo_len() > 0, "diff memo never engaged");
    }

    #[test]
    fn batch_tracing_observes_without_changing_the_report() {
        use dsra_trace::EventLog;
        let jobs = small_mix(24, 17);
        let untraced = small_runtime().serve(&jobs).unwrap();
        let mut rt = small_runtime();
        rt.set_trace_sink(Box::new(EventLog::new()));
        let traced = rt.serve(&jobs).unwrap();
        assert_eq!(traced.digest(), untraced.digest());
        assert_eq!(traced.outcomes, untraced.outcomes);
        let log = rt
            .take_trace_sink()
            .into_log()
            .expect("recording sink installed");
        assert_eq!(log.meta("mode"), Some("batch"));
        assert_eq!(log.meta("backend"), Some("array"));
        // Every job has its whole lifecycle recorded, agreeing with the
        // report's timeline.
        let spans = log.job_spans();
        assert_eq!(spans.len(), jobs.len());
        for s in &spans {
            assert!(s.is_full_lifecycle(), "job {} incomplete", s.job);
            let o = &traced.outcomes[s.job as usize];
            assert_eq!(s.enqueue, Some(o.arrival_cycle));
            assert_eq!(s.schedule, Some(o.start_cycle));
            assert_eq!(s.complete, Some(o.end_cycle));
            assert_eq!(s.checksum, Some(o.checksum));
            let e = s.energy.expect("energy breakdown");
            assert!(
                (e.total_j() - o.energy_j).abs() <= 1e-9 * o.energy_j.max(1.0),
                "attribution split must sum to the digest-pinned energy"
            );
        }
        // Per-array state intervals tile [0, makespan] gap-free.
        let by_array = log.array_intervals();
        assert_eq!(by_array.len(), traced.arrays.len());
        for (array, spans) in &by_array {
            let mut cursor = 0u64;
            for (start, end, _) in spans {
                assert_eq!(*start, cursor, "gap on array {array}");
                assert!(end > start);
                cursor = *end;
            }
            assert_eq!(cursor, traced.makespan_cycles, "array {array} tail");
        }
        // One battery point per completion plus the final idle-drain point.
        let battery_points = log
            .events()
            .iter()
            .filter(|e| matches!(e, dsra_trace::TraceEvent::BatteryLevel { .. }))
            .count();
        assert_eq!(battery_points, jobs.len() + 1);
        // A re-run with a fresh runtime records the identical log.
        let mut rt2 = small_runtime();
        rt2.set_trace_sink(Box::new(EventLog::new()));
        rt2.serve(&jobs).unwrap();
        assert_eq!(rt2.take_trace_sink().into_log().unwrap(), log);
    }

    #[test]
    fn phase_timings_are_diagnostics_only() {
        let mut rt = small_runtime();
        assert_eq!(rt.phase_timings(), PhaseTimings::default());
        let report = rt.serve(&small_mix(8, 5)).unwrap();
        // Wall-clock numbers exist after a serve but never enter the
        // deterministic document.
        let t = rt.phase_timings();
        assert!(t.planning_ms >= 0.0 && t.exec_ms > 0.0);
        assert!(!report.to_json("E11").contains("phases"));
    }

    #[test]
    fn cache_pays_compile_once_per_kernel() {
        let mut rt = small_runtime();
        let report = rt.serve(&small_mix(60, 11)).unwrap();
        assert_eq!(report.jobs, 60);
        // Worst case: 3 offered DCT mappings (already compiled at startup,
        // so all serve-time DCT lookups hit) + 1 ME kernel miss.
        assert!(report.cache.misses <= 1, "misses: {:?}", report.cache);
        assert!(report.cache.hit_rate() > 0.9);
        // Every array the pool offers for a present job kind did real work.
        assert!(report.makespan_cycles > 0);
        assert!(report.total_reconfig_bits > 0);
    }

    #[test]
    fn report_covers_every_job_exactly_once() {
        let mut rt = small_runtime();
        let jobs = small_mix(50, 3);
        let report = rt.serve(&jobs).unwrap();
        assert_eq!(report.outcomes.len(), 50);
        let mut ids: Vec<u32> = report.outcomes.iter().map(|o| o.id).collect();
        ids.dedup();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
        assert_eq!(report.dct_jobs + report.me_jobs + report.encode_jobs, 50);
        // Timeline sanity: jobs never start before arrival and never end
        // before they start.
        for (o, j) in report.outcomes.iter().zip(&jobs) {
            assert!(o.start_cycle >= j.arrival_cycle);
            assert!(o.end_cycle >= o.start_cycle);
        }
    }

    #[test]
    fn stream_serving_is_deterministic_and_checksum_equal_to_batch() {
        let jobs = small_mix(30, 13);
        let batch = small_runtime().serve(&jobs).unwrap();

        let stream_once = || {
            let mut rt = small_runtime();
            rt.stream_begin();
            let outcomes: Vec<StreamedJob> = jobs
                .iter()
                .map(|j| rt.stream_serve_job(j).unwrap())
                .collect();
            let makespan = outcomes.iter().map(|o| o.end_cycle).max().unwrap();
            let summary = rt.stream_end(makespan).unwrap();
            (outcomes, summary)
        };
        let (a, sa) = stream_once();
        let (b, sb) = stream_once();
        assert_eq!(a, b, "streaming must be byte-deterministic");
        assert_eq!(sa, sb);
        // Payloads are pure functions of their specs: the incremental path
        // computes exactly the checksums the batch path computed.
        for (s, o) in a.iter().zip(&batch.outcomes) {
            assert_eq!(s.id, o.id);
            assert_eq!(s.checksum, o.checksum);
            assert_eq!(s.exec_cycles, o.exec_cycles);
            assert!(s.start_cycle >= jobs[s.id as usize].arrival_cycle);
            assert!(s.end_cycle >= s.start_cycle);
            assert!(s.energy_j > 0.0);
        }
        // Per-array totals agree with the per-job outcomes.
        assert_eq!(sa.arrays.iter().map(|x| x.jobs).sum::<usize>(), jobs.len());
        let per_job: f64 = a.iter().map(|o| o.energy_j).sum();
        assert!(sa.total_j() >= per_job, "totals include idle leakage");
    }

    #[test]
    fn stream_gating_drops_config_and_wake_pays_the_rewrite() {
        use dsra_video::{JobPayload, ServiceClass};
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 0,
            mappings: vec![DctMapping::BasicDa],
            ..Default::default()
        })
        .unwrap();
        let job = |id: u32, arrival: u64| JobSpec {
            id,
            arrival_cycle: arrival,
            class: ServiceClass::Quality,
            payload: JobPayload::DctBlocks {
                blocks: 1,
                amplitude: 100,
            },
            seed: id.into(),
        };
        rt.stream_begin();
        let first = rt.stream_serve_job(&job(0, 0)).unwrap();
        assert!(first.reconfig_bits > 0, "cold array pays the full write");
        assert!(!first.woke_array);
        // Resident kernel: the next job is free.
        let resident = rt.stream_serve_job(&job(1, first.end_cycle)).unwrap();
        assert_eq!(resident.reconfig_bits, 0);
        // Gate the (idle) array, then serve again: the pool is fully
        // gated, so the job force-wakes it and pays the full rewrite.
        let now = resident.end_cycle + 1_000;
        assert!(rt.stream_gate(0, now));
        assert!(!rt.stream_gate(0, now), "already gated");
        assert!(rt.stream_array_status()[0].gated);
        let woken = rt.stream_serve_job(&job(2, now + 1_000)).unwrap();
        assert!(woken.woke_array);
        assert_eq!(woken.reconfig_bits, first.reconfig_bits);
        let summary = rt.stream_end(woken.end_cycle + 500).unwrap();
        assert_eq!(summary.gate_events, 1);
        assert_eq!(summary.wakes, 1);
        assert!(summary.gated_cycles() > 0, "gated idle must be tallied");
        assert!(rt.stream_end(0).is_none(), "session closes once");
    }

    #[test]
    fn explicit_wake_settles_the_clock_and_tallies_the_dark_span() {
        use dsra_video::{JobPayload, ServiceClass};
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 0,
            mappings: vec![DctMapping::BasicDa],
            ..Default::default()
        })
        .unwrap();
        let job = |id: u32, arrival: u64| JobSpec {
            id,
            arrival_cycle: arrival,
            class: ServiceClass::Quality,
            payload: JobPayload::DctBlocks {
                blocks: 1,
                amplitude: 100,
            },
            seed: id.into(),
        };
        rt.stream_begin();
        let first = rt.stream_serve_job(&job(0, 0)).unwrap();
        assert!(rt.stream_gate(0, first.end_cycle + 100));
        // Woken long after gating: the whole dark span is gated cycles,
        // and the busy-until clock moves to the wake instant…
        let wake_at = first.end_cycle + 10_000;
        assert!(rt.stream_wake(0, wake_at));
        assert!(!rt.stream_wake(0, wake_at), "only gated arrays wake");
        let status = rt.stream_array_status();
        assert!(!status[0].gated);
        assert_eq!(status[0].free_at, wake_at);
        // …so a request that arrived while the array was dark cannot be
        // served before the wake decision existed.
        let served = rt.stream_serve_job(&job(1, first.end_cycle + 500)).unwrap();
        assert!(served.start_cycle >= wake_at);
        assert!(!served.woke_array, "explicitly woken, not force-woken");
        assert_eq!(
            served.reconfig_bits, first.reconfig_bits,
            "wake still pays the full rewrite"
        );
        let summary = rt.stream_end(served.end_cycle).unwrap();
        assert_eq!(summary.wakes, 1);
        assert!(summary.gated_cycles() >= 9_000, "dark span must be tallied");
    }

    #[test]
    fn stream_session_returns_the_diff_memo_and_drains_the_battery() {
        let jobs = small_mix(20, 4);
        let mut rt = small_runtime();
        let full = rt.battery().charge_j();
        rt.stream_begin();
        let mut makespan = 0;
        for j in &jobs {
            makespan = makespan.max(rt.stream_serve_job(j).unwrap().end_cycle);
        }
        let summary = rt.stream_end(makespan).unwrap();
        assert!(rt.diff_memo_len() > 0, "stream memo flows back");
        let drained = full - rt.battery().charge_j();
        assert!(
            (drained - summary.total_j()).abs() < 1e-6 * summary.total_j().max(1.0),
            "battery drain {drained} must equal session energy {}",
            summary.total_j()
        );
        // A batch serve right after streaming still works and reuses the
        // warm memo.
        assert!(rt.serve(&jobs).is_ok());
    }

    #[test]
    fn undersized_me_plane_is_an_error_not_a_panic() {
        use dsra_video::{JobPayload, ServiceClass};
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 1,
            mappings: vec![DctMapping::BasicDa],
            ..Default::default()
        })
        .unwrap();
        let job = JobSpec {
            id: 0,
            arrival_cycle: 0,
            class: ServiceClass::Quality,
            payload: JobPayload::MeSearch {
                size: (10, 10),
                shift: (1, 0),
                block: 8,
                range: 2,
            },
            seed: 1,
        };
        assert!(rt.serve(&[job]).is_err());
    }

    #[test]
    fn me_jobs_need_an_me_array() {
        let mut rt = SocRuntime::new(RuntimeConfig {
            da_arrays: 1,
            me_arrays: 0,
            mappings: vec![DctMapping::BasicDa],
            ..Default::default()
        })
        .unwrap();
        let jobs = generate_job_mix(JobMixConfig {
            jobs: 4,
            weights: JobMixWeights {
                dct: 0,
                me: 1,
                encode: 0,
            },
            ..Default::default()
        });
        assert!(rt.serve(&jobs).is_err());
    }
}
